// Frontend: a client simulation of the concurrent combining view.
// Waves of client goroutines hammer one pbist.Concurrent with
// individual point operations — the worst shape for a batched engine —
// and the combiner's statistics show how the traffic is coalesced
// back into batches: epochs track the number of active clients, so
// the engine still runs its parallel-batched traversals.
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

const (
	preload      = 200_000 // keys bulk-loaded before the simulation
	opsPerClient = 2_000
	keyspace     = 400_000
)

func main() {
	// Bulk-load the engine through the batch path, then serve clients.
	base := dist.UniformSet(dist.NewRNG(7), preload, 0, keyspace)
	vals := make([]uint64, len(base))
	for i, k := range base {
		vals[i] = uint64(k)
	}
	c := pbist.NewConcurrentFromItems(
		pbist.ConcurrentOptions{Options: pbist.Options{AssumeSorted: true}},
		base, vals)
	defer c.Close()

	fmt.Printf("engine preloaded with %d keys; %d point ops per client (90%% reads)\n\n",
		c.Len(), opsPerClient)
	fmt.Printf("%-8s %-10s %-12s %-12s %-12s\n",
		"clients", "kops/s", "epochs", "ops/epoch", "mean wait")

	prev := c.Stats()
	for _, clients := range []int{1, 2, 4, 8, 16, 32} {
		elapsed := wave(c, clients)
		st := c.Stats()
		epochs := st.Epochs - prev.Epochs
		ops := st.Ops - prev.Ops
		prev = st
		kops := float64(ops) / elapsed.Seconds() / 1e3
		fmt.Printf("%-8d %-10.0f %-12d %-12.1f %-12s\n",
			clients, kops, epochs, float64(ops)/float64(epochs),
			st.MeanWait.Round(100*time.Nanosecond))
	}

	fmt.Printf("\nfinal: %d keys, %v\n", c.Len(), summarize(c.Stats()))
}

// wave runs one burst of clients issuing mixed point operations and
// returns the wall time of the burst.
func wave(c *pbist.Concurrent[int64, uint64], clients int) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			r := dist.NewRNG(uint64(id) ^ 0xf40017e0d)
			<-start
			for i := 0; i < opsPerClient; i++ {
				k := r.Int63n(keyspace)
				switch r.Uint64n(20) {
				case 0:
					c.Put(k, uint64(k))
				case 1:
					c.Delete(k)
				default:
					if v, ok := c.Get(k); ok && v != uint64(k) {
						panic("value detached from key")
					}
				}
			}
		}(int64(id))
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

func summarize(st pbist.ConcurrentStats) string {
	return fmt.Sprintf("%d ops combined into %d epochs (mean %.1f ops, %d size-triggered)",
		st.Ops, st.Epochs, st.MeanOps, st.SizeFlushes)
}
