// Quickstart: build a parallel-batched interpolation search tree, run
// scalar and batched operations, and inspect the tree shape.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/pbist"
)

func main() {
	// A tree over int64 keys using all machine cores for batched ops.
	tree := pbist.New[int64](pbist.Options{})

	// Scalar operations work like any sorted set.
	tree.Insert(42)
	tree.Insert(7)
	tree.Insert(99)
	fmt.Println("contains 7:", tree.Contains(7))   // true
	fmt.Println("contains 13:", tree.Contains(13)) // false
	tree.Remove(7)
	fmt.Println("after remove, contains 7:", tree.Contains(7)) // false

	// The point of the data structure: batched operations. Batches may
	// be unsorted and contain duplicates; the tree normalizes them.
	added := tree.InsertBatch([]int64{10, 30, 20, 10, 40, 42})
	fmt.Println("newly added:", added) // 4 (10,20,30,40; 42 existed)

	hits := tree.ContainsBatch([]int64{40, 41, 42})
	fmt.Println("membership of [40 41 42]:", hits) // [true false true]

	removed := tree.RemoveBatch([]int64{10, 11, 20})
	fmt.Println("removed:", removed) // 2

	fmt.Println("keys:", tree.Keys()) // [30 40 42 99]

	// Ordered queries: extrema, ranges, and order statistics.
	mn, _ := tree.Min()
	mx, _ := tree.Max()
	fmt.Println("min/max:", mn, mx)                        // 30 99
	fmt.Println("range [35,50]:", tree.Range(35, 50))      // [40 42]
	fmt.Println("count [0,100]:", tree.CountRange(0, 100)) // 4
	second, _ := tree.Select(1)
	fmt.Println("2nd smallest:", second)        // 40
	fmt.Println("rank of 42:", tree.RankOf(42)) // 2

	// Bulk-load a bigger tree and look at its shape: for an ideally
	// balanced IST the height stays doubly logarithmic and the root
	// fans out to ~√n children.
	keys := make([]int64, 1_000_000)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	big := pbist.NewFromKeys(pbist.Options{}, keys)
	s := big.Stats()
	fmt.Printf("1M keys: height=%d rootFanout=%d leaves=%d indexKB=%d\n",
		s.Height, s.RootRepLen, s.Leaves, s.IndexBytes/1024)
}
