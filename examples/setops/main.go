// Setops: the motivating workload of the paper's introduction — the
// batched operations ARE the set-set operations. Two large ID sets are
// combined with union, difference, and intersection, all executed as
// parallel batches.
//
//	go run ./examples/setops
package main

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

func main() {
	const (
		nA = 3_000_000 // subscribers of service A
		nB = 2_000_000 // subscribers of service B
	)
	r := dist.NewRNG(2024)
	a := dist.UniformSet(r, nA, 0, 1<<34)
	b := dist.UniformSet(r, nB, 0, 1<<34)

	opts := pbist.Options{AssumeSorted: true} // generators emit sorted sets
	fmt.Printf("A: %d ids, B: %d ids\n", len(a), len(b))

	// Union: A ∪ B via InsertBatch (§2.2: InsertBatched computes the
	// union of two sets).
	union := pbist.NewFromKeys(opts, a)
	start := time.Now()
	added := union.InsertBatch(b)
	fmt.Printf("union        |A∪B| = %8d  (+%d new, %v)\n",
		union.Len(), added, time.Since(start).Round(time.Millisecond))

	// Difference: A \ B via RemoveBatch.
	diff := pbist.NewFromKeys(opts, a)
	start = time.Now()
	removed := diff.RemoveBatch(b)
	fmt.Printf("difference   |A\\B| = %8d  (-%d shared, %v)\n",
		diff.Len(), removed, time.Since(start).Round(time.Millisecond))

	// Intersection: A ∩ B via ContainsBatch.
	inter := pbist.NewFromKeys(opts, a)
	start = time.Now()
	shared := inter.Intersection(b)
	fmt.Printf("intersection |A∩B| = %8d  (%v)\n",
		len(shared), time.Since(start).Round(time.Millisecond))

	// Non-mutating difference: the same A \ B as RemoveBatch, but the
	// tree keeps holding A — one tree answers both queries.
	start = time.Now()
	rest := inter.Difference(b)
	fmt.Printf("difference   |A\\B| = %8d  (non-mutating, %v)\n",
		len(rest), time.Since(start).Round(time.Millisecond))
	if len(rest) != diff.Len() {
		panic("Difference disagrees with RemoveBatch")
	}

	// Sanity: |A∪B| = |A| + |B| − |A∩B|, and Intersection/Difference
	// partition A.
	if union.Len() != len(a)+len(b)-len(shared) {
		panic("inclusion-exclusion violated")
	}
	if len(shared)+len(rest) != inter.Len() {
		panic("intersection + difference must partition A")
	}
	fmt.Println("inclusion-exclusion holds ✓")
}
