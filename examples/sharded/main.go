// Sharded: a live comparison of the two concurrent frontends — one
// combiner (pbist.Concurrent) versus a sharded super-tree
// (pbist.Sharded) at 4 and 16 shards — under the workload sharding is
// built for: many clients submitting small write-heavy batches. One
// combiner serializes all epochs; N shards run N epochs at once, so
// throughput climbs until the shared worker pool saturates.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

const (
	clients   = 16
	batches   = 300 // mini-batches per client
	batchSize = 64  // keys per mini-batch
	keySpace  = 1 << 22
	preload   = 1 << 20
)

// frontend is the slice of the two APIs the workload needs.
type frontend interface {
	PutBatch(keys []int64, vals []uint64) int
	GetBatch(keys []int64) ([]uint64, []bool)
	Len() int
	Close()
}

func main() {
	fmt.Printf("clients=%d, %d mini-batches x %d keys each (75%% put / 25%% get), GOMAXPROCS=%d\n\n",
		clients, batches, batchSize, runtime.GOMAXPROCS(0))

	seedK := dist.UniformSet(dist.NewRNG(1), preload, 0, keySpace)
	seedV := make([]uint64, len(seedK))
	for i := range seedV {
		seedV[i] = uint64(seedK[i])
	}

	configs := []struct {
		name string
		make func() frontend
	}{
		{"Concurrent (1 combiner)", func() frontend {
			return pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{}, seedK, seedV)
		}},
		{"Sharded, 4 shards", func() frontend {
			return pbist.NewShardedFromItems(pbist.ShardedOptions{Shards: 4}, seedK, seedV)
		}},
		{"Sharded, 16 shards", func() frontend {
			return pbist.NewShardedFromItems(pbist.ShardedOptions{Shards: 16}, seedK, seedV)
		}},
	}

	var base float64
	for i, cfg := range configs {
		f := cfg.make()
		mops := drive(f)
		f.Close()
		if i == 0 {
			base = mops
		}
		speedup := mops / base
		bar := strings.Repeat("#", int(speedup*4+0.5))
		fmt.Printf("%-26s %7.2f Mkeys/s  %.2fx %s\n", cfg.name, mops, speedup, bar)
	}
}

// drive runs the client fleet against f and reports keys/s in millions.
func drive(f frontend) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := dist.NewRNG(uint64(id)*0x9e37 + 7)
			keys := make([]int64, batchSize)
			vals := make([]uint64, batchSize)
			for b := 0; b < batches; b++ {
				for i := range keys {
					keys[i] = r.Int63n(keySpace)
					vals[i] = r.Uint64()
				}
				if b%4 == 3 {
					f.GetBatch(keys)
				} else {
					f.PutBatch(keys, vals)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalKeys := float64(clients) * batches * batchSize
	return totalKeys / elapsed.Seconds() / 1e6
}
