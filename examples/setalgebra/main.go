// Setalgebra: whole-tree set operations. Where examples/setops
// combines a tree with a key slice, every operand here is itself a
// tree — two subscriber sets and a revenue map are combined with
// Union, Intersect, DiffTree, SymDiff, and partitioned with
// Split/Join, all non-mutating and parallel end to end (flatten both
// operands, shard-parallel merge, ideal rebuild).
//
//	go run ./examples/setalgebra
package main

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

func main() {
	const (
		nA = 2_000_000 // subscribers of service A
		nB = 1_500_000 // subscribers of service B
	)
	r := dist.NewRNG(7)
	aIDs := dist.UniformSet(r, nA, 0, 1<<33)
	bIDs := dist.UniformSet(r, nB, 0, 1<<33)

	opts := pbist.Options{AssumeSorted: true} // generators emit sorted sets
	a := pbist.NewFromKeys(opts, aIDs)
	b := pbist.NewFromKeys(opts, bIDs)
	fmt.Printf("A: %d ids, B: %d ids\n\n", a.Len(), b.Len())

	timed := func(name string, f func() int) {
		start := time.Now()
		n := f()
		fmt.Printf("%-22s %8d ids  (%v)\n", name, n, time.Since(start).Round(time.Millisecond))
	}

	// Every operation returns a NEW tree; a and b are reusable after.
	timed("union  A ∪ B", func() int { return a.Union(b).Len() })
	timed("intersect  A ∩ B", func() int { return a.Intersect(b).Len() })
	timed("difference  A \\ B", func() int { return a.DiffTree(b).Len() })
	timed("symdiff  A △ B", func() int { return a.SymDiff(b).Len() })

	// Split/Join: partition the union at a pivot, process halves
	// independently, and glue them back.
	u := a.Union(b)
	pivot := int64(1) << 32
	start := time.Now()
	low, high := u.Split(pivot)
	rejoined := low.Join(high)
	fmt.Printf("\nsplit at %d: %d below, %d at-or-above; rejoined %d (%v)\n",
		pivot, low.Len(), high.Len(), rejoined.Len(), time.Since(start).Round(time.Millisecond))
	if rejoined.Len() != u.Len() {
		panic("Split+Join lost keys")
	}

	// The map view carries values through the same operations with an
	// explicit merge policy: combine two monthly revenue maps, letting
	// the newer month win on subscribers present in both.
	may := pbist.NewMapFromItems(opts, aIDs[:4], []int64{10, 20, 30, 40})
	june := pbist.NewMapFromItems(opts, aIDs[2:6], []int64{31, 41, 51, 61})
	merged := may.Union(june, pbist.RightWins)
	fmt.Printf("\nrevenue maps: may %d + june %d -> %d (RightWins: june overwrites %d shared)\n",
		may.Len(), june.Len(), merged.Len(), may.Len()+june.Len()-merged.Len())
}
