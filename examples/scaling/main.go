// Scaling: a compact live rendition of the paper's Fig. 17 — batched
// operation latency versus worker count on one machine, with ASCII
// speedup bars. Run cmd/pbench for the full experiment harness.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	w := bench.Workload{N: 2_000_000, M: 500_000}
	maxW := runtime.GOMAXPROCS(0)
	var workers []int
	for p := 1; p <= maxW; p *= 2 {
		workers = append(workers, p)
	}
	if workers[len(workers)-1] != maxW {
		workers = append(workers, maxW)
	}

	fmt.Printf("tree n≈%d, batch m=%d, workers up to %d\n\n", w.N, w.M, maxW)
	rows := bench.RunFig17(w, core.Config{}, workers, 2)

	fmt.Printf("%-8s %-28s %-28s %-28s\n", "workers", "contains", "insert", "remove")
	for _, r := range rows {
		fmt.Printf("%-8d %-28s %-28s %-28s\n", r.Workers,
			cell(r.ContainsMS, r.SpeedupC),
			cell(r.InsertMS, r.SpeedupI),
			cell(r.RemoveMS, r.SpeedupR))
	}
}

func cell(ms, speedup float64) string {
	bar := strings.Repeat("#", int(speedup+0.5))
	return fmt.Sprintf("%7.1fms %-5s %s", ms, fmt.Sprintf("%.1fx", speedup), bar)
}
