// Indexlab: a side-by-side comparison of the array-search machinery of
// §3.2 — the ID-array interpolation index with linear refinement
// (Find), exponential (galloping) refinement, a learned linear-model
// index (the §3.2 nod to Kraska et al.), on-the-fly interpolation, and
// plain binary search — on a smooth array, a clustered array, and an
// adversarial exponentially spaced array built to defeat
// interpolation (its keys are maximally far from linear).
//
//	go run ./examples/indexlab
package main

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/iindex"
)

const (
	arraySize = 1 << 20
	numProbes = 1 << 20
)

func main() {
	r := dist.NewRNG(1234)
	smooth := dist.UniformSet(r, arraySize, 0, 1<<40)
	clustered := dist.Clustered(r, arraySize, 256, 0, 1<<40)
	adversarial := dist.ExpSpaced(r, arraySize, 0, 1<<40)
	probes := dist.UniformSet(r, numProbes, 0, 1<<40)

	for _, data := range []struct {
		name string
		rep  []int64
	}{
		{"smooth (uniform)", smooth},
		{"clustered (non-smooth)", clustered},
		{"adversarial (exp-spaced)", adversarial},
	} {
		rep := data.rep
		ix := iindex.Build(rep, 0)
		lm := iindex.BuildLinear(rep)
		fmt.Printf("\n%s, %d keys (learned-model max error: %d positions)\n",
			data.name, len(rep), lm.MaxErr())

		measure("ID index + linear walk ", probes, func(x int64) (int, bool) {
			return iindex.Find(rep, &ix, x)
		})
		measure("ID index + exponential ", probes, func(x int64) (int, bool) {
			return iindex.FindExponential(rep, &ix, x)
		})
		measure("learned linear model   ", probes, func(x int64) (int, bool) {
			return iindex.FindLinear(rep, &lm, x)
		})
		measure("on-the-fly interpolation", probes, func(x int64) (int, bool) {
			return iindex.InterpolationSearch(rep, x)
		})
		measure("binary search           ", probes, func(x int64) (int, bool) {
			lo, hi := 0, len(rep)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if rep[mid] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo, lo < len(rep) && rep[lo] == x
		})
	}
}

// measure times fn over all probes and cross-checks a sampled subset
// against binary-search ground truth.
func measure(name string, probes []int64, fn func(int64) (int, bool)) {
	var sink int
	start := time.Now()
	for _, x := range probes {
		pos, _ := fn(x)
		sink += pos
	}
	elapsed := time.Since(start)
	fmt.Printf("  %s %7.1f ns/probe  (checksum %d)\n",
		name, float64(elapsed.Nanoseconds())/float64(len(probes)), sink%1000)
}
