// Analytics: a stream-filtering workload. A service keeps a large set
// of opted-in user IDs and, for every incoming event mini-batch, must
// decide which events belong to opted-in users. The same job is run on
// the parallel-batched IST and on a red-black tree (the std::set
// equivalent) to show the throughput gap the paper's §9 reports.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/rbtree"
	"repro/pbist"
)

const (
	optedIn    = 4_000_000 // stored user IDs
	batchSize  = 200_000   // events per mini-batch
	numBatches = 10
	idSpan     = int64(8_000_000) // ID universe: 50% hit rate, smooth
)

func main() {
	r := dist.NewRNG(7)
	users := dist.HalfDense(r, 0, idSpan, 0.5)
	fmt.Printf("opted-in users: %d\n", len(users))

	tree := pbist.NewFromKeys(pbist.Options{AssumeSorted: true}, users)
	rb := rbtree.New[int64]()
	for _, u := range users {
		rb.Insert(u)
	}

	batches := make([][]int64, numBatches)
	for i := range batches {
		batches[i] = dist.UniformSet(r, batchSize, 0, idSpan)
	}

	// PB-IST: one batched membership query per mini-batch.
	start := time.Now()
	istMatches := 0
	for _, b := range batches {
		for _, ok := range tree.ContainsBatch(b) {
			if ok {
				istMatches++
			}
		}
	}
	istTime := time.Since(start)

	// Red-black tree: the classic one-lookup-per-event loop.
	start = time.Now()
	rbMatches := 0
	for _, b := range batches {
		for _, id := range b {
			if rb.Contains(id) {
				rbMatches++
			}
		}
	}
	rbTime := time.Since(start)

	if istMatches != rbMatches {
		panic("filter results disagree")
	}
	events := batchSize * numBatches
	fmt.Printf("events filtered: %d, matches: %d\n", events, istMatches)
	fmt.Printf("pb-ist (batched, %d workers): %8v  (%.1f Mevents/s)\n",
		tree.Workers(), istTime.Round(time.Millisecond),
		float64(events)/istTime.Seconds()/1e6)
	fmt.Printf("red-black tree (scalar):      %8v  (%.1f Mevents/s)\n",
		rbTime.Round(time.Millisecond),
		float64(events)/rbTime.Seconds()/1e6)
	fmt.Printf("speedup: %.1fx\n", float64(rbTime)/float64(istTime))
}
