package pbist

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentObservability drives a metrics-enabled Concurrent hard
// enough to exercise every layer of the pipeline — combining epochs,
// batched traversals, subtree rebuilds — and asserts the registry saw
// all of it: epoch and op counters, the client-observed latency
// histogram, rebuild events from the core, and epoch traces whose
// named phases decompose the combining loop.
func TestConcurrentObservability(t *testing.T) {
	reg := NewMetrics()
	c := NewConcurrent[int64, uint64](ConcurrentOptions{
		Options:    Options{Metrics: reg},
		TraceDepth: 64,
	})
	defer c.Close()

	// Concurrent single-key traffic (forms multi-op epochs) plus
	// batched churn (forces C-factor rebuilds inside the engine).
	const clients = 4
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := int64(g*1000 + i)
				c.Put(k, uint64(i))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	for round := 0; round < 8; round++ {
		keys := make([]int64, 4000)
		vals := make([]uint64, len(keys))
		for i := range keys {
			keys[i] = int64(round*100 + i*7)
			vals[i] = uint64(i)
		}
		c.PutBatch(keys, vals)
	}
	c.Flush()

	snap := reg.Snapshot()
	if snap.Counters["combine.epochs"] <= 0 {
		t.Fatalf("combine.epochs = %d, want > 0", snap.Counters["combine.epochs"])
	}
	if ops := snap.Counters["combine.ops"]; ops <= 0 {
		t.Fatalf("combine.ops = %d, want > 0", ops)
	}
	lat, ok := snap.Histograms["combine.op_latency_ns"]
	if !ok || lat.Count != snap.Counters["combine.ops"] {
		t.Fatalf("op_latency count = %+v, want one sample per op (%d)", lat, snap.Counters["combine.ops"])
	}
	if lat.P50 <= 0 || lat.P999 < lat.P50 {
		t.Fatalf("latency quantiles implausible: p50=%d p999=%d", lat.P50, lat.P999)
	}
	if snap.Counters["core.rebuild.count"] <= 0 {
		t.Fatalf("core.rebuild.count = %d after churn, want > 0", snap.Counters["core.rebuild.count"])
	}
	if d := snap.Histograms["core.rebuild.duration_ns"]; d.Count != snap.Counters["core.rebuild.count"] {
		t.Fatalf("rebuild duration samples %d != rebuild count %d", d.Count, snap.Counters["core.rebuild.count"])
	}

	traces := c.Trace(0)
	if len(traces) == 0 {
		t.Fatal("Trace returned no epochs with Metrics and TraceDepth set")
	}
	for _, tr := range traces {
		if len(tr.Phases()) < 4 {
			t.Fatalf("epoch %d has %d phases, want >= 4", tr.Seq, len(tr.Phases()))
		}
		if tr.Ops <= 0 || tr.Wall < 0 {
			t.Fatalf("epoch %d implausible: %+v", tr.Seq, tr)
		}
	}

	// The snapshot must round-trip through JSON (the export contract
	// of pbench -latency and the expvar endpoint).
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded MetricsSnapshot
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["combine.epochs"] != snap.Counters["combine.epochs"] {
		t.Fatalf("JSON round trip lost combine.epochs")
	}
}

// TestShardedObservability checks the scatter-gather layer's metrics:
// split/stitch timing histograms fill on batched traffic, the Bloom
// filter short-circuit counters fill on point misses, and Trace merges
// per-shard epoch traces tagged with their shard index.
func TestShardedObservability(t *testing.T) {
	reg := NewMetrics()
	base := make([]int64, 5000)
	vals := make([]uint64, len(base))
	for i := range base {
		base[i] = int64(i * 2) // even keys present
		vals[i] = uint64(i)
	}
	s := NewShardedFromItems[int64, uint64](ShardedOptions{
		ConcurrentOptions: ConcurrentOptions{
			Options:    Options{Metrics: reg, AssumeSorted: true},
			TraceDepth: 16,
		},
		Shards:      4,
		PointFilter: true,
	}, base, vals)
	defer s.Close()

	// Batched reads exercise scatter/stitch; point misses exercise the
	// filters (odd keys were never inserted, so most short-circuit).
	queries := make([]int64, 2000)
	for i := range queries {
		queries[i] = int64(i)
	}
	s.GetBatch(queries)
	shorts := 0
	for i := 0; i < 2000; i++ {
		if _, ok := s.Get(int64(2*i + 1)); ok {
			t.Fatalf("odd key %d unexpectedly present", 2*i+1)
		}
	}
	s.Flush()

	snap := reg.Snapshot()
	if sc := snap.Histograms["shard.scatter_ns"]; sc.Count <= 0 {
		t.Fatalf("shard.scatter_ns count = %d, want > 0", sc.Count)
	}
	if st := snap.Histograms["shard.stitch_ns"]; st.Count <= 0 {
		t.Fatalf("shard.stitch_ns count = %d, want > 0", st.Count)
	}
	if sh := snap.Counters["shard.filter.short_circuits"]; sh <= 0 {
		t.Fatalf("shard.filter.short_circuits = %d, want > 0 (2000 guaranteed misses)", sh)
	} else {
		shorts = int(sh)
	}
	if stats := s.Stats(); int64(shorts) != stats.FilterShortCircuits {
		t.Fatalf("registry shorts %d != Stats().FilterShortCircuits %d", shorts, stats.FilterShortCircuits)
	}

	traces := s.Trace(0)
	if len(traces) == 0 {
		t.Fatal("Sharded.Trace returned no epochs with Metrics set")
	}
	for _, tr := range traces {
		if tr.Shard < 0 || tr.Shard >= 4 {
			t.Fatalf("trace carries out-of-range shard %d", tr.Shard)
		}
	}
}

// TestTraceDisabledWithoutMetrics pins the zero-cost default: no
// Metrics, no TraceDepth — Trace must return nil on both frontends.
func TestTraceDisabledWithoutMetrics(t *testing.T) {
	c := NewConcurrent[int64, uint64](ConcurrentOptions{})
	c.Put(1, 1)
	c.Flush()
	if tr := c.Trace(0); tr != nil {
		t.Fatalf("Concurrent.Trace = %v without metrics, want nil", tr)
	}
	c.Close()

	s := NewSharded[int64, uint64](ShardedOptions{Shards: 2})
	s.Put(1, 1)
	s.Flush()
	if tr := s.Trace(0); tr != nil {
		t.Fatalf("Sharded.Trace = %v without metrics, want nil", tr)
	}
	s.Close()
}
