package pbist

import (
	"iter"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/shard"
)

// PartitionPolicy selects how Sharded assigns keys to shards.
type PartitionPolicy int8

const (
	// PartitionDefault picks range partitioning wherever boundaries
	// are derivable (NewShardedFromItems fits quantile boundaries,
	// NewShardedRange takes an explicit span) and hash partitioning
	// from the boundless NewSharded constructor.
	PartitionDefault PartitionPolicy = iota
	// PartitionRange assigns each shard a contiguous key interval.
	// Shard order then refines key order, so Range, Ascend, Keys,
	// Items, and SnapshotMap concatenate per-shard results instead of
	// merging. Balance is only as good as the boundaries; skewed
	// inserts outside the fitted span pile onto the edge shards.
	PartitionRange
	// PartitionHash assigns shards by a mixed 64-bit hash of the key:
	// balance is immune to key-space skew, but ordered reads pay an
	// N-way merge.
	PartitionHash
)

// ShardedOptions configures a Sharded frontend: the per-shard engine
// and combiner settings (ConcurrentOptions) plus the shard layout.
// The zero value gives sensible defaults.
type ShardedOptions struct {
	ConcurrentOptions
	// Shards is the number of independent trees (each with its own
	// combiner goroutine). Default 8.
	Shards int
	// Partition selects the key-to-shard policy; see the constants.
	Partition PartitionPolicy
	// PointFilter enables a per-shard Bloom filter that answers
	// point Get/Contains misses without a combiner round trip: keys
	// are added on every insert (never removed), so a filter miss
	// proves the key was never inserted into that shard. Worth it for
	// miss-heavy point workloads; off by default.
	PointFilter bool
	// FilterBits is the Bloom filter size per shard in bits (rounded
	// up to a power of two). Default 1<<21 (256 KiB per shard);
	// size at roughly 8 bits per expected key per shard.
	FilterBits int
	// PrivateArenas gives every shard tree and combiner its own
	// scratch arena instead of one shared set of free lists. The
	// default (false) shares one size-classed arena across the whole
	// group, bounding total retained scratch by a single arena's
	// structural cap regardless of shard count; set this only for
	// isolation experiments and allocation profiling.
	PrivateArenas bool
}

func (o ShardedOptions) withDefaults() ShardedOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.FilterBits <= 0 {
		o.FilterBits = 1 << 21
	}
	return o
}

// Sharded is the scatter-gather frontend: one facade over N
// independent core trees, each serving its own combiner goroutine,
// all sharing one worker pool and (by default) one scratch arena. A
// partition policy routes every key to exactly one shard, so point
// operations go straight to the owning shard's combiner, batched
// operations are split into per-shard sub-batches that execute
// concurrently across shards — N epochs in flight instead of the one
// epoch at a time a single Concurrent sustains — and the per-shard
// results are stitched back in input order.
//
// Consistency: each key lives on exactly one shard and each shard is
// a linearizable Concurrent engine, so ALL operations on a single key
// are linearizable, and single-shard batches are atomic. A batch that
// spans shards is atomic per shard but not across shards: another
// client can observe one shard's half of the batch before the other
// shard's half lands (the same caveat applies to Range). Len, Keys,
// Items, Snapshot, and SnapshotMap are mutually atomic whole-structure
// reads: each one captures the published versions of all N shard trees
// at a single instant (see collectCut), so two of them taken
// back-to-back can never disagree about which writes they reflect.
// Workloads that need cross-key atomicity for writes should still use
// Concurrent; see the decision table in the README.
//
// GetFast and ContainsFast serve wait-free point reads from the owning
// shard's published version, linearizable with the shard's combined
// operations exactly as on Concurrent.
//
// Create one with NewSharded, NewShardedRange, or
// NewShardedFromItems; call Close when done. Operations on a closed
// Sharded panic, except the version readers (GetFast, ContainsFast,
// Len, Keys, Items, Snapshot, SnapshotMap), which keep serving the
// final published state.
type Sharded[K Key, V any] struct {
	part shard.Partitioner[K]
	cbs  []*combine.Combiner[K, V]
	// trees[i] is the engine behind cbs[i], retained for the version
	// read paths: per-shard wait-free point reads (GetFast) and the
	// cross-shard atomic cut (collectCut) both read the versions the
	// shard's combiner publishes, never the combining queue.
	trees   []*core.Tree[K, V]
	filters []*shard.Bloom // per shard; nil when PointFilter is off
	pool    *parallel.Pool
	opts    ShardedOptions

	arena *core.SharedArena[K, V] // nil under PrivateArenas
	cscr  *combine.Scratch[K, V]  // nil under PrivateArenas
	short atomic.Int64            // point lookups answered by a filter
	obs   *shard.Obs              // nil unless Options.Metrics was set
}

// NewSharded returns an empty sharded frontend. With no data and no
// span to fit range boundaries to, PartitionDefault selects hash
// partitioning; PartitionRange panics here — use NewShardedRange
// (explicit span) or NewShardedFromItems (fitted quantiles) instead.
func NewSharded[K Key, V any](opts ShardedOptions) *Sharded[K, V] {
	opts = opts.withDefaults()
	if opts.Partition == PartitionRange {
		panic("pbist: NewSharded cannot derive range boundaries; use NewShardedRange or NewShardedFromItems")
	}
	return newSharded[K, V](opts, shard.NewHashed[K](opts.Shards), nil, nil)
}

// NewShardedRange returns an empty sharded frontend that partitions
// [lo, hi] into equal-width key intervals — the right construction
// when keys are roughly uniform over a known span. Keys outside the
// span are owned by the edge shards. Panics if opts.Partition is
// PartitionHash (the explicit span would be silently ignored).
func NewShardedRange[K Key, V any](opts ShardedOptions, lo, hi K) *Sharded[K, V] {
	opts = opts.withDefaults()
	if opts.Partition == PartitionHash {
		panic("pbist: NewShardedRange conflicts with PartitionHash; use NewSharded")
	}
	return newSharded[K, V](opts, shard.NewRangeUniform(opts.Shards, lo, hi), nil, nil)
}

// NewShardedFromItems returns a sharded frontend bulk-loaded with the
// (keys[i], vals[i]) pairs (last occurrence of a duplicated key wins,
// as in NewMapFromItems; neither slice is retained). Under the
// default range policy the shard boundaries are the quantiles of the
// loaded keys, so every shard starts with an equal share whatever the
// distribution.
func NewShardedFromItems[K Key, V any](opts ShardedOptions, keys []K, vals []V) *Sharded[K, V] {
	if len(keys) != len(vals) {
		panic("pbist: NewShardedFromItems keys/vals length mismatch")
	}
	opts = opts.withDefaults()
	m := &Map[K, V]{}
	m.pool = opts.pool()
	m.assumeSorted = opts.AssumeSorted
	nk, nv := m.normalizePairs(keys, vals)
	var p shard.Partitioner[K]
	if opts.Partition == PartitionHash {
		p = shard.NewHashed[K](opts.Shards)
	} else {
		p = shard.NewRangeQuantiles(opts.Shards, nk)
	}
	return newSharded(opts, p, nk, nv)
}

// newSharded builds the shard group: one core tree per shard loaded
// with its slice of the (optional) initial items, one combiner per
// tree, one pool for everything, and — unless PrivateArenas — one
// shared tree arena plus one shared combiner scratch for the group.
func newSharded[K Key, V any](opts ShardedOptions, p shard.Partitioner[K], keys []K, vals []V) *Sharded[K, V] {
	pool := opts.pool()
	s := &Sharded[K, V]{
		part:  p,
		cbs:   make([]*combine.Combiner[K, V], p.N()),
		trees: make([]*core.Tree[K, V], p.N()),
		pool:  pool,
		opts:  opts,
		obs:   shard.NewObs(opts.Metrics),
	}
	reuseOff := opts.ReuseBuffers == ReuseOff
	if !opts.PrivateArenas {
		s.arena = core.NewSharedArena[K, V](reuseOff)
		s.cscr = combine.NewScratch[K, V](reuseOff)
	}
	if opts.PointFilter {
		s.filters = make([]*shard.Bloom, p.N())
		for i := range s.filters {
			s.filters[i] = shard.NewBloom(opts.FilterBits)
		}
	}
	var parts [][]K
	var vparts [][]V
	if keys != nil {
		parts, vparts, _ = shard.SplitPairs(p, keys, vals)
	}
	cfg := opts.coreConfig()
	copts := opts.combineOptions()
	for i := range s.cbs {
		var t *core.Tree[K, V]
		var pk []K
		var pv []V
		if parts != nil {
			pk, pv = parts[i], vparts[i]
		}
		if s.arena != nil {
			t = core.NewFromSortedKVWithArena(cfg, pool, s.arena, pk, pv)
		} else {
			t = core.NewFromSortedKV(cfg, pool, pk, pv)
		}
		if s.filters != nil {
			for _, k := range pk {
				s.filters[i].Add(shard.HashKey(k))
			}
		}
		// Publishing must be on before the combiner exists: from the
		// first epoch, every epoch ends with a version publish the read
		// paths below depend on.
		t.EnablePublish()
		s.trees[i] = t
		// Each shard's combiner tags its epoch traces with the shard
		// index, so a merged Trace attributes epochs to shards.
		shOpts := copts
		shOpts.ID = i
		s.cbs[i] = combine.NewShared(combine.Engine[K, V](t), pool, shOpts, s.cscr)
	}
	return s
}

// checkSharded panics when an operation hits a closed Sharded.
func checkSharded(err error) {
	if err != nil {
		panic("pbist: operation on closed Sharded")
	}
}

// firstError retains the first error reported by a group of concurrent
// shard goroutines. set installs with CompareAndSwap, so the winner is
// the first reporter — a plain Store would let every later failure
// overwrite the earlier one, turning "first error" into "last error"
// when several shards fail in the same scatter.
type firstError struct {
	p atomic.Pointer[error]
}

func (f *firstError) set(err error) {
	f.p.CompareAndSwap(nil, &err)
}

// check panics via checkSharded when any goroutine reported an error.
// Call it only after the group has been joined.
func (f *firstError) check() {
	if e := f.p.Load(); e != nil {
		checkSharded(*e)
	}
}

// owner returns the combiner serving key.
func (s *Sharded[K, V]) owner(key K) *combine.Combiner[K, V] {
	return s.cbs[s.part.Shard(key)]
}

// filterMiss reports whether the owning shard's filter proves key was
// never inserted, letting a point lookup answer "absent" without a
// combiner round trip. Always false when PointFilter is off.
func (s *Sharded[K, V]) filterMiss(sh int, key K) bool {
	if s.filters == nil {
		return false
	}
	if s.filters[sh].MayContain(shard.HashKey(key)) {
		if s.obs != nil {
			s.obs.FilterPass.Add(1)
		}
		return false
	}
	s.short.Add(1)
	if s.obs != nil {
		s.obs.FilterShort.Add(1)
	}
	return true
}

// Get returns the value stored under key; ok is false when absent.
func (s *Sharded[K, V]) Get(key K) (val V, ok bool) {
	sh := s.part.Shard(key)
	if s.filterMiss(sh, key) {
		return val, false
	}
	val, ok, err := s.cbs[sh].Get(key)
	checkSharded(err)
	return val, ok
}

// Contains reports whether key is present.
func (s *Sharded[K, V]) Contains(key K) bool {
	sh := s.part.Shard(key)
	if s.filterMiss(sh, key) {
		return false
	}
	ok, err := s.cbs[sh].Contains(key)
	checkSharded(err)
	return ok
}

// GetFast returns the value stored under key by reading the owning
// shard's latest published version — the wait-free fast path of
// Concurrent.GetFast routed through the partitioner (and through the
// shard's Bloom filter when PointFilter is on). Linearizable with the
// shard's combined operations: every completed write to key is
// visible. Never panics on a closed Sharded.
func (s *Sharded[K, V]) GetFast(key K) (val V, ok bool) {
	sh := s.part.Shard(key)
	if s.filterMiss(sh, key) {
		return val, false
	}
	return s.trees[sh].SnapshotGet(key)
}

// ContainsFast reports whether key is present in the owning shard's
// latest published version; the membership-only form of GetFast.
func (s *Sharded[K, V]) ContainsFast(key K) bool {
	sh := s.part.Shard(key)
	if s.filterMiss(sh, key) {
		return false
	}
	return s.trees[sh].SnapshotContains(key)
}

// Put stores val under key, inserting or overwriting; it reports
// whether the key was absent at the operation's linearization point.
func (s *Sharded[K, V]) Put(key K, val V) bool {
	sh := s.part.Shard(key)
	if s.filters != nil {
		// Before the submit: once Put returns, every later point
		// lookup must see the filter bit.
		s.filters[sh].Add(shard.HashKey(key))
	}
	inserted, err := s.cbs[sh].Put(key, val)
	checkSharded(err)
	return inserted
}

// Delete removes key, reporting whether it was present. Deletes do
// not clear filter bits (a stale positive only costs the round trip
// a filterless lookup always pays).
func (s *Sharded[K, V]) Delete(key K) bool {
	removed, err := s.owner(key).Delete(key)
	checkSharded(err)
	return removed
}

// forEachShard runs f concurrently for every shard with a non-empty
// sub-batch and waits for all of them: the scatter half of every
// batched operation. Sub-batches execute as concurrent epochs on
// independent combiners — the parallelism a single Concurrent cannot
// reach — while the stitch back into input order happens on each
// shard's gather goroutine (distinct shards never share an input
// position, so the scatters are race-free).
func forEachShard[K Key](parts [][]K, f func(sh int)) {
	live := 0
	last := -1
	for sh, p := range parts {
		if len(p) > 0 {
			live++
			last = sh
		}
	}
	if live == 0 {
		return
	}
	if live == 1 {
		f(last) // single-shard batch: no goroutine churn
		return
	}
	var wg sync.WaitGroup
	for sh, p := range parts {
		if len(p) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			f(sh)
		}(sh)
	}
	wg.Wait()
}

// GetBatch fetches the value for every element of keys: vals[i] and
// found[i] answer keys[i], whatever the input order or duplication.
// The batch is atomic per shard, not across shards.
func (s *Sharded[K, V]) GetBatch(keys []K) (vals []V, found []bool) {
	if len(keys) == 0 {
		return nil, nil
	}
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	parts, pos := shard.Split(s.part, keys)
	if s.obs != nil {
		s.obs.Scatter.RecordSince(t0)
	}
	vals = make([]V, len(keys))
	found = make([]bool, len(keys))
	var ferr firstError
	forEachShard(parts, func(sh int) {
		vs, fs, err := s.cbs[sh].GetBatch(parts[sh])
		if err != nil {
			ferr.set(err)
			return
		}
		var t1 time.Time
		if s.obs != nil {
			t1 = time.Now()
		}
		shard.StitchOne(vals, vs, pos[sh])
		shard.StitchOne(found, fs, pos[sh])
		if s.obs != nil {
			s.obs.Stitch.RecordSince(t1)
		}
	})
	ferr.check()
	return vals, found
}

// ContainsBatch reports membership for every element of keys,
// positionally. Atomic per shard, not across shards.
func (s *Sharded[K, V]) ContainsBatch(keys []K) []bool {
	if len(keys) == 0 {
		return nil
	}
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	parts, pos := shard.Split(s.part, keys)
	if s.obs != nil {
		s.obs.Scatter.RecordSince(t0)
	}
	found := make([]bool, len(keys))
	var ferr firstError
	forEachShard(parts, func(sh int) {
		fs, err := s.cbs[sh].ContainsBatch(parts[sh])
		if err != nil {
			ferr.set(err)
			return
		}
		var t1 time.Time
		if s.obs != nil {
			t1 = time.Now()
		}
		shard.StitchOne(found, fs, pos[sh])
		if s.obs != nil {
			s.obs.Stitch.RecordSince(t1)
		}
	})
	ferr.check()
	return found
}

// PutBatch upserts every (keys[i], vals[i]) pair, returning how many
// keys were newly inserted. Duplicate keys resolve to the last
// occurrence, as in Map.PutBatch (duplicates land on one shard, whose
// combiner replays them in position order). Atomic per shard, not
// across shards.
func (s *Sharded[K, V]) PutBatch(keys []K, vals []V) int {
	if len(keys) != len(vals) {
		panic("pbist: PutBatch keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return 0
	}
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	parts, vparts, _ := shard.SplitPairs(s.part, keys, vals)
	if s.obs != nil {
		s.obs.Scatter.RecordSince(t0)
	}
	var inserted atomic.Int64
	var ferr firstError
	forEachShard(parts, func(sh int) {
		if s.filters != nil {
			for _, k := range parts[sh] {
				s.filters[sh].Add(shard.HashKey(k))
			}
		}
		n, err := s.cbs[sh].PutBatch(parts[sh], vparts[sh])
		if err != nil {
			ferr.set(err)
			return
		}
		inserted.Add(int64(n))
	})
	ferr.check()
	return int(inserted.Load())
}

// DeleteBatch removes every element of keys, returning how many were
// present. Atomic per shard, not across shards.
func (s *Sharded[K, V]) DeleteBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	parts, _ := shard.Split(s.part, keys)
	if s.obs != nil {
		s.obs.Scatter.RecordSince(t0)
	}
	var removed atomic.Int64
	var ferr firstError
	forEachShard(parts, func(sh int) {
		n, err := s.cbs[sh].DeleteBatch(parts[sh])
		if err != nil {
			ferr.set(err)
			return
		}
		removed.Add(int64(n))
	})
	ferr.check()
	return int(removed.Load())
}

// collectCut captures a mutually atomic cut across all shards: it pins
// every shard tree as a reader, then loads each tree's published
// version repeatedly until one full pass observes no change against
// the previous pass. Shard combiners publish versions in sequence, so
// a stable double-collect proves no shard published between the first
// and last load of the final pass — the N version pointers coexisted
// at one instant, which is exactly the cross-shard atomicity the old
// per-shard fences could not give. The returned release must be called
// once every walk over the versions' shared storage is done; until
// then the pins keep retired chunk storage out of the recycler.
//
// The retry loop terminates quickly in practice: a pass takes
// nanoseconds per shard while a publish happens at most once per
// combining epoch, so consecutive conflicting passes require a
// sustained write storm on N distinct combiners, and each retry is
// counted (shard.cut.retries) so a pathological workload is visible.
func (s *Sharded[K, V]) collectCut() (vers []*core.Version[K, V], release func()) {
	pins := make([]core.ReaderPin, len(s.trees))
	for i, t := range s.trees {
		pins[i] = t.PinReader()
	}
	release = func() {
		for _, p := range pins {
			p.Release()
		}
	}
	vers = make([]*core.Version[K, V], len(s.trees))
	for i, t := range s.trees {
		vers[i] = t.CurrentVersion()
	}
	for {
		stable := true
		for i, t := range s.trees {
			if v := t.CurrentVersion(); v != vers[i] {
				vers[i] = v
				stable = false
			}
		}
		if stable {
			return vers, release
		}
		if s.obs != nil {
			s.obs.CutRetries.Add(1)
		}
	}
}

// mergeShardKV combines per-shard sorted sequences into one globally
// sorted sequence: a concatenation under an order-preserving
// partitioner, an N-way merge (folded pairwise on the shared pool)
// under hashing. Shard key sets are disjoint, so UnionKV never has to
// pick a winner.
func (s *Sharded[K, V]) mergeShardKV(ks [][]K, vs [][]V) ([]K, []V) {
	if s.part.Ordered() {
		total := 0
		for _, k := range ks {
			total += len(k)
		}
		outK := make([]K, 0, total)
		outV := make([]V, 0, total)
		for i := range ks {
			outK = append(outK, ks[i]...)
			outV = append(outV, vs[i]...)
		}
		return outK, outV
	}
	var outK []K
	var outV []V
	for i := range ks {
		if len(ks[i]) == 0 {
			continue
		}
		if outK == nil {
			outK, outV = ks[i], vs[i]
			continue
		}
		outK, outV = parallel.UnionKV(s.pool, outK, outV, ks[i], vs[i])
	}
	return outK, outV
}

// Len reports the number of keys stored: the sum of the per-shard
// version sizes over one atomic cut, so the count is consistent — it
// never mixes one shard's state before a cross-shard batch with
// another shard's state after it, as the old per-shard fences could.
// Wait-free apart from cut retries; no combiner round trips.
func (s *Sharded[K, V]) Len() int {
	vers, release := s.collectCut()
	release() // sizes live in the version headers, not chunk storage
	n := 0
	for _, v := range vers {
		n += v.Len()
	}
	return n
}

// Flush blocks until every operation submitted before it has executed
// on every shard.
func (s *Sharded[K, V]) Flush() {
	var wg sync.WaitGroup
	var ferr firstError
	for _, cb := range s.cbs {
		wg.Add(1)
		go func(cb *combine.Combiner[K, V]) {
			defer wg.Done()
			if err := cb.Flush(); err != nil {
				ferr.set(err)
			}
		}(cb)
	}
	wg.Wait()
	ferr.check()
}

// cutItems captures one atomic cut and flattens every shard's version
// concurrently while the reader pins hold the shared chunk storage
// stable. The per-shard arrays come back in shard order, sorted and
// duplicate-free, ready for mergeShardKV.
func (s *Sharded[K, V]) cutItems() ([][]K, [][]V) {
	vers, release := s.collectCut()
	defer release()
	ks := make([][]K, len(s.trees))
	vs := make([][]V, len(s.trees))
	var wg sync.WaitGroup
	for i := range s.trees {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ks[i], vs[i] = s.trees[i].VersionItems(vers[i])
		}(i)
	}
	wg.Wait()
	return ks, vs
}

// Items returns every (key, value) pair, keys ascending and values
// position-aligned, as one mutually atomic cross-shard snapshot: all
// shards are read at a single instant (collectCut), so an Items result
// can never show half of a cross-shard batch. It reflects every
// operation that completed before the call; operations still queued in
// a combiner appear only once their epoch publishes.
func (s *Sharded[K, V]) Items() ([]K, []V) {
	return s.mergeShardKV(s.cutItems())
}

// Keys returns the keys in ascending order, from the same mutually
// atomic cut as Items.
func (s *Sharded[K, V]) Keys() []K {
	ks, _ := s.Items()
	return ks
}

// Range returns the (key, value) pairs with keys in [lo, hi], keys
// ascending. Under range partitioning only the shards whose intervals
// overlap [lo, hi] are queried and their answers concatenate; under
// hashing every shard answers and the results merge. Each shard's
// answer is an atomic range snapshot on that shard.
func (s *Sharded[K, V]) Range(lo, hi K) ([]K, []V) {
	if hi < lo {
		return nil, nil
	}
	first, last := 0, len(s.cbs)-1
	if s.part.Ordered() {
		first, last = s.part.Shard(lo), s.part.Shard(hi)
	}
	ks := make([][]K, last-first+1)
	vs := make([][]V, last-first+1)
	var wg sync.WaitGroup
	var ferr firstError
	for i := first; i <= last; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, v, err := s.cbs[i].Range(lo, hi)
			if err != nil {
				ferr.set(err)
				return
			}
			ks[i-first], vs[i-first] = k, v
		}(i)
	}
	wg.Wait()
	ferr.check()
	return s.mergeShardKV(ks, vs)
}

// Ascend returns an in-order iterator over the (key, value) pairs in
// [lo, hi]. The sequence iterates one materialized cross-shard Range
// snapshot: mutations after the Ascend call do not affect it.
func (s *Sharded[K, V]) Ascend(lo, hi K) iter.Seq2[K, V] {
	ks, vs := s.Range(lo, hi)
	return func(yield func(K, V) bool) {
		for i, k := range ks {
			if !yield(k, vs[i]) {
				return
			}
		}
	}
}

// SnapshotMap materializes a snapshot of the frontend as an
// independent Map sharing the frontend's engine configuration and
// worker pool but none of its data. The snapshot is one mutually
// atomic cross-shard cut (the same instant-capture as Items), so it
// contains either all or none of any batch's effects that had
// completed before the call.
func (s *Sharded[K, V]) SnapshotMap() *Map[K, V] {
	ks, vs := s.Items()
	m := &Map[K, V]{}
	m.pool = s.pool
	m.assumeSorted = s.opts.AssumeSorted
	m.t = core.NewFromSortedKV(s.opts.coreConfig(), s.pool, ks, vs)
	return m
}

// Snapshot is SnapshotMap under the name the Concurrent frontend uses,
// so the two frontends expose the same snapshot surface. Unlike
// Concurrent.Snapshot it cannot share chunk storage with the live
// structure — the cut spans N independent trees whose contents must be
// merged into one — so it materializes, at the same cost as Items plus
// one bulk load.
func (s *Sharded[K, V]) Snapshot() *Map[K, V] {
	return s.SnapshotMap()
}

// Close stops every shard's combiner: it stops accepting operations,
// waits for everything already submitted, and stops the combiner
// goroutines. Idempotent; safe to call concurrently with in-flight
// operations (each completes or panics with the closed-Sharded
// message, as with Concurrent).
func (s *Sharded[K, V]) Close() {
	var wg sync.WaitGroup
	for _, cb := range s.cbs {
		wg.Add(1)
		go func(cb *combine.Combiner[K, V]) {
			defer wg.Done()
			cb.Close()
		}(cb)
	}
	wg.Wait()
}

// Closed reports whether Close has been called.
func (s *Sharded[K, V]) Closed() bool {
	return s.cbs[0].Closed()
}

// Shards reports the shard count.
func (s *Sharded[K, V]) Shards() int { return s.part.N() }

// ShardedStats is a snapshot of the whole shard group's combining
// behavior plus the group-level counters: per-shard epoch statistics
// (the evidence that N combiners really do run N concurrent epochs),
// filter effectiveness, and the shared-arena inventory the retention
// regression tests watch.
type ShardedStats struct {
	// Shards is the shard count; Ordered whether the partitioner
	// preserves key order across shards (range partitioning).
	Shards  int
	Ordered bool
	// PerShard holds each shard's combining statistics — epochs,
	// ops, keys, mean batch size, mean combine wait — in shard order.
	PerShard []ConcurrentStats
	// Epochs, Ops, and Keys aggregate PerShard.
	Epochs int64
	Ops    int64
	Keys   int64
	// FilterShortCircuits counts point lookups answered "absent" by a
	// per-shard filter without a combiner round trip (0 with
	// PointFilter off).
	FilterShortCircuits int64
	// RetainedBuffers and RetainedElems gauge the group's idle
	// scratch inventory — free-list buffers held for reuse across the
	// shared tree arena and the shared combiner scratch, and their
	// summed capacity in elements. Bounded by the free lists'
	// structural cap however many shards exist (0 under
	// PrivateArenas, where each shard's private inventory is not
	// aggregated).
	RetainedBuffers int
	RetainedElems   int64
}

// Trace returns up to n recent epoch traces across all shards, newest
// first by epoch start time (n <= 0 means all retained). Each trace's
// Shard field names the combiner that ran it, so the merged view shows
// the group's concurrent epochs interleaved. Per-shard rings are read
// without any cross-shard fence — the merge is a gather of unsynchro-
// nized snapshots, consistent per shard only, like Stats. Tracing is
// enabled by Options.Metrics or TraceDepth; otherwise Trace returns
// nil.
func (s *Sharded[K, V]) Trace(n int) []EpochTrace {
	var all []EpochTrace
	for _, cb := range s.cbs {
		all = append(all, cb.Trace(n)...)
	}
	slices.SortFunc(all, func(a, b EpochTrace) int {
		return b.Start.Compare(a.Start)
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Stats returns a snapshot of the shard group's combining behavior.
func (s *Sharded[K, V]) Stats() ShardedStats {
	st := ShardedStats{
		Shards:              len(s.cbs),
		Ordered:             s.part.Ordered(),
		PerShard:            make([]ConcurrentStats, len(s.cbs)),
		FilterShortCircuits: s.short.Load(),
	}
	for i, cb := range s.cbs {
		cs := cb.Stats()
		st.PerShard[i] = ConcurrentStats{
			Epochs:      cs.Epochs,
			Ops:         cs.Ops,
			Keys:        cs.Keys,
			SizeFlushes: cs.SizeFlushes,
			MeanOps:     cs.MeanOps,
			MeanKeys:    cs.MeanKeys,
			MeanWait:    cs.MeanWait,
		}
		st.Epochs += cs.Epochs
		st.Ops += cs.Ops
		st.Keys += cs.Keys
	}
	if s.arena != nil {
		b, e := s.arena.Retained()
		st.RetainedBuffers += b
		st.RetainedElems += e
	}
	if s.cscr != nil {
		b, e := s.cscr.Retained()
		st.RetainedBuffers += b
		st.RetainedElems += e
	}
	return st
}
