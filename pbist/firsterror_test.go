package pbist

import (
	"errors"
	"sync"
	"testing"
)

// TestFirstErrorKeepsFirst pins the CompareAndSwap contract: once an
// error is installed, later reporters must not displace it. The old
// plain Store let the *last* failing shard win, so an error raced in
// by a second shard could replace the one a caller was about to read.
func TestFirstErrorKeepsFirst(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	var f firstError
	f.set(errA)
	f.set(errB)
	if e := f.p.Load(); e == nil || *e != errA {
		t.Fatalf("firstError kept %v, want the first error %v", e, errA)
	}

	// Under contention exactly one reporter wins and the winner never
	// changes afterwards.
	var g firstError
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		errs[i] = errors.New(string(rune('a' + i)))
		wg.Add(1)
		go func(err error) {
			defer wg.Done()
			g.set(err)
		}(errs[i])
	}
	wg.Wait()
	won := g.p.Load()
	if won == nil {
		t.Fatal("no error retained")
	}
	g.set(errors.New("latecomer"))
	if e := g.p.Load(); e != won {
		t.Fatal("winner displaced by a later set")
	}
}

// TestShardedTwoShardsFailing is the regression for the gather-path
// race: several shards fail in the same scatter (here: two of the four
// combiners are closed under the frontend's feet), their goroutines
// report concurrently, and the operation must still panic with the
// closed-Sharded message — while the version read paths, which never
// touch a combiner, keep working.
func TestShardedTwoShardsFailing(t *testing.T) {
	ks := make([]int64, 512)
	vs := make([]uint64, 512)
	for i := range ks {
		ks[i] = int64(i) * 7
		vs[i] = uint64(i)
	}
	s := NewShardedFromItems[int64, uint64](ShardedOptions{Shards: 4}, ks, vs)
	defer s.Close()

	// Fail two shards. Every cross-shard batch now has two concurrent
	// error reporters.
	s.cbs[1].Close()
	s.cbs[3].Close()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s with two failed shards did not panic", name)
			}
		}()
		f()
	}
	// The atomic cut reads published versions, not combiners: the
	// whole-structure reads still answer, reflecting the bulk load.
	if s.Len() != len(ks) {
		t.Fatalf("Len = %d with two shards closed, want %d", s.Len(), len(ks))
	}
	gotK, _ := s.Items()
	if len(gotK) != len(ks) {
		t.Fatalf("Items returned %d keys, want %d", len(gotK), len(ks))
	}
	if v, ok := s.GetFast(ks[3]); !ok || v != vs[3] {
		t.Fatalf("GetFast = %d,%v with two shards closed", v, ok)
	}

	mustPanic("GetBatch", func() { s.GetBatch(ks) })
	mustPanic("ContainsBatch", func() { s.ContainsBatch(ks) })
	mustPanic("Flush", func() { s.Flush() })
	// The mutating batches panic too — but first apply on the two live
	// shards (cross-shard batches are atomic per shard, not across
	// shards, failed or not), so they come last.
	mustPanic("PutBatch", func() { s.PutBatch(ks, vs) })
	mustPanic("DeleteBatch", func() { s.DeleteBatch(ks) })

	// The closed shards' versions are untouched by the failed batches
	// (ks[200] sits in the second quantile, owned by closed shard 1).
	if v, ok := s.GetFast(ks[200]); !ok || v != vs[200] {
		t.Fatalf("closed shard's GetFast = %d,%v after failed batches", v, ok)
	}
}
