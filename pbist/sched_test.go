package pbist_test

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/pbist"
)

// schedChurn hammers c with write-heavy churn over a small key span
// from several goroutines, returning the final expected contents (a
// merged per-goroutine oracle over disjoint stripes).
func schedChurn(t *testing.T, c *pbist.Concurrent[int64, int64], goroutines, steps int) map[int64]int64 {
	t.Helper()
	const stride = 1 << 10
	oracles := make([]map[int64]int64, goroutines)
	var wg sync.WaitGroup
	for id := 0; id < goroutines; id++ {
		oracles[id] = make(map[int64]int64)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			oracle := oracles[id]
			r := dist.NewRNG(0x5c4ed ^ uint64(id)*0x9e37)
			base := int64(id) * stride
			for step := 0; step < steps; step++ {
				k := base + r.Int63n(stride)
				if r.Uint64n(5) == 0 {
					c.Delete(k)
					delete(oracle, k)
				} else {
					v := int64(r.Uint64() >> 1)
					c.Put(k, v)
					oracle[k] = v
				}
			}
		}(id)
	}
	wg.Wait()
	merged := make(map[int64]int64)
	for _, o := range oracles {
		for k, v := range o {
			merged[k] = v
		}
	}
	return merged
}

func checkAgainstOracle(t *testing.T, c *pbist.Concurrent[int64, int64], oracle map[int64]int64) {
	t.Helper()
	keys, vals := c.Items()
	if len(keys) != len(oracle) {
		t.Fatalf("Items() has %d keys, oracle %d", len(keys), len(oracle))
	}
	if !slices.IsSorted(keys) {
		t.Fatal("Items() keys not sorted")
	}
	for i, k := range keys {
		if want, ok := oracle[k]; !ok || vals[i] != want {
			t.Fatalf("Items()[%d] = (%d, %d), oracle (%d, %v)", i, k, vals[i], want, ok)
		}
	}
}

// TestConcurrentRebuildBudgetTrace is the acceptance assertion at the
// frontend: with a rebuild budget set, no combining epoch spends more
// than the cap in rebuild keys — checked against the epoch traces the
// combiner records — and write-heavy churn actually exercises the
// deferral path (some epoch reports outstanding debt).
func TestConcurrentRebuildBudgetTrace(t *testing.T) {
	const budget = 256
	for _, async := range []bool{false, true} {
		name := "bounded-sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			c := pbist.NewConcurrent[int64, int64](pbist.ConcurrentOptions{
				Options: pbist.Options{
					RebuildBudgetPerEpoch: budget,
					AsyncRebuild:          async,
				},
				TraceDepth: 4096,
			})
			defer c.Close()
			oracle := schedChurn(t, c, 8, 4000)
			c.Flush()

			traces := c.Trace(0)
			if len(traces) == 0 {
				t.Fatal("no epoch traces recorded")
			}
			sawSpend, sawDebt := false, false
			for _, tr := range traces {
				if tr.RebuildKeys > budget {
					t.Fatalf("epoch %d spent %d rebuild keys, budget %d", tr.Seq, tr.RebuildKeys, budget)
				}
				if tr.RebuildKeys > 0 {
					sawSpend = true
				}
				if tr.RebuildDebt > 0 {
					sawDebt = true
				}
			}
			if !sawSpend {
				t.Fatal("no epoch spent rebuild work; churn too light for the test to mean anything")
			}
			if !sawDebt {
				t.Fatal("no epoch reported rebuild debt; deferral path not exercised")
			}
			checkAgainstOracle(t, c, oracle)
		})
	}
}

// TestConcurrentAsyncRebuildClose races Close against in-flight
// background rebuilds: churn heavy enough to keep async jobs in the
// air, then close mid-flight. A snapshot taken before Close must stay
// fully readable after it (version readers survive Close), and under
// -race the abandoned worker must not trip the detector.
func TestConcurrentAsyncRebuildClose(t *testing.T) {
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		c := pbist.NewConcurrent[int64, int64](pbist.ConcurrentOptions{
			Options: pbist.Options{
				RebuildBudgetPerEpoch: 64,
				AsyncRebuild:          true,
			},
		})
		oracle := schedChurn(t, c, 4, 1500)
		snap := c.Snapshot()
		c.Close()

		keys := snap.Keys()
		if !slices.IsSorted(keys) {
			t.Fatalf("round %d: snapshot keys unsorted after Close", round)
		}
		for _, k := range keys {
			if _, ok := snap.Get(k); !ok {
				t.Fatalf("round %d: snapshot lost key %d after Close", round, k)
			}
		}
		if len(keys) != len(oracle) {
			t.Fatalf("round %d: snapshot has %d keys, oracle %d", round, len(keys), len(oracle))
		}
	}
}
