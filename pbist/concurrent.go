package pbist

import (
	"iter"
	"time"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/parallel"
)

// ConcurrentOptions configures a Concurrent frontend: the engine
// Options plus the combining flush policy. The zero value gives
// sensible defaults.
type ConcurrentOptions struct {
	Options
	// MaxBatch is the size trigger of the combiner: an epoch is
	// flushed as soon as the queued operations carry at least this
	// many keys. Default 8192.
	MaxBatch int
	// MaxWait bounds the latency trigger: an epoch is flushed once its
	// oldest operation has waited this long. Below the bound the
	// combiner adapts to observed concurrency — it keeps an epoch open
	// only while submissions are still arriving, so a lone client is
	// not delayed and n active clients coalesce into n-op epochs.
	// Default 200µs.
	MaxWait time.Duration
	// TraceDepth bounds the per-combiner ring of recent epoch traces
	// readable through Trace. 0 keeps a default-depth ring when
	// Options.Metrics is set and disables tracing otherwise; setting
	// it enables tracing even without a registry.
	TraceDepth int
}

func (o ConcurrentOptions) combineOptions() combine.Options {
	return combine.Options{
		MaxBatch:      o.MaxBatch,
		MaxWait:       o.MaxWait,
		NoBufferReuse: o.ReuseBuffers == ReuseOff,
		Metrics:       o.Metrics,
		TraceDepth:    o.TraceDepth,
	}
}

// Concurrent is the shared-frontend view: a Map[K, V] engine served
// to arbitrarily many goroutines through a combining queue. Unlike
// Tree and Map — which run one batched operation at a time on the
// caller's goroutine — every method of Concurrent is safe for
// concurrent use.
//
// A single combiner goroutine drains the queue in epochs: everything
// submitted while the previous epoch executed is coalesced, resolved
// with one batched read traversal plus one batched write traversal on
// the engine (full intra-batch parallelism), and the per-operation
// results are routed back to the blocked callers. Under many clients
// this recovers the batched O(m·log log n) economics for workloads
// that arrive one key at a time.
//
// Consistency: the structure is linearizable. Operations of one epoch
// take effect in submission order — a Get observes every Put/Delete
// submitted (anywhere) before it in the epoch, writes to the same key
// resolve last-wins — and batch methods (GetBatch, PutBatch,
// DeleteBatch, ContainsBatch) are atomic. Len, Items, and Stats
// linearize at the boundary of the epoch that serves them.
//
// Alongside the combined operations, GetFast, ContainsFast, and
// Snapshot serve wait-free reads against the immutable version the
// combiner publishes after every epoch: no queue, no blocking, and
// still linearizable with the combined writes (a completed operation
// is always visible, because publication precedes client wakeup).
//
// Create one with NewConcurrent or NewConcurrentFromItems; call Close
// when done to stop the combiner goroutine. Operations on a closed
// Concurrent panic, except the version readers (GetFast, ContainsFast,
// Snapshot), which keep serving the final published state.
type Concurrent[K Key, V any] struct {
	cb *combine.Combiner[K, V]
	// eng is the engine tree itself, retained for the wait-free read
	// surface: the combiner publishes an immutable version of eng at
	// the end of every epoch (before waking that epoch's clients), and
	// GetFast, ContainsFast, and Snapshot read those versions without
	// submitting to the combining queue.
	eng *core.Tree[K, V]
	// opts and pool are remembered so snapshot-derived Maps
	// (SnapshotMap, UnionSnapshot) inherit the frontend's engine
	// configuration and worker pool.
	opts ConcurrentOptions
	pool *parallel.Pool
}

// NewConcurrent returns an empty concurrent map frontend and starts
// its combiner goroutine.
func NewConcurrent[K Key, V any](opts ConcurrentOptions) *Concurrent[K, V] {
	p := opts.pool()
	t := core.New[K, V](opts.coreConfig(), p)
	t.EnablePublish()
	return &Concurrent[K, V]{
		cb:   combine.New(combine.Engine[K, V](t), p, opts.combineOptions()),
		eng:  t,
		opts: opts,
		pool: p,
	}
}

// NewConcurrentFromItems returns a concurrent frontend bulk-loaded
// with the (keys[i], vals[i]) pairs (last occurrence of a duplicated
// key wins, as in NewMapFromItems). Neither input slice is retained.
func NewConcurrentFromItems[K Key, V any](opts ConcurrentOptions, keys []K, vals []V) *Concurrent[K, V] {
	if len(keys) != len(vals) {
		panic("pbist: NewConcurrentFromItems keys/vals length mismatch")
	}
	p := opts.pool()
	m := &Map[K, V]{}
	m.pool = p
	m.assumeSorted = opts.AssumeSorted
	nk, nv := m.normalizePairs(keys, vals)
	t := core.NewFromSortedKV(opts.coreConfig(), p, nk, nv)
	t.EnablePublish()
	return &Concurrent[K, V]{
		cb:   combine.New(combine.Engine[K, V](t), p, opts.combineOptions()),
		eng:  t,
		opts: opts,
		pool: p,
	}
}

// check panics when an operation is attempted on a closed Concurrent.
func check(err error) {
	if err != nil {
		panic("pbist: operation on closed Concurrent")
	}
}

// Get returns the value stored under key; ok is false when absent.
func (c *Concurrent[K, V]) Get(key K) (val V, ok bool) {
	val, ok, err := c.cb.Get(key)
	check(err)
	return val, ok
}

// Contains reports whether key is present.
func (c *Concurrent[K, V]) Contains(key K) bool {
	ok, err := c.cb.Contains(key)
	check(err)
	return ok
}

// GetFast returns the value stored under key by reading the latest
// version the combiner published, without submitting to the combining
// queue: wait-free (one atomic load, one interpolation walk, no
// blocking on any writer) and allocation-free.
//
// GetFast is linearizable with the combined operations: a version is
// published after an epoch's writes and before its clients wake, so
// GetFast observes every operation that completed before it was called.
// What it gives up against Get is only the queue's view of in-flight
// work — operations still waiting in the combining queue are invisible
// until their epoch publishes, which is a valid linearization either
// way. Unlike Get, GetFast never panics on a closed Concurrent: the
// final version remains readable after Close.
func (c *Concurrent[K, V]) GetFast(key K) (val V, ok bool) {
	return c.eng.SnapshotGet(key)
}

// ContainsFast reports whether key is present in the latest published
// version; the membership-only form of GetFast, with the same wait-free
// and linearizability properties.
func (c *Concurrent[K, V]) ContainsFast(key K) bool {
	return c.eng.SnapshotContains(key)
}

// Snapshot returns an independent point-in-time Map over the latest
// published version in O(changed) time and space: the snapshot shares
// every chunk of tree storage with the live structure instead of
// flattening and rebuilding (compare SnapshotMap, which materializes).
// Later mutations of the frontend copy shared nodes before writing, so
// the snapshot is immutable-by-sharing; mutating the snapshot Map
// copies in the other direction and never disturbs the frontend.
//
// The snapshot linearizes at its version's publish point: it contains
// every operation that completed before the call and no operation
// submitted after it. Like GetFast it takes no fence and works on a
// closed Concurrent.
func (c *Concurrent[K, V]) Snapshot() *Map[K, V] {
	m := &Map[K, V]{}
	m.pool = c.pool
	m.assumeSorted = c.opts.AssumeSorted
	m.t = c.eng.SnapshotNow()
	return m
}

// Put stores val under key, inserting or overwriting; it reports
// whether the key was absent at the operation's linearization point.
func (c *Concurrent[K, V]) Put(key K, val V) bool {
	inserted, err := c.cb.Put(key, val)
	check(err)
	return inserted
}

// Delete removes key, reporting whether it was present.
func (c *Concurrent[K, V]) Delete(key K) bool {
	removed, err := c.cb.Delete(key)
	check(err)
	return removed
}

// GetBatch fetches the value for every element of keys as one atomic
// operation: vals[i] and found[i] answer keys[i], whatever the input
// order or duplication. The keys slice must not be mutated until the
// call returns.
func (c *Concurrent[K, V]) GetBatch(keys []K) (vals []V, found []bool) {
	vals, found, err := c.cb.GetBatch(keys)
	check(err)
	return vals, found
}

// ContainsBatch reports membership for every element of keys as one
// atomic operation.
func (c *Concurrent[K, V]) ContainsBatch(keys []K) []bool {
	found, err := c.cb.ContainsBatch(keys)
	check(err)
	return found
}

// PutBatch upserts every (keys[i], vals[i]) pair as one atomic
// operation, returning how many keys were newly inserted. Duplicate
// keys resolve to the last occurrence, as in Map.PutBatch. The slices
// must have equal length and must not be mutated until the call
// returns.
func (c *Concurrent[K, V]) PutBatch(keys []K, vals []V) int {
	if len(keys) != len(vals) {
		panic("pbist: PutBatch keys/vals length mismatch")
	}
	inserted, err := c.cb.PutBatch(keys, vals)
	check(err)
	return inserted
}

// DeleteBatch removes every element of keys as one atomic operation,
// returning how many were present.
func (c *Concurrent[K, V]) DeleteBatch(keys []K) int {
	removed, err := c.cb.DeleteBatch(keys)
	check(err)
	return removed
}

// Len reports the number of keys stored, linearized after every
// operation submitted before the call.
func (c *Concurrent[K, V]) Len() int {
	n, err := c.cb.Len()
	check(err)
	return n
}

// Flush blocks until every operation submitted before it has
// executed. Useful as a barrier before reading Stats or handing the
// structure off.
func (c *Concurrent[K, V]) Flush() {
	check(c.cb.Flush())
}

// Items returns every (key, value) pair, keys ascending and values
// position-aligned, as one atomic snapshot.
func (c *Concurrent[K, V]) Items() ([]K, []V) {
	ks, vs, err := c.cb.Snapshot()
	check(err)
	return ks, vs
}

// Keys returns the keys in ascending order, as one atomic snapshot
// (values are never materialized, unlike Items).
func (c *Concurrent[K, V]) Keys() []K {
	ks, err := c.cb.Keys()
	check(err)
	return ks
}

// Range returns the (key, value) pairs with keys in [lo, hi], keys
// ascending, as one atomic range snapshot.
func (c *Concurrent[K, V]) Range(lo, hi K) ([]K, []V) {
	ks, vs, err := c.cb.Range(lo, hi)
	check(err)
	return ks, vs
}

// Ascend returns an in-order iterator over the (key, value) pairs in
// [lo, hi]. The sequence iterates one atomic Range snapshot taken at
// the Ascend call; later mutations do not affect it.
func (c *Concurrent[K, V]) Ascend(lo, hi K) iter.Seq2[K, V] {
	ks, vs := c.Range(lo, hi)
	return func(yield func(K, V) bool) {
		for i, k := range ks {
			if !yield(k, vs[i]) {
				return
			}
		}
	}
}

// SnapshotMap materializes one atomic snapshot of the frontend as an
// independent Map: the snapshot linearizes after every operation
// submitted before the call (the same fence as Items), and the
// returned Map — which shares the frontend's engine configuration and
// worker pool but none of its data — can then run whole-tree set
// algebra, range queries, or further batches without touching the live
// structure.
func (c *Concurrent[K, V]) SnapshotMap() *Map[K, V] {
	ks, vs := c.Items() // atomic fence; sorted duplicate-free
	m := &Map[K, V]{}
	m.pool = c.pool
	m.assumeSorted = c.opts.AssumeSorted
	m.t = core.NewFromSortedKV(c.opts.coreConfig(), c.pool, ks, vs)
	return m
}

// UnionSnapshot returns a Map holding the union of snapshots of c and
// other, with policy picking the surviving value on common keys
// (LeftWins keeps c's). Each snapshot is individually linearizable —
// c's fence is taken first, then other's — but the pair is not
// mutually atomic: operations landing between the two fences appear in
// other's snapshot only. The result shares c's engine configuration
// and pool and is detached from both frontends.
func (c *Concurrent[K, V]) UnionSnapshot(other *Concurrent[K, V], policy MergePolicy) *Map[K, V] {
	ak, av := c.Items()
	bk, bv := other.Items()
	p := c.pool
	var mk []K
	var mv []V
	if policy == RightWins {
		mk, mv = parallel.UnionKV(p, ak, av, bk, bv)
	} else {
		mk, mv = parallel.UnionKV(p, bk, bv, ak, av)
	}
	m := &Map[K, V]{}
	m.pool = p
	m.assumeSorted = c.opts.AssumeSorted
	m.t = core.NewFromSortedKV(c.opts.coreConfig(), p, mk, mv)
	return m
}

// Close stops accepting operations, waits for every already submitted
// operation to complete, and stops the combiner goroutine. It is
// idempotent and safe to call concurrently with in-flight operations:
// each concurrent operation either completes normally or panics with
// the closed-Concurrent message. Operations submitted after Close
// panic.
func (c *Concurrent[K, V]) Close() {
	c.cb.Close()
}

// Closed reports whether Close has been called.
func (c *Concurrent[K, V]) Closed() bool {
	return c.cb.Closed()
}

// ConcurrentStats is a snapshot of combining behavior since
// construction: how well the frontend is turning concurrent
// single-key traffic into batches.
type ConcurrentStats struct {
	// Epochs is the number of combined batches executed.
	Epochs int64
	// Ops is the number of client operations served; Keys the number
	// of keys they carried (mini-batches carry several).
	Ops  int64
	Keys int64
	// SizeFlushes counts epochs flushed by the MaxBatch size trigger;
	// the rest were flushed by the latency trigger or by Close.
	SizeFlushes int64
	// MeanOps and MeanKeys are the mean combined batch size per epoch.
	MeanOps  float64
	MeanKeys float64
	// MeanWait is the mean time an operation spent queued before its
	// epoch began executing.
	MeanWait time.Duration
}

// Trace returns up to n recent epoch traces, newest first (n <= 0
// means all retained). Each trace decomposes one combining epoch into
// its named phase spans; see EpochTrace. Tracing is enabled by
// Options.Metrics or ConcurrentOptions.TraceDepth — without either,
// Trace returns nil. Safe to call concurrently with in-flight
// operations; the traces are copies and the call takes no fence.
func (c *Concurrent[K, V]) Trace(n int) []EpochTrace {
	return c.cb.Trace(n)
}

// Stats returns a snapshot of combining behavior.
func (c *Concurrent[K, V]) Stats() ConcurrentStats {
	s := c.cb.Stats()
	return ConcurrentStats{
		Epochs:      s.Epochs,
		Ops:         s.Ops,
		Keys:        s.Keys,
		SizeFlushes: s.SizeFlushes,
		MeanOps:     s.MeanOps,
		MeanKeys:    s.MeanKeys,
		MeanWait:    s.MeanWait,
	}
}
