package pbist

import (
	"iter"
	"slices"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Map is the map view: a parallel-batched interpolation search tree
// associating a value of type V with every key. It shares the engine,
// Options, Stats, and worker control of the set view; the batched
// operations (GetBatch, PutBatch, DeleteBatch) run through the same
// parallel-batched traversal with values riding alongside the keys,
// never through a per-key loop. Create one with NewMap or
// NewMapFromItems.
type Map[K Key, V any] struct {
	view[K, V]
}

// NewMap returns an empty map.
func NewMap[K Key, V any](opts Options) *Map[K, V] {
	p := opts.pool()
	m := &Map[K, V]{}
	m.t = core.New[K, V](opts.coreConfig(), p)
	m.pool = p
	m.assumeSorted = opts.AssumeSorted
	return m
}

// NewMapFromItems returns a map containing the (keys[i], vals[i])
// pairs, bulk-loaded in O(n) work into an ideally balanced shape. The
// slices must have equal length; when a key occurs more than once the
// last occurrence wins, matching PutBatch. Neither input slice is
// retained — even on the already-sorted (or AssumeSorted) fast path,
// construction copies every key and value into tree-owned chunk
// storage — and the keys need not be sorted (unless
// Options.AssumeSorted, in which case they must be sorted and
// duplicate-free).
func NewMapFromItems[K Key, V any](opts Options, keys []K, vals []V) *Map[K, V] {
	if len(keys) != len(vals) {
		panic("pbist: NewMapFromItems keys/vals length mismatch")
	}
	p := opts.pool()
	m := &Map[K, V]{}
	m.pool = p
	m.assumeSorted = opts.AssumeSorted
	nk, nv := m.normalizePairs(keys, vals)
	m.t = core.NewFromSortedKV(opts.coreConfig(), p, nk, nv)
	return m
}

// normalizePairs returns the batch as sorted duplicate-free key/value
// slices with last-wins semantics for duplicated keys, copying only
// when the input is not already in contract form. Like normalize,
// passing pre-sorted input through unaliased is safe because the core
// never retains a batch slice.
//
// Unlike the set view's key-only normalization, the pair sort is a
// sequential index sort (a parallel stable pair sort is not worth its
// complexity here): hot paths feeding large unsorted upsert batches
// should pre-sort and set Options.AssumeSorted, which skips this
// entirely.
func (m *Map[K, V]) normalizePairs(keys []K, vals []V) ([]K, []V) {
	if m.assumeSorted || isSortedUnique(keys) {
		return keys, vals
	}
	// Stable-sort a permutation by key: within a run of equal keys the
	// original order survives, so the last element of the run is the
	// last occurrence in the input — the one PutBatch semantics keep.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case keys[a] < keys[b]:
			return -1
		case keys[b] < keys[a]:
			return 1
		default:
			return 0
		}
	})
	outK := make([]K, 0, len(keys))
	outV := make([]V, 0, len(vals))
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && keys[idx[j]] == keys[idx[i]] {
			j++
		}
		last := idx[j-1] // last original position of this key run
		outK = append(outK, keys[last])
		outV = append(outV, vals[last])
		i = j
	}
	return outK, outV
}

// Clone returns a deep, fully detached copy of the map: one parallel
// flatten plus one chunked ideal rebuild, sharing the receiver's
// options and worker pool but nothing else — mutations on either side
// (including value overwrites) are never visible through the other.
// Values are copied by assignment: for pointer-typed V both maps
// share the pointed-to data, as with any shallow value copy. The
// clone is ideally balanced even when the receiver is mid-churn, so
// Clone doubles as compaction.
func (m *Map[K, V]) Clone() *Map[K, V] {
	cp := &Map[K, V]{}
	cp.t = m.t.Clone()
	cp.pool = m.pool
	cp.assumeSorted = m.assumeSorted
	return cp
}

// Get returns the value stored under key; ok is false when the key is
// absent.
func (m *Map[K, V]) Get(key K) (val V, ok bool) { return m.t.Get(key) }

// Put stores val under key, inserting or overwriting; it reports
// whether the key was absent.
func (m *Map[K, V]) Put(key K, val V) bool { return m.t.Put(key, val) }

// Delete removes key, reporting whether it was present.
func (m *Map[K, V]) Delete(key K) bool { return m.t.Remove(key) }

// GetBatch fetches the value for every element of keys in one batched
// traversal: vals[i] and found[i] correspond to keys[i], whatever the
// input order, and duplicate inputs each receive their (identical)
// answer. Absent keys report the zero value and found[i] == false.
func (m *Map[K, V]) GetBatch(keys []K) (vals []V, found []bool) {
	if len(keys) == 0 {
		return nil, nil
	}
	if m.assumeSorted || isSortedUnique(keys) {
		return m.t.GetBatched(keys)
	}
	// Query the sorted unique view, then scatter answers back to the
	// caller's positions.
	sorted := parallel.SortedDedup(m.pool, slices.Clone(keys))
	svals, sfound := m.t.GetBatched(sorted)
	vals = make([]V, len(keys))
	found = make([]bool, len(keys))
	parallel.For(m.pool, len(keys), 0, func(i int) {
		j, _ := slices.BinarySearch(sorted, keys[i])
		vals[i] = svals[j]
		found[i] = sfound[j]
	})
	return vals, found
}

// PutBatch upserts every (keys[i], vals[i]) pair in one batched
// traversal and returns how many keys were newly inserted (as opposed
// to overwritten). The slices must have equal length. When a key
// occurs more than once in the batch, the last occurrence wins —
// PutBatch behaves like assigning the pairs to a builtin map in input
// order.
func (m *Map[K, V]) PutBatch(keys []K, vals []V) int {
	if len(keys) != len(vals) {
		panic("pbist: PutBatch keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return 0
	}
	nk, nv := m.normalizePairs(keys, vals)
	return m.t.PutBatched(nk, nv)
}

// DeleteBatch removes every element of keys, returning how many were
// actually present.
func (m *Map[K, V]) DeleteBatch(keys []K) int { return m.removeBatch(keys) }

// Min returns the smallest key and its value; ok is false when empty.
func (m *Map[K, V]) Min() (key K, val V, ok bool) { return m.t.Min() }

// Max returns the largest key and its value; ok is false when empty.
func (m *Map[K, V]) Max() (key K, val V, ok bool) { return m.t.Max() }

// Select returns the idx-th smallest key (0-based) and its value; ok
// is false when idx is out of range.
func (m *Map[K, V]) Select(idx int) (key K, val V, ok bool) { return m.t.Select(idx) }

// Range returns the keys in [lo, hi] in ascending order along with
// their values, position-aligned.
func (m *Map[K, V]) Range(lo, hi K) ([]K, []V) { return m.t.RangeKV(lo, hi) }

// Items returns every (key, value) pair, keys ascending and values
// position-aligned, in one parallel flatten.
func (m *Map[K, V]) Items() ([]K, []V) { return m.t.Items() }

// All returns an in-order iterator over every (key, value) pair.
func (m *Map[K, V]) All() iter.Seq2[K, V] { return m.t.All() }

// Ascend returns an in-order iterator over the (key, value) pairs
// with lo <= key <= hi.
func (m *Map[K, V]) Ascend(lo, hi K) iter.Seq2[K, V] { return m.t.Ascend(lo, hi) }
