package pbist

import (
	"math/rand"
	"slices"
	"testing"
)

// mapOracle is the reference model for Map differential tests: a
// builtin map for point lookups plus sorted-slice derivation for
// ordered queries.
type mapOracle map[int64]uint64

func (o mapOracle) putBatch(keys []int64, vals []uint64) int {
	n := 0
	for i, k := range keys { // input order: last duplicate wins
		if _, ok := o[k]; !ok {
			n++
		}
		o[k] = vals[i]
	}
	return n
}

func (o mapOracle) deleteBatch(keys []int64) int {
	n := 0
	for _, k := range keys {
		if _, ok := o[k]; ok {
			delete(o, k)
			n++
		}
	}
	return n
}

func (o mapOracle) sortedKeys() []int64 {
	out := make([]int64, 0, len(o))
	for k := range o {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// deleteBatch counts distinct present keys; duplicates in the batch
// must not double-count, so dedupe before consulting the oracle.
func dedupKeys(keys []int64) []int64 {
	cp := slices.Clone(keys)
	slices.Sort(cp)
	return slices.Compact(cp)
}

// TestMapDifferential drives a Map and the oracle with random
// interleavings of PutBatch / DeleteBatch / GetBatch / Ascend over
// unsorted, duplicate-laden batches. CI runs it under -race (the
// `test -race -short` job), which checks the parallel batched
// traversals for data races while the oracle checks their answers.
func TestMapDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := NewMap[int64, uint64](Options{Workers: workers, LeafCap: 8, RebuildFactor: 1})
		ref := mapOracle{}
		r := rand.New(rand.NewSource(int64(1000 + workers)))
		const span = 3000
		for round := 0; round < 60; round++ {
			n := r.Intn(400)
			batch := make([]int64, n)
			for i := range batch {
				batch[i] = r.Int63n(span)
			}
			switch round % 4 {
			case 0, 1:
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = r.Uint64()
				}
				want := ref.putBatch(batch, vals)
				if got := m.PutBatch(batch, vals); got != want {
					t.Fatalf("w%d round %d: PutBatch = %d, want %d", workers, round, got, want)
				}
			case 2:
				want := ref.deleteBatch(dedupKeys(batch))
				if got := m.DeleteBatch(batch); got != want {
					t.Fatalf("w%d round %d: DeleteBatch = %d, want %d", workers, round, got, want)
				}
			default:
				vals, found := m.GetBatch(batch)
				for i, k := range batch {
					rv, ok := ref[k]
					if found[i] != ok || (ok && vals[i] != rv) {
						t.Fatalf("w%d round %d: GetBatch[%d] = (%d,%v), want (%d,%v)",
							workers, round, i, vals[i], found[i], rv, ok)
					}
				}
				// Ascend over a random window must match the sorted
				// oracle exactly, values included.
				lo := r.Int63n(span)
				hi := lo + r.Int63n(span/4)
				var wantK []int64
				for _, k := range ref.sortedKeys() {
					if k >= lo && k <= hi {
						wantK = append(wantK, k)
					}
				}
				var gotK []int64
				for k, v := range m.Ascend(lo, hi) {
					if v != ref[k] {
						t.Fatalf("w%d round %d: Ascend value mismatch at key %d", workers, round, k)
					}
					gotK = append(gotK, k)
				}
				if !slices.Equal(gotK, wantK) {
					t.Fatalf("w%d round %d: Ascend keys = %v, want %v", workers, round, gotK, wantK)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("w%d round %d: Len = %d, want %d", workers, round, m.Len(), len(ref))
			}
		}
		gotK, gotV := m.Items()
		wantK := ref.sortedKeys()
		if !slices.Equal(gotK, wantK) {
			t.Fatalf("w%d: final key sets differ", workers)
		}
		for i, k := range gotK {
			if gotV[i] != ref[k] {
				t.Fatalf("w%d: final value misaligned at key %d", workers, k)
			}
		}
	}
}

// FuzzMapOps decodes an operation stream from raw fuzz bytes and
// differentially checks Map against the oracle. Seeds double as
// regression tests under plain `go test`; run
// `go test -fuzz=FuzzMapOps ./pbist` for open-ended exploration.
func FuzzMapOps(f *testing.F) {
	f.Add([]byte{0, 5, 1, 2, 3, 4, 5, 2, 3, 1, 2, 3})
	f.Add([]byte{3, 8, 255, 254, 1, 1, 1, 0})
	f.Add([]byte{1, 4, 9, 9, 9, 9, 2, 2, 42})
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMap[int64, uint64](Options{Workers: 2, LeafCap: 4, RebuildFactor: 1})
		ref := mapOracle{}
		for i := 0; i < len(data); {
			op := data[i] % 4
			i++
			n := 0
			if i < len(data) {
				n = int(data[i]) % 16
				i++
			}
			batch := make([]int64, 0, n)
			vals := make([]uint64, 0, n)
			for j := 0; j < n && i < len(data); j++ {
				batch = append(batch, int64(data[i]%64))
				vals = append(vals, uint64(data[i])<<8|uint64(j))
				i++
			}
			switch op {
			case 0, 1:
				want := ref.putBatch(batch, vals)
				if got := m.PutBatch(batch, vals); got != want {
					t.Fatalf("PutBatch(%v) = %d, want %d", batch, got, want)
				}
			case 2:
				want := ref.deleteBatch(dedupKeys(batch))
				if got := m.DeleteBatch(batch); got != want {
					t.Fatalf("DeleteBatch(%v) = %d, want %d", batch, got, want)
				}
			default:
				gv, gf := m.GetBatch(batch)
				for j, k := range batch {
					rv, ok := ref[k]
					if gf[j] != ok || (ok && gv[j] != rv) {
						t.Fatalf("GetBatch(%v)[%d] = (%d,%v), want (%d,%v)", batch, j, gv[j], gf[j], rv, ok)
					}
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
			}
		}
		gotK, gotV := m.Items()
		if !slices.Equal(gotK, ref.sortedKeys()) {
			t.Fatalf("final keys %v, want %v", gotK, ref.sortedKeys())
		}
		for i, k := range gotK {
			if gotV[i] != ref[k] {
				t.Fatalf("final value misaligned at key %d", k)
			}
		}
	})
}
