package pbist

import (
	"slices"
	"testing"
)

// The non-mutating slice-operand queries must ride the shared
// normalize fast path: a batch that is already sorted and
// duplicate-free is used as-is — never cloned, never re-sorted. These
// tests pin that down with alias checks and allocation counts, so a
// future edit that quietly reroutes sorted input through the
// clone+sort path fails loudly.

func TestNormalizeSortedInputIsAliased(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 2}, []int64{1, 5, 9})
	sorted := []int64{2, 4, 8, 16}
	norm := tr.normalize(sorted)
	if &norm[0] != &sorted[0] || len(norm) != len(sorted) {
		t.Fatal("normalize copied already-sorted duplicate-free input")
	}
}

func TestSetQueriesSortedFastPathAllocations(t *testing.T) {
	keys := make([]int64, 4096)
	for i := range keys {
		keys[i] = int64(i) * 3
	}
	tr := NewFromKeys(Options{Workers: 1}, keys)

	sorted := make([]int64, 1024)
	for i := range sorted {
		sorted[i] = int64(i) * 5
	}
	// The same batch content, unsorted: reversing breaks the fast path.
	unsorted := make([]int64, len(sorted))
	for i, k := range sorted {
		unsorted[len(unsorted)-1-i] = k
	}

	intersectSorted := testing.AllocsPerRun(20, func() { tr.Intersection(sorted) })
	intersectUnsorted := testing.AllocsPerRun(20, func() { tr.Intersection(unsorted) })
	if intersectSorted >= intersectUnsorted {
		t.Fatalf("Intersection sorted input allocates %.0f, unsorted %.0f: fast path not taken",
			intersectSorted, intersectUnsorted)
	}
	diffSorted := testing.AllocsPerRun(20, func() { tr.Difference(sorted) })
	diffUnsorted := testing.AllocsPerRun(20, func() { tr.Difference(unsorted) })
	if diffSorted >= diffUnsorted {
		t.Fatalf("Difference sorted input allocates %.0f, unsorted %.0f: fast path not taken",
			diffSorted, diffUnsorted)
	}

	// Absolute ceilings, far below one-allocation-per-key regressions:
	// Intersection pays only the batched traversal and result arrays;
	// Difference additionally flattens the tree, which allocates a few
	// buffers per inner node (~a thousand over this 4096-key tree).
	if intersectSorted > 64 {
		t.Fatalf("Intersection sorted fast path allocates %.0f times", intersectSorted)
	}
	if diffSorted > 2000 {
		t.Fatalf("Difference sorted fast path allocates %.0f times", diffSorted)
	}
}

func TestSetQueriesAgreeAcrossInputOrder(t *testing.T) {
	keys := []int64{2, 3, 5, 7, 11, 13, 17, 19}
	tr := NewFromKeys(Options{Workers: 2}, keys)
	sorted := []int64{1, 2, 3, 4, 5, 6, 7}
	shuffled := []int64{7, 1, 5, 3, 2, 6, 4, 2, 7} // duplicates too
	if !slices.Equal(tr.Intersection(sorted), tr.Intersection(shuffled)) {
		t.Fatal("Intersection differs between sorted and shuffled input")
	}
	if !slices.Equal(tr.Difference(sorted), tr.Difference(shuffled)) {
		t.Fatal("Difference differs between sorted and shuffled input")
	}
	if want := []int64{2, 3, 5, 7}; !slices.Equal(tr.Intersection(sorted), want) {
		t.Fatalf("Intersection = %v, want %v", tr.Intersection(sorted), want)
	}
	if want := []int64{11, 13, 17, 19}; !slices.Equal(tr.Difference(sorted), want) {
		t.Fatalf("Difference = %v, want %v", tr.Difference(sorted), want)
	}
}
