package pbist

import (
	"math/rand"
	"slices"
	"testing"
)

// checkViewInvariants is the public-API post-condition shared by every
// cross-view set-algebra test: keys sorted and duplicate-free, Len and
// Stats agreeing with the materialized contents, and a sane height.
// (The structural walk over node internals lives in internal/core's
// checkInvariants; this is its public-surface counterpart.)
func checkViewInvariants[K Key](t *testing.T, name string, keys []K, length int, stats Stats, height int) {
	t.Helper()
	if !isSortedUnique(keys) {
		t.Fatalf("%s: keys not sorted duplicate-free", name)
	}
	if length != len(keys) {
		t.Fatalf("%s: Len = %d but %d keys materialized", name, length, len(keys))
	}
	if stats.LiveKeys != length {
		t.Fatalf("%s: Stats.LiveKeys = %d, want %d", name, stats.LiveKeys, length)
	}
	if stats.Height != height {
		t.Fatalf("%s: Stats.Height = %d but Height() = %d", name, stats.Height, height)
	}
	if length > 0 && height < 1 {
		t.Fatalf("%s: non-empty with height %d", name, height)
	}
	if length > 64 && height > 12 {
		t.Fatalf("%s: height %d over %d keys; result not ideally balanced", name, height, length)
	}
}

func checkTreeView[K Key](t *testing.T, name string, tr *Tree[K]) {
	t.Helper()
	checkViewInvariants(t, name, tr.Keys(), tr.Len(), tr.Stats(), tr.Height())
}

func checkMapView[K Key, V any](t *testing.T, name string, m *Map[K, V]) {
	t.Helper()
	checkViewInvariants(t, name, m.Keys(), m.Len(), m.Stats(), m.Height())
}

// tagVals derives per-side values so a surviving value identifies the
// operand it came from.
func tagVals(keys []int64, tag uint64) []uint64 {
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = uint64(k)<<8 | tag
	}
	return out
}

// TestCrossViewSetAlgebra feeds identical inputs through the set view
// and the map view (under both merge policies) and demands agreement:
// the key sets of every operation must match across views and the map
// values must obey the policy.
func TestCrossViewSetAlgebra(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := Options{Workers: workers}
		r := rand.New(rand.NewSource(int64(workers) * 1001))
		for round := 0; round < 6; round++ {
			a := dedup(randomKeys(r, 1+r.Intn(4000), 1<<16))
			b := dedup(randomKeys(r, 1+r.Intn(4000), 1<<16))
			ta, tb := NewFromKeys(opts, a), NewFromKeys(opts, b)
			ma := NewMapFromItems(opts, a, tagVals(a, 1))
			mb := NewMapFromItems(opts, b, tagVals(b, 2))

			type pair struct {
				op   string
				tree *Tree[int64]
				maps []*Map[int64, uint64]
			}
			cases := []pair{
				{"union", ta.Union(tb), []*Map[int64, uint64]{ma.Union(mb, LeftWins), ma.Union(mb, RightWins)}},
				{"intersect", ta.Intersect(tb), []*Map[int64, uint64]{ma.Intersect(mb, LeftWins), ma.Intersect(mb, RightWins)}},
				{"difftree", ta.DiffTree(tb), []*Map[int64, uint64]{ma.DiffTree(mb)}},
				{"symdiff", ta.SymDiff(tb), []*Map[int64, uint64]{ma.SymDiff(mb)}},
			}
			for _, c := range cases {
				keys := c.tree.Keys()
				checkTreeView(t, "tree/"+c.op, c.tree)
				for mi, m := range c.maps {
					if !slices.Equal(m.Keys(), keys) {
						t.Fatalf("w%d %s: map view %d key set diverges from tree view", workers, c.op, mi)
					}
					checkMapView(t, c.op, m)
				}
			}

			// Policy semantics on the map values.
			inA := map[int64]bool{}
			for _, k := range a {
				inA[k] = true
			}
			inB := map[int64]bool{}
			for _, k := range b {
				inB[k] = true
			}
			wantTag := func(k int64, policy MergePolicy) uint64 {
				if inA[k] && inB[k] {
					if policy == RightWins {
						return 2
					}
					return 1
				}
				if inA[k] {
					return 1
				}
				return 2
			}
			for _, policy := range []MergePolicy{LeftWins, RightWins} {
				uk, uv := ma.Union(mb, policy).Items()
				for i, k := range uk {
					if want := uint64(k)<<8 | wantTag(k, policy); uv[i] != want {
						t.Fatalf("w%d union %v: value for key %d = %#x, want %#x", workers, policy, k, uv[i], want)
					}
				}
				ik, iv := ma.Intersect(mb, policy).Items()
				for i, k := range ik {
					want := uint64(k)<<8 | 1
					if policy == RightWins {
						want = uint64(k)<<8 | 2
					}
					if iv[i] != want {
						t.Fatalf("w%d intersect %v: value for key %d = %#x, want %#x", workers, policy, k, iv[i], want)
					}
				}
			}

			// Operands must be untouched.
			if ta.Len() != len(a) || tb.Len() != len(b) || ma.Len() != len(a) || mb.Len() != len(b) {
				t.Fatalf("w%d: an operand was mutated", workers)
			}
		}
	}
}

// TestCrossViewSplitJoin checks Split/Join agreement between the two
// views, value retention through the round trip, and the half-open
// boundary (left < key <= ... right).
func TestCrossViewSplitJoin(t *testing.T) {
	opts := Options{Workers: 4}
	r := rand.New(rand.NewSource(99))
	keys := randomKeys(r, 5000, 1<<20)
	tr := NewFromKeys(opts, keys)
	m := NewMapFromItems(opts, keys, tagVals(keys, 7))
	sorted := dedup(keys)

	for _, cut := range []int64{sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1] + 1, -5} {
		tl, trr := tr.Split(cut)
		ml, mr := m.Split(cut)
		if !slices.Equal(tl.Keys(), ml.Keys()) || !slices.Equal(trr.Keys(), mr.Keys()) {
			t.Fatalf("Split(%d): views disagree", cut)
		}
		if n := len(tl.Keys()); n > 0 && tl.Keys()[n-1] >= cut {
			t.Fatalf("Split(%d): left holds key >= cut", cut)
		}
		if rk := trr.Keys(); len(rk) > 0 && rk[0] < cut {
			t.Fatalf("Split(%d): right holds key < cut", cut)
		}
		checkTreeView(t, "split/left", tl)
		checkTreeView(t, "split/right", trr)

		joined := ml.Join(mr)
		jk, jv := joined.Items()
		if !slices.Equal(jk, sorted) {
			t.Fatalf("Split(%d)+Join: lost keys", cut)
		}
		for i, k := range jk {
			if jv[i] != uint64(k)<<8|7 {
				t.Fatalf("Split(%d)+Join: value for key %d corrupted", cut, k)
			}
		}
		checkMapView(t, "join", joined)
	}
}

// TestSetAlgebraResultsAreLive verifies results are fully functional
// trees: they accept further batches and share the operand's worker
// pool configuration.
func TestSetAlgebraResultsAreLive(t *testing.T) {
	opts := Options{Workers: 4}
	a := NewFromKeys(opts, []int64{1, 2, 3, 4, 5})
	b := NewFromKeys(opts, []int64{4, 5, 6, 7})
	u := a.Union(b)
	if u.Workers() != a.Workers() {
		t.Fatalf("result pool workers = %d, want %d", u.Workers(), a.Workers())
	}
	if n := u.InsertBatch([]int64{100, 101}); n != 2 {
		t.Fatalf("InsertBatch on union result = %d", n)
	}
	if n := u.RemoveBatch([]int64{1}); n != 1 {
		t.Fatalf("RemoveBatch on union result = %d", n)
	}
	want := []int64{2, 3, 4, 5, 6, 7, 100, 101}
	if !slices.Equal(u.Keys(), want) {
		t.Fatalf("union result after batches = %v, want %v", u.Keys(), want)
	}
	// The operand is unaffected by batches on the result.
	if !slices.Equal(a.Keys(), []int64{1, 2, 3, 4, 5}) {
		t.Fatal("batches on the result leaked into the operand")
	}
}

// TestConcurrentSnapshotAlgebra exercises the snapshot fences: a
// SnapshotMap must observe every operation submitted before it and be
// fully detached from the live frontend, and UnionSnapshot must merge
// two frontends under the requested policy.
func TestConcurrentSnapshotAlgebra(t *testing.T) {
	ca := NewConcurrentFromItems[int64, uint64](ConcurrentOptions{}, []int64{1, 2, 3}, []uint64{10, 20, 30})
	defer ca.Close()
	cb := NewConcurrentFromItems[int64, uint64](ConcurrentOptions{}, []int64{3, 4}, []uint64{31, 41})
	defer cb.Close()

	snap := ca.SnapshotMap()
	if k := snap.Keys(); !slices.Equal(k, []int64{1, 2, 3}) {
		t.Fatalf("SnapshotMap keys = %v", k)
	}
	// Detachment: mutations on either side stay invisible to the other.
	ca.Put(99, 990)
	snap.Put(50, 500)
	if snap.Contains(99) {
		t.Fatal("snapshot observed a post-fence write")
	}
	if ca.Contains(50) {
		t.Fatal("snapshot write leaked into the live frontend")
	}

	left := ca.UnionSnapshot(cb, LeftWins)
	if k := left.Keys(); !slices.Equal(k, []int64{1, 2, 3, 4, 99}) {
		t.Fatalf("UnionSnapshot keys = %v", k)
	}
	if v, _ := left.Get(3); v != 30 {
		t.Fatalf("LeftWins kept value %d for common key", v)
	}
	right := ca.UnionSnapshot(cb, RightWins)
	if v, _ := right.Get(3); v != 31 {
		t.Fatalf("RightWins kept value %d for common key", v)
	}
	checkMapView(t, "unionsnapshot", right)

	// Snapshot-derived maps run whole-tree algebra like any other Map.
	both := left.Intersect(right, LeftWins)
	if !slices.Equal(both.Keys(), left.Keys()) {
		t.Fatal("snapshot-derived maps cannot run set algebra")
	}
}

func randomKeys(r *rand.Rand, n int, span int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63n(span)
	}
	return out
}
