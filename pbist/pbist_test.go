package pbist

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func shuffled(r *rand.Rand, keys []int64) []int64 {
	out := slices.Clone(keys)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func distinct(r *rand.Rand, n int, span int64) []int64 {
	set := map[int64]struct{}{}
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestZeroOptionsDefaults(t *testing.T) {
	tr := New[int64](Options{})
	if tr.Workers() < 1 {
		t.Fatal("default workers < 1")
	}
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
}

func TestNewFromKeysUnsortedWithDuplicates(t *testing.T) {
	in := []int64{5, 3, 9, 3, 1, 9, 9, 7}
	tr := NewFromKeys(Options{Workers: 4}, in)
	want := []int64{1, 3, 5, 7, 9}
	if !slices.Equal(tr.Keys(), want) {
		t.Fatalf("Keys() = %v, want %v", tr.Keys(), want)
	}
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(want))
	}
	// Caller's slice must be untouched.
	if !slices.Equal(in, []int64{5, 3, 9, 3, 1, 9, 9, 7}) {
		t.Fatal("NewFromKeys mutated its input")
	}
}

func TestContainsBatchPreservesInputOrder(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 4}, []int64{2, 4, 6, 8})
	in := []int64{9, 2, 2, 5, 8, 1, 4}
	want := []bool{false, true, true, false, true, false, true}
	got := tr.ContainsBatch(in)
	if !slices.Equal(got, want) {
		t.Fatalf("ContainsBatch(%v) = %v, want %v", in, got, want)
	}
}

func TestInsertRemoveBatchUnsorted(t *testing.T) {
	tr := New[int64](Options{Workers: 4})
	if n := tr.InsertBatch([]int64{5, 1, 3, 1, 5}); n != 3 {
		t.Fatalf("InsertBatch inserted %d, want 3", n)
	}
	if n := tr.InsertBatch([]int64{3, 2}); n != 1 {
		t.Fatalf("second InsertBatch inserted %d, want 1", n)
	}
	if n := tr.RemoveBatch([]int64{9, 5, 5, 2}); n != 2 {
		t.Fatalf("RemoveBatch removed %d, want 2", n)
	}
	if !slices.Equal(tr.Keys(), []int64{1, 3}) {
		t.Fatalf("Keys() = %v", tr.Keys())
	}
}

func TestIntersection(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	got := tr.Intersection([]int64{9, 4, 3, 3, 10})
	if !slices.Equal(got, []int64{3, 9}) {
		t.Fatalf("Intersection = %v, want [3 9]", got)
	}
	if tr.Len() != 5 {
		t.Fatal("Intersection modified the set")
	}
	if tr.Intersection(nil) != nil {
		t.Fatal("empty intersection should be nil")
	}
}

func TestDifference(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	got := tr.Difference([]int64{9, 4, 3, 3, 10})
	if !slices.Equal(got, []int64{1, 5, 7}) {
		t.Fatalf("Difference = %v, want [1 5 7]", got)
	}
	if tr.Len() != 5 {
		t.Fatal("Difference modified the set")
	}
	if got := tr.Difference(nil); !slices.Equal(got, []int64{1, 3, 5, 7, 9}) {
		t.Fatalf("Difference(nil) = %v, want the whole set", got)
	}
	// Intersection and Difference partition the set for any batch.
	batch := []int64{2, 3, 7, 8}
	inter := tr.Intersection(batch)
	diff := tr.Difference(batch)
	if len(inter)+len(diff) != tr.Len() {
		t.Fatalf("|A∩B| + |A\\B| = %d + %d != |A| = %d", len(inter), len(diff), tr.Len())
	}
	if empty := New[int64](Options{}); len(empty.Difference(batch)) != 0 {
		t.Fatal("Difference on empty set must be empty")
	}
}

func TestSetIterators(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 2, LeafCap: 4}, []int64{5, 1, 9, 3, 7})
	var got []int64
	for k := range tr.All() {
		got = append(got, k)
	}
	if !slices.Equal(got, []int64{1, 3, 5, 7, 9}) {
		t.Fatalf("All = %v", got)
	}
	got = got[:0]
	for k := range tr.Ascend(3, 7) {
		got = append(got, k)
	}
	if !slices.Equal(got, []int64{3, 5, 7}) {
		t.Fatalf("Ascend(3,7) = %v", got)
	}
	n := 0
	for range tr.All() {
		if n++; n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("early break visited %d keys", n)
	}
}

func TestScalarOps(t *testing.T) {
	tr := New[int](Options{Workers: 1})
	if !tr.Insert(10) || tr.Insert(10) {
		t.Fatal("Insert semantics wrong")
	}
	if !tr.Contains(10) || tr.Contains(11) {
		t.Fatal("Contains semantics wrong")
	}
	if !tr.Remove(10) || tr.Remove(10) {
		t.Fatal("Remove semantics wrong")
	}
}

func TestSetWorkers(t *testing.T) {
	tr := NewFromKeys(Options{Workers: 1}, []int64{1, 2, 3})
	tr.SetWorkers(8)
	if tr.Workers() != 8 {
		t.Fatalf("Workers = %d, want 8", tr.Workers())
	}
	tr.InsertBatch([]int64{4, 5})
	if tr.Len() != 5 {
		t.Fatal("tree broken after SetWorkers")
	}
	tr.SetWorkers(0)
	if tr.Workers() < 1 {
		t.Fatal("SetWorkers(0) should select machine parallelism")
	}
}

func TestAssumeSortedFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	keys := distinct(r, 5000, 1<<30)
	tr := NewFromKeys(Options{Workers: 4, AssumeSorted: true}, keys)
	if tr.Len() != len(keys) {
		t.Fatal("bulk load with AssumeSorted failed")
	}
	probe := distinct(r, 1000, 1<<30)
	res := tr.ContainsBatch(probe)
	for i, k := range probe {
		if _, want := slices.BinarySearch(keys, k); res[i] != want {
			t.Fatalf("ContainsBatch[%d] wrong", i)
		}
	}
}

func TestRankTraversalOption(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	keys := distinct(r, 20000, 1<<30)
	probes := distinct(r, 5000, 1<<30)
	def := NewFromKeys(Options{Workers: 4}, keys)
	rank := NewFromKeys(Options{Workers: 4, RankTraversal: true}, keys)
	if !slices.Equal(def.ContainsBatch(probes), rank.ContainsBatch(probes)) {
		t.Fatal("RankTraversal changes answers")
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	tr := New[int64](Options{Workers: 4, LeafCap: 8, RebuildFactor: 2})
	ref := map[int64]bool{}
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := r.Intn(500)
		batch := make([]int64, n) // unsorted, possibly duplicated
		for i := range batch {
			batch[i] = r.Int63n(3000)
		}
		switch round % 3 {
		case 0:
			want := 0
			for _, k := range batch {
				if !ref[k] {
					ref[k] = true
					want++
				}
			}
			if got := tr.InsertBatch(batch); got != want {
				t.Fatalf("round %d: InsertBatch = %d, want %d", round, got, want)
			}
		case 1:
			want := 0
			for _, k := range batch {
				if ref[k] {
					delete(ref, k)
					want++
				}
			}
			if got := tr.RemoveBatch(batch); got != want {
				t.Fatalf("round %d: RemoveBatch = %d, want %d", round, got, want)
			}
		default:
			got := tr.ContainsBatch(batch)
			for i, k := range batch {
				if got[i] != ref[k] {
					t.Fatalf("round %d: ContainsBatch[%d] = %v, want %v", round, i, got[i], ref[k])
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, tr.Len(), len(ref))
		}
	}
}

func TestStatsAndHeight(t *testing.T) {
	keys := make([]int64, 100000)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	tr := NewFromKeys(Options{Workers: 8}, keys)
	s := tr.Stats()
	if s.LiveKeys != len(keys) || s.DeadKeys != 0 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.Height != tr.Height() {
		t.Fatal("Stats.Height and Height() disagree")
	}
	if s.Height > 6 {
		t.Fatalf("height %d too large for ideally built 10^5 keys", s.Height)
	}
	if s.RootRepLen < 150 || s.RootRepLen > 640 {
		t.Fatalf("root rep %d not Θ(√n)", s.RootRepLen)
	}
	tr.RemoveBatch(keys[:10])
	if s := tr.Stats(); s.DeadKeys == 0 {
		t.Fatal("logical removals should leave dead keys")
	}
}

func TestEmptyBatches(t *testing.T) {
	tr := New[int64](Options{})
	if tr.ContainsBatch(nil) != nil {
		t.Fatal("ContainsBatch(nil) should be nil")
	}
	if tr.InsertBatch(nil) != 0 || tr.RemoveBatch(nil) != 0 {
		t.Fatal("empty batches should be no-ops")
	}
}

func TestQuickBatchOrderInsensitivity(t *testing.T) {
	// Inserting any permutation of a batch yields the same set.
	prop := func(raw []int32, seed int64) bool {
		keys := make([]int64, len(raw))
		for i, v := range raw {
			keys[i] = int64(v)
		}
		r := rand.New(rand.NewSource(seed))
		a := New[int64](Options{Workers: 2})
		a.InsertBatch(keys)
		b := New[int64](Options{Workers: 2})
		b.InsertBatch(shuffled(r, keys))
		return slices.Equal(a.Keys(), b.Keys())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUintAndFloatKeys(t *testing.T) {
	tu := New[uint32](Options{Workers: 2})
	tu.InsertBatch([]uint32{10, 5, 20})
	if !slices.Equal(tu.Keys(), []uint32{5, 10, 20}) {
		t.Fatalf("uint keys: %v", tu.Keys())
	}
	tf := New[float64](Options{Workers: 2})
	tf.InsertBatch([]float64{2.5, -1.25, 0})
	if !slices.Equal(tf.Keys(), []float64{-1.25, 0, 2.5}) {
		t.Fatalf("float keys: %v", tf.Keys())
	}
}
