package pbist

import (
	"sync"
	"testing"
	"time"
)

// Race-mode stress for the recycled epoch buffers of the Concurrent
// frontend and the per-tree arenas behind it. Run under -race these
// tests prove that (a) a buffer recycled by one epoch is never still
// reachable from a previous epoch's clients, and (b) recycled buffers
// never cross between two engines, even when their owning frontends
// run flat out at the same time. Exact per-key oracles catch silent
// value corruption that a data-race detector alone would miss.

func stressConcurrent(t *testing.T, mode ReuseMode) {
	const (
		clients = 16
		rounds  = 300
		keys    = 512 // small universe: heavy same-key contention
	)
	c := NewConcurrent[int64, int64](ConcurrentOptions{
		Options: Options{Workers: 4, ReuseBuffers: mode},
		// Tiny epochs + near-zero wait: maximize epoch count so
		// buffers recycle as often as possible.
		MaxBatch: 64,
		MaxWait:  50 * time.Microsecond,
	})
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * keys
			for i := 0; i < rounds; i++ {
				k := base + int64(i%keys)
				want := base*1_000_003 + int64(i)
				c.Put(k, want)
				if got, ok := c.Get(k); !ok || got != want {
					t.Errorf("client %d: Get(%d) = (%d, %v), want %d", g, k, got, ok, want)
					return
				}
				if i%7 == 0 {
					c.Delete(k)
					if _, ok := c.Get(k); ok {
						t.Errorf("client %d: key %d survived delete", g, k)
						return
					}
					c.Put(k, want)
				}
				if i%50 == 0 {
					// Snapshots interleave whole-tree reads with the
					// recycled write batches of neighboring epochs.
					ks, vs := c.Items()
					if len(ks) != len(vs) {
						t.Errorf("snapshot misaligned: %d keys, %d vals", len(ks), len(vs))
						return
					}
					for j := 1; j < len(ks); j++ {
						if ks[j-1] >= ks[j] {
							t.Errorf("snapshot keys unsorted at %d", j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every client's final key set is intact: client g owns keys
	// [g·keys, (g+1)·keys) exclusively, so cross-epoch or cross-client
	// buffer leaks surface as missing or foreign values here.
	for g := 0; g < clients; g++ {
		base := int64(g) * keys
		k := base + int64((rounds-1)%keys)
		want := base*1_000_003 + int64(rounds-1)
		if got, ok := c.Get(k); !ok || got != want {
			t.Fatalf("post-stress: client %d key %d = (%d, %v), want %d", g, k, got, ok, want)
		}
	}
}

func TestConcurrentEpochBufferReuseStress(t *testing.T) {
	t.Run("reuseOn", func(t *testing.T) { stressConcurrent(t, ReuseOn) })
	t.Run("reuseOff", func(t *testing.T) { stressConcurrent(t, ReuseOff) })
}

// TestTwoConcurrentFrontends runs two independent frontends flat out
// in one process: their engines own disjoint arenas, so nothing — not
// scratch buffers, not chunk storage — may bleed between them.
func TestTwoConcurrentFrontends(t *testing.T) {
	const n = 4000
	mk := func(tag int64) *Concurrent[int64, int64] {
		keys := rangeKeys(tag*1_000_000, n, 1)
		vals := make([]int64, n)
		for i, k := range keys {
			vals[i] = k ^ tag
		}
		return NewConcurrentFromItems(ConcurrentOptions{
			Options:  Options{Workers: 2},
			MaxBatch: 128,
		}, keys, vals)
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, tag := a, int64(1)
			if g%2 == 1 {
				c, tag = b, int64(2)
			}
			base := tag * 1_000_000
			for i := 0; i < 500; i++ {
				k := base + int64(i%n)
				c.Put(k, k^tag^int64(i))
				if got, ok := c.Get(k); !ok || got != k^tag^int64(i) {
					t.Errorf("frontend %d: wrong value for %d: %d", tag, k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Neither tree picked up the other's key universe.
	ka, _ := a.Items()
	for _, k := range ka {
		if k < 1_000_000 || k >= 2_000_000 {
			t.Fatalf("frontend A holds foreign key %d", k)
		}
	}
	kb, _ := b.Items()
	for _, k := range kb {
		if k < 2_000_000 || k >= 3_000_000 {
			t.Fatalf("frontend B holds foreign key %d", k)
		}
	}
}
