package pbist_test

import (
	"fmt"
	"sync"

	"repro/pbist"
)

func Example() {
	tree := pbist.New[int64](pbist.Options{Workers: 2})
	tree.InsertBatch([]int64{30, 10, 20, 10}) // unsorted, duplicated: fine
	fmt.Println(tree.Keys())
	fmt.Println(tree.ContainsBatch([]int64{10, 15, 20}))
	// Output:
	// [10 20 30]
	// [true false true]
}

func ExampleTree_InsertBatch() {
	// InsertBatch is set union: A ← A ∪ B.
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	added := a.InsertBatch([]int64{2, 4, 5, 7, 8})
	fmt.Println(added, a.Keys())
	// Output:
	// 3 [1 2 3 4 5 7 8 9]
}

func ExampleTree_RemoveBatch() {
	// RemoveBatch is set difference: A ← A \ B.
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	removed := a.RemoveBatch([]int64{2, 3, 6, 7, 9})
	fmt.Println(removed, a.Keys())
	// Output:
	// 3 [1 5]
}

func ExampleTree_Intersection() {
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	fmt.Println(a.Intersection([]int64{9, 4, 3, 10}))
	// Output:
	// [3 9]
}

func ExampleTree_Difference() {
	// Difference is RemoveBatch without the mutation: A \ B.
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	fmt.Println(a.Difference([]int64{9, 4, 3, 10}))
	fmt.Println(a.Len()) // the set itself is untouched
	// Output:
	// [1 5 7]
	// 5
}

func ExampleTree_Union() {
	// Union combines two whole trees into a new one; neither operand
	// is modified.
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5})
	b := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{3, 4, 5, 6})
	u := a.Union(b)
	fmt.Println(u.Keys())
	fmt.Println(a.Len(), b.Len()) // operands untouched
	// Output:
	// [1 3 4 5 6]
	// 3 4
}

func ExampleTree_Split() {
	// Split partitions a set at a pivot; Join is its inverse for
	// non-overlapping key ranges.
	a := pbist.NewFromKeys(pbist.Options{Workers: 2}, []int64{1, 3, 5, 7, 9})
	low, high := a.Split(5)
	fmt.Println(low.Keys(), high.Keys())
	fmt.Println(low.Join(high).Keys())
	// Output:
	// [1 3] [5 7 9]
	// [1 3 5 7 9]
}

func ExampleMap_Union() {
	// Value-carrying union takes a merge policy for keys present in
	// both maps: LeftWins keeps the receiver's value, RightWins the
	// argument's.
	may := pbist.NewMapFromItems(pbist.Options{Workers: 2},
		[]int64{1, 2, 3}, []string{"a1", "a2", "a3"})
	june := pbist.NewMapFromItems(pbist.Options{Workers: 2},
		[]int64{2, 3, 4}, []string{"b2", "b3", "b4"})
	merged := june.Union(may, pbist.LeftWins) // june's values win on 2, 3
	for k, v := range merged.All() {
		fmt.Println(k, v)
	}
	// Output:
	// 1 a1
	// 2 b2
	// 3 b3
	// 4 b4
}

func ExampleMap_GetBatch() {
	// A Map runs the same batched machinery with a value per key.
	m := pbist.NewMap[int64, string](pbist.Options{Workers: 2})
	m.PutBatch(
		[]int64{30, 10, 20, 10},               // unsorted, duplicated: fine
		[]string{"cam", "ada", "bob", "ada2"}, // last occurrence of 10 wins
	)
	vals, found := m.GetBatch([]int64{10, 15, 20})
	fmt.Println(vals)
	fmt.Println(found)
	// Output:
	// [ada2  bob]
	// [true false true]
}

func ExampleMap_Ascend() {
	m := pbist.NewMapFromItems(pbist.Options{Workers: 2},
		[]int64{40, 10, 30, 20}, []string{"d", "a", "c", "b"})
	for k, v := range m.Ascend(15, 35) {
		fmt.Println(k, v)
	}
	// Output:
	// 20 b
	// 30 c
}

func ExampleConcurrent() {
	// Concurrent serves many goroutines through one batched engine: a
	// combiner coalesces whatever they submit into epochs and runs
	// each epoch as one batched traversal.
	c := pbist.NewConcurrent[int64, string](pbist.ConcurrentOptions{})
	defer c.Close()

	var wg sync.WaitGroup
	for i, name := range []string{"ada", "bob", "cam"} {
		wg.Add(1)
		go func(id int64, name string) {
			defer wg.Done()
			c.Put(id, name)
		}(int64(10*(i+1)), name)
	}
	wg.Wait()

	v, ok := c.Get(20)
	fmt.Println(v, ok)
	fmt.Println(c.Len(), c.Keys())
	// Output:
	// bob true
	// 3 [10 20 30]
}

func ExampleTree_Stats() {
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i)
	}
	tree := pbist.NewFromKeys(pbist.Options{Workers: 1}, keys)
	s := tree.Stats()
	fmt.Println(s.LiveKeys, s.Height > 0, s.RootRepLen)
	// Output:
	// 1000 true 31
}

func ExampleSharded_PutBatch() {
	// Four trees behind one facade: the batch is split by key range,
	// the four sub-batches execute concurrently (one epoch per shard),
	// and the insert count is gathered back.
	s := pbist.NewShardedRange[int64, string](
		pbist.ShardedOptions{Shards: 4}, 0, 400)
	defer s.Close()
	inserted := s.PutBatch(
		[]int64{350, 50, 150, 250, 50}, // unsorted, duplicated: fine
		[]string{"d", "x", "b", "c", "a"})
	fmt.Println(inserted)
	v, ok := s.Get(50) // last occurrence won, as in Map.PutBatch
	fmt.Println(v, ok)
	// Output:
	// 4
	// a true
}

func ExampleSharded_Range() {
	// Under range partitioning shard order refines key order, so a
	// cross-shard Range only queries the overlapping shards and
	// concatenates their already-sorted answers.
	s := pbist.NewShardedRange[int64, string](
		pbist.ShardedOptions{Shards: 4}, 0, 400)
	defer s.Close()
	s.PutBatch([]int64{10, 110, 210, 310}, []string{"a", "b", "c", "d"})
	ks, vs := s.Range(100, 399)
	fmt.Println(ks, vs)
	for k, v := range s.Ascend(0, 150) {
		fmt.Println(k, v)
	}
	// Output:
	// [110 210 310] [b c d]
	// 10 a
	// 110 b
}
