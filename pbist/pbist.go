// Package pbist provides a sorted set and a sorted map of numeric
// keys backed by a Parallel-Batched Interpolation Search Tree, the
// data structure of "Parallel-batched Interpolation Search Tree"
// (Aksenov, Kokorin, Martsenyuk; PACT 2023).
//
// Four views share one engine:
//
//   - Tree[K] is the sorted set: single-key operations (Contains,
//     Insert, Remove), batched operations (ContainsBatch, InsertBatch,
//     RemoveBatch), slice algebra (Intersection, Difference), and
//     whole-tree algebra (Union, Intersect, DiffTree, SymDiff, Split,
//     Join — non-mutating, returning new trees).
//   - Map[K, V] is the sorted map: the same batched machinery carrying
//     a value with every key (Get/GetBatch, Put/PutBatch,
//     Delete/DeleteBatch) plus ordered iteration (All, Ascend),
//     value-carrying Min/Max/Select/Range, and the same whole-tree
//     algebra with an explicit MergePolicy on Union/Intersect.
//   - Concurrent[K, V] is the shared frontend: the map engine served
//     to arbitrarily many goroutines through a combining queue, for
//     workloads where operations arrive one key at a time from
//     concurrent clients rather than pre-assembled into batches.
//   - Sharded[K, V] is the scatter-gather frontend: the key space
//     partitioned across N independent engines (each behind its own
//     combiner, all sharing one worker pool and one scratch arena),
//     for batched write throughput past a single combiner's one
//     epoch at a time — per-key linearizable, per-shard atomic.
//
// All views run every batch through the same parallel-batched traversal:
//
//	t := pbist.New[int64](pbist.Options{})
//	t.InsertBatch(ids)                // A ← A ∪ ids
//	hits := t.ContainsBatch(queries)  // membership vector
//	t.RemoveBatch(expired)            // A ← A \ expired
//
//	m := pbist.NewMap[int64, string](pbist.Options{})
//	m.PutBatch(ids, names)            // upsert, last occurrence wins
//	names, ok := m.GetBatch(queries)  // values + found vector
//	for id, name := range m.Ascend(lo, hi) { ... }
//
// When keys are drawn from a smooth distribution (uniform, for
// example), a batch of m operations against n stored keys costs
// expected O(m·log log n) work — asymptotically better than the
// O(m·log n) of balanced binary trees — and polylogarithmic span, so
// throughput scales with cores. The set view is the V = struct{}
// instantiation of the same core tree, so it pays nothing for the
// value plumbing.
//
// Batched methods accept arbitrary key slices: unsorted input is
// sorted and duplicated keys are coalesced internally (ContainsBatch
// and GetBatch still answer positionally for every input element, and
// PutBatch resolves duplicate keys in one batch to the last
// occurrence). Callers that can guarantee sorted duplicate-free
// batches set Options.AssumeSorted to skip normalization.
//
// # Concurrency model
//
// Tree and Map are NOT safe for concurrent use: the parallel-batched
// model runs one batch at a time on the caller's goroutine and
// parallelizes inside the batch. They are the right view when the
// application already holds its work as batches — bulk loads,
// analytical joins, periodic merges — because they spend zero
// synchronization per operation.
//
// Concurrent is the view for the opposite shape: many goroutines each
// issuing individual operations. Every method is safe for concurrent
// use, and the structure is linearizable. A single combiner goroutine
// coalesces everything submitted concurrently into an epoch, executes
// the epoch as one batched read traversal plus one batched write
// traversal (with full intra-batch parallelism), and routes each
// result back to its caller. The more clients, the bigger the epochs,
// so throughput grows where a lock around a Map would collapse —
// while a single isolated client pays queue latency for no batching
// benefit. Rule of thumb: own the batch, use Tree/Map; share the
// structure, use Concurrent.
//
// Sharded relaxes observation, not operation: per-key operations stay
// linearizable, but Stats and Trace gather per-shard snapshots with no
// cross-shard fence — each shard's counters are read while the other
// shards keep executing, so the result is consistent per shard only.
// (Whole-structure data reads are stronger: Items, Keys, Len,
// SnapshotMap, and Snapshot each take one atomic cut of all shards'
// published versions, so they are mutually atomic.)
//
// # Wait-free reads and snapshots (MVCC)
//
// The combining frontends additionally publish an immutable version
// of the tree after every mutating epoch — one atomic pointer store,
// sequenced before the epoch's callers are woken. GetFast,
// ContainsFast, and Snapshot read that version without entering the
// combining queue: they are wait-free (bounded steps, no locks, no
// retries against writers) and linearizable against completed
// operations — once a Put has returned, every later fast read
// observes it; an operation still in flight may not be visible until
// its epoch publishes. Snapshot is O(changed), not a clone: the
// frozen Map shares unrebuilt chunk storage with the live tree, and
// the engine's copy-on-rebuild generations guarantee the live tree
// never mutates storage a published version can still reach.
//
// Reclamation contract: storage retired by a rebuild enters a grace
// ring and is recycled only after every reader pinned in the
// retiring era has left (two-band era counters) — a fast read or
// snapshot iteration never observes recycled memory, with no
// stop-the-world and no per-read allocation. Durable snapshots
// extend the grace transitively: chunks a live Snapshot can reach
// are handed to the garbage collector rather than recycled. Version
// readers survive Close — a snapshot taken before a frontend drains
// stays valid after — while queue-path operations on a closed
// frontend panic.
//
// # Rebuild scheduling
//
// The engine keeps itself balanced by rebuilding any subtree that has
// absorbed more than RebuildFactor times its built size in
// modifications. By default that rebuild runs eagerly, inside the
// batch that crossed the threshold — amortized O(log log n) per key,
// but an occasional O(n) stall when the root trips, which is exactly
// the tail a latency-sensitive service notices. Setting
// Options.RebuildBudgetPerEpoch caps the keys of rebuild work any one
// batch (or combining epoch) spends; over-budget subtrees are
// recorded as debt and repaid by later epochs, largest debt first.
// Options.AsyncRebuild additionally moves repayment off the epoch
// path under the combining frontends: the indebted subtree is rebuilt
// from the last published version by a background goroutine while
// readers keep using the old shape, and spliced in at a later epoch
// boundary. Deferral trades peak latency for a transiently
// less-balanced tree — reads of an indebted subtree pay the same
// degraded (still-correct) cost they already paid between threshold
// and rebuild. Stats reports outstanding debt, and epoch traces
// carry per-epoch rebuild spend; see ARCHITECTURE.md's "Rebuild
// scheduling" section.
//
// # Observability
//
// Setting Options.Metrics to a Metrics registry (NewMetrics) turns on
// engine-wide instrumentation: combining-epoch counters and
// client-observed latency histograms, core rebuild events, arena
// retention gauges, and shard scatter/stitch/filter metrics, exported
// point-in-time via Snapshot, WriteJSON, or PublishExpvar. Like a
// Sharded Stats call, a Snapshot is gathered without stopping the
// engine: consistent per metric, not linearized across metrics. A nil
// registry (the default) disables all recording at zero cost. The
// combining frontends additionally retain a bounded ring of structured
// epoch traces readable through Trace; see ARCHITECTURE.md's
// Observability section for the metric catalog.
package pbist

import (
	"iter"
	"runtime"
	"slices"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Key is the constraint on tree keys: ordered types with an
// order-preserving conversion to float64, which interpolation search
// needs to estimate positions numerically.
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Options configures a Tree or a Map. The zero value gives sensible
// defaults; the same Options value works for both views.
type Options struct {
	// Workers bounds the parallelism of batched operations. 0 selects
	// GOMAXPROCS; 1 makes every operation sequential.
	Workers int
	// LeafCap is the paper's H: subtrees at most this large are stored
	// as plain sorted arrays. Default 16.
	LeafCap int
	// RebuildFactor is the paper's C: a subtree is rebuilt once it has
	// absorbed more than C times its built size in modifications.
	// Default 2.
	RebuildFactor int
	// RebuildBudgetPerEpoch caps the rebuild work one mutating batch
	// (or one combining epoch, under the concurrent frontends) may
	// spend inline, measured in keys laid down. Subtrees whose rebuild
	// does not fit the remaining budget are deferred as debt and
	// repaid by later epochs, largest debt first, so a single O(n)
	// root rebuild no longer lands in one victim operation's latency.
	// 0 (the default) keeps the paper's eager behavior: every due
	// rebuild runs inline in the triggering batch.
	RebuildBudgetPerEpoch int
	// AsyncRebuild moves deferred rebuild debt off the epoch path
	// entirely: a background goroutine rebuilds the most indebted
	// subtree from the last published version while readers and the
	// combiner keep serving it, and the result is spliced in at a
	// later epoch boundary (or abandoned, if the subtree changed
	// mid-build). Effective only under the combining frontends
	// (Concurrent, Sharded) with RebuildBudgetPerEpoch set; Tree and
	// Map ignore it because they publish no versions to rebuild from.
	AsyncRebuild bool
	// LeafSlack scales the headroom a leaf merge reallocates with:
	// a leaf outgrowing its array is regrown to n·LeafSlack so nearby
	// future inserts merge in place. Values < 1 select the default
	// 1.5. Larger values trade dead space for fewer reallocations;
	// see the leafslack benchmark experiment.
	LeafSlack float64
	// IndexSizeFactor scales the per-node interpolation index.
	// Default 1.0.
	IndexSizeFactor float64
	// RankTraversal switches batched traversals from per-key
	// interpolation search to merge-based ranking. Interpolation is
	// faster on smooth inputs; ranking is distribution-insensitive.
	RankTraversal bool
	// AssumeSorted promises that every batch passed to the tree is
	// already sorted and duplicate-free, skipping normalization.
	// Results are undefined if the promise is broken; use only on
	// trusted input paths.
	AssumeSorted bool
	// ReuseBuffers controls the tree-owned scratch arena that recycles
	// internal temporaries (position buffers, membership side arrays,
	// flatten/merge buffers) across batched operations and rebuilds.
	// The default, ReuseOn, is what makes steady-state batches nearly
	// allocation-free; ReuseOff allocates every temporary fresh, for
	// allocation profiling and differential testing. Results are
	// identical either way.
	//
	// Aliasing guarantees are unaffected by the setting: slices passed
	// in are never retained (bulk loads and batched writes copy keys
	// and values into tree-owned chunk storage at the construction
	// boundary), and slices handed out (Keys, Items, Range, batch
	// results) are always freshly allocated, never recycled ones. The
	// arena only circulates buffers the tree itself created. Recycled
	// buffers may briefly retain copies of removed values until their
	// next reuse; set ReuseOff if even bounded retention of value
	// memory matters.
	ReuseBuffers ReuseMode
	// Metrics attaches the engine to an observability registry:
	// rebuild events, arena retention and hit rates, combining epoch
	// phases, and client-observed latency all record into it, and the
	// combining frontends additionally retain epoch traces readable
	// through Trace. One registry may be shared across any number of
	// views. nil (the default) disables all recording at zero cost on
	// the hot paths. See Metrics and ARCHITECTURE.md's Observability
	// section for the metric catalog.
	Metrics *Metrics
}

// ReuseMode selects a buffer-recycling policy for Options.ReuseBuffers.
type ReuseMode int8

const (
	// ReuseDefault is the zero value and behaves like ReuseOn.
	ReuseDefault ReuseMode = iota
	// ReuseOn recycles internal scratch buffers (the default).
	ReuseOn
	// ReuseOff allocates every internal temporary fresh.
	ReuseOff
)

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		LeafCap:               o.LeafCap,
		RebuildFactor:         o.RebuildFactor,
		RebuildBudgetPerEpoch: o.RebuildBudgetPerEpoch,
		AsyncRebuild:          o.AsyncRebuild,
		LeafSlack:             o.LeafSlack,
		IndexSizeFactor:       o.IndexSizeFactor,
		DisableBufferReuse:    o.ReuseBuffers == ReuseOff,
		Metrics:               o.Metrics,
	}
	if o.RankTraversal {
		cfg.Traverse = core.TraverseRank
	}
	return cfg
}

func (o Options) pool() *parallel.Pool {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return parallel.NewPool(w)
}

// view is the shared half of both public types: the core tree, its
// pool, and the normalization policy. Tree and Map embed it, so
// configuration, statistics, worker control, and the key-only queries
// exist once rather than per view.
type view[K Key, V any] struct {
	t            *core.Tree[K, V]
	pool         *parallel.Pool
	assumeSorted bool
}

// Len reports the number of keys stored.
func (vw *view[K, V]) Len() int { return vw.t.Len() }

// Contains reports whether key is present.
func (vw *view[K, V]) Contains(key K) bool { return vw.t.Contains(key) }

// Keys returns the keys in ascending order.
func (vw *view[K, V]) Keys() []K { return vw.t.Keys() }

// ContainsBatch reports membership for every element of keys:
// result[i] corresponds to keys[i], whatever the input order, and
// duplicate inputs each receive their (identical) answer.
func (vw *view[K, V]) ContainsBatch(keys []K) []bool {
	if len(keys) == 0 {
		return nil
	}
	if vw.assumeSorted || isSortedUnique(keys) {
		return vw.t.ContainsBatched(keys)
	}
	// Query the sorted unique view, then scatter answers back to the
	// caller's positions.
	sorted := parallel.SortedDedup(vw.pool, slices.Clone(keys))
	hits := vw.t.ContainsBatched(sorted)
	out := make([]bool, len(keys))
	parallel.For(vw.pool, len(keys), 0, func(i int) {
		j, _ := slices.BinarySearch(sorted, keys[i])
		out[i] = hits[j]
	})
	return out
}

// CountRange reports how many keys lie in [lo, hi] without
// materializing them.
func (vw *view[K, V]) CountRange(lo, hi K) int { return vw.t.CountRange(lo, hi) }

// RankOf reports the number of keys strictly less than key.
func (vw *view[K, V]) RankOf(key K) int { return vw.t.RankOf(key) }

// Workers reports the parallelism bound of batched operations.
func (vw *view[K, V]) Workers() int { return vw.pool.Workers() }

// SetWorkers rebinds the view to a pool of n workers (0 selects
// GOMAXPROCS). Existing contents are untouched; only subsequent
// operations are affected.
func (vw *view[K, V]) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	vw.pool = parallel.NewPool(n)
	vw.t.SetPool(vw.pool)
}

// Stats reports structural statistics (shape, balance, and memory of
// the interpolation indexes) together with the arena counters of the
// memory subsystem.
func (vw *view[K, V]) Stats() Stats {
	s := vw.t.Stats()
	return Stats{
		LiveKeys:      s.LiveKeys,
		DeadKeys:      s.DeadKeys,
		Nodes:         s.Nodes,
		Leaves:        s.Leaves,
		Height:        s.Height,
		RootRepLen:    s.RootRepLen,
		MaxLeafLen:    s.MaxLeafLen,
		IndexBytes:    s.IndexBytes,
		ScratchGets:   s.ScratchGets,
		ScratchReuses: s.ScratchReuses,
		ChunkBuilds:   s.ChunkBuilds,
		ChunkKeys:     s.ChunkKeys,
		LeafGrows:     s.LeafGrows,
		DebtKeys:      s.DebtKeys,
		DeferredKeys:  s.DeferredKeys,
		AsyncRebuilds: s.AsyncRebuilds,
		SpliceRetries: s.SpliceRetries,
	}
}

// Height reports the number of nodes on the longest root-to-leaf
// path. For an ideally balanced tree of n keys this is O(log log n).
func (vw *view[K, V]) Height() int { return vw.t.Height() }

// normalize returns keys as a sorted duplicate-free slice, copying
// when mutation would be observable by the caller. When the input is
// already sorted (or promised so via AssumeSorted), the caller's
// slice is passed through as-is — safe because no core operation
// retains a batch slice: bulk loads copy keys into tree-owned chunk
// storage at construction, and batched updates merge into leaf arrays
// the tree already owns (or fresh chunk storage on rebuild).
func (vw *view[K, V]) normalize(keys []K) []K {
	if vw.assumeSorted || isSortedUnique(keys) {
		return keys
	}
	cp := slices.Clone(keys)
	return parallel.SortedDedup(vw.pool, cp)
}

// removeBatch deletes every element of keys, returning how many were
// actually present. Tree.RemoveBatch and Map.DeleteBatch are its
// public names.
func (vw *view[K, V]) removeBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	return vw.t.RemoveBatched(vw.normalize(keys))
}

func isSortedUnique[K Key](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return false
		}
	}
	return true
}

// Tree is the set view: a parallel-batched interpolation search tree
// over keys of type K, without values. Create one with New or
// NewFromKeys.
type Tree[K Key] struct {
	view[K, struct{}]
}

// New returns an empty set.
func New[K Key](opts Options) *Tree[K] {
	p := opts.pool()
	tr := &Tree[K]{}
	tr.t = core.New[K, struct{}](opts.coreConfig(), p)
	tr.pool = p
	tr.assumeSorted = opts.AssumeSorted
	return tr
}

// NewFromKeys returns a set containing keys, bulk-loaded in O(n) work
// into an ideally balanced shape. The input slice is not retained —
// even on the already-sorted (or AssumeSorted) fast path, which hands
// the slice to the bulk loader without copying first, construction
// copies every key into tree-owned chunk storage — and it need not be
// sorted (unless Options.AssumeSorted, in which case it must be
// sorted and duplicate-free).
func NewFromKeys[K Key](opts Options, keys []K) *Tree[K] {
	p := opts.pool()
	tr := &Tree[K]{}
	tr.pool = p
	tr.assumeSorted = opts.AssumeSorted
	tr.t = core.NewFromSorted(opts.coreConfig(), p, tr.normalize(keys))
	return tr
}

// Clone returns a deep, fully detached copy of the set: one parallel
// flatten plus one chunked ideal rebuild (near-free on top of the
// rebuild machinery), sharing the receiver's options and worker pool
// but nothing else — mutations on either side are never visible
// through the other. The clone is ideally balanced even when the
// receiver is mid-churn, so Clone doubles as compaction.
func (tr *Tree[K]) Clone() *Tree[K] {
	cp := &Tree[K]{}
	cp.t = tr.t.Clone()
	cp.pool = tr.pool
	cp.assumeSorted = tr.assumeSorted
	return cp
}

// Insert adds key, reporting whether it was absent.
func (tr *Tree[K]) Insert(key K) bool { return tr.t.Insert(key) }

// Remove deletes key, reporting whether it was present.
func (tr *Tree[K]) Remove(key K) bool { return tr.t.Remove(key) }

// InsertBatch adds every element of keys, returning how many were
// actually new. It computes the set union A ← A ∪ keys.
func (tr *Tree[K]) InsertBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	return tr.t.InsertBatched(tr.normalize(keys))
}

// RemoveBatch deletes every element of keys, returning how many were
// actually present. It computes the set difference A ← A \ keys.
func (tr *Tree[K]) RemoveBatch(keys []K) int { return tr.removeBatch(keys) }

// Intersection returns the elements of keys that are present in the
// set, sorted and duplicate-free: A ∩ keys. The set is not modified.
func (tr *Tree[K]) Intersection(keys []K) []K {
	if len(keys) == 0 {
		return nil
	}
	norm := tr.normalize(keys)
	hits := tr.t.ContainsBatched(norm)
	return parallel.FilterIndex(tr.pool, norm, func(i int) bool { return hits[i] })
}

// Difference returns the elements of the set that do not occur in
// keys, sorted: A \ keys. It is RemoveBatch without the mutation. The
// batch goes through the same normalize fast path as every other
// batched method — already-sorted duplicate-free input is used as-is,
// never cloned or re-sorted — and is subtracted from the flattened set
// in one parallel pass. The set is not modified.
func (tr *Tree[K]) Difference(keys []K) []K {
	if len(keys) == 0 || tr.Len() == 0 {
		return tr.Keys()
	}
	return parallel.Difference(tr.pool, tr.Keys(), tr.normalize(keys))
}

// Min returns the smallest key in the set; ok is false when empty.
func (tr *Tree[K]) Min() (key K, ok bool) {
	key, _, ok = tr.t.Min()
	return key, ok
}

// Max returns the largest key in the set; ok is false when empty.
func (tr *Tree[K]) Max() (key K, ok bool) {
	key, _, ok = tr.t.Max()
	return key, ok
}

// Range returns the keys in [lo, hi], ascending.
func (tr *Tree[K]) Range(lo, hi K) []K { return tr.t.Range(lo, hi) }

// Select returns the idx-th smallest key (0-based); ok is false when
// idx is out of range.
func (tr *Tree[K]) Select(idx int) (key K, ok bool) {
	key, _, ok = tr.t.Select(idx)
	return key, ok
}

// All returns an in-order iterator over the keys of the set.
func (tr *Tree[K]) All() iter.Seq[K] {
	return func(yield func(K) bool) {
		for k := range tr.t.All() {
			if !yield(k) {
				return
			}
		}
	}
}

// Ascend returns an in-order iterator over the keys in [lo, hi].
func (tr *Tree[K]) Ascend(lo, hi K) iter.Seq[K] {
	return func(yield func(K) bool) {
		for k := range tr.t.Ascend(lo, hi) {
			if !yield(k) {
				return
			}
		}
	}
}

// Stats summarizes the structure of a Tree or Map, plus the arena
// counters of the memory subsystem (see Options.ReuseBuffers).
type Stats struct {
	LiveKeys   int // keys logically stored
	DeadKeys   int // logically removed keys awaiting a rebuild
	Nodes      int // total nodes, leaves included
	Leaves     int // leaf nodes
	Height     int // nodes on the longest root-to-leaf path; 0 when empty
	RootRepLen int // length of the root's Rep array (Θ(√n) when balanced)
	MaxLeafLen int // longest leaf array
	IndexBytes int // memory held by interpolation indexes

	// ScratchGets counts internal scratch-buffer requests since
	// construction and ScratchReuses how many were served by a
	// recycled buffer; their ratio is the arena hit rate (0 under
	// ReuseOff). ChunkBuilds counts chunked subtree (re)builds and
	// ChunkKeys the key slots those builds laid out contiguously.
	ScratchGets   int64
	ScratchReuses int64
	ChunkBuilds   int64
	ChunkKeys     int64

	// LeafGrows counts leaf merges that outgrew their arrays and
	// reallocated with Options.LeafSlack headroom.
	LeafGrows int64

	// Rebuild-scheduler counters; all zero unless
	// Options.RebuildBudgetPerEpoch is set. DebtKeys is the rebuild
	// debt currently outstanding (a gauge, in keys); DeferredKeys the
	// cumulative rebuild keys deferred past their triggering epoch;
	// AsyncRebuilds the background rebuilds launched under
	// Options.AsyncRebuild; SpliceRetries the async rebuilds abandoned
	// because the subtree changed while it was being rebuilt.
	DebtKeys      int64
	DeferredKeys  int64
	AsyncRebuilds int64
	SpliceRetries int64
}
