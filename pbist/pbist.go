// Package pbist provides a sorted set of numeric keys backed by a
// Parallel-Batched Interpolation Search Tree, the data structure of
// "Parallel-batched Interpolation Search Tree" (Aksenov, Kokorin,
// Martsenyuk; PACT 2023).
//
// A Tree serves single-key operations (Contains, Insert, Remove) and —
// its reason to exist — batched operations that process many keys in
// one parallel pass:
//
//	t := pbist.New[int64](pbist.Options{})
//	t.InsertBatch(ids)                // A ← A ∪ ids
//	hits := t.ContainsBatch(queries)  // membership vector
//	t.RemoveBatch(expired)            // A ← A \ expired
//
// When keys are drawn from a smooth distribution (uniform, for
// example), a batch of m operations against n stored keys costs
// expected O(m·log log n) work — asymptotically better than the
// O(m·log n) of balanced binary trees — and polylogarithmic span, so
// throughput scales with cores.
//
// Batched methods accept arbitrary key slices: unsorted input is
// sorted and duplicated keys are coalesced internally (ContainsBatch
// still answers positionally for every input element). Callers that
// can guarantee sorted duplicate-free batches set Options.AssumeSorted
// to skip normalization. A Tree is not safe for concurrent use: the
// parallel-batched model runs one batch at a time and parallelizes
// inside the batch.
package pbist

import (
	"runtime"
	"slices"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Key is the constraint on tree keys: ordered types with an
// order-preserving conversion to float64, which interpolation search
// needs to estimate positions numerically.
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Options configures a Tree. The zero value gives sensible defaults.
type Options struct {
	// Workers bounds the parallelism of batched operations. 0 selects
	// GOMAXPROCS; 1 makes every operation sequential.
	Workers int
	// LeafCap is the paper's H: subtrees at most this large are stored
	// as plain sorted arrays. Default 16.
	LeafCap int
	// RebuildFactor is the paper's C: a subtree is rebuilt once it has
	// absorbed more than C times its built size in modifications.
	// Default 2.
	RebuildFactor int
	// IndexSizeFactor scales the per-node interpolation index.
	// Default 1.0.
	IndexSizeFactor float64
	// RankTraversal switches batched traversals from per-key
	// interpolation search to merge-based ranking. Interpolation is
	// faster on smooth inputs; ranking is distribution-insensitive.
	RankTraversal bool
	// AssumeSorted promises that every batch passed to the tree is
	// already sorted and duplicate-free, skipping normalization.
	// Results are undefined if the promise is broken; use only on
	// trusted input paths.
	AssumeSorted bool
}

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		LeafCap:         o.LeafCap,
		RebuildFactor:   o.RebuildFactor,
		IndexSizeFactor: o.IndexSizeFactor,
	}
	if o.RankTraversal {
		cfg.Traverse = core.TraverseRank
	}
	return cfg
}

func (o Options) pool() *parallel.Pool {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return parallel.NewPool(w)
}

// Tree is a parallel-batched interpolation search tree over keys of
// type K. Create one with New or NewFromKeys.
type Tree[K Key] struct {
	t            *core.Tree[K]
	pool         *parallel.Pool
	assumeSorted bool
}

// New returns an empty tree.
func New[K Key](opts Options) *Tree[K] {
	p := opts.pool()
	return &Tree[K]{
		t:            core.New[K](opts.coreConfig(), p),
		pool:         p,
		assumeSorted: opts.AssumeSorted,
	}
}

// NewFromKeys returns a tree containing keys, bulk-loaded in O(n) work
// into an ideally balanced shape. The input slice is not retained and
// need not be sorted (unless Options.AssumeSorted, in which case it
// must be sorted and duplicate-free).
func NewFromKeys[K Key](opts Options, keys []K) *Tree[K] {
	p := opts.pool()
	tr := &Tree[K]{pool: p, assumeSorted: opts.AssumeSorted}
	tr.t = core.NewFromSorted(opts.coreConfig(), p, tr.normalize(keys))
	return tr
}

// normalize returns keys as a sorted duplicate-free slice, copying
// when mutation would be observable by the caller.
func (tr *Tree[K]) normalize(keys []K) []K {
	if tr.assumeSorted || isSortedUnique(keys) {
		return keys
	}
	cp := slices.Clone(keys)
	return parallel.SortedDedup(tr.pool, cp)
}

func isSortedUnique[K Key](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return false
		}
	}
	return true
}

// Len reports the number of keys in the set.
func (tr *Tree[K]) Len() int { return tr.t.Len() }

// Contains reports whether key is in the set.
func (tr *Tree[K]) Contains(key K) bool { return tr.t.Contains(key) }

// Insert adds key, reporting whether it was absent.
func (tr *Tree[K]) Insert(key K) bool { return tr.t.Insert(key) }

// Remove deletes key, reporting whether it was present.
func (tr *Tree[K]) Remove(key K) bool { return tr.t.Remove(key) }

// Keys returns the keys in ascending order.
func (tr *Tree[K]) Keys() []K { return tr.t.Keys() }

// ContainsBatch reports membership for every element of keys:
// result[i] corresponds to keys[i], whatever the input order, and
// duplicate inputs each receive their (identical) answer.
func (tr *Tree[K]) ContainsBatch(keys []K) []bool {
	if len(keys) == 0 {
		return nil
	}
	if tr.assumeSorted || isSortedUnique(keys) {
		return tr.t.ContainsBatched(keys)
	}
	// Query the sorted unique view, then scatter answers back to the
	// caller's positions.
	sorted := parallel.SortedDedup(tr.pool, slices.Clone(keys))
	hits := tr.t.ContainsBatched(sorted)
	out := make([]bool, len(keys))
	parallel.For(tr.pool, len(keys), 0, func(i int) {
		j, _ := slices.BinarySearch(sorted, keys[i])
		out[i] = hits[j]
	})
	return out
}

// InsertBatch adds every element of keys, returning how many were
// actually new. It computes the set union A ← A ∪ keys.
func (tr *Tree[K]) InsertBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	return tr.t.InsertBatched(tr.normalize(keys))
}

// RemoveBatch deletes every element of keys, returning how many were
// actually present. It computes the set difference A ← A \ keys.
func (tr *Tree[K]) RemoveBatch(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	return tr.t.RemoveBatched(tr.normalize(keys))
}

// Intersection returns the elements of keys that are present in the
// set, sorted and duplicate-free: A ∩ keys. The set is not modified.
func (tr *Tree[K]) Intersection(keys []K) []K {
	if len(keys) == 0 {
		return nil
	}
	norm := tr.normalize(keys)
	hits := tr.t.ContainsBatched(norm)
	return parallel.FilterIndex(tr.pool, norm, func(i int) bool { return hits[i] })
}

// Min returns the smallest key in the set; ok is false when empty.
func (tr *Tree[K]) Min() (key K, ok bool) { return tr.t.Min() }

// Max returns the largest key in the set; ok is false when empty.
func (tr *Tree[K]) Max() (key K, ok bool) { return tr.t.Max() }

// Range returns the keys in [lo, hi], ascending.
func (tr *Tree[K]) Range(lo, hi K) []K { return tr.t.Range(lo, hi) }

// CountRange reports how many keys lie in [lo, hi] without
// materializing them.
func (tr *Tree[K]) CountRange(lo, hi K) int { return tr.t.CountRange(lo, hi) }

// Select returns the idx-th smallest key (0-based); ok is false when
// idx is out of range.
func (tr *Tree[K]) Select(idx int) (key K, ok bool) { return tr.t.Select(idx) }

// RankOf reports the number of keys strictly less than key.
func (tr *Tree[K]) RankOf(key K) int { return tr.t.RankOf(key) }

// Workers reports the parallelism bound of batched operations.
func (tr *Tree[K]) Workers() int { return tr.pool.Workers() }

// SetWorkers rebinds the tree to a pool of n workers (0 selects
// GOMAXPROCS). Existing contents are untouched; only subsequent
// operations are affected.
func (tr *Tree[K]) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tr.pool = parallel.NewPool(n)
	tr.t.SetPool(tr.pool)
}

// Stats summarizes the structure of a tree.
type Stats struct {
	LiveKeys   int // keys logically in the set
	DeadKeys   int // logically removed keys awaiting a rebuild
	Nodes      int // total nodes, leaves included
	Leaves     int // leaf nodes
	Height     int // nodes on the longest root-to-leaf path; 0 when empty
	RootRepLen int // length of the root's Rep array (Θ(√n) when balanced)
	MaxLeafLen int // longest leaf array
	IndexBytes int // memory held by interpolation indexes
}

// Stats reports structural statistics (shape, balance, and memory of
// the interpolation indexes).
func (tr *Tree[K]) Stats() Stats {
	s := tr.t.Stats()
	return Stats{
		LiveKeys:   s.LiveKeys,
		DeadKeys:   s.DeadKeys,
		Nodes:      s.Nodes,
		Leaves:     s.Leaves,
		Height:     s.Height,
		RootRepLen: s.RootRepLen,
		MaxLeafLen: s.MaxLeafLen,
		IndexBytes: s.IndexBytes,
	}
}

// Height reports the number of nodes on the longest root-to-leaf
// path. For an ideally balanced tree of n keys this is O(log log n).
func (tr *Tree[K]) Height() int { return tr.t.Height() }
