package pbist

import (
	"slices"
	"testing"
)

// decodeOperands splits raw fuzz bytes into two small key sets. Keys
// live in [0, 64) so collisions between the operands are common.
func decodeOperands(data []byte) (a, b []int64) {
	if len(data) == 0 {
		return nil, nil
	}
	cut := int(data[0]) % (len(data) + 1)
	rest := data[1:]
	if cut > len(rest) {
		cut = len(rest)
	}
	for _, x := range rest[:cut] {
		a = append(a, int64(x%64))
	}
	for _, x := range rest[cut:] {
		b = append(b, int64(x%64))
	}
	return a, b
}

// FuzzTreeSetAlgebra decodes two operand sets and an operation from
// raw bytes, runs the whole-tree operation, and checks the result
// exactly against a sorted-slice model — including Split/Join round
// trips. Seeds double as regression tests under plain `go test`; run
// `go test -fuzz=FuzzTreeSetAlgebra ./pbist` for exploration.
func FuzzTreeSetAlgebra(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{3, 1, 2, 3, 4, 5, 6})
	f.Add(byte(2), []byte{0, 9, 9, 9, 1, 2})
	f.Add(byte(3), []byte{7, 255, 254, 1, 0, 63, 63})
	f.Add(byte(4), []byte{2, 10, 20, 30, 40})
	f.Add(byte(5), []byte{120, 1, 2, 3})
	f.Fuzz(func(t *testing.T, op byte, data []byte) {
		rawA, rawB := decodeOperands(data)
		a, b := dedup(rawA), dedup(rawB)
		opts := Options{Workers: 2, LeafCap: 4, RebuildFactor: 1}
		ta, tb := NewFromKeys(opts, rawA), NewFromKeys(opts, rawB)

		inA := map[int64]bool{}
		for _, k := range a {
			inA[k] = true
		}
		inB := map[int64]bool{}
		for _, k := range b {
			inB[k] = true
		}

		var got *Tree[int64]
		var want []int64
		switch op % 5 {
		case 0:
			got = ta.Union(tb)
			want = append(want, a...)
			for _, k := range b {
				if !inA[k] {
					want = append(want, k)
				}
			}
		case 1:
			got = ta.Intersect(tb)
			for _, k := range a {
				if inB[k] {
					want = append(want, k)
				}
			}
		case 2:
			got = ta.DiffTree(tb)
			for _, k := range a {
				if !inB[k] {
					want = append(want, k)
				}
			}
		case 3:
			got = ta.SymDiff(tb)
			for _, k := range a {
				if !inB[k] {
					want = append(want, k)
				}
			}
			for _, k := range b {
				if !inA[k] {
					want = append(want, k)
				}
			}
		default:
			// Split at a key decoded from op, then Join back.
			cut := int64(op % 64)
			left, right := ta.Split(cut)
			if lk := left.Keys(); len(lk) > 0 && lk[len(lk)-1] >= cut {
				t.Fatalf("Split(%d): left holds %d", cut, lk[len(lk)-1])
			}
			if rk := right.Keys(); len(rk) > 0 && rk[0] < cut {
				t.Fatalf("Split(%d): right holds %d", cut, rk[0])
			}
			if n := left.Len() + right.Len(); n != len(a) {
				t.Fatalf("Split(%d): %d + %d != %d", cut, left.Len(), right.Len(), len(a))
			}
			got = left.Join(right)
			want = a
		}
		slices.Sort(want)
		want = slices.Compact(want)
		if !slices.Equal(got.Keys(), want) {
			t.Fatalf("op %d: a=%v b=%v got %v want %v", op%5, a, b, got.Keys(), want)
		}
		if got.Len() != len(want) {
			t.Fatalf("op %d: Len = %d, want %d", op%5, got.Len(), len(want))
		}
		// Operands must survive.
		if !slices.Equal(ta.Keys(), a) || !slices.Equal(tb.Keys(), b) {
			t.Fatalf("op %d mutated an operand", op%5)
		}
	})
}

// FuzzMapUnionPolicy decodes two key-value sets and checks Map.Union
// under both policies against a builtin-map model: result keys, which
// value survives a collision, and operand integrity.
func FuzzMapUnionPolicy(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4, 5}, true)
	f.Add([]byte{}, []byte{9, 9, 9}, false)
	f.Add([]byte{255, 0, 17}, []byte{17, 0}, true)
	f.Add([]byte{42}, []byte{}, false)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, rightWins bool) {
		decode := func(raw []byte, tag uint64) ([]int64, []uint64, map[int64]uint64) {
			var ks []int64
			var vs []uint64
			model := map[int64]uint64{}
			for i, x := range raw {
				k := int64(x % 32)
				v := uint64(i)<<8 | tag
				ks = append(ks, k)
				vs = append(vs, v)
				model[k] = v // last occurrence wins, as in PutBatch
			}
			return ks, vs, model
		}
		ka, va, modelA := decode(rawA, 1)
		kb, vb, modelB := decode(rawB, 2)
		opts := Options{Workers: 2, LeafCap: 4, RebuildFactor: 1}
		ma := NewMapFromItems(opts, ka, va)
		mb := NewMapFromItems(opts, kb, vb)

		policy := LeftWins
		if rightWins {
			policy = RightWins
		}
		got := ma.Union(mb, policy)

		want := map[int64]uint64{}
		for k, v := range modelA {
			want[k] = v
		}
		for k, v := range modelB {
			if _, shared := modelA[k]; !shared || rightWins {
				want[k] = v
			}
		}
		if got.Len() != len(want) {
			t.Fatalf("Union(%v) Len = %d, want %d", policy, got.Len(), len(want))
		}
		gk, gv := got.Items()
		if !isSortedUnique(gk) {
			t.Fatalf("Union(%v) keys not sorted unique: %v", policy, gk)
		}
		for i, k := range gk {
			wv, ok := want[k]
			if !ok {
				t.Fatalf("Union(%v) invented key %d", policy, k)
			}
			if gv[i] != wv {
				t.Fatalf("Union(%v) value for key %d = %#x, want %#x", policy, k, gv[i], wv)
			}
		}
		// Operands unchanged.
		if ma.Len() != len(modelA) || mb.Len() != len(modelB) {
			t.Fatalf("Union(%v) mutated an operand", policy)
		}
	})
}
