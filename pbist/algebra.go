package pbist

import "repro/internal/core"

// Whole-tree set algebra: Union, Intersect, DiffTree, SymDiff, Split,
// and Join combine two trees (or maps) into new ones, never mutating
// an operand. Each operation flattens both operands in parallel,
// combines the sorted arrays with a shard-parallel merge kernel, and
// rebuilds an ideally balanced result — O(n₁+n₂) work, polylogarithmic
// span, and a result in the best shape for subsequent batches. Results
// carry the receiver's configuration, worker pool, and normalization
// policy.
//
// The value-carrying variants on Map take a MergePolicy choosing which
// operand's value survives on keys present in both.

// MergePolicy selects which operand's value wins for a key present in
// both operands of a value-carrying Union or Intersect.
type MergePolicy int

const (
	// LeftWins keeps the receiver's value on common keys.
	LeftWins MergePolicy = iota
	// RightWins takes the argument's value on common keys.
	RightWins
)

// String names the policy for logs and table output.
func (pol MergePolicy) String() string {
	if pol == RightWins {
		return "right-wins"
	}
	return "left-wins"
}

// wrap dresses a core result tree in a set view sharing the receiver's
// pool and batch-normalization policy.
func (tr *Tree[K]) wrap(ct *core.Tree[K, struct{}]) *Tree[K] {
	out := &Tree[K]{}
	out.t = ct
	out.pool = tr.pool
	out.assumeSorted = tr.assumeSorted
	return out
}

// Union returns a new set holding every key of tr and other: A ∪ B.
// Neither operand is modified.
func (tr *Tree[K]) Union(other *Tree[K]) *Tree[K] {
	return tr.wrap(tr.t.Union(other.t, true))
}

// Intersect returns a new set holding the keys present in both tr and
// other: A ∩ B. Neither operand is modified.
func (tr *Tree[K]) Intersect(other *Tree[K]) *Tree[K] {
	return tr.wrap(tr.t.Intersect(other.t, false))
}

// DiffTree returns a new set holding the keys of tr that are not in
// other: A \ B. Neither operand is modified. (Difference is the
// slice-operand variant of the same operation.)
func (tr *Tree[K]) DiffTree(other *Tree[K]) *Tree[K] {
	return tr.wrap(tr.t.DifferenceTree(other.t))
}

// SymDiff returns a new set holding the keys present in exactly one of
// tr and other: A △ B. Neither operand is modified.
func (tr *Tree[K]) SymDiff(other *Tree[K]) *Tree[K] {
	return tr.wrap(tr.t.SymmetricDifference(other.t))
}

// Split partitions the set by key into two new sets: left holds the
// keys < key, right the keys >= key. The receiver is not modified.
func (tr *Tree[K]) Split(key K) (left, right *Tree[K]) {
	cl, cr := tr.t.Split(key)
	return tr.wrap(cl), tr.wrap(cr)
}

// Join returns a new set holding every key of tr and other, requiring
// every key of tr to be strictly smaller than every key of other (the
// inverse of Split). It panics when the ranges touch or overlap; use
// Union for arbitrary operands. Neither operand is modified.
func (tr *Tree[K]) Join(other *Tree[K]) *Tree[K] {
	return tr.wrap(tr.t.Join(other.t))
}

// wrap dresses a core result tree in a map view sharing the receiver's
// pool and batch-normalization policy.
func (m *Map[K, V]) wrap(ct *core.Tree[K, V]) *Map[K, V] {
	out := &Map[K, V]{}
	out.t = ct
	out.pool = m.pool
	out.assumeSorted = m.assumeSorted
	return out
}

// Union returns a new map holding every key of m and other. On keys
// present in both, policy picks the surviving value: LeftWins keeps
// m's, RightWins takes other's. Neither operand is modified.
func (m *Map[K, V]) Union(other *Map[K, V], policy MergePolicy) *Map[K, V] {
	return m.wrap(m.t.Union(other.t, policy == RightWins))
}

// Intersect returns a new map holding the keys present in both m and
// other, with values chosen by policy. Neither operand is modified.
func (m *Map[K, V]) Intersect(other *Map[K, V], policy MergePolicy) *Map[K, V] {
	return m.wrap(m.t.Intersect(other.t, policy == RightWins))
}

// DiffTree returns a new map holding the pairs of m whose key is not
// in other. Neither operand is modified.
func (m *Map[K, V]) DiffTree(other *Map[K, V]) *Map[K, V] {
	return m.wrap(m.t.DifferenceTree(other.t))
}

// SymDiff returns a new map holding the pairs whose key is present in
// exactly one of m and other; each pair keeps the value of the operand
// it came from, so no policy is needed. Neither operand is modified.
func (m *Map[K, V]) SymDiff(other *Map[K, V]) *Map[K, V] {
	return m.wrap(m.t.SymmetricDifference(other.t))
}

// Split partitions the map by key into two new maps: left holds the
// pairs with key < key, right those with key >= key. The receiver is
// not modified.
func (m *Map[K, V]) Split(key K) (left, right *Map[K, V]) {
	cl, cr := m.t.Split(key)
	return m.wrap(cl), m.wrap(cr)
}

// Join returns a new map holding every pair of m and other, requiring
// every key of m to be strictly smaller than every key of other (the
// inverse of Split). It panics when the ranges touch or overlap; use
// Union for arbitrary operands. Neither operand is modified.
func (m *Map[K, V]) Join(other *Map[K, V]) *Map[K, V] {
	return m.wrap(m.t.Join(other.t))
}
