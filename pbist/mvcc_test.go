package pbist_test

import (
	"maps"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/pbist"
)

// TestFastReadsLinearizable checks the core contract of the wait-free
// read path: an operation that has completed is always visible to
// GetFast/ContainsFast, because the combiner publishes a version
// before waking the epoch's clients.
func TestFastReadsLinearizable(t *testing.T) {
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	defer c.Close()
	for i := int64(0); i < 2000; i++ {
		c.Put(i, uint64(i)*3)
		if v, ok := c.GetFast(i); !ok || v != uint64(i)*3 {
			t.Fatalf("GetFast(%d) = %d,%v after Put returned", i, v, ok)
		}
		if !c.ContainsFast(i) {
			t.Fatalf("ContainsFast(%d) false after Put returned", i)
		}
	}
	for i := int64(0); i < 2000; i += 2 {
		c.Delete(i)
		if c.ContainsFast(i) {
			t.Fatalf("ContainsFast(%d) true after Delete returned", i)
		}
	}
	if v, ok := c.GetFast(1); !ok || v != 3 {
		t.Fatalf("GetFast(1) = %d,%v", v, ok)
	}
}

// TestSnapshotOracleDifferential drives a Concurrent with random
// batched mutations against a map oracle and, at every fence, checks
// the O(changed) Snapshot against both the oracle and the combiner's
// own Items — then keeps mutating and re-verifies that the snapshot
// stayed frozen and that mutating the snapshot never leaks into the
// live structure.
func TestSnapshotOracleDifferential(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	defer c.Close()
	oracle := map[int64]uint64{}

	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		nk := 1 + r.IntN(400)
		ks := make([]int64, nk)
		vs := make([]uint64, nk)
		for i := range ks {
			ks[i] = int64(r.IntN(3000))
			vs[i] = r.Uint64()
		}
		if r.IntN(4) == 0 {
			c.DeleteBatch(ks)
			for _, k := range ks {
				delete(oracle, k)
			}
		} else {
			c.PutBatch(ks, vs)
			for i, k := range ks {
				oracle[k] = vs[i]
			}
		}

		snap := c.Snapshot()
		wantK := slices.Sorted(maps.Keys(oracle))
		gotK, gotV := snap.Items()
		if !slices.Equal(gotK, wantK) {
			t.Fatalf("round %d: snapshot keys diverge from oracle", round)
		}
		for i, k := range gotK {
			if gotV[i] != oracle[k] {
				t.Fatalf("round %d: snapshot val[%d] = %d, oracle %d", round, gotV[i], i, oracle[k])
			}
		}
		liveK, _ := c.Items()
		if !slices.Equal(liveK, wantK) {
			t.Fatalf("round %d: Items diverges from oracle", round)
		}

		// Churn the live structure, then re-verify the snapshot froze.
		c.PutBatch(ks, ks2vals(ks))
		if k2, _ := snap.Items(); !slices.Equal(k2, wantK) {
			t.Fatalf("round %d: snapshot mutated by live writes", round)
		}
		for i, k := range ks {
			oracle[k] = uint64(ks[i]) + 1
		}

		// Mutating the snapshot must never disturb the live structure.
		snap.Put(-int64(round)-1, 42)
		if c.ContainsFast(-int64(round) - 1) {
			t.Fatalf("round %d: snapshot write leaked into live structure", round)
		}
	}
}

func ks2vals(ks []int64) []uint64 {
	vs := make([]uint64, len(ks))
	for i, k := range ks {
		vs[i] = uint64(k) + 1
	}
	return vs
}

// TestFastReadStressAcrossClose hammers the wait-free read path from
// many goroutines while writers churn enough keys to force rebuilds
// (and hence chunk retirement and reclamation underneath), then closes
// the frontend mid-flight and checks that the version readers keep
// serving the final published state. Run under -race this doubles as
// the reclamation-boundary data-race check: readers walk chunk-backed
// storage while the combiner retires and recycles chunks.
func TestFastReadStressAcrossClose(t *testing.T) {
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	const span = 4096
	writers, readers := 2, 2
	steps := 120
	if testing.Short() {
		writers, readers, steps = 1, 2, 40
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var halfOnce sync.Once
	half := make(chan struct{}) // closed when writer 0 passes steps/2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, seed uint64) {
			defer wg.Done()
			// Close races the writers by design: a writer caught
			// mid-submit panics with the closed-Concurrent message,
			// which is its documented outcome — swallow it and stop.
			defer func() { _ = recover() }()
			r := rand.New(rand.NewPCG(seed, seed^0xabc))
			for s := 0; s < steps; s++ {
				if w == 0 && s == steps/2 {
					halfOnce.Do(func() { close(half) })
				}
				ks := make([]int64, 256)
				vs := make([]uint64, 256)
				for i := range ks {
					ks[i] = int64(r.IntN(span))
					vs[i] = r.Uint64() | 1
				}
				if s%5 == 4 {
					c.DeleteBatch(ks[:64])
				} else {
					c.PutBatch(ks, vs)
				}
			}
			halfOnce.Do(func() { close(half) })
		}(w, uint64(w)+1)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed^0x55, seed))
			for !stop.Load() {
				k := int64(r.IntN(span))
				v, ok := c.GetFast(k)
				if ok && v == 0 {
					t.Error("GetFast returned ok with a value no writer stores")
					return
				}
				if r.IntN(64) == 0 {
					snap := c.Snapshot()
					sk, sv := snap.Items()
					for i := range sk {
						if sv[i] == 0 {
							t.Error("snapshot holds a value no writer stores")
							return
						}
					}
				}
				// Yield between wait-free reads: on a small GOMAXPROCS a
				// spinning reader would otherwise starve the combiner
				// round trips the writers depend on.
				runtime.Gosched()
			}
		}(uint64(g) + 101)
	}

	// Close once real churn has happened (half the write steps), with
	// writers and readers still running: the combiner drains, publishes
	// its final state, and the wait-free paths must keep answering.
	<-half
	wgWriters := make(chan struct{})
	go func() { wg.Wait(); close(wgWriters) }()
	c.Close()
	stop.Store(true)
	<-wgWriters

	if !c.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// Version readers survive Close; the queue paths panic.
	finalK, finalV := c.Snapshot().Items()
	for i, k := range finalK {
		if v, ok := c.GetFast(k); !ok || v != finalV[i] {
			t.Fatalf("post-Close GetFast(%d) = %d,%v, want %d", k, v, ok, finalV[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get on closed Concurrent did not panic")
			}
		}()
		c.Get(1)
	}()
}

// TestShardedFastReads checks GetFast/ContainsFast against the oracle
// across the shard configurations (including filtered ones, where a
// Bloom miss answers without touching the shard tree), and that the
// fast path keeps serving after Close.
func TestShardedFastReads(t *testing.T) {
	for name, cfg := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewPCG(11, 13))
			n := 4000
			ks := make([]int64, n)
			vs := make([]uint64, n)
			for i := range ks {
				ks[i] = int64(r.IntN(1 << 20))
				vs[i] = uint64(i)
			}
			s := newShardedForTest(cfg, ks, vs)
			oracle := map[int64]uint64{}
			for i, k := range ks {
				oracle[k] = vs[i]
			}
			for k, v := range oracle {
				if got, ok := s.GetFast(k); !ok || got != v {
					t.Fatalf("GetFast(%d) = %d,%v, want %d", k, got, ok, v)
				}
			}
			for i := 0; i < 2000; i++ {
				k := int64(r.IntN(1 << 21))
				_, want := oracle[k]
				if s.ContainsFast(k) != want {
					t.Fatalf("ContainsFast(%d) != %v", k, want)
				}
			}
			s.Close()
			// Version readers survive Close on Sharded too.
			if got, ok := s.GetFast(ks[0]); !ok || got != oracle[ks[0]] {
				t.Fatalf("post-Close GetFast = %d,%v", got, ok)
			}
			if s.Len() != len(oracle) {
				t.Fatalf("post-Close Len = %d, want %d", s.Len(), len(oracle))
			}
		})
	}
}

// TestShardedCutConsistency is the regression test for the torn
// cross-shard read the atomic cut retires. A writer updates a key on
// shard A and then — strictly after that Put returned — a key on
// shard B with the same round number. Any whole-structure read
// therefore observes round(B) <= round(A) in every state that ever
// existed; the old per-shard fences could observe B's update without
// A's (B fenced late, A fenced early), inventing a state that never
// was. With the cut, Items and Len capture all shards at one instant.
func TestShardedCutConsistency(t *testing.T) {
	// Range partitioning over [0, 1000) with 4 shards puts 10 and 990
	// on the first and last shard deterministically.
	s := pbist.NewShardedRange[int64, uint64](pbist.ShardedOptions{Shards: 4}, 0, 1000)
	defer s.Close()
	const keyA, keyB = int64(10), int64(990)
	s.Put(keyA, 0)
	s.Put(keyB, 0)

	rounds := 150
	if testing.Short() {
		rounds = 40
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := uint64(1); r <= uint64(rounds); r++ {
			s.Put(keyA, r) // completes before B starts
			s.Put(keyB, r)
		}
		stop.Store(true)
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ks, vs := s.Items()
				var va, vb uint64
				for i, k := range ks {
					switch k {
					case keyA:
						va = vs[i]
					case keyB:
						vb = vs[i]
					}
				}
				if vb > va {
					t.Errorf("torn cut: round(B)=%d > round(A)=%d", vb, va)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
}

// TestShardedLenMonotone runs insert-only writers against concurrent
// Len readers: with the atomic cut, every Len is the size of a state
// that actually existed, so the sequence of observations from one
// reader is non-decreasing.
func TestShardedLenMonotone(t *testing.T) {
	s := pbist.NewSharded[int64, uint64](pbist.ShardedOptions{Shards: 4})
	defer s.Close()
	n := 6000
	if testing.Short() {
		n = 1500
	}
	const chunk = 100 // distinct keys per PutBatch: inserts only
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			ks := make([]int64, chunk)
			vs := make([]uint64, chunk)
			for i := int64(0); i < int64(n); i += chunk {
				for j := range ks {
					ks[j] = base + i + int64(j)
					vs[j] = 1
				}
				s.PutBatch(ks, vs)
			}
		}(int64(w) * int64(n))
	}
	go func() { wg.Wait(); stop.Store(true) }()
	prev := -1
	for !stop.Load() {
		if l := s.Len(); l < prev {
			t.Fatalf("Len went backwards: %d after %d", l, prev)
		} else {
			prev = l
		}
		runtime.Gosched()
	}
	wg.Wait()
	if got := s.Len(); got != 2*n {
		t.Fatalf("final Len = %d, want %d", got, 2*n)
	}
}
