package pbist_test

import (
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

// stressScale picks sizes for the differential stress tests: CI's
// -race -short pass keeps them quick, a full run goes wider.
func stressScale(t *testing.T) (clients, steps int) {
	t.Helper()
	if testing.Short() {
		return 100, 150
	}
	return 200, 600
}

// TestConcurrentDifferentialStress runs hundreds of client goroutines
// against one Concurrent, each owning a disjoint key stripe so every
// single result can be checked exactly against a per-client map
// oracle, while the combiner still coalesces ops from all clients
// into mixed read/write epochs. Finally the merged oracles must equal
// an atomic snapshot of the structure.
func TestConcurrentDifferentialStress(t *testing.T) {
	clients, steps := stressScale(t)
	const stride = 64
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	defer c.Close()

	oracles := make([]map[int64]uint64, clients)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		oracles[id] = make(map[int64]uint64)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			oracle := oracles[id]
			r := dist.NewRNG(0xd1f ^ uint64(id)*0x9e37)
			base := int64(id) * stride
			key := func() int64 { return base + r.Int63n(stride) }
			for step := 0; step < steps; step++ {
				switch r.Uint64n(8) {
				case 0, 1: // Put
					k, v := key(), r.Uint64()
					_, had := oracle[k]
					if ins := c.Put(k, v); ins == had {
						t.Errorf("client %d step %d: Put(%d) inserted=%v, oracle had=%v", id, step, k, ins, had)
						return
					}
					oracle[k] = v
				case 2: // Delete
					k := key()
					_, had := oracle[k]
					if rm := c.Delete(k); rm != had {
						t.Errorf("client %d step %d: Delete(%d)=%v, oracle %v", id, step, k, rm, had)
						return
					}
					delete(oracle, k)
				case 3, 4: // Get
					k := key()
					wv, had := oracle[k]
					v, ok := c.Get(k)
					if ok != had || (had && v != wv) {
						t.Errorf("client %d step %d: Get(%d)=%v,%v want %v,%v", id, step, k, v, ok, wv, had)
						return
					}
				case 5: // Contains
					k := key()
					_, had := oracle[k]
					if ok := c.Contains(k); ok != had {
						t.Errorf("client %d step %d: Contains(%d)=%v want %v", id, step, k, ok, had)
						return
					}
				case 6: // atomic PutBatch with a duplicated key (last wins)
					k1, k2 := key(), key()
					v1, v2, v3 := r.Uint64(), r.Uint64(), r.Uint64()
					c.PutBatch([]int64{k1, k2, k1}, []uint64{v1, v2, v3})
					oracle[k2] = v2 // k2 may equal k1; assign in input order
					oracle[k1] = v3
				case 7: // atomic GetBatch, unsorted possibly-duplicated input
					keys := []int64{key(), key(), key()}
					vals, found := c.GetBatch(keys)
					for i, k := range keys {
						wv, had := oracle[k]
						if found[i] != had || (had && vals[i] != wv) {
							t.Errorf("client %d step %d: GetBatch[%d](%d)=%v,%v want %v,%v",
								id, step, i, k, vals[i], found[i], wv, had)
							return
						}
					}
				}
			}
		}(id)
	}
	wg.Wait()

	merged := make(map[int64]uint64)
	for _, o := range oracles {
		for k, v := range o {
			merged[k] = v
		}
	}
	ks, vs := c.Items()
	if len(ks) != len(merged) {
		t.Fatalf("snapshot has %d keys, merged oracles %d", len(ks), len(merged))
	}
	if n := c.Len(); n != len(merged) {
		t.Fatalf("Len = %d, want %d", n, len(merged))
	}
	if !slices.IsSorted(ks) {
		t.Fatal("snapshot keys not sorted")
	}
	for i, k := range ks {
		if wv, ok := merged[k]; !ok || vs[i] != wv {
			t.Fatalf("snapshot[%d] = %d→%d, oracle %d (present=%v)", i, k, vs[i], wv, ok)
		}
	}

	st := c.Stats()
	if st.Ops < int64(clients) {
		t.Fatalf("stats counted %d ops for %d clients", st.Ops, clients)
	}
	if st.Epochs == 0 || st.MeanOps < 1 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestConcurrentSharedKeys hammers a tiny shared key set from many
// writers and readers at once. Exact per-op answers are
// scheduling-dependent, so it checks the invariants that must hold in
// every linearization: any observed value was actually written by
// some writer for exactly that key, and the final value of each key
// is some writer's last write.
func TestConcurrentSharedKeys(t *testing.T) {
	clients, steps := stressScale(t)
	const keyspace = 16
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	defer c.Close()

	encode := func(key int64, id, step int) uint64 {
		return uint64(key)<<32 | uint64(id)<<16 | uint64(step)
	}
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := dist.NewRNG(0x5a5a ^ uint64(id)*0xb47c)
			for step := 0; step < steps; step++ {
				k := r.Int63n(keyspace)
				switch r.Uint64n(4) {
				case 0:
					c.Put(k, encode(k, id, step))
				case 1:
					c.Delete(k)
				default:
					if v, ok := c.Get(k); ok {
						if int64(v>>32) != k || int(v>>16&0xffff) >= clients {
							t.Errorf("Get(%d) returned value %#x never written for that key", k, v)
							return
						}
					}
				}
			}
		}(id)
	}
	wg.Wait()
	ks, vs := c.Items()
	for i, k := range ks {
		if int64(vs[i]>>32) != k {
			t.Fatalf("final value %#x under key %d was written for key %d", vs[i], k, vs[i]>>32)
		}
	}
}

// TestConcurrentCloseDuringInFlight closes the frontend while clients
// are submitting: every operation either completes or panics with the
// closed-Concurrent message, Close drains everything submitted before
// it, and later operations panic.
func TestConcurrentCloseDuringInFlight(t *testing.T) {
	c := pbist.NewConcurrent[int64, uint64](pbist.ConcurrentOptions{})
	const clients = 64
	var wg sync.WaitGroup
	var completed, closedPanics int64
	var mu sync.Mutex
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if r != "pbist: operation on closed Concurrent" {
						t.Errorf("unexpected panic: %v", r)
					}
					mu.Lock()
					closedPanics++
					mu.Unlock()
				}
			}()
			for step := int64(0); ; step++ {
				c.Put(id*1000+step%50, uint64(step))
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(int64(id))
	}
	time.Sleep(2 * time.Millisecond)
	c.Close()
	wg.Wait()

	if !c.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if completed == 0 {
		t.Fatal("no operation completed before Close")
	}
	if closedPanics == 0 {
		t.Fatal("no client observed the close (test raced nothing)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get after Close did not panic")
			}
		}()
		c.Get(1)
	}()
	c.Close() // idempotent
}

// TestNewConcurrentFromItems checks bulk-loading and the read path of
// a pre-populated frontend, including last-wins on duplicated input.
func TestNewConcurrentFromItems(t *testing.T) {
	c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{},
		[]int64{30, 10, 20, 10}, []uint64{3, 1, 2, 11})
	defer c.Close()
	if n := c.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	if v, ok := c.Get(10); !ok || v != 11 {
		t.Fatalf("Get(10) = %d,%v want 11,true (last occurrence wins)", v, ok)
	}
	if got := c.Keys(); !slices.Equal(got, []int64{10, 20, 30}) {
		t.Fatalf("Keys = %v", got)
	}
	if ins := c.PutBatch([]int64{10, 40}, []uint64{100, 4}); ins != 1 {
		t.Fatalf("PutBatch inserted %d, want 1", ins)
	}
	if rm := c.DeleteBatch([]int64{20, 99}); rm != 1 {
		t.Fatalf("DeleteBatch removed %d, want 1", rm)
	}
	hits := c.ContainsBatch([]int64{10, 20, 40})
	if !slices.Equal(hits, []bool{true, false, true}) {
		t.Fatalf("ContainsBatch = %v", hits)
	}
	c.Flush()
	if st := c.Stats(); st.Ops == 0 || st.Epochs == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}
