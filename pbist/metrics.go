package pbist

import "repro/internal/obs"

// Metrics is the observability registry the engine records into when
// Options.Metrics is set: named counters, gauges, and log-bucketed
// latency histograms with p50/p90/p99/p999 extraction, exported
// point-in-time via Snapshot / WriteJSON / PublishExpvar.
//
// One registry may be shared across any number of trees, frontends,
// and shards — metrics are named, and same-named handles aggregate.
// The metric catalog (combine.*, core.*, shard.*) is documented in
// ARCHITECTURE.md's Observability section.
//
// A nil *Metrics disables all recording at zero cost: the engine's hot
// paths hold nil metric handles whose methods are no-ops, a contract
// enforced by allocation regression tests and the pbistvet noalloc
// analyzer.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry ready to pass as
// Options.Metrics.
func NewMetrics() *Metrics {
	return obs.NewRegistry()
}

// MetricsSnapshot is one point-in-time export of a Metrics registry:
// a plain JSON-marshalable struct of counter totals, gauge levels
// (live gauge functions evaluated at snapshot time), and histogram
// summaries. Values are gathered metric-by-metric without stopping
// the engine, so a snapshot under load is internally consistent per
// metric but not linearized across metrics — the same contract as
// Stats on the sharded frontend.
type MetricsSnapshot = obs.Snapshot

// EpochTrace is the structured record of one combining epoch, returned
// by Concurrent.Trace and Sharded.Trace: start time, wall time, the
// gather wait its first operation paid, operation and key counts, and
// the named phase spans (sort, read, replay, write, publish) that tile
// the epoch's wall time.
type EpochTrace = obs.EpochTrace

// PhaseSpan is one named slice of an epoch's wall time; see
// EpochTrace.Phases.
type PhaseSpan = obs.PhaseSpan
