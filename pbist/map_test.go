package pbist

import (
	"math/rand"
	"slices"
	"testing"
)

func TestMapBasicOps(t *testing.T) {
	m := NewMap[int64, string](Options{Workers: 2})
	if !m.Put(10, "ten") || m.Put(10, "TEN") {
		t.Fatal("Put new/overwrite semantics wrong")
	}
	if v, ok := m.Get(10); !ok || v != "TEN" {
		t.Fatalf("Get(10) = (%q, %v)", v, ok)
	}
	if _, ok := m.Get(11); ok {
		t.Fatal("Get(11) found a phantom key")
	}
	if !m.Contains(10) || m.Contains(11) {
		t.Fatal("Contains wrong")
	}
	if !m.Delete(10) || m.Delete(10) {
		t.Fatal("Delete semantics wrong")
	}
	if m.Len() != 0 {
		t.Fatal("map not empty after delete")
	}
}

func TestMapPutBatchLastWins(t *testing.T) {
	m := NewMap[int64, int](Options{Workers: 4})
	// Key 7 appears three times: the last value (30) must win, and it
	// counts as one insertion.
	n := m.PutBatch([]int64{7, 3, 7, 9, 7}, []int{10, 1, 20, 2, 30})
	if n != 3 {
		t.Fatalf("PutBatch inserted %d, want 3", n)
	}
	if v, _ := m.Get(7); v != 30 {
		t.Fatalf("Get(7) = %d, want 30 (last occurrence)", v)
	}
	// Overwriting existing keys reports zero new.
	if n := m.PutBatch([]int64{9, 3}, []int{22, 11}); n != 0 {
		t.Fatalf("overwrite PutBatch = %d, want 0", n)
	}
	if v, _ := m.Get(9); v != 22 {
		t.Fatalf("Get(9) = %d after overwrite", v)
	}
	keys, vals := m.Items()
	if !slices.Equal(keys, []int64{3, 7, 9}) || !slices.Equal(vals, []int{11, 30, 22}) {
		t.Fatalf("Items = %v / %v", keys, vals)
	}
}

func TestMapGetBatchPreservesInputOrder(t *testing.T) {
	m := NewMapFromItems(Options{Workers: 4},
		[]int64{2, 4, 6, 8}, []string{"b", "d", "f", "h"})
	in := []int64{9, 2, 2, 5, 8}
	vals, found := m.GetBatch(in)
	wantV := []string{"", "b", "b", "", "h"}
	wantF := []bool{false, true, true, false, true}
	if !slices.Equal(vals, wantV) || !slices.Equal(found, wantF) {
		t.Fatalf("GetBatch(%v) = %v %v", in, vals, found)
	}
	if vals, found := m.GetBatch(nil); vals != nil || found != nil {
		t.Fatal("GetBatch(nil) should be nil, nil")
	}
}

func TestNewMapFromItemsUnsortedLastWins(t *testing.T) {
	m := NewMapFromItems(Options{Workers: 2},
		[]int64{5, 1, 5, 3, 1}, []string{"e1", "a1", "e2", "c", "a2"})
	keys, vals := m.Items()
	if !slices.Equal(keys, []int64{1, 3, 5}) {
		t.Fatalf("keys = %v", keys)
	}
	if !slices.Equal(vals, []string{"a2", "c", "e2"}) {
		t.Fatalf("vals = %v: duplicate keys must resolve to the last occurrence", vals)
	}
}

func TestMapOrderedQueries(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50}
	vals := []string{"a", "b", "c", "d", "e"}
	m := NewMapFromItems(Options{Workers: 2, LeafCap: 2}, keys, vals)
	if k, v, ok := m.Min(); !ok || k != 10 || v != "a" {
		t.Fatalf("Min = (%d, %q, %v)", k, v, ok)
	}
	if k, v, ok := m.Max(); !ok || k != 50 || v != "e" {
		t.Fatalf("Max = (%d, %q, %v)", k, v, ok)
	}
	if k, v, ok := m.Select(2); !ok || k != 30 || v != "c" {
		t.Fatalf("Select(2) = (%d, %q, %v)", k, v, ok)
	}
	rk, rv := m.Range(15, 45)
	if !slices.Equal(rk, []int64{20, 30, 40}) || !slices.Equal(rv, []string{"b", "c", "d"}) {
		t.Fatalf("Range = %v / %v", rk, rv)
	}
	if m.CountRange(15, 45) != 3 || m.RankOf(30) != 2 {
		t.Fatal("CountRange/RankOf wrong")
	}
}

func TestMapIteration(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	keys := distinct(r, 3000, 1<<30)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = -k
	}
	m := NewMapFromItems(Options{Workers: 4, AssumeSorted: true}, keys, vals)

	var gotK []int64
	for k, v := range m.All() {
		if v != -k {
			t.Fatalf("All: value misaligned at key %d", k)
		}
		gotK = append(gotK, k)
	}
	if !slices.Equal(gotK, keys) {
		t.Fatal("All does not visit all keys in order")
	}

	lo, hi := keys[500], keys[2500]
	wantK, _ := m.Range(lo, hi)
	gotK = gotK[:0]
	for k := range m.Ascend(lo, hi) {
		gotK = append(gotK, k)
	}
	if !slices.Equal(gotK, wantK) {
		t.Fatal("Ascend disagrees with Range")
	}

	// Early break must not visit further pairs.
	n := 0
	for range m.All() {
		if n++; n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("early break visited %d", n)
	}
}

func TestMapSharedViewControls(t *testing.T) {
	m := NewMapFromItems(Options{Workers: 1}, []int64{1, 2, 3}, []int{1, 2, 3})
	m.SetWorkers(8)
	if m.Workers() != 8 {
		t.Fatalf("Workers = %d", m.Workers())
	}
	m.PutBatch([]int64{4, 5}, []int{4, 5})
	if m.Len() != 5 {
		t.Fatal("map broken after SetWorkers")
	}
	s := m.Stats()
	if s.LiveKeys != 5 || s.Height == 0 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Height != m.Height() {
		t.Fatal("Stats.Height and Height() disagree")
	}
	if !slices.Equal(m.Keys(), []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("Keys = %v", m.Keys())
	}
	hits := m.ContainsBatch([]int64{5, 0, 1})
	if !slices.Equal(hits, []bool{true, false, true}) {
		t.Fatalf("ContainsBatch = %v", hits)
	}
}

func TestMapEmptyBatches(t *testing.T) {
	m := NewMap[int64, int](Options{})
	if m.PutBatch(nil, nil) != 0 || m.DeleteBatch(nil) != 0 {
		t.Fatal("empty batches should be no-ops")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty map")
	}
	if _, _, ok := m.Select(0); ok {
		t.Fatal("Select on empty map")
	}
}

func TestMapPutBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch with mismatched lengths must panic")
		}
	}()
	NewMap[int64, int](Options{}).PutBatch([]int64{1}, nil)
}

// TestNewFromKeysDoesNotRetainInput is the regression test for the
// NewFromKeys doc contract: the already-sorted fast path of normalize
// hands the caller's slice straight to the bulk loader, which must
// copy every key into node-local arrays rather than alias the input.
func TestNewFromKeysDoesNotRetainInput(t *testing.T) {
	run := func(name string, opts Options) {
		t.Run(name, func(t *testing.T) {
			in := []int64{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
			want := slices.Clone(in)
			tr := NewFromKeys(opts, in)
			for i := range in {
				in[i] = -1000 - int64(i) // scribble over the input
			}
			if !slices.Equal(tr.Keys(), want) {
				t.Fatalf("Keys() = %v after input mutation, want %v", tr.Keys(), want)
			}
			for _, k := range want {
				if !tr.Contains(k) {
					t.Fatalf("key %d lost after input mutation", k)
				}
			}
		})
	}
	// Both aliasing-prone paths: detected-sorted and promised-sorted.
	run("sortedFastPath", Options{Workers: 2, LeafCap: 4})
	run("assumeSorted", Options{Workers: 2, LeafCap: 4, AssumeSorted: true})
}

// TestNewMapFromItemsDoesNotRetainInput is the same regression for the
// map view, covering the value slice as well.
func TestNewMapFromItemsDoesNotRetainInput(t *testing.T) {
	keys := []int64{2, 4, 6, 8, 10, 12}
	vals := []string{"b", "d", "f", "h", "j", "l"}
	wantK := slices.Clone(keys)
	wantV := slices.Clone(vals)
	m := NewMapFromItems(Options{Workers: 2, LeafCap: 2, AssumeSorted: true}, keys, vals)
	for i := range keys {
		keys[i] = -int64(i)
		vals[i] = "scribbled"
	}
	gotK, gotV := m.Items()
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
		t.Fatalf("Items = %v / %v after input mutation", gotK, gotV)
	}
}
