package pbist

import (
	"slices"
	"testing"
)

// Cross-view clone tests: a clone must be fully detached — no batched
// operation, value overwrite, or rebuild on either side may ever be
// observable through the other — under both ReuseBuffers settings
// (recycled scratch is per-tree, so cloning from a mid-churn tree must
// not share buffers either).

func cloneOpts(mode ReuseMode) Options {
	return Options{Workers: 2, LeafCap: 8, ReuseBuffers: mode}
}

func reuseModes(t *testing.T, f func(t *testing.T, mode ReuseMode)) {
	t.Run("reuseOn", func(t *testing.T) { f(t, ReuseOn) })
	t.Run("reuseOff", func(t *testing.T) { f(t, ReuseOff) })
}

func TestTreeCloneDetached(t *testing.T) {
	reuseModes(t, func(t *testing.T, mode ReuseMode) {
		tr := NewFromKeys(cloneOpts(mode), rangeKeys(0, 20_000, 3))
		tr.RemoveBatch(rangeKeys(0, 3_000, 6)) // leave dead keys + rebuild debt
		want := tr.Keys()

		cp := tr.Clone()
		if got := cp.Keys(); !slices.Equal(got, want) {
			t.Fatalf("clone contents differ: %d vs %d keys", len(got), len(want))
		}
		if s := cp.Stats(); s.DeadKeys != 0 {
			t.Fatalf("clone carries %d dead keys; Clone must compact", s.DeadKeys)
		}

		// Churn the original hard enough to trigger rebuilds; the clone
		// must not move.
		for i := 0; i < 8; i++ {
			tr.InsertBatch(rangeKeys(int64(i), 4_000, 5))
			tr.RemoveBatch(rangeKeys(int64(i), 4_000, 7))
		}
		if got := cp.Keys(); !slices.Equal(got, want) {
			t.Fatal("clone drifted after mutating the original")
		}

		// And the reverse: churn the clone, original must not move.
		snap := tr.Keys()
		for i := 0; i < 8; i++ {
			cp.InsertBatch(rangeKeys(int64(i)+100, 4_000, 9))
			cp.RemoveBatch(rangeKeys(int64(i), 4_000, 3))
		}
		if got := tr.Keys(); !slices.Equal(got, snap) {
			t.Fatal("original drifted after mutating the clone")
		}
	})
}

func TestMapCloneDetachedValues(t *testing.T) {
	reuseModes(t, func(t *testing.T, mode ReuseMode) {
		keys := rangeKeys(0, 10_000, 2)
		vals := make([]int64, len(keys))
		for i, k := range keys {
			vals[i] = k * 10
		}
		m := NewMapFromItems(cloneOpts(mode), keys, vals)
		cp := m.Clone()

		// Overwrite every value in the original; the clone keeps the
		// old values (value slots live in per-tree chunk storage).
		newVals := make([]int64, len(keys))
		for i, k := range keys {
			newVals[i] = -k
		}
		m.PutBatch(keys, newVals)
		for _, k := range []int64{keys[0], keys[len(keys)/2], keys[len(keys)-1]} {
			got, ok := cp.Get(k)
			if !ok || got != k*10 {
				t.Fatalf("clone value for %d drifted: got %d ok=%v, want %d", k, got, ok, k*10)
			}
			orig, _ := m.Get(k)
			if orig != -k {
				t.Fatalf("original value for %d wrong after overwrite: %d", k, orig)
			}
		}

		// Deletes in the clone leave the original intact.
		cp.DeleteBatch(keys[:100])
		if m.Len() != len(keys) {
			t.Fatalf("deleting in clone shrank original to %d", m.Len())
		}
		if cp.Len() != len(keys)-100 {
			t.Fatalf("clone Len = %d, want %d", cp.Len(), len(keys)-100)
		}
	})
}

func TestCloneSharesNoArena(t *testing.T) {
	// A clone starts with fresh arena counters: buffers never migrate
	// from the receiver, so its scratch statistics begin at the cost of
	// its own construction, not the receiver's history.
	tr := NewFromKeys(cloneOpts(ReuseOn), rangeKeys(0, 50_000, 1))
	for i := 0; i < 5; i++ {
		tr.InsertBatch(rangeKeys(int64(i), 2_000, 11))
	}
	before := tr.Stats()
	cp := tr.Clone()
	if after := tr.Stats(); after.ChunkBuilds < before.ChunkBuilds {
		t.Fatal("cloning rewound the receiver's chunk counters")
	}
	if s := cp.Stats(); s.ChunkBuilds < 1 {
		t.Fatal("clone should record its own rebuild")
	} else if s.ChunkBuilds > before.ChunkBuilds+1 {
		t.Fatalf("clone inherited the receiver's counters: %d chunk builds", s.ChunkBuilds)
	}
}

func rangeKeys(start int64, n int, stride int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*stride
	}
	return out
}
