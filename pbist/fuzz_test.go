package pbist

import (
	"slices"
	"testing"
)

// FuzzBatchedOps drives a tree and a reference map with an operation
// stream decoded from raw fuzz bytes. Seeds double as regression tests
// under plain `go test`; run `go test -fuzz=FuzzBatchedOps ./pbist`
// for open-ended exploration.
func FuzzBatchedOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 254, 253, 3, 3, 3, 0, 0})
	f.Add([]byte{9, 9, 9, 9, 100, 100, 42})
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := New[int64](Options{Workers: 2, LeafCap: 4, RebuildFactor: 1})
		ref := map[int64]bool{}
		for i := 0; i < len(data); {
			op := data[i] % 3
			i++
			// Decode a small batch from the next bytes.
			n := 0
			if i < len(data) {
				n = int(data[i]) % 16
				i++
			}
			batch := make([]int64, 0, n)
			for j := 0; j < n && i < len(data); j++ {
				batch = append(batch, int64(data[i]%64))
				i++
			}
			switch op {
			case 0:
				want := 0
				for _, k := range dedup(batch) {
					if !ref[k] {
						ref[k] = true
						want++
					}
				}
				if got := tree.InsertBatch(batch); got != want {
					t.Fatalf("InsertBatch(%v) = %d, want %d", batch, got, want)
				}
			case 1:
				want := 0
				for _, k := range dedup(batch) {
					if ref[k] {
						delete(ref, k)
						want++
					}
				}
				if got := tree.RemoveBatch(batch); got != want {
					t.Fatalf("RemoveBatch(%v) = %d, want %d", batch, got, want)
				}
			default:
				got := tree.ContainsBatch(batch)
				for j, k := range batch {
					if got[j] != ref[k] {
						t.Fatalf("ContainsBatch(%v)[%d] = %v, want %v", batch, j, got[j], ref[k])
					}
				}
			}
			if tree.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", tree.Len(), len(ref))
			}
		}
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		if !slices.Equal(tree.Keys(), keys) {
			t.Fatalf("final contents %v, want %v", tree.Keys(), keys)
		}
	})
}

func dedup(batch []int64) []int64 {
	cp := slices.Clone(batch)
	slices.Sort(cp)
	return slices.Compact(cp)
}
