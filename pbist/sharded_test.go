package pbist_test

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/pbist"
)

// shardedConfigs enumerates the Sharded configurations the
// differential tests sweep: both partition policies, with and without
// the point filter, shard counts around and past GOMAXPROCS.
func shardedConfigs() map[string]pbist.ShardedOptions {
	return map[string]pbist.ShardedOptions{
		"range4":       {Shards: 4, Partition: pbist.PartitionRange},
		"hash4":        {Shards: 4, Partition: pbist.PartitionHash},
		"range3filter": {Shards: 3, Partition: pbist.PartitionRange, PointFilter: true},
		"hash7filter":  {Shards: 7, Partition: pbist.PartitionHash, PointFilter: true},
	}
}

// newShardedForTest builds a Sharded under cfg, bulk-loading seed
// items so range boundaries are fitted rather than degenerate.
func newShardedForTest(cfg pbist.ShardedOptions, keys []int64, vals []uint64) *pbist.Sharded[int64, uint64] {
	return pbist.NewShardedFromItems(cfg, keys, vals)
}

// TestShardedDifferentialStress is the sharded twin of
// TestConcurrentDifferentialStress: many client goroutines, each
// owning a disjoint key stripe checked exactly against a per-client
// map oracle, hammering one Sharded whose stripes deliberately span
// shard boundaries (stripe width and shard width are unrelated). Runs
// under -race in CI. Finally the merged oracles must equal the
// cross-shard snapshot.
func TestShardedDifferentialStress(t *testing.T) {
	for name, cfg := range shardedConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			clients, steps := stressScale(t)
			clients /= 2 // 4 configs in parallel; keep CI time flat
			const stride = 64
			// Seed with scattered items so quantile boundaries exist and
			// stripes straddle them.
			seedK := make([]int64, 0, clients)
			seedV := make([]uint64, 0, clients)
			for id := 0; id < clients; id += 3 {
				seedK = append(seedK, int64(id)*stride+7)
				seedV = append(seedV, uint64(id))
			}
			s := newShardedForTest(cfg, seedK, seedV)
			defer s.Close()

			oracles := make([]map[int64]uint64, clients)
			var wg sync.WaitGroup
			for id := 0; id < clients; id++ {
				oracles[id] = make(map[int64]uint64)
				if id%3 == 0 {
					// The seed key on this client's stripe: the oracle must
					// start from the loaded state.
					oracles[id][int64(id)*stride+7] = uint64(id)
				}
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					oracle := oracles[id]
					r := dist.NewRNG(0x5aad ^ uint64(id)*0x9e37)
					base := int64(id) * stride
					key := func() int64 { return base + r.Int63n(stride) }
					for step := 0; step < steps; step++ {
						switch r.Uint64n(8) {
						case 0, 1: // Put
							k, v := key(), r.Uint64()
							_, had := oracle[k]
							if ins := s.Put(k, v); ins == had {
								t.Errorf("client %d step %d: Put(%d) inserted=%v, oracle had=%v", id, step, k, ins, had)
								return
							}
							oracle[k] = v
						case 2: // Delete
							k := key()
							_, had := oracle[k]
							if rm := s.Delete(k); rm != had {
								t.Errorf("client %d step %d: Delete(%d)=%v, oracle %v", id, step, k, rm, had)
								return
							}
							delete(oracle, k)
						case 3, 4: // Get (filter short-circuit path included)
							k := key()
							wv, had := oracle[k]
							v, ok := s.Get(k)
							if ok != had || (had && v != wv) {
								t.Errorf("client %d step %d: Get(%d)=%v,%v want %v,%v", id, step, k, v, ok, wv, had)
								return
							}
						case 5: // Contains
							k := key()
							_, had := oracle[k]
							if ok := s.Contains(k); ok != had {
								t.Errorf("client %d step %d: Contains(%d)=%v want %v", id, step, k, ok, had)
								return
							}
						case 6: // PutBatch spanning shards, duplicated key (last wins)
							k1, k2 := key(), key()
							v1, v2, v3 := r.Uint64(), r.Uint64(), r.Uint64()
							s.PutBatch([]int64{k1, k2, k1}, []uint64{v1, v2, v3})
							oracle[k2] = v2 // k2 may equal k1; assign in input order
							oracle[k1] = v3
						case 7: // GetBatch, unsorted possibly-duplicated, cross-shard
							keys := []int64{key(), key(), key()}
							vals, found := s.GetBatch(keys)
							for i, k := range keys {
								wv, had := oracle[k]
								if found[i] != had || (had && vals[i] != wv) {
									t.Errorf("client %d step %d: GetBatch[%d](%d)=%v,%v want %v,%v",
										id, step, i, k, vals[i], found[i], wv, had)
									return
								}
							}
						}
					}
				}(id)
			}
			wg.Wait()

			// The stripes are disjoint and each oracle starts from the
			// seeded state of its own stripe, so the union of the oracles
			// is exactly the expected contents.
			merged := make(map[int64]uint64)
			for _, o := range oracles {
				for k, v := range o {
					merged[k] = v
				}
			}
			ks, vs := s.Items()
			if !slices.IsSorted(ks) {
				t.Fatal("cross-shard snapshot keys not sorted")
			}
			if len(ks) != len(merged) {
				t.Fatalf("snapshot has %d keys, merged oracles %d", len(ks), len(merged))
			}
			for i, k := range ks {
				if wv, ok := merged[k]; !ok || vs[i] != wv {
					t.Fatalf("snapshot[%d] = %d→%d, oracle %d (present=%v)", i, k, vs[i], wv, ok)
				}
			}
			if n := s.Len(); n != len(ks) {
				t.Fatalf("Len = %d, snapshot %d", n, len(ks))
			}
		})
	}
}

// TestShardedRangeOrdering checks the cross-shard ordered reads —
// Range, Ascend, Keys, Items — against a Map oracle, under both the
// concatenating (range) and merging (hash) policies, with query
// windows chosen to straddle shard boundaries.
func TestShardedRangeOrdering(t *testing.T) {
	r := dist.NewRNG(0xbeef)
	const n = 20_000
	keys := dist.UniformSet(r, n, -1_000_000, 1_000_000)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	oracle := pbist.NewMapFromItems(pbist.Options{}, keys, vals)

	for name, cfg := range shardedConfigs() {
		t.Run(name, func(t *testing.T) {
			s := pbist.NewShardedFromItems(cfg, keys, vals)
			defer s.Close()

			if got := s.Keys(); !slices.Equal(got, keys) {
				t.Fatalf("Keys: %d keys, want %d (or misordered)", len(got), len(keys))
			}
			ik, iv := s.Items()
			ok, ov := oracle.Items()
			if !slices.Equal(ik, ok) || !slices.Equal(iv, ov) {
				t.Fatal("Items disagrees with Map oracle")
			}

			// Windows: full span, straddle, empty, inverted, single key.
			windows := [][2]int64{
				{-2_000_000, 2_000_000},
				{keys[n/4], keys[3*n/4]},
				{keys[n/2] + 1, keys[n/2] + 1},
				{100, -100},
				{keys[7], keys[7]},
			}
			for _, w := range windows {
				gk, gv := s.Range(w[0], w[1])
				wk, wv := oracle.Range(w[0], w[1])
				if !slices.Equal(gk, wk) || !slices.Equal(gv, wv) {
					t.Fatalf("Range(%d,%d): got %d keys, want %d (or misordered)", w[0], w[1], len(gk), len(wk))
				}
				if !slices.IsSorted(gk) {
					t.Fatalf("Range(%d,%d) keys not sorted", w[0], w[1])
				}
				// Ascend must iterate the same pairs in the same order.
				i := 0
				for k, v := range s.Ascend(w[0], w[1]) {
					if k != wk[i] || v != wv[i] {
						t.Fatalf("Ascend(%d,%d)[%d] = %d→%d, want %d→%d", w[0], w[1], i, k, v, wk[i], wv[i])
					}
					i++
					if i == 3 { // early break must be honored
						break
					}
				}
			}
		})
	}
}

// TestShardedRetentionBounded is the shared-arena regression test:
// the idle scratch inventory retained by a Sharded after heavy
// batched churn must be bounded by the arena's structural cap — NOT
// proportional to the shard count. A 16-shard group sharing one arena
// may not retain more than a small multiple of a 4-shard group.
func TestShardedRetentionBounded(t *testing.T) {
	churn := func(shards int) (buffers int, elems int64) {
		r := dist.NewRNG(uint64(shards))
		s := pbist.NewSharded[int64, uint64](pbist.ShardedOptions{Shards: shards})
		defer s.Close()
		const batch = 4096
		keys := make([]int64, batch)
		vals := make([]uint64, batch)
		for round := 0; round < 8; round++ {
			for i := range keys {
				keys[i] = r.Int63n(1 << 20)
				vals[i] = r.Uint64()
			}
			s.PutBatch(keys, vals)
			s.GetBatch(keys)
			s.DeleteBatch(keys[:batch/2])
		}
		s.Flush()
		st := s.Stats()
		return st.RetainedBuffers, st.RetainedElems
	}

	b4, e4 := churn(4)
	b16, e16 := churn(16)
	t.Logf("retained: 4 shards %d buffers / %d elems; 16 shards %d buffers / %d elems", b4, e4, b16, e16)
	if b4 == 0 || b16 == 0 {
		t.Fatal("expected nonzero retained scratch after churn (reuse disabled?)")
	}
	// Shared arena: growing shards 4x must not grow retention 4x. Allow
	// 2x slack for racing per-shard release patterns.
	if b16 > 2*b4 {
		t.Fatalf("retained buffers grew with shard count: %d at 16 shards vs %d at 4", b16, b4)
	}
	if e16 > 2*e4 {
		t.Fatalf("retained elems grew with shard count: %d at 16 shards vs %d at 4", e16, e4)
	}
}

// TestShardedPointFilter checks the Bloom router: misses short-circuit
// (counted in Stats), hits are always forwarded, and a Put immediately
// followed by a Get on the same goroutine is never short-circuited —
// the linearizability property Add-before-acknowledge provides.
func TestShardedPointFilter(t *testing.T) {
	s := pbist.NewSharded[int64, uint64](pbist.ShardedOptions{Shards: 4, PointFilter: true})
	defer s.Close()
	for i := int64(0); i < 1000; i++ {
		s.Put(i, uint64(i))
		if v, ok := s.Get(i); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) after Put = %d,%v", i, v, ok)
		}
	}
	// Far-away keys: mostly filter misses.
	for i := int64(0); i < 1000; i++ {
		if s.Contains(1_000_000_000 + i*7919) {
			t.Fatalf("Contains(%d) true for never-inserted key", 1_000_000_000+i*7919)
		}
	}
	st := s.Stats()
	if st.FilterShortCircuits == 0 {
		t.Fatal("expected some filter short-circuits for distant misses")
	}
	// Deleted keys read as stale positives: must still answer correctly.
	s.Delete(5)
	if s.Contains(5) {
		t.Fatal("Contains(5) true after delete")
	}
}

// TestShardedConstructorsAndStats covers the remaining surface:
// constructor policy resolution (and panics), per-shard epoch stats,
// SnapshotMap, DeleteBatch/ContainsBatch counts, Close semantics.
func TestShardedConstructorsAndStats(t *testing.T) {
	// NewSharded + PartitionRange must panic (no bounds derivable).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSharded with PartitionRange did not panic")
			}
		}()
		pbist.NewSharded[int64, uint64](pbist.ShardedOptions{Partition: pbist.PartitionRange})
	}()
	// NewShardedRange + PartitionHash must panic (span ignored).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewShardedRange with PartitionHash did not panic")
			}
		}()
		pbist.NewShardedRange[int64, uint64](pbist.ShardedOptions{Partition: pbist.PartitionHash}, 0, 100)
	}()

	s := pbist.NewShardedRange[int64, uint64](pbist.ShardedOptions{Shards: 4}, 0, 1<<20)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	keys := make([]int64, 10_000)
	vals := make([]uint64, len(keys))
	r := dist.NewRNG(1)
	for i := range keys {
		keys[i] = r.Int63n(1 << 20)
		vals[i] = uint64(i)
	}
	s.PutBatch(keys, vals)
	if got := s.ContainsBatch(keys[:100]); len(got) != 100 {
		t.Fatalf("ContainsBatch returned %d answers", len(got))
	} else {
		for i, ok := range got {
			if !ok {
				t.Fatalf("ContainsBatch[%d] false for present key", i)
			}
		}
	}
	st := s.Stats()
	if st.Shards != 4 || !st.Ordered || len(st.PerShard) != 4 {
		t.Fatalf("Stats shape wrong: %+v", st)
	}
	if st.Epochs == 0 || st.Ops == 0 || st.Keys == 0 {
		t.Fatalf("aggregate stats empty: %+v", st)
	}
	// A uniform batch over the whole span must have reached every shard.
	for i, ps := range st.PerShard {
		if ps.Epochs == 0 || ps.Keys == 0 {
			t.Fatalf("shard %d saw no epochs/keys: %+v", i, ps)
		}
	}
	var sum int64
	for _, ps := range st.PerShard {
		sum += ps.Epochs
	}
	if sum != st.Epochs {
		t.Fatalf("aggregate Epochs %d != per-shard sum %d", st.Epochs, sum)
	}

	m := s.SnapshotMap()
	if m.Len() != s.Len() {
		t.Fatalf("SnapshotMap Len %d != Sharded Len %d", m.Len(), s.Len())
	}
	mk, _ := m.Items()
	sk, _ := s.Items()
	if !slices.Equal(mk, sk) {
		t.Fatal("SnapshotMap keys differ from Items")
	}

	if n := s.DeleteBatch(sk); n != len(sk) {
		t.Fatalf("DeleteBatch removed %d, want %d", n, len(sk))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}

	s.Close()
	if !s.Closed() {
		t.Fatal("Closed() false after Close")
	}
	s.Close() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put on closed Sharded did not panic")
			}
		}()
		s.Put(1, 1)
	}()
}

// TestShardedEmptyAndDegenerate covers empty batches, one shard,
// PrivateArenas, and empty-structure reads.
func TestShardedEmptyAndDegenerate(t *testing.T) {
	s := pbist.NewSharded[int64, uint64](pbist.ShardedOptions{Shards: 1, PrivateArenas: true})
	defer s.Close()
	if vals, found := s.GetBatch(nil); vals != nil || found != nil {
		t.Fatal("GetBatch(nil) not nil")
	}
	if n := s.PutBatch(nil, nil); n != 0 {
		t.Fatal("PutBatch(nil) nonzero")
	}
	if ks, vs := s.Range(0, 100); len(ks) != 0 || len(vs) != 0 {
		t.Fatal("Range on empty structure nonempty")
	}
	if s.Len() != 0 || len(s.Keys()) != 0 {
		t.Fatal("empty structure reports keys")
	}
	st := s.Stats()
	if st.RetainedBuffers != 0 || st.RetainedElems != 0 {
		t.Fatalf("PrivateArenas must not aggregate retention, got %d/%d", st.RetainedBuffers, st.RetainedElems)
	}
}
