// Command iststat builds an interpolation search tree from a workload
// (or from integers on stdin) and reports its shape: height, node and
// leaf counts, dead-key ratio, index memory. It is the quickest way to
// see the §3.4 ideal-balance properties — Θ(√n) root fanout and
// O(log log n) height — on real data.
//
// Examples:
//
//	iststat -n 1000000                 # uniform synthetic workload
//	iststat -n 1000000 -clusters 32    # non-smooth clustered workload
//	iststat -n 1000000 -dist expspaced # adversarial anti-interpolation keys
//	seq 1 100000 | iststat -stdin      # keys from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/dist"
	"repro/pbist"
)

func main() {
	var (
		n        = flag.Int("n", 1_000_000, "number of synthetic keys")
		clusters = flag.Int("clusters", 0, "pack keys into this many clusters (0 = uniform)")
		distName = flag.String("dist", "",
			"key distribution (empty = uniform, or clustered when -clusters is set;\n"+
				"-dist clustered honors -clusters):\n"+dist.Describe())
		seed      = flag.Uint64("seed", 1, "workload seed")
		fromStdin = flag.Bool("stdin", false, "read whitespace-separated integer keys from stdin instead")
		churn     = flag.Int("churn", 0, "apply this many random insert+remove batch rounds before reporting")
	)
	flag.Parse()

	keys, err := loadKeys(*fromStdin, *n, *clusters, *distName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iststat:", err)
		os.Exit(1)
	}
	tree := pbist.NewFromKeys[int64](pbist.Options{}, keys)

	r := dist.NewRNG(*seed ^ 0xc0ffee)
	for round := 0; round < *churn; round++ {
		m := len(keys) / 10
		if m == 0 {
			m = 1
		}
		lo, hi := int64(-(2 * *n)), int64(2**n)
		tree.InsertBatch(dist.UniformSet(r, m, lo, hi))
		tree.RemoveBatch(dist.UniformSet(r, m, lo, hi))
	}

	s := tree.Stats()
	fmt.Printf("live keys      %d\n", s.LiveKeys)
	fmt.Printf("dead keys      %d\n", s.DeadKeys)
	fmt.Printf("nodes          %d (%d leaves)\n", s.Nodes, s.Leaves)
	fmt.Printf("height         %d\n", s.Height)
	fmt.Printf("root fanout    %d rep keys\n", s.RootRepLen)
	fmt.Printf("max leaf size  %d\n", s.MaxLeafLen)
	fmt.Printf("index memory   %d bytes\n", s.IndexBytes)
}

func loadKeys(fromStdin bool, n, clusters int, distName string, seed uint64) ([]int64, error) {
	if fromStdin {
		var keys []int64
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			v, err := strconv.ParseInt(sc.Text(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad key %q: %w", sc.Text(), err)
			}
			keys = append(keys, v)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return keys, nil
	}
	r := dist.NewRNG(seed)
	lo, hi := int64(-(2 * n)), int64(2*n)
	if distName == "" {
		if clusters > 0 {
			distName = "clustered"
		} else {
			distName = "uniform"
		}
	}
	if distName == "clustered" && clusters > 0 {
		return dist.Clustered(r, n, clusters, lo, hi), nil
	}
	return dist.Generate(distName, r, n, lo, hi)
}
