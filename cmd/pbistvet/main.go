// Command pbistvet is the multichecker for the PB-IST engine's static
// contracts: it loads the requested packages and runs every analyzer
// of internal/analysis over them, printing go-vet-style diagnostics
// and exiting nonzero if any fire.
//
// Usage:
//
//	go run ./cmd/pbistvet ./...
//
// The suite enforces, mechanically, the invariants the engine's
// performance rests on (see ARCHITECTURE.md "Static invariants"):
//
//	arenapair     every Scratch.Get/GetZero reaches a Put on all paths
//	noescape      borrowed scratch/chunk slices never outlive the borrow
//	noalloc       //pbist:noalloc bodies contain no allocating constructs
//	combinerguard //pbist:guardedby combiner fields stay combiner-confined
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis/arenapair"
	"repro/internal/analysis/combinerguard"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/noescape"
)

var analyzers = []*framework.Analyzer{
	arenapair.Analyzer,
	noescape.Analyzer,
	noalloc.Analyzer,
	combinerguard.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbistvet:", err)
		os.Exit(2)
	}
	failed := false
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			// Analyzers need sound type information; surface the errors
			// instead of analyzing a broken package.
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "pbistvet: %s: %v\n", pkg.ImportPath, terr)
			}
			failed = true
			continue
		}
		var diags []string
		for _, a := range analyzers {
			name := a.Name
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d framework.Diagnostic) {
					diags = append(diags, fmt.Sprintf("%s: %s (%s)",
						pkg.Fset.Position(d.Pos), d.Message, name))
				},
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "pbistvet: %s: %s: %v\n", name, pkg.ImportPath, err)
				failed = true
			}
		}
		sort.Strings(diags)
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
