// Command pbench regenerates the paper's evaluation (§9): the three
// Fig. 17 scaling curves, the sequential IST-versus-red-black-tree
// comparison, and the ablations documented in DESIGN.md.
//
// Examples:
//
//	pbench -experiment fig17 -n 4000000 -m 1000000 -workers 1,2,4,8,16
//	pbench -experiment fig17 -dist zipf
//	pbench -experiment fig17 -dist clustered -clusters 128
//	pbench -experiment map -workers 1,4,8
//	pbench -experiment seqcmp -reps 5
//	pbench -experiment traverse
//	pbench -experiment rebuildc -rounds 6
//	pbench -experiment treap -workers 8
//	pbench -experiment all -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig17 | map | seqcmp | traverse | rebuildc | treap | leafcap | indexfactor | batchsize | all")
		n          = flag.Int("n", 4_000_000, "target tree size (paper: 1e8)")
		m          = flag.Int("m", 1_000_000, "batch size (paper: 1e7)")
		seed       = flag.Uint64("seed", 0x5eed, "workload seed")
		workersCSV = flag.String("workers", "1,2,4,8,16", "worker counts for fig17 (comma separated); the last entry is the worker count of the single-point experiments (traverse, treap, sweeps)")
		reps       = flag.Int("reps", 3, "repetitions per measurement (paper: 10)")
		rounds     = flag.Int("rounds", 4, "churn rounds for the rebuildc ablation")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		distName   = flag.String("dist", "",
			"batch distribution (empty = uniform, or clustered when -clusters is set):\n"+dist.Describe())
		clusters = flag.Int("clusters", 0,
			"cluster count when -dist clustered (0 = default "+strconv.Itoa(dist.DefaultClusters)+")")
	)
	flag.Parse()

	w := bench.Workload{N: *n, M: *m, Seed: *seed, Dist: *distName, Clusters: *clusters}.WithDefaults()
	if err := w.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pbench:", err)
		os.Exit(2)
	}
	workers, err := parseWorkers(*workersCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbench:", err)
		os.Exit(2)
	}
	emit := bench.WriteTable
	if *csv {
		emit = bench.WriteCSV
	}

	run := func(name string) error {
		switch name {
		case "fig17":
			return runFig17(w, workers, *reps, emit)
		case "map":
			return runMap(w, workers, *reps, emit)
		case "seqcmp":
			return runSeqCmp(w, *reps, emit)
		case "traverse":
			return runTraverse(w, workers[len(workers)-1], *reps, emit)
		case "rebuildc":
			return runRebuildC(w, workers[len(workers)-1], *rounds, emit)
		case "treap":
			return runTreap(w, workers[len(workers)-1], *reps, emit)
		case "leafcap":
			return runLeafCap(w, workers[len(workers)-1], *reps, emit)
		case "indexfactor":
			return runIndexFactor(w, workers[len(workers)-1], *reps, emit)
		case "batchsize":
			return runBatchSize(w, workers[len(workers)-1], *reps, emit)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"fig17", "map", "seqcmp", "traverse", "rebuildc", "treap",
			"leafcap", "indexfactor", "batchsize"}
	}
	for _, name := range names {
		fmt.Printf("== %s (n=%d m=%d seed=%#x dist=%s) ==\n", name, w.N, w.M, w.Seed, w.DistName())
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "pbench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

type emitter func(w io.Writer, header []string, rows [][]string) error

func runFig17(w bench.Workload, workers []int, reps int, emit emitter) error {
	rows := bench.RunFig17(w, core.Config{}, workers, reps)
	header := []string{"workers", "contains_ms", "insert_ms", "remove_ms", "speedup_c", "speedup_i", "speedup_r"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Workers),
			bench.MS(r.ContainsMS), bench.MS(r.InsertMS), bench.MS(r.RemoveMS),
			bench.X(r.SpeedupC), bench.X(r.SpeedupI), bench.X(r.SpeedupR),
		})
	}
	return emit(os.Stdout, header, cells)
}

func runMap(w bench.Workload, workers []int, reps int, emit emitter) error {
	rows := bench.RunMapWorkload(w, workers, reps)
	header := []string{"workers", "put_ms", "get_ms", "speedup_p", "speedup_g"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Workers),
			bench.MS(r.PutMS), bench.MS(r.GetMS),
			bench.X(r.SpeedupP), bench.X(r.SpeedupG),
		})
	}
	return emit(os.Stdout, header, cells)
}

func runSeqCmp(w bench.Workload, reps int, emit emitter) error {
	r := bench.RunSeqCompare(w, core.Config{}, reps)
	header := []string{"structure", "contains_ms", "vs_rbtree"}
	cells := [][]string{
		{"pb-ist (1 worker, batched)", bench.MS(r.ISTBatchedMS), bench.X(r.SpeedupVsRB)},
		{"ist (scalar)", bench.MS(r.ISTScalarMS), bench.X(r.SpeedupScalar)},
		{"red-black tree", bench.MS(r.RBTreeMS), bench.X(1)},
		{"skip list", bench.MS(r.SkipListMS), bench.X(safeDiv(r.RBTreeMS, r.SkipListMS))},
	}
	return emit(os.Stdout, header, cells)
}

func runTraverse(w bench.Workload, workers, reps int, emit emitter) error {
	rows := bench.RunAblationTraverse(w, workers, reps)
	header := []string{"distribution", "interpolation_ms", "rank_ms"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Distribution, bench.MS(r.InterpolationMS), bench.MS(r.RankMS)})
	}
	return emit(os.Stdout, header, cells)
}

func runRebuildC(w bench.Workload, workers, rounds int, emit emitter) error {
	rows := bench.RunAblationRebuildC(w, workers, rounds, []int{1, 2, 4, 8})
	header := []string{"C", "churn_ms", "final_height", "dead_per_live"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.C), bench.MS(r.ChurnMS),
			strconv.Itoa(r.FinalHgt), fmt.Sprintf("%.2f", r.DeadRatio),
		})
	}
	return emit(os.Stdout, header, cells)
}

func runTreap(w bench.Workload, workers, reps int, emit emitter) error {
	rows := bench.RunBaselineTreap(w, workers, reps)
	header := []string{"operation", "pb-ist_ms", "treap_ms"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Op, bench.MS(r.ISTMS), bench.MS(r.TreapMS)})
	}
	return emit(os.Stdout, header, cells)
}

func runLeafCap(w bench.Workload, workers, reps int, emit emitter) error {
	rows := bench.RunSweepLeafCap(w, workers, reps, []int{8, 16, 32, 64, 128})
	header := []string{"H", "contains_ms", "update_ms", "height", "leaves"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.H), bench.MS(r.ContainsMS), bench.MS(r.UpdateMS),
			strconv.Itoa(r.Height), strconv.Itoa(r.Leaves),
		})
	}
	return emit(os.Stdout, header, cells)
}

func runIndexFactor(w bench.Workload, workers, reps int, emit emitter) error {
	rows := bench.RunSweepIndexFactor(w, workers, reps, []float64{0.25, 0.5, 1, 2, 4})
	header := []string{"factor", "contains_ms", "index_mb"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.Factor), bench.MS(r.ContainsMS),
			fmt.Sprintf("%.1f", float64(r.IndexBytes)/(1<<20)),
		})
	}
	return emit(os.Stdout, header, cells)
}

func runBatchSize(w bench.Workload, workers, reps int, emit emitter) error {
	rows := bench.RunSweepBatchSize(w, workers, reps,
		[]int{1000, 10_000, 100_000, 1_000_000})
	header := []string{"m", "contains_ms", "ns_per_key"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.M), bench.MS(r.ContainsMS),
			fmt.Sprintf("%.0f", r.NSPerKey),
		})
	}
	return emit(os.Stdout, header, cells)
}

func parseWorkers(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker count %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
