// Command pbench regenerates the paper's evaluation (§9): the three
// Fig. 17 scaling curves, the sequential IST-versus-red-black-tree
// comparison, the concurrent-clients frontend experiment, and the
// ablations documented in DESIGN.md.
//
// Examples:
//
//	pbench -experiment fig17 -n 4000000 -m 1000000 -workers 1,2,4,8,16
//	pbench -experiment fig17 -dist zipf
//	pbench -experiment fig17 -dist clustered -clusters 128
//	pbench -experiment map -workers 1,4,8
//	pbench -experiment concurrent -clients 1,4,16,64
//	pbench -latency -rate 200 -json
//	pbench -experiment rebuildsched -rate 150 -rebuildbudget 4096 -json
//	pbench -experiment leafslack -rounds 6
//	pbench -experiment setalgebra -workers 8
//	pbench -experiment seqcmp -reps 5
//	pbench -experiment traverse
//	pbench -experiment rebuildc -rounds 6
//	pbench -experiment treap -workers 8
//	pbench -experiment all -csv
//	pbench -experiment all -json > BENCH_all.json
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
)

// experimentOrder lists every runnable experiment in the order
// -experiment all executes them. Unknown names are rejected against
// this table before any setup work happens.
var experimentOrder = []string{
	"fig17", "map", "concurrent", "readscale", "sharded", "latency", "rebuildsched", "setalgebra", "seqcmp", "traverse",
	"rebuildc", "leafslack", "treap", "leafcap", "indexfactor", "batchsize",
}

func main() {
	var (
		experiment = flag.String("experiment", "all",
			strings.Join(experimentOrder, " | ")+" | all")
		n          = flag.Int("n", 4_000_000, "target tree size (paper: 1e8)")
		m          = flag.Int("m", 1_000_000, "batch size (paper: 1e7)")
		seed       = flag.Uint64("seed", 0x5eed, "workload seed")
		workersCSV = flag.String("workers", "1,2,4,8,16", "worker counts for fig17 (comma separated); the last entry is the worker count of the single-point experiments (traverse, treap, sweeps)")
		clientsCSV = flag.String("clients", "1,4,16,64", "client-goroutine counts for the concurrent experiment (comma separated); the last entry is the client count of the sharded experiment")
		shardsCSV  = flag.String("shards", "1,2,4,8,16", "shard counts for the sharded experiment (comma separated)")
		batchKeys  = flag.Int("batchkeys", 64, "keys per client mini-batch in the sharded experiment")
		latency    = flag.Bool("latency", false, "shorthand for -experiment latency: open-loop latency percentiles for the concurrent and sharded frontends")
		rate       = flag.Float64("rate", 200, "offered load of the latency and rebuildsched experiments in thousand ops/s across all clients (must be positive)")
		reps       = flag.Int("reps", 3, "repetitions per measurement (paper: 10)")
		rounds     = flag.Int("rounds", 4, "churn rounds for the rebuildc and leafslack ablations")
		rbBudget   = flag.Int("rebuildbudget", 4096, "RebuildBudgetPerEpoch for the bounded and async rows of the rebuildsched experiment")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit one machine-readable JSON array with every experiment's series")
		distName   = flag.String("dist", "",
			"batch distribution (empty = uniform, or clustered when -clusters is set):\n"+dist.Describe())
		clusters = flag.Int("clusters", 0,
			"cluster count when -dist clustered (0 = default "+strconv.Itoa(dist.DefaultClusters)+")")
	)
	flag.Parse()

	if *csv && *jsonOut {
		fatalUsage("-csv and -json are mutually exclusive")
	}
	if *latency {
		if *experiment != "all" && *experiment != "latency" {
			fatalUsage("-latency conflicts with -experiment " + *experiment)
		}
		*experiment = "latency"
	}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experimentOrder
	} else if !slices.Contains(experimentOrder, *experiment) {
		fatalUsage(fmt.Sprintf("unknown experiment %q (have %s, or all)",
			*experiment, strings.Join(experimentOrder, ", ")))
	}

	// Flag validation up front, before any expensive setup. An
	// open-loop experiment with a non-positive rate schedules every
	// operation in the past and reports backlog, not latency; a
	// distribution flag an experiment ignores would silently measure
	// something other than what was asked.
	if (slices.Contains(names, "latency") || slices.Contains(names, "rebuildsched")) && *rate <= 0 {
		fatalUsage(fmt.Sprintf("the open-loop experiments (latency, rebuildsched) need a positive -rate in kops/s; got %g", *rate))
	}
	if *experiment == "latency" && *distName != "" {
		fatalUsage("-experiment latency runs its own uniform+zipf distribution grid and does not take -dist")
	}
	if *clusters > 0 && *distName != "" && *distName != "clustered" {
		fatalUsage(fmt.Sprintf("-clusters only applies to the clustered distribution, not -dist %s", *distName))
	}

	w := bench.Workload{N: *n, M: *m, Seed: *seed, Dist: *distName, Clusters: *clusters}.WithDefaults()
	if err := w.Validate(); err != nil {
		fatalUsage(err.Error())
	}
	workers, err := parseCounts(*workersCSV, "worker")
	if err != nil {
		fatalUsage(err.Error())
	}
	clients, err := parseCounts(*clientsCSV, "client")
	if err != nil {
		fatalUsage(err.Error())
	}
	shards, err := parseCounts(*shardsCSV, "shard")
	if err != nil {
		fatalUsage(err.Error())
	}

	run := func(name string) ([]string, [][]string) {
		switch name {
		case "fig17":
			return runFig17(w, workers, *reps)
		case "map":
			return runMap(w, workers, *reps)
		case "concurrent":
			return runConcurrent(w, clients, *reps)
		case "readscale":
			return runReadScale(w, clients, *reps)
		case "sharded":
			return runSharded(w, clients[len(clients)-1], shards, *batchKeys, *reps)
		case "latency":
			return runLatency(w, clients[len(clients)-1], shards[len(shards)-1], *rate, *reps)
		case "rebuildsched":
			return runRebuildSched(w, clients[len(clients)-1], *rate, *reps, *rbBudget)
		case "setalgebra":
			return runSetAlgebra(w, workers[len(workers)-1], *reps)
		case "seqcmp":
			return runSeqCmp(w, *reps)
		case "traverse":
			return runTraverse(w, workers[len(workers)-1], *reps)
		case "rebuildc":
			return runRebuildC(w, workers[len(workers)-1], *rounds)
		case "leafslack":
			return runLeafSlack(w, workers[len(workers)-1], *rounds)
		case "treap":
			return runTreap(w, workers[len(workers)-1], *reps)
		case "leafcap":
			return runLeafCap(w, workers[len(workers)-1], *reps)
		case "indexfactor":
			return runIndexFactor(w, workers[len(workers)-1], *reps)
		case "batchsize":
			return runBatchSize(w, workers[len(workers)-1], *reps)
		default:
			panic("unreachable: experiment names are validated above")
		}
	}

	var series []bench.Series
	for _, name := range names {
		if !*jsonOut {
			fmt.Printf("== %s (n=%d m=%d seed=%#x dist=%s) ==\n", name, w.N, w.M, w.Seed, w.DistName())
		}
		header, cells := run(name)
		if *jsonOut {
			series = append(series, bench.NewSeries(name, w, header, cells))
			continue
		}
		emit := bench.WriteTable
		if *csv {
			emit = bench.WriteCSV
		}
		if err := emit(os.Stdout, header, cells); err != nil {
			fmt.Fprintln(os.Stderr, "pbench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, series); err != nil {
			fmt.Fprintln(os.Stderr, "pbench:", err)
			os.Exit(1)
		}
	}
}

func fatalUsage(msg string) {
	fmt.Fprintln(os.Stderr, "pbench:", msg)
	os.Exit(2)
}

func runFig17(w bench.Workload, workers []int, reps int) ([]string, [][]string) {
	rows := bench.RunFig17(w, core.Config{}, workers, reps)
	header := []string{"workers", "contains_ms", "insert_ms", "remove_ms",
		"speedup_c", "speedup_i", "speedup_r",
		"insert_b_op", "insert_allocs_op", "remove_b_op", "remove_allocs_op"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Workers),
			bench.MS(r.ContainsMS), bench.MS(r.InsertMS), bench.MS(r.RemoveMS),
			bench.X(r.SpeedupC), bench.X(r.SpeedupI), bench.X(r.SpeedupR),
			strconv.FormatUint(r.Insert.BytesOp, 10), strconv.FormatUint(r.Insert.AllocsOp, 10),
			strconv.FormatUint(r.Remove.BytesOp, 10), strconv.FormatUint(r.Remove.AllocsOp, 10),
		})
	}
	return header, cells
}

func runMap(w bench.Workload, workers []int, reps int) ([]string, [][]string) {
	rows := bench.RunMapWorkload(w, workers, reps)
	header := []string{"workers", "put_ms", "get_ms", "speedup_p", "speedup_g",
		"put_b_op", "put_allocs_op"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Workers),
			bench.MS(r.PutMS), bench.MS(r.GetMS),
			bench.X(r.SpeedupP), bench.X(r.SpeedupG),
			strconv.FormatUint(r.Put.BytesOp, 10), strconv.FormatUint(r.Put.AllocsOp, 10),
		})
	}
	return header, cells
}

func runConcurrent(w bench.Workload, clients []int, reps int) ([]string, [][]string) {
	rows := bench.RunConcurrentWorkload(w, clients, reps)
	header := []string{"clients", "combine_mops", "rwmutex_map_mops", "sync_map_mops", "epoch_ops",
		"epoch_keys", "size_flushes", "mean_wait_us"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Clients),
			fmt.Sprintf("%.3f", r.CombineMops),
			fmt.Sprintf("%.3f", r.RWMapMops),
			fmt.Sprintf("%.3f", r.SyncMapMops),
			fmt.Sprintf("%.1f", r.EpochOps),
			fmt.Sprintf("%.1f", r.EpochKeys),
			strconv.FormatInt(r.SizeFlushes, 10),
			fmt.Sprintf("%.1f", r.MeanWaitUS),
		})
	}
	return header, cells
}

func runReadScale(w bench.Workload, clients []int, reps int) ([]string, [][]string) {
	rows := bench.RunReadScale(w, clients, reps)
	header := []string{"clients", "combine_get_mops", "getfast_mops", "fast_x", "mixed_fast_mops", "mixed_epochs"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Clients),
			fmt.Sprintf("%.3f", r.CombineMops),
			fmt.Sprintf("%.3f", r.FastMops),
			fmt.Sprintf("%.2f", r.FastX),
			fmt.Sprintf("%.3f", r.MixedMops),
			strconv.FormatInt(r.Epochs, 10),
		})
	}
	return header, cells
}

func runLatency(w bench.Workload, clients, shards int, rateKops float64, reps int) ([]string, [][]string) {
	rows := bench.RunLatencyWorkload(w, clients, shards, rateKops, reps)
	header := []string{"frontend", "dist", "clients", "offered_kops", "achieved_kops",
		"mean_us", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Frontend, r.Dist, strconv.Itoa(r.Clients),
			fmt.Sprintf("%.1f", r.OfferedKops),
			fmt.Sprintf("%.1f", r.AchievedKops),
			fmt.Sprintf("%.1f", r.MeanUS),
			fmt.Sprintf("%.1f", r.P50US),
			fmt.Sprintf("%.1f", r.P90US),
			fmt.Sprintf("%.1f", r.P99US),
			fmt.Sprintf("%.1f", r.P999US),
			fmt.Sprintf("%.1f", r.MaxUS),
		})
	}
	return header, cells
}

func runRebuildSched(w bench.Workload, clients int, rateKops float64, reps, budget int) ([]string, [][]string) {
	rows := bench.RunRebuildSched(w, clients, rateKops, reps, budget)
	header := []string{"mode", "dist", "budget", "clients", "offered_kops", "achieved_kops",
		"mean_us", "p50_us", "p90_us", "p99_us", "p999_us", "max_us",
		"max_epoch_rebuild_keys", "peak_rebuild_debt"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode, r.Dist, strconv.Itoa(r.Budget), strconv.Itoa(r.Clients),
			fmt.Sprintf("%.1f", r.OfferedKops),
			fmt.Sprintf("%.1f", r.AchievedKops),
			fmt.Sprintf("%.1f", r.MeanUS),
			fmt.Sprintf("%.1f", r.P50US),
			fmt.Sprintf("%.1f", r.P90US),
			fmt.Sprintf("%.1f", r.P99US),
			fmt.Sprintf("%.1f", r.P999US),
			fmt.Sprintf("%.1f", r.MaxUS),
			strconv.Itoa(r.MaxEpochRebuildKeys),
			strconv.Itoa(r.PeakRebuildDebt),
		})
	}
	return header, cells
}

func runLeafSlack(w bench.Workload, workers, rounds int) ([]string, [][]string) {
	rows := bench.RunLeafSlack(w, workers, rounds, nil, nil)
	header := []string{"slack", "C", "churn_ms", "leaf_grows", "chunk_builds", "dead_per_live", "final_height"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.Slack), strconv.Itoa(r.C), bench.MS(r.ChurnMS),
			strconv.FormatInt(r.LeafGrows, 10), strconv.FormatInt(r.ChunkBuilds, 10),
			fmt.Sprintf("%.2f", r.DeadRatio), strconv.Itoa(r.FinalHgt),
		})
	}
	return header, cells
}

func runSharded(w bench.Workload, clients int, shards []int, batchKeys, reps int) ([]string, [][]string) {
	rows := bench.RunShardedWorkload(w, clients, shards, batchKeys, reps)
	header := []string{"shards", "mkeys_s", "speedup", "epochs", "epoch_keys",
		"min_shard_keys", "max_shard_keys", "filter_short_circuits", "mean_wait_us"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		shardCell := strconv.Itoa(r.Shards)
		if r.Shards == 0 {
			shardCell = "concurrent"
		}
		cells = append(cells, []string{
			shardCell,
			fmt.Sprintf("%.3f", r.Mops),
			bench.X(r.Speedup),
			strconv.FormatInt(r.Epochs, 10),
			fmt.Sprintf("%.1f", r.EpochKeys),
			strconv.FormatInt(r.MinShardKeys, 10),
			strconv.FormatInt(r.MaxShardKeys, 10),
			strconv.FormatInt(r.FilterShorts, 10),
			fmt.Sprintf("%.1f", r.MeanWaitUS),
		})
	}
	return header, cells
}

func runSetAlgebra(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunSetAlgebraWorkload(w, workers, reps)
	header := []string{"ratio", "b_keys", "union_ms", "intersect_ms", "diff_ms", "symdiff_ms",
		"slice_union_ms", "speedup_u", "union_b_op", "union_allocs_op"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.Ratio, strconv.Itoa(r.BKeys),
			bench.MS(r.UnionMS), bench.MS(r.InterMS), bench.MS(r.DiffMS), bench.MS(r.SymMS),
			bench.MS(r.SliceMS), bench.X(r.SpeedupU),
			strconv.FormatUint(r.Union.BytesOp, 10), strconv.FormatUint(r.Union.AllocsOp, 10),
		})
	}
	return header, cells
}

func runSeqCmp(w bench.Workload, reps int) ([]string, [][]string) {
	r := bench.RunSeqCompare(w, core.Config{}, reps)
	header := []string{"structure", "contains_ms", "vs_rbtree"}
	cells := [][]string{
		{"pb-ist (1 worker, batched)", bench.MS(r.ISTBatchedMS), bench.X(r.SpeedupVsRB)},
		{"ist (scalar)", bench.MS(r.ISTScalarMS), bench.X(r.SpeedupScalar)},
		{"red-black tree", bench.MS(r.RBTreeMS), bench.X(1)},
		{"skip list", bench.MS(r.SkipListMS), bench.X(safeDiv(r.RBTreeMS, r.SkipListMS))},
	}
	return header, cells
}

func runTraverse(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunAblationTraverse(w, workers, reps)
	header := []string{"distribution", "interpolation_ms", "rank_ms"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Distribution, bench.MS(r.InterpolationMS), bench.MS(r.RankMS)})
	}
	return header, cells
}

func runRebuildC(w bench.Workload, workers, rounds int) ([]string, [][]string) {
	rows := bench.RunAblationRebuildC(w, workers, rounds, []int{1, 2, 4, 8})
	header := []string{"C", "churn_ms", "final_height", "dead_per_live"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.C), bench.MS(r.ChurnMS),
			strconv.Itoa(r.FinalHgt), fmt.Sprintf("%.2f", r.DeadRatio),
		})
	}
	return header, cells
}

func runTreap(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunBaselineTreap(w, workers, reps)
	header := []string{"operation", "pb-ist_ms", "treap_ms"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{r.Op, bench.MS(r.ISTMS), bench.MS(r.TreapMS)})
	}
	return header, cells
}

func runLeafCap(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunSweepLeafCap(w, workers, reps, []int{8, 16, 32, 64, 128})
	header := []string{"H", "contains_ms", "update_ms", "height", "leaves"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.H), bench.MS(r.ContainsMS), bench.MS(r.UpdateMS),
			strconv.Itoa(r.Height), strconv.Itoa(r.Leaves),
		})
	}
	return header, cells
}

func runIndexFactor(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunSweepIndexFactor(w, workers, reps, []float64{0.25, 0.5, 1, 2, 4})
	header := []string{"factor", "contains_ms", "index_mb"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.Factor), bench.MS(r.ContainsMS),
			fmt.Sprintf("%.1f", float64(r.IndexBytes)/(1<<20)),
		})
	}
	return header, cells
}

func runBatchSize(w bench.Workload, workers, reps int) ([]string, [][]string) {
	rows := bench.RunSweepBatchSize(w, workers, reps,
		[]int{1000, 10_000, 100_000, 1_000_000})
	header := []string{"m", "contains_ms", "ns_per_key"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.M), bench.MS(r.ContainsMS),
			fmt.Sprintf("%.0f", r.NSPerKey),
		})
	}
	return header, cells
}

func parseCounts(csv, what string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s count %q", what, p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s counts given", what)
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
