// Package repro's root benchmark file regenerates every figure and
// table of the paper's evaluation (§9) as testing.B benchmarks — one
// benchmark family per experiment row of DESIGN.md §3:
//
//	E1–E3  BenchmarkFig17{Contains,Insert,Remove}   (Fig. 17 a–c)
//	E4     BenchmarkSeqCompare*                     (§9 in-text table)
//	A1/A3  BenchmarkAblationTraverse*               (§4.1 vs §4.2, smooth vs not)
//	A2     BenchmarkAblationRebuildC*               (§7.1 rebuild constant)
//	A4     BenchmarkBaselineTreap*                  (batched treap baseline)
//
// Benchmarks run at container-friendly sizes (n ≈ 10⁶, m = 2·10⁵);
// cmd/pbench runs the same experiments at configurable scale and
// prints the paper-style tables. Shapes — who wins, scaling slope —
// are what transfer; see EXPERIMENTS.md.
package repro

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/iseq"
	"repro/internal/parallel"
	"repro/internal/rbtree"
	"repro/internal/skiplist"
	"repro/internal/treap"
	"repro/pbist"
)

// benchWorkload is the shared workload of all root benchmarks: tree of
// ≈10⁶ keys (every integer of [−10⁶, 10⁶] with probability ½), batches
// of 2·10⁵ uniform keys — the paper's §9 setup at 1/100 scale.
var benchWorkload = bench.Workload{N: 1_000_000, M: 200_000, Seed: 0x5eed}

var (
	fixtureOnce sync.Once
	baseKeys    []int64
	batches     [][]int64
)

func fixtures() ([]int64, [][]int64) {
	fixtureOnce.Do(func() {
		w := benchWorkload.WithDefaults()
		baseKeys = w.BaseKeys()
		batches = make([][]int64, 16)
		for i := range batches {
			batches[i] = w.Batch(i)
		}
	})
	return baseKeys, batches
}

var fig17Workers = []int{1, 2, 4, 8, 16}

// E1 / Fig. 17a: ContainsBatched time versus worker count.
func BenchmarkFig17Contains(b *testing.B) {
	base, bat := fixtures()
	for _, w := range fig17Workers {
		b.Run(workersName(w), func(b *testing.B) {
			tree := core.NewFromSorted(core.Config{}, parallel.NewPool(w), base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.ContainsBatched(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// E2 / Fig. 17b: InsertBatched time versus worker count. Every
// iteration starts from a freshly built tree (excluded from timing).
func BenchmarkFig17Insert(b *testing.B) {
	base, bat := fixtures()
	for _, w := range fig17Workers {
		b.Run(workersName(w), func(b *testing.B) {
			pool := parallel.NewPool(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tree := core.NewFromSorted(core.Config{}, pool, base)
				b.StartTimer()
				tree.InsertBatched(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// E3 / Fig. 17c: RemoveBatched time versus worker count.
func BenchmarkFig17Remove(b *testing.B) {
	base, bat := fixtures()
	for _, w := range fig17Workers {
		b.Run(workersName(w), func(b *testing.B) {
			pool := parallel.NewPool(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tree := core.NewFromSorted(core.Config{}, pool, base)
				b.StartTimer()
				tree.RemoveBatched(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// E4: the §9 sequential comparison — one-worker batched IST versus the
// scalar O(log n) structures on the same M membership queries.
func BenchmarkSeqCompareISTBatched(b *testing.B) {
	base, bat := fixtures()
	tree := core.NewFromSorted(core.Config{}, nil, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ContainsBatched(bat[i%len(bat)])
	}
	reportKeysPerSec(b, benchWorkload.M)
}

func BenchmarkSeqCompareISTScalar(b *testing.B) {
	base, bat := fixtures()
	tree := iseq.NewFromSorted(iseq.Config{}, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range bat[i%len(bat)] {
			tree.Contains(k)
		}
	}
	reportKeysPerSec(b, benchWorkload.M)
}

func BenchmarkSeqCompareRBTree(b *testing.B) {
	base, bat := fixtures()
	tree := rbtree.New[int64]()
	for _, k := range base {
		tree.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range bat[i%len(bat)] {
			tree.Contains(k)
		}
	}
	reportKeysPerSec(b, benchWorkload.M)
}

func BenchmarkSeqCompareSkipList(b *testing.B) {
	base, bat := fixtures()
	l := skiplist.New[int64](1)
	for _, k := range base {
		l.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range bat[i%len(bat)] {
			l.Contains(k)
		}
	}
	reportKeysPerSec(b, benchWorkload.M)
}

// A1 + A3: traversal mode (interpolation vs Rank) crossed with input
// smoothness (uniform vs clustered).
func BenchmarkAblationTraverse(b *testing.B) {
	base, _ := fixtures()
	pool := parallel.NewPool(8)
	for _, mode := range []struct {
		name string
		tm   core.TraverseMode
	}{{"interpolation", core.TraverseInterpolation}, {"rank", core.TraverseRank}} {
		for _, d := range []struct {
			name     string
			clusters int
		}{{"uniform", 0}, {"clustered", 64}} {
			b.Run(mode.name+"/"+d.name, func(b *testing.B) {
				w := benchWorkload
				w.Clusters = d.clusters
				w = w.WithDefaults()
				probe := make([][]int64, 4)
				for i := range probe {
					probe[i] = w.Batch(100 + i)
				}
				tree := core.NewFromSorted(core.Config{Traverse: mode.tm}, pool, base)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tree.ContainsBatched(probe[i%len(probe)])
				}
				reportKeysPerSec(b, benchWorkload.M)
			})
		}
	}
}

// A2: the rebuild constant C — churn cost versus balance quality.
func BenchmarkAblationRebuildC(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	for _, c := range []int{1, 2, 4, 8} {
		b.Run("C"+itoa(c), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tree := core.NewFromSorted(core.Config{RebuildFactor: c}, pool, base)
				b.StartTimer()
				tree.InsertBatched(bat[i%8])
				tree.RemoveBatched(bat[(i+8)%16])
			}
		})
	}
}

// A4: PB-IST versus the join-based batched treap on the three batched
// set operations.
func BenchmarkBaselineTreapUnion(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		set := treap.NewFromSorted(pool, base)
		b.StartTimer()
		set.UnionWith(bat[i%len(bat)])
	}
	reportKeysPerSec(b, benchWorkload.M)
}

func BenchmarkBaselineTreapDifference(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		set := treap.NewFromSorted(pool, base)
		b.StartTimer()
		set.DifferenceWith(bat[i%len(bat)])
	}
	reportKeysPerSec(b, benchWorkload.M)
}

func BenchmarkBaselineTreapContains(b *testing.B) {
	base, bat := fixtures()
	set := treap.NewFromSorted(parallel.NewPool(8), base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.ContainsBatched(bat[i%len(bat)])
	}
	reportKeysPerSec(b, benchWorkload.M)
}

// Whole-tree set algebra: tree-to-tree union and symmetric difference
// of the ≈10⁶-key base tree with a batch-sized tree. Non-mutating, so
// the operands build once and every iteration times flatten + combine
// + ideal rebuild.
func BenchmarkSetAlgebraUnion(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	ta := core.NewFromSorted(core.Config{}, pool, base)
	tb := core.NewFromSorted(core.Config{}, pool, bat[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.Union(tb, true)
	}
	reportKeysPerSec(b, len(base)+benchWorkload.M)
}

func BenchmarkSetAlgebraSymDiff(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	ta := core.NewFromSorted(core.Config{}, pool, base)
	tb := core.NewFromSorted(core.Config{}, pool, bat[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.SymmetricDifference(tb)
	}
	reportKeysPerSec(b, len(base)+benchWorkload.M)
}

// A5: leaf capacity H (§3.4) — search cost versus leaf size.
func BenchmarkSweepLeafCap(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	for _, h := range []int{8, 16, 64} {
		b.Run("H"+itoa(h), func(b *testing.B) {
			tree := core.NewFromSorted(core.Config{LeafCap: h}, pool, base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.ContainsBatched(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// A6: interpolation-index size factor ε (§3.2) — search cost versus
// index memory.
func BenchmarkSweepIndexFactor(b *testing.B) {
	base, bat := fixtures()
	pool := parallel.NewPool(8)
	for _, name := range []struct {
		label  string
		factor float64
	}{{"quarter", 0.25}, {"one", 1}, {"four", 4}} {
		b.Run(name.label, func(b *testing.B) {
			tree := core.NewFromSorted(core.Config{IndexSizeFactor: name.factor}, pool, base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.ContainsBatched(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// A7: batch size m — per-key amortization of the shared traversal.
func BenchmarkSweepBatchSize(b *testing.B) {
	base, _ := fixtures()
	pool := parallel.NewPool(8)
	tree := core.NewFromSorted(core.Config{}, pool, base)
	for _, m := range []int{1000, 10000, 100000} {
		b.Run("m"+itoa(m), func(b *testing.B) {
			w := benchWorkload.WithDefaults()
			w.M = m
			probe := make([][]int64, 4)
			for i := range probe {
				probe[i] = w.Batch(300 + i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.ContainsBatched(probe[i%len(probe)])
			}
			reportKeysPerSec(b, m)
		})
	}
}

// Map workload: the value-carrying batched operations through the
// public Map view with 8-byte payloads. PutBatch mixes fresh inserts
// with value overwrites (batches share the base key range), so both
// the updateRec and insertRec paths execute; GetBatch exercises the
// value-fetching traversal. AssumeSorted skips facade normalization:
// the workload generator emits sorted duplicate-free batches, so the
// timings measure the batched core, not the sort.
func BenchmarkMapPutBatch(b *testing.B) {
	base, bat := fixtures()
	baseVals := bench.MapPayloads(base)
	for _, w := range []int{1, 8} {
		b.Run(workersName(w), func(b *testing.B) {
			opts := pbist.Options{Workers: w, AssumeSorted: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := pbist.NewMapFromItems(opts, base, baseVals)
				batch := bat[i%len(bat)]
				vals := bench.MapPayloads(batch)
				b.StartTimer()
				m.PutBatch(batch, vals)
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

func BenchmarkMapGetBatch(b *testing.B) {
	base, bat := fixtures()
	baseVals := bench.MapPayloads(base)
	for _, w := range []int{1, 8} {
		b.Run(workersName(w), func(b *testing.B) {
			m := pbist.NewMapFromItems(pbist.Options{Workers: w, AssumeSorted: true}, base, baseVals)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.GetBatch(bat[i%len(bat)])
			}
			reportKeysPerSec(b, benchWorkload.M)
		})
	}
}

// Concurrent combining frontend: point-op throughput when many
// client goroutines share one engine through pbist.Concurrent. Each
// b.N iteration is one Get per client, all clients in flight at once,
// so the combiner coalesces ≈clients ops per epoch.
func BenchmarkConcurrentGet(b *testing.B) {
	base, _ := fixtures()
	baseVals := bench.MapPayloads(base)
	for _, clients := range []int{1, 8, 64} {
		b.Run("clients_"+itoa(clients), func(b *testing.B) {
			c := pbist.NewConcurrentFromItems(
				pbist.ConcurrentOptions{Options: pbist.Options{AssumeSorted: true}},
				base, baseVals)
			defer c.Close()
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						c.Get(base[(g*1_000_003+i)%len(base)])
					}
				}(g)
			}
			wg.Wait()
			reportKeysPerSec(b, clients)
		})
	}
}

// Steady-state write-path allocation benchmarks: a 1M-key tree churned
// with 10k-key batches. Run with -benchmem: allocs/op and B/op here are
// the committed regression surface for the arena-backed rebuild engine
// (CI checks BenchmarkPutBatched against a ceiling). Each iteration
// times one batched write; the inverse operation runs untimed so the
// tree stays at its steady-state size and the same batches cycle
// through insert, revive, logical-delete, and rebuild paths forever.
const (
	allocBenchN = 1_000_000
	allocBenchM = 10_000
)

func allocBenchFixtures() (*core.Tree[int64, struct{}], [][]int64) {
	w := bench.Workload{N: allocBenchN, M: allocBenchM, Seed: 0x5eed}.WithDefaults()
	tree := core.NewFromSorted(core.Config{}, parallel.NewPool(8), w.BaseKeys())
	batches := make([][]int64, 16)
	for i := range batches {
		batches[i] = w.Batch(i)
	}
	// Warm to steady state: one full churn cycle per batch so later
	// iterations see the stable mix of inserts, revives, and rebuilds.
	for _, bat := range batches {
		tree.InsertBatched(bat)
		tree.RemoveBatched(bat)
	}
	return tree, batches
}

func BenchmarkPutBatched(b *testing.B) {
	tree, batches := allocBenchFixtures()
	zeros := make([]struct{}, allocBenchM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat := batches[i%len(batches)]
		tree.PutBatched(bat, zeros[:len(bat)])
		b.StopTimer()
		tree.RemoveBatched(bat)
		b.StartTimer()
	}
	reportKeysPerSec(b, allocBenchM)
}

func BenchmarkRemoveBatched(b *testing.B) {
	tree, batches := allocBenchFixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bat := batches[i%len(batches)]
		b.StopTimer()
		tree.InsertBatched(bat)
		b.StartTimer()
		tree.RemoveBatched(bat)
	}
	reportKeysPerSec(b, allocBenchM)
}

// Bulk-load throughput: the §7.3 parallel ideal build.
func BenchmarkBuildIdeal(b *testing.B) {
	base, _ := fixtures()
	for _, w := range []int{1, 8} {
		b.Run(workersName(w), func(b *testing.B) {
			pool := parallel.NewPool(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.NewFromSorted(core.Config{}, pool, base)
			}
			reportKeysPerSec(b, len(base))
		})
	}
}

func reportKeysPerSec(b *testing.B, keysPerOp int) {
	b.ReportMetric(float64(keysPerOp)*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func workersName(w int) string { return "workers_" + itoa(w) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
