package shard

import (
	"slices"
	"testing"

	"repro/internal/dist"
)

func TestRangesShardAssignment(t *testing.T) {
	r := NewRanges([]int64{10, 20, 30})
	if r.N() != 4 {
		t.Fatalf("N = %d, want 4", r.N())
	}
	if !r.Ordered() {
		t.Fatal("range partitioner must report Ordered")
	}
	cases := []struct {
		key  int64
		want int
	}{
		{-5, 0}, {0, 0}, {9, 0},
		{10, 1}, {15, 1}, {19, 1},
		{20, 2}, {29, 2},
		{30, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		if got := r.Shard(c.key); got != c.want {
			t.Errorf("Shard(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestRangesOrderRefinement(t *testing.T) {
	// Random boundaries, random keys: shard index must be monotone in
	// the key, the property concatenation-cheap ordered reads rely on.
	rng := dist.NewRNG(42)
	keys := dist.UniformSet(rng, 5000, -1_000_000, 1_000_000)
	for _, n := range []int{1, 2, 3, 8, 17} {
		p := NewRangeQuantiles(n, keys)
		last := 0
		for _, k := range keys { // keys are sorted
			s := p.Shard(k)
			if s < last {
				t.Fatalf("n=%d: shard went backwards at key %d: %d after %d", n, k, s, last)
			}
			if s < 0 || s >= n {
				t.Fatalf("n=%d: Shard(%d) = %d out of range", n, k, s)
			}
			last = s
		}
	}
}

func TestRangeQuantilesBalance(t *testing.T) {
	rng := dist.NewRNG(7)
	// Zipf-skewed keys: uniform splitting would starve most shards,
	// quantile boundaries must keep every shard within 2x of fair.
	keys := dist.ZipfSet(rng, 40_000, 0.8, 0, 1<<30)
	const n = 8
	p := NewRangeQuantiles(n, keys)
	counts := make([]int, n)
	for _, k := range keys {
		counts[p.Shard(k)]++
	}
	fair := len(keys) / n
	for s, c := range counts {
		if c > 2*fair {
			t.Errorf("shard %d holds %d keys, fair share %d", s, c, fair)
		}
	}
}

func TestNewRangeUniform(t *testing.T) {
	p := NewRangeUniform(4, int64(0), int64(100))
	want := []int64{25, 50, 75}
	if !slices.Equal(p.Bounds(), want) {
		t.Fatalf("bounds = %v, want %v", p.Bounds(), want)
	}
	if p.Shard(int64(24)) != 0 || p.Shard(int64(25)) != 1 || p.Shard(int64(99)) != 3 {
		t.Fatal("uniform bounds misroute")
	}
	// n=1 degenerates to a single shard taking everything.
	one := NewRangeUniform(1, int64(-10), int64(10))
	if one.N() != 1 || one.Shard(int64(-99)) != 0 || one.Shard(int64(99)) != 0 {
		t.Fatal("single-shard uniform partitioner misroutes")
	}
}

func TestHashedBalanceAndDeterminism(t *testing.T) {
	const n = 8
	p := NewHashed[int64](n)
	if p.Ordered() {
		t.Fatal("hash partitioner must not report Ordered")
	}
	rng := dist.NewRNG(3)
	// Clustered keys — the adversarial case for range partitioning —
	// must still spread evenly under hashing.
	keys := dist.Clustered(rng, 40_000, 4, 0, 1<<30)
	counts := make([]int, n)
	for _, k := range keys {
		s := p.Shard(k)
		if s != p.Shard(k) {
			t.Fatalf("Shard(%d) not deterministic", k)
		}
		counts[s]++
	}
	fair := len(keys) / n
	for s, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Errorf("shard %d holds %d keys, fair share %d", s, c, fair)
		}
	}
}

func TestSplitStitchRoundTrip(t *testing.T) {
	rng := dist.NewRNG(11)
	for _, p := range []Partitioner[int64]{
		NewHashed[int64](5),
		NewRangeUniform(5, int64(0), int64(1000)),
	} {
		// Unsorted, duplicated input — the scatter must preserve the
		// positional contract regardless.
		keys := make([]int64, 777)
		for i := range keys {
			keys[i] = rng.Int63n(1000)
		}
		parts, pos := Split(p, keys)
		if len(parts) != p.N() || len(pos) != p.N() {
			t.Fatalf("Split returned %d/%d parts, want %d", len(parts), len(pos), p.N())
		}
		total := 0
		for s := range parts {
			if len(parts[s]) != len(pos[s]) {
				t.Fatalf("shard %d: %d keys but %d positions", s, len(parts[s]), len(pos[s]))
			}
			total += len(parts[s])
			for j, k := range parts[s] {
				if p.Shard(k) != s {
					t.Fatalf("key %d scattered to shard %d, owner %d", k, s, p.Shard(k))
				}
				if keys[pos[s][j]] != k {
					t.Fatalf("position map broken: parts[%d][%d]=%d but keys[%d]=%d",
						s, j, k, pos[s][j], keys[pos[s][j]])
				}
			}
		}
		if total != len(keys) {
			t.Fatalf("scatter dropped keys: %d of %d", total, len(keys))
		}
		// Stitching the scattered keys back must reproduce the input.
		out := make([]int64, len(keys))
		Stitch(out, parts, pos)
		if !slices.Equal(out, keys) {
			t.Fatal("Stitch(Split(keys)) != keys")
		}
		// Per-shard stitch agrees with the all-shards stitch.
		out2 := make([]int64, len(keys))
		for s := range parts {
			StitchOne(out2, parts[s], pos[s])
		}
		if !slices.Equal(out2, keys) {
			t.Fatal("StitchOne disagrees with Stitch")
		}
	}
}

func TestSplitPairsAlignment(t *testing.T) {
	p := NewHashed[int64](3)
	keys := []int64{5, 1, 5, 9, 2, 2, 7}
	vals := []uint64{50, 10, 51, 90, 20, 21, 70}
	parts, vparts, pos := SplitPairs(p, keys, vals)
	for s := range parts {
		for j := range parts[s] {
			if vparts[s][j] != vals[pos[s][j]] {
				t.Fatalf("value misaligned: shard %d slot %d has %d, want %d",
					s, j, vparts[s][j], vals[pos[s][j]])
			}
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(8 * 10_000)
	rng := dist.NewRNG(99)
	added := make([]int64, 10_000)
	for i := range added {
		added[i] = rng.Int63n(1 << 40)
		b.Add(HashKey(added[i]))
	}
	for _, k := range added {
		if !b.MayContain(HashKey(k)) {
			t.Fatalf("false negative for added key %d", k)
		}
	}
	// False positives must be rare enough to be a useful router.
	fp := 0
	const probes = 20_000
	for i := 0; i < probes; i++ {
		k := -1 - rng.Int63n(1<<40) // negative: disjoint from added keys
		if b.MayContain(HashKey(k)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.25 {
		t.Fatalf("false-positive rate %.3f too high to be useful", rate)
	}
}
