// Package shard implements the partitioning machinery behind the
// sharded super-tree frontend (pbist.Sharded): partition policies that
// assign every key to one of N independent trees, the scatter step
// that splits a batch into per-shard sub-batches, and the
// order-restoring stitch that routes per-shard results back to the
// caller's input positions.
//
// The design follows the N-independent-trees-behind-one-facade recipe
// of parallel B+-tree frontends: instead of scaling one tree's
// synchronization, the key space is partitioned and each partition is
// served by its own single-writer engine, so N partitions sustain N
// concurrent epochs. This package is deliberately engine-agnostic —
// it only knows keys, positions, and shard indexes; the facade in
// pbist wires the partitions to core trees and combiners.
//
// Two policies are provided:
//
//   - Ranges partitions by key interval: shard i owns the keys between
//     two boundary values (fence keys). Partition order then equals key
//     order (Ordered reports true), so cross-shard ordered reads —
//     Range, Ascend, Keys, Items — concatenate per-shard results
//     without a merge, and whole-tree set algebra can run per shard.
//   - Hashed partitions by a mixed 64-bit hash of the key, trading the
//     ordering property for balance that is immune to key-space skew:
//     any workload spreads uniformly, but ordered reads must merge N
//     sorted sequences.
//
// The scatter/stitch pair (Split, Stitch, SplitPairs) preserves the
// positional contract of the batched API: whatever the input order or
// duplication, result position i answers input position i, exactly as
// the unsharded engine promises.
//
// Bloom provides the optional per-shard point-lookup filter: a
// fixed-size, lock-free (atomic word array) Bloom filter that answers
// "definitely absent" without touching the shard's combiner. It is
// one-sided by construction — keys are added on insert and never
// removed, so a hit may be stale after a delete (the lookup proceeds
// and answers correctly) but a miss is always authoritative.
package shard

import (
	"math"
	"math/bits"
	"sort"
)

// Key is the numeric key constraint, mirroring pbist.Key: ordered
// types with an order-preserving conversion to float64 (the same
// property interpolation search relies on, reused here for uniform
// range splitting and hashing).
type Key interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Partitioner assigns every key to exactly one of N shards. Shard
// must be deterministic and total: the same key always maps to the
// same shard, whatever the tree contents. Implementations must be
// safe for concurrent use (both policies here are stateless after
// construction).
type Partitioner[K Key] interface {
	// N reports the shard count.
	N() int
	// Shard returns the owning shard of key, in [0, N()).
	Shard(key K) int
	// Ordered reports whether shard order refines key order: every
	// key of shard i sorts at or before every key of shard i+1. When
	// true, concatenating per-shard sorted sequences in shard order
	// yields a globally sorted sequence.
	Ordered() bool
}

// Ranges is the range partitioner: shard i owns the keys k with
// bounds[i-1] <= k < bounds[i] (shard 0 is unbounded below, the last
// shard unbounded above). It preserves key order across shards, which
// keeps ordered reads and set algebra concatenation-cheap, at the
// price of balance only as good as the boundary choice — use
// NewRangeQuantiles to fit boundaries to observed data, or
// NewRangeUniform when keys are roughly uniform over a known span.
type Ranges[K Key] struct {
	bounds []K // ascending; len = N-1
}

// NewRanges returns a range partitioner with explicit ascending
// boundary keys: n = len(bounds)+1 shards. Equal adjacent bounds are
// permitted and simply yield empty shards.
func NewRanges[K Key](bounds []K) *Ranges[K] {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic("shard: NewRanges bounds not ascending")
		}
	}
	return &Ranges[K]{bounds: bounds}
}

// NewRangeUniform returns a range partitioner splitting [lo, hi] into
// n equal-width intervals — the right default when keys are close to
// uniform over a known span (the smooth-distribution regime the
// interpolation tree itself is built for).
func NewRangeUniform[K Key](n int, lo, hi K) *Ranges[K] {
	if n < 1 {
		panic("shard: NewRangeUniform needs n >= 1")
	}
	if hi < lo {
		panic("shard: NewRangeUniform needs lo <= hi")
	}
	bounds := make([]K, n-1)
	flo, fhi := float64(lo), float64(hi)
	for i := range bounds {
		bounds[i] = K(flo + (fhi-flo)*float64(i+1)/float64(n))
	}
	return NewRanges(bounds)
}

// NewRangeQuantiles returns a range partitioner whose boundaries are
// the n-quantiles of a sorted key sample, so each shard starts with an
// equal share of the observed keys whatever their distribution. A
// sample smaller than n produces some empty shards, which is safe.
func NewRangeQuantiles[K Key](n int, sorted []K) *Ranges[K] {
	if n < 1 {
		panic("shard: NewRangeQuantiles needs n >= 1")
	}
	bounds := make([]K, 0, n-1)
	for i := 1; i < n; i++ {
		if len(sorted) == 0 {
			var zero K
			bounds = append(bounds, zero)
			continue
		}
		j := i * len(sorted) / n
		if j >= len(sorted) {
			j = len(sorted) - 1
		}
		bounds = append(bounds, sorted[j])
	}
	return NewRanges(bounds)
}

// N reports the shard count.
func (r *Ranges[K]) N() int { return len(r.bounds) + 1 }

// Shard returns the owning shard: the number of boundaries at or
// below key.
func (r *Ranges[K]) Shard(key K) int {
	// First boundary strictly greater than key; all before it are <= key.
	return sort.Search(len(r.bounds), func(i int) bool { return key < r.bounds[i] })
}

// Ordered reports true: range partitioning refines key order.
func (r *Ranges[K]) Ordered() bool { return true }

// Bounds returns the boundary keys (ascending, length N-1). The
// returned slice is the partitioner's own; callers must not mutate it.
func (r *Ranges[K]) Bounds() []K { return r.bounds }

// Hashed is the hash partitioner: shard = mix(key) mapped onto [0, n)
// by multiply-shift. Balance is distribution-independent, but shard
// order says nothing about key order (Ordered reports false), so
// ordered cross-shard reads pay an N-way merge.
type Hashed[K Key] struct {
	n int
}

// NewHashed returns a hash partitioner over n shards.
func NewHashed[K Key](n int) *Hashed[K] {
	if n < 1 {
		panic("shard: NewHashed needs n >= 1")
	}
	return &Hashed[K]{n: n}
}

// N reports the shard count.
func (h *Hashed[K]) N() int { return h.n }

// Shard returns the owning shard of key.
func (h *Hashed[K]) Shard(key K) int {
	// Multiply-shift of the mixed hash: hi bits of mix * n, an unbiased
	// map onto [0, n) that needs no modulo.
	hi, _ := bits.Mul64(HashKey(key), uint64(h.n))
	return int(hi)
}

// Ordered reports false: hashing scrambles key order.
func (h *Hashed[K]) Ordered() bool { return false }

// HashKey mixes a key into a 64-bit hash (splitmix64 finalizer over
// the key's float64 image — deterministic, stateless, and identical
// for equal keys, which is all partitioning and filtering need).
func HashKey[K Key](key K) uint64 {
	x := math.Float64bits(float64(key))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Split scatters keys into per-shard sub-batches and remembers every
// key's input position. parts[s] holds the keys owned by shard s in
// input order; pos[s][j] is the input position of parts[s][j], so a
// per-shard result vector r_s routes back with dst[pos[s][j]] =
// r_s[j] (see Stitch). Both returned slice sets are carved from two
// backing arrays of len(keys), so a Split costs O(keys) work and four
// allocations however many shards there are.
func Split[K Key](p Partitioner[K], keys []K) (parts [][]K, pos [][]int32) {
	n := p.N()
	counts := make([]int, n)
	owner := make([]int8, len(keys))
	wide := n > 127
	for i, k := range keys {
		s := p.Shard(k)
		counts[s]++
		if !wide {
			owner[i] = int8(s)
		}
	}
	keyArr := make([]K, len(keys))
	posArr := make([]int32, len(keys))
	parts = make([][]K, n)
	pos = make([][]int32, n)
	off := 0
	for s, c := range counts {
		parts[s] = keyArr[off : off : off+c]
		pos[s] = posArr[off : off : off+c]
		off += c
	}
	for i, k := range keys {
		s := int(owner[i])
		if wide {
			s = p.Shard(k)
		}
		parts[s] = append(parts[s], k)
		pos[s] = append(pos[s], int32(i))
	}
	return parts, pos
}

// SplitPairs is Split for (key, value) pairs: vparts[s][j] is the
// value of parts[s][j].
func SplitPairs[K Key, V any](p Partitioner[K], keys []K, vals []V) (parts [][]K, vparts [][]V, pos [][]int32) {
	parts, pos = Split(p, keys)
	valArr := make([]V, len(vals))
	vparts = make([][]V, len(parts))
	off := 0
	for s := range parts {
		c := len(parts[s])
		w := valArr[off : off : off+c]
		for _, at := range pos[s] {
			w = append(w, vals[at])
		}
		vparts[s] = w
		off += c
	}
	return parts, vparts, pos
}

// Stitch routes per-shard results back to input positions:
// dst[pos[s][j]] = parts[s][j] for every shard s. It is the inverse of
// the scatter Split performed; distinct shards never share a position,
// so concurrent per-shard stitches into one dst are race-free.
func Stitch[T any](dst []T, parts [][]T, pos [][]int32) {
	for s, ps := range parts {
		for j, v := range ps {
			dst[pos[s][j]] = v
		}
	}
}

// StitchOne routes one shard's results back to input positions —
// the per-shard half of Stitch, for callers that stitch each shard's
// results on that shard's gather goroutine.
func StitchOne[T any](dst []T, part []T, pos []int32) {
	for j, v := range part {
		dst[pos[j]] = v
	}
}
