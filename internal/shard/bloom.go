package shard

import "sync/atomic"

// bloomProbes is the number of bit positions one key sets and tests.
// Two probes keep the false-positive rate near (fill)² while costing
// one hash: the second position is derived from the upper hash bits.
const bloomProbes = 2

// Bloom is a fixed-size, lock-free Bloom filter used as the optional
// per-shard point-lookup router: Add on every insert, MayContain
// before submitting a Get/Contains to the shard's combiner. A false
// answer is authoritative — the key was never inserted into this
// shard — so the lookup can short-circuit to "absent" without a queue
// round trip. A true answer merely forwards the lookup; deletes never
// clear bits, so a deleted key reads as a (harmless) stale positive.
//
// Concurrency: Add uses atomic Or, MayContain atomic loads, so any
// number of goroutines may add and test at once. The linearizability
// argument of the frontend needs exactly one ordering property, which
// Add provides by running before the insert is acknowledged: once a
// Put has returned, every later MayContain sees its bits.
type Bloom struct {
	words []atomic.Uint64
	mask  uint64 // len(words)*64 - 1; bit-index mask, power of two
}

// NewBloom returns a filter with at least bits bit slots, rounded up
// to a power of two (minimum 1024). A filter sized at ~8 bits per
// expected key keeps the false-positive rate around 5% with two
// probes.
func NewBloom(bits int) *Bloom {
	n := 1024
	for n < bits {
		n <<= 1
	}
	return &Bloom{
		words: make([]atomic.Uint64, n/64),
		mask:  uint64(n - 1),
	}
}

// Add marks hash h (HashKey of the inserted key) present.
func (b *Bloom) Add(h uint64) {
	for p := 0; p < bloomProbes; p++ {
		bit := (h >> (32 * p)) & b.mask
		b.words[bit/64].Or(1 << (bit % 64))
	}
}

// MayContain reports whether hash h may have been added. False means
// definitely not added.
func (b *Bloom) MayContain(h uint64) bool {
	for p := 0; p < bloomProbes; p++ {
		bit := (h >> (32 * p)) & b.mask
		if b.words[bit/64].Load()&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
