package shard

import "repro/internal/obs"

// Obs bundles the scatter-gather metric handles a sharded frontend
// records into: how long batches take to split into per-shard
// sub-batches, how long per-shard results take to stitch back into
// input order, and how often the per-shard Bloom filters short-circuit
// point lookups versus passing them through to a combiner. All handles
// are nil-safe, so callers record unconditionally once an Obs exists;
// a nil *Obs is the fully disabled state.
type Obs struct {
	Scatter *obs.Histogram // ns to split one batch (Split/SplitPairs)
	Stitch  *obs.Histogram // ns to stitch one shard's results back
	// FilterShort counts point lookups answered "absent" by a filter
	// alone; FilterPass counts lookups the filter let through. Their
	// ratio is the short-circuit rate; Pass includes both true
	// positives and Bloom false positives.
	FilterShort *obs.Counter
	FilterPass  *obs.Counter
	// CutRetries counts re-collections of the cross-shard atomic cut:
	// a whole-structure read observed some shard publish a new version
	// mid-collect and had to re-validate. Persistently high values mean
	// whole-structure reads are racing a sustained write storm.
	CutRetries *obs.Counter
}

// NewObs resolves the shard metric handles under the "shard." prefix;
// nil registry → nil Obs.
func NewObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		Scatter:     r.Histogram("shard.scatter_ns"),
		Stitch:      r.Histogram("shard.stitch_ns"),
		FilterShort: r.Counter("shard.filter.short_circuits"),
		FilterPass:  r.Counter("shard.filter.passes"),
		CutRetries:  r.Counter("shard.cut.retries"),
	}
}
