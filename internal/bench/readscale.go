package bench

import (
	"time"

	"repro/pbist"
)

// ReadScaleRow is one point of the read-scaling experiment: point-read
// throughput (million ops per second) at a given client-goroutine
// count for the two read paths of pbist.Concurrent, plus a mixed
// column that keeps the combiner republishing while the fast path is
// under load.
type ReadScaleRow struct {
	Clients     int
	CombineMops float64 // c.Get: reads queued through the combiner
	FastMops    float64 // c.GetFast: wait-free published-version reads
	FastX       float64 // FastMops / CombineMops
	MixedMops   float64 // 90% GetFast, 10% combiner writes (republish under load)
	Epochs      int64   // combiner epochs during the mixed replay (≈ republish count)
}

// readOnlyScripts deals the same per-client scripts as the concurrent
// experiment (same keys, same shuffle) but tags every op as a read,
// so the two read paths replay byte-identical traffic.
func readOnlyScripts(w Workload, rep, clients int) [][]scriptOp {
	scripts := concurrentScripts(w, rep, clients)
	for _, sc := range scripts {
		for i := range sc {
			sc[i].kind = scGet
		}
	}
	return scripts
}

// RunReadScale measures point-read throughput versus client count for
// the combiner read path (Get: enqueue, wait for the epoch fence) and
// the wait-free read path (GetFast: interpolate against the latest
// published version, no coordination). Both replay identical
// read-only scripts against the same bulk-loaded structure. A third
// replay runs the standard 90/10 mixed scripts with reads routed
// through GetFast and writes through the combiner, so the fast path
// is measured while versions are being republished and chunks
// retired/recycled underneath it.
//
// On a single core the fast path should hold (not degrade) as clients
// grow — there is no queue to collapse on — while its advantage over
// the combiner path widens with core count (each GetFast is an
// independent cache-local probe; see README, "Wait-free reads and
// snapshots").
func RunReadScale(w Workload, clients []int, reps int) []ReadScaleRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	base := w.BaseKeys()
	baseVals := MapPayloads(base)
	opts := pbist.Options{AssumeSorted: true}

	rows := make([]ReadScaleRow, 0, len(clients))
	for _, nc := range clients {
		ro := make([][][]scriptOp, reps)
		mixed := make([][][]scriptOp, reps)
		for rep := 0; rep < reps; rep++ {
			ro[rep] = readOnlyScripts(w, rep, nc)
			mixed[rep] = concurrentScripts(w, rep, nc)
		}

		row := ReadScaleRow{Clients: nc}

		// Both pure-read paths replay against one structure: the
		// scripts never mutate, so the comparison sees identical data.
		{
			c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{Options: opts}, base, baseVals)
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replay(ro[rep],
					func(k int64) { c.Get(k) },
					func(k int64, v uint64) { c.Put(k, v) },
					func(k int64) { c.Delete(k) })
			}
			row.CombineMops = mops(ro[0], total/time.Duration(reps))

			total = 0
			for rep := 0; rep < reps; rep++ {
				total += replay(ro[rep],
					func(k int64) { c.GetFast(k) },
					func(k int64, v uint64) { c.Put(k, v) },
					func(k int64) { c.Delete(k) })
			}
			row.FastMops = mops(ro[0], total/time.Duration(reps))
			c.Close()
		}
		if row.CombineMops > 0 {
			row.FastX = row.FastMops / row.CombineMops
		}

		// Mixed: reads take the fast path while 10% of ops keep the
		// combiner publishing fresh versions, exercising pin/era
		// reclamation under read load. Fresh structure: the replay
		// drifts its contents.
		{
			c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{Options: opts}, base, baseVals)
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replay(mixed[rep],
					func(k int64) { c.GetFast(k) },
					func(k int64, v uint64) { c.Put(k, v) },
					func(k int64) { c.Delete(k) })
			}
			row.MixedMops = mops(mixed[0], total/time.Duration(reps))
			row.Epochs = c.Stats().Epochs
			c.Close()
		}

		rows = append(rows, row)
	}
	return rows
}
