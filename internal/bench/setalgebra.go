package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/parallel"
)

// SetAlgebraRow is one point of the whole-tree set-algebra experiment:
// the cost of tree-to-tree Union / Intersect / DifferenceTree /
// SymmetricDifference at one operand-size ratio, next to a sequential
// sorted-slice merge baseline. The tree operations pay flatten +
// combine + ideal rebuild and hand back a queryable tree; the baseline
// pays only the merge and hands back a bare sorted array — the gap
// between the two is the price of structure.
type SetAlgebraRow struct {
	Ratio    string // |A| : |B|, e.g. "1:1000"
	BKeys    int    // |B| actually generated
	UnionMS  float64
	InterMS  float64
	DiffMS   float64
	SymMS    float64
	SliceMS  float64   // sequential sorted-slice union of the same operands
	SpeedupU float64   // SliceMS / UnionMS
	Union    AllocStat // per Union call (-benchmem style)
}

// SetAlgebraRatios are the |A|:|B| operand-size ratios the experiment
// sweeps: balanced, moderately skewed, and extreme.
var SetAlgebraRatios = []int{1, 10, 1000}

// sliceUnionBaseline merges two sorted duplicate-free key slices
// sequentially — the textbook two-pointer walk a sorted-slice design
// would run instead of the tree operation.
func sliceUnionBaseline(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// RunSetAlgebraWorkload measures whole-tree set algebra: tree A is
// bulk-loaded from the §9 base keys, tree B is drawn from the
// workload's batch distribution at |A|/ratio keys over the same range,
// and each repetition times the four tree-to-tree operations plus the
// sorted-slice union baseline. The operations are non-mutating, so
// both operand trees are built once per ratio and reused across
// repetitions.
func RunSetAlgebraWorkload(w Workload, workers, reps int) []SetAlgebraRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	pool := parallel.NewPool(workers)
	aKeys := w.BaseKeys()
	treeA := core.NewFromSorted(core.Config{}, pool, aKeys)
	lo, hi := w.Range()

	rows := make([]SetAlgebraRow, 0, len(SetAlgebraRatios))
	for _, ratio := range SetAlgebraRatios {
		bSize := len(aKeys) / ratio
		if bSize < 1 {
			bSize = 1
		}
		bKeys, err := dist.Generate(w.DistName(), dist.NewRNG(w.Seed^uint64(ratio)*0x9e37), bSize, lo, hi)
		if err != nil {
			panic(err) // Validate gates the name in the commands
		}
		treeB := core.NewFromSorted(core.Config{}, pool, bKeys)

		row := SetAlgebraRow{Ratio: fmt.Sprintf("1:%d", ratio), BKeys: len(bKeys)}
		row.UnionMS, row.Union = meanAllocMS(reps, func(int) func() {
			return func() { treeA.Union(treeB, true) }
		})
		row.InterMS = meanMS(reps, func(int) func() {
			return func() { treeA.Intersect(treeB, false) }
		})
		row.DiffMS = meanMS(reps, func(int) func() {
			return func() { treeA.DifferenceTree(treeB) }
		})
		row.SymMS = meanMS(reps, func(int) func() {
			return func() { treeA.SymmetricDifference(treeB) }
		})
		row.SliceMS = meanMS(reps, func(int) func() {
			return func() { sliceUnionBaseline(aKeys, bKeys) }
		})
		row.SpeedupU = safeRatio(row.SliceMS, row.UnionMS)
		rows = append(rows, row)
	}
	return rows
}
