package bench

import (
	"sync"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

// ShardedRow is one point of the sharded-frontend experiment:
// batched-write throughput (million keys per second) of a Sharded at
// a given shard count versus the single-combiner Concurrent baseline
// serving the same client fleet and scripts, plus the per-shard
// combining evidence — how many epochs each configuration executed
// and how evenly the keys spread over the shards.
type ShardedRow struct {
	Shards       int     // 0 = the Concurrent baseline row
	Mops         float64 // million keys through PutBatch/GetBatch per second
	Speedup      float64 // vs the Concurrent baseline
	Epochs       int64   // total epochs across all combiners
	EpochKeys    float64 // mean keys per epoch (combining quality)
	MinShardKeys int64   // lightest shard's key count (balance floor)
	MaxShardKeys int64   // heaviest shard's key count (balance ceiling)
	FilterShorts int64   // point lookups answered by a Bloom filter alone
	MeanWaitUS   float64 // ops-weighted mean µs an op queued before its epoch
}

// shardedScript is one client's replayable mini-batch sequence: the
// write-heavy traffic sharding is built for — every op carries a
// small unsorted batch, 3 PutBatch : 1 GetBatch.
type shardedScript struct {
	keys [][]int64
	vals [][]uint64
}

// shardedScripts deals the rep's workload batch into per-client
// mini-batch scripts of batchKeys keys each, shuffled per client.
func shardedScripts(w Workload, rep, clients, batchKeys int) []shardedScript {
	keys := w.Batch(rep)
	per, rem := len(keys)/clients, len(keys)%clients
	scripts := make([]shardedScript, 0, clients)
	start := 0
	for c := 0; c < clients && start < len(keys); c++ {
		end := start + per
		if c < rem {
			end++
		}
		part := append([]int64(nil), keys[start:end]...)
		start = end
		r := dist.NewRNG(w.Seed ^ 0x5da4ded ^ uint64(rep)<<20 ^ uint64(c))
		for i := len(part) - 1; i > 0; i-- {
			j := int(r.Uint64n(uint64(i + 1)))
			part[i], part[j] = part[j], part[i]
		}
		var sc shardedScript
		for off := 0; off < len(part); off += batchKeys {
			hi := min(off+batchKeys, len(part))
			mk := part[off:hi]
			mv := make([]uint64, len(mk))
			for i, k := range mk {
				mv[i] = MapPayload(k)
			}
			sc.keys = append(sc.keys, mk)
			sc.vals = append(sc.vals, mv)
		}
		scripts = append(scripts, sc)
	}
	return scripts
}

// replayBatched runs every client's mini-batch script against an
// engine's batched ops (3 puts : 1 get), all clients released by one
// barrier, and returns elapsed wall time.
func replayBatched(scripts []shardedScript,
	put func([]int64, []uint64), get func([]int64)) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, sc := range scripts {
		wg.Add(1)
		go func(sc shardedScript) {
			defer wg.Done()
			<-start
			for b := range sc.keys {
				if b%4 == 3 {
					get(sc.keys[b])
				} else {
					put(sc.keys[b], sc.vals[b])
				}
			}
		}(sc)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

func batchedMkeys(scripts []shardedScript, elapsed time.Duration) float64 {
	n := 0
	for _, sc := range scripts {
		for _, b := range sc.keys {
			n += len(b)
		}
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds() / 1e6
}

// RunShardedWorkload measures batched-write throughput of the sharded
// super-tree versus the single-combiner frontend: every engine is
// bulk-loaded with the base keys, then each repetition replays the
// same per-client mini-batch scripts (batchKeys-key unsorted batches,
// 3 PutBatch : 1 GetBatch) against a Concurrent baseline (row
// Shards=0) and a range-partitioned Sharded at every shard count in
// shards. Gains require real cores: N shards run up to N epochs
// concurrently, which a single core serializes right back.
func RunShardedWorkload(w Workload, clients int, shards []int, batchKeys, reps int) []ShardedRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	if clients < 1 {
		clients = 16
	}
	if batchKeys < 1 {
		batchKeys = 64
	}
	base := w.BaseKeys()
	baseVals := MapPayloads(base)
	opts := pbist.Options{AssumeSorted: true} // base is sorted unique

	scripts := make([][]shardedScript, reps)
	for rep := 0; rep < reps; rep++ {
		scripts[rep] = shardedScripts(w, rep, clients, batchKeys)
	}

	rows := make([]ShardedRow, 0, len(shards)+1)

	// Baseline: one combiner.
	{
		c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{Options: opts}, base, baseVals)
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			total += replayBatched(scripts[rep],
				func(k []int64, v []uint64) { c.PutBatch(k, v) },
				func(k []int64) { c.GetBatch(k) })
		}
		st := c.Stats()
		c.Close()
		row := ShardedRow{Shards: 0, Mops: batchedMkeys(scripts[0], total/time.Duration(reps)), Speedup: 1}
		row.Epochs = st.Epochs
		row.EpochKeys = st.MeanKeys
		row.MinShardKeys, row.MaxShardKeys = st.Keys, st.Keys
		row.MeanWaitUS = float64(st.MeanWait.Nanoseconds()) / 1e3
		rows = append(rows, row)
	}
	baseMops := rows[0].Mops

	for _, ns := range shards {
		s := pbist.NewShardedFromItems(pbist.ShardedOptions{
			ConcurrentOptions: pbist.ConcurrentOptions{Options: opts},
			Shards:            ns,
		}, base, baseVals)
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			total += replayBatched(scripts[rep],
				func(k []int64, v []uint64) { s.PutBatch(k, v) },
				func(k []int64) { s.GetBatch(k) })
		}
		st := s.Stats()
		s.Close()
		row := ShardedRow{Shards: ns, Mops: batchedMkeys(scripts[0], total/time.Duration(reps))}
		if baseMops > 0 {
			row.Speedup = row.Mops / baseMops
		}
		row.Epochs = st.Epochs
		if st.Epochs > 0 {
			row.EpochKeys = float64(st.Keys) / float64(st.Epochs)
		}
		row.FilterShorts = st.FilterShortCircuits
		// Ops-weighted mean combine wait across the shard group.
		var waitNS float64
		for _, ps := range st.PerShard {
			waitNS += float64(ps.MeanWait.Nanoseconds()) * float64(ps.Ops)
		}
		if st.Ops > 0 {
			row.MeanWaitUS = waitNS / float64(st.Ops) / 1e3
		}
		row.MinShardKeys = st.PerShard[0].Keys
		for _, ps := range st.PerShard {
			if ps.Keys < row.MinShardKeys {
				row.MinShardKeys = ps.Keys
			}
			if ps.Keys > row.MaxShardKeys {
				row.MaxShardKeys = ps.Keys
			}
		}
		rows = append(rows, row)
	}
	return rows
}
