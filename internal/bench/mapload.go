package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// MapRow is one point of the map workload: the cost of value-carrying
// batched operations (PutBatched upserts and GetBatched lookups, both
// with 8-byte payloads) at a given worker count, plus speedup relative
// to one worker. It is the Fig. 17 experiment re-run through the
// key-value plumbing, so a regression that only affects the value
// paths shows up here even when the set curves stay flat.
type MapRow struct {
	Workers  int
	PutMS    float64
	GetMS    float64
	SpeedupP float64
	SpeedupG float64
	Put      AllocStat // per PutBatched call (-benchmem style)
}

// MapPayload derives the 8-byte benchmark payload stored under key.
// Deriving values from keys (rather than storing a constant) keeps the
// workload honest: a traversal that detaches values from keys would
// produce observably wrong answers, and the final checksum consumers
// can recompute it.
func MapPayload(key int64) uint64 {
	return uint64(key) * 0x9e3779b97f4a7c15
}

// MapPayloads builds the payload slice for a batch.
func MapPayloads(keys []int64) []uint64 {
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = MapPayload(k)
	}
	return out
}

// RunMapWorkload measures the map-shaped workload: a KV tree is
// bulk-loaded from the §9 base keys with 8-byte payloads, then each
// repetition times one PutBatched of M (key, payload) pairs — a mix of
// fresh inserts and value overwrites, since batches share the base key
// range — and one GetBatched of M keys, for every requested worker
// count.
func RunMapWorkload(w Workload, workers []int, reps int) []MapRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	baseVals := MapPayloads(base)
	if reps < 1 {
		reps = 1
	}
	putB := make([][]int64, reps)
	putV := make([][]uint64, reps)
	getB := make([][]int64, reps)
	for rep := 0; rep < reps; rep++ {
		putB[rep] = w.Batch(2 * rep)
		putV[rep] = MapPayloads(putB[rep])
		getB[rep] = w.Batch(2*rep + 1)
	}

	rows := make([]MapRow, 0, len(workers))
	for _, nw := range workers {
		pool := parallel.NewPool(nw)
		var pms, gms float64
		var put AllocStat
		for rep := 0; rep < reps; rep++ {
			tree := core.NewFromSortedKV(core.Config{}, pool, base, baseVals)
			ms, st := timeAllocMS(func() { tree.PutBatched(putB[rep], putV[rep]) })
			pms += ms
			put.BytesOp += st.BytesOp
			put.AllocsOp += st.AllocsOp
			gms += timeMS(func() { tree.GetBatched(getB[rep]) })
		}
		ur := uint64(reps)
		rows = append(rows, MapRow{
			Workers: nw,
			PutMS:   pms / float64(reps),
			GetMS:   gms / float64(reps),
			Put:     AllocStat{BytesOp: put.BytesOp / ur, AllocsOp: put.AllocsOp / ur},
		})
	}
	if len(rows) > 0 {
		base := rows[0]
		for i := range rows {
			rows[i].SpeedupP = safeRatio(base.PutMS, rows[i].PutMS)
			rows[i].SpeedupG = safeRatio(base.GetMS, rows[i].GetMS)
		}
	}
	return rows
}
