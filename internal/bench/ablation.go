package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/treap"
)

// TraverseRow is one point of ablation A1 (§4.1 vs §4.2): batched
// search time under the interpolation-search traversal versus the
// merge-based Rank traversal, on smooth and clustered inputs.
type TraverseRow struct {
	Distribution    string
	InterpolationMS float64
	RankMS          float64
}

// RunAblationTraverse compares the two traversal modes across the
// batch distributions: smooth (uniform), the paper's non-smooth
// clustered input, Zipf-skewed, and the adversarial exponentially
// spaced set built to defeat interpolation.
func RunAblationTraverse(w Workload, workers, reps int) []TraverseRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	run := func(cfg core.Config, wl Workload) float64 {
		tree := core.NewFromSorted(cfg, pool, base)
		return meanMS(reps, func(rep int) func() {
			batch := wl.Batch(rep)
			return func() { tree.ContainsBatched(batch) }
		})
	}
	dists := []string{"uniform", "clustered", "zipf", "expspaced"}
	rows := make([]TraverseRow, 0, len(dists))
	for _, name := range dists {
		wl := w
		wl.Dist = name // "clustered" uses dist.DefaultClusters
		rows = append(rows, TraverseRow{
			Distribution:    name,
			InterpolationMS: run(core.Config{Traverse: core.TraverseInterpolation}, wl),
			RankMS:          run(core.Config{Traverse: core.TraverseRank}, wl),
		})
	}
	return rows
}

// RebuildCRow is one point of ablation A2 (§7.1): total time of a
// sustained insert/remove churn under different rebuild constants C.
type RebuildCRow struct {
	C         int
	ChurnMS   float64
	FinalHgt  int
	DeadRatio float64 // dead keys per live key after the churn
}

// RunAblationRebuildC sweeps the rebuild constant over cs, applying
// rounds alternating insert/remove batches and reporting total time
// and final tree quality.
func RunAblationRebuildC(w Workload, workers, rounds int, cs []int) []RebuildCRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	rows := make([]RebuildCRow, 0, len(cs))
	for _, c := range cs {
		tree := core.NewFromSorted(core.Config{RebuildFactor: c}, pool, base)
		total := 0.0
		for round := 0; round < rounds; round++ {
			ins := w.Batch(2 * round)
			rem := w.Batch(2*round + 1)
			total += timeMS(func() {
				tree.InsertBatched(ins)
				tree.RemoveBatched(rem)
			})
		}
		s := tree.Stats()
		dead := 0.0
		if s.LiveKeys > 0 {
			dead = float64(s.DeadKeys) / float64(s.LiveKeys)
		}
		rows = append(rows, RebuildCRow{C: c, ChurnMS: total, FinalHgt: s.Height, DeadRatio: dead})
	}
	return rows
}

// TreapRow is one point of the baseline comparison A4: the PB-IST
// versus the join-based batched treap on the three batched set
// operations.
type TreapRow struct {
	Op      string
	ISTMS   float64
	TreapMS float64
}

// RunBaselineTreap compares PB-IST batched operations against the
// parallel treap's equivalent set operations at the given worker
// count.
func RunBaselineTreap(w Workload, workers, reps int) []TreapRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	contains := TreapRow{Op: "contains"}
	insert := TreapRow{Op: "insert/union"}
	remove := TreapRow{Op: "remove/difference"}

	contains.ISTMS = meanMS(reps, func(rep int) func() {
		tree := core.NewFromSorted(core.Config{}, pool, base)
		batch := w.Batch(rep)
		return func() { tree.ContainsBatched(batch) }
	})
	insert.ISTMS = meanMS(reps, func(rep int) func() {
		tree := core.NewFromSorted(core.Config{}, pool, base)
		batch := w.Batch(100 + rep)
		return func() { tree.InsertBatched(batch) }
	})
	remove.ISTMS = meanMS(reps, func(rep int) func() {
		tree := core.NewFromSorted(core.Config{}, pool, base)
		batch := w.Batch(200 + rep)
		return func() { tree.RemoveBatched(batch) }
	})

	contains.TreapMS = meanMS(reps, func(rep int) func() {
		set := treap.NewFromSorted(pool, base)
		batch := w.Batch(rep)
		return func() { set.ContainsBatched(batch) }
	})
	insert.TreapMS = meanMS(reps, func(rep int) func() {
		set := treap.NewFromSorted(pool, base)
		batch := w.Batch(100 + rep)
		return func() { set.UnionWith(batch) }
	})
	remove.TreapMS = meanMS(reps, func(rep int) func() {
		set := treap.NewFromSorted(pool, base)
		batch := w.Batch(200 + rep)
		return func() { set.DifferenceWith(batch) }
	})
	return []TreapRow{contains, insert, remove}
}
