package bench

import (
	"bytes"
	"encoding/json"
	"slices"
	"strings"
	"testing"

	"repro/internal/core"
)

// tiny returns a workload small enough for unit tests.
func tiny() Workload {
	return Workload{N: 20000, M: 4000, Seed: 99}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.WithDefaults()
	if w.N != 4_000_000 || w.M != 1_000_000 || w.Seed == 0 {
		t.Fatalf("unexpected defaults: %+v", w)
	}
	lo, hi := w.Range()
	if lo != -int64(w.N) || hi != int64(w.N) {
		t.Fatalf("range [%d,%d] not derived from N", lo, hi)
	}
}

func TestWorkloadGeneratorsDeterministic(t *testing.T) {
	w := tiny()
	if !slices.Equal(w.BaseKeys(), w.BaseKeys()) {
		t.Fatal("BaseKeys not deterministic")
	}
	if !slices.Equal(w.Batch(3), w.Batch(3)) {
		t.Fatal("Batch not deterministic")
	}
	if slices.Equal(w.Batch(1), w.Batch(2)) {
		t.Fatal("distinct batch indexes must differ")
	}
}

func TestWorkloadBaseKeysDensity(t *testing.T) {
	w := tiny()
	base := w.BaseKeys()
	// p = 1/2 over 2N+1 integers: expect ≈ N keys.
	if len(base) < w.N*9/10 || len(base) > w.N*11/10 {
		t.Fatalf("base has %d keys, want ≈%d", len(base), w.N)
	}
	if !slices.IsSorted(base) {
		t.Fatal("base keys not sorted")
	}
}

func TestWorkloadClusteredBatch(t *testing.T) {
	w := tiny()
	w.Clusters = 8
	b := w.Batch(0)
	if len(b) != w.M || !slices.IsSorted(b) {
		t.Fatal("clustered batch malformed")
	}
	if w.DistName() != "clustered" {
		t.Fatalf("Clusters > 0 must select clustered, got %q", w.DistName())
	}
}

func TestWorkloadDistSelector(t *testing.T) {
	lo, hi := tiny().Range()
	for _, name := range []string{"uniform", "clustered", "zipf", "runs", "expspaced"} {
		w := tiny()
		w.Dist = name
		if err := w.Validate(); err != nil {
			t.Fatalf("Validate(%s): %v", name, err)
		}
		b := w.Batch(0)
		if len(b) != w.M || !slices.IsSorted(b) {
			t.Fatalf("dist %s: batch has %d keys (want %d), sorted=%v",
				name, len(b), w.M, slices.IsSorted(b))
		}
		if b[0] < lo || b[len(b)-1] > hi {
			t.Fatalf("dist %s: batch outside [%d,%d]", name, lo, hi)
		}
	}
	w := tiny()
	w.Dist = "bogus"
	if err := w.Validate(); err == nil {
		t.Fatal("unknown distribution must fail Validate")
	}
	// halfdense is density-driven and cannot honor the exactly-M
	// batch contract, so it must be rejected as a batch distribution.
	w.Dist = "halfdense"
	if err := w.Validate(); err == nil {
		t.Fatal("halfdense must fail Validate")
	}
	// A batch larger than the key range cannot hold M distinct keys.
	w = Workload{N: 100, M: 1000, Seed: 1}
	if err := w.Validate(); err == nil {
		t.Fatal("m > range size must fail Validate")
	}
}

func TestWorkloadDistsDiffer(t *testing.T) {
	uni, zipf, exp := tiny(), tiny(), tiny()
	zipf.Dist = "zipf"
	exp.Dist = "expspaced"
	if slices.Equal(uni.Batch(0), zipf.Batch(0)) || slices.Equal(uni.Batch(0), exp.Batch(0)) {
		t.Fatal("distribution selector has no effect on batches")
	}
}

func TestRunFig17Shape(t *testing.T) {
	rows := RunFig17(tiny(), core.Config{}, []int{1, 2}, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Fatal("worker column wrong")
	}
	for _, r := range rows {
		if r.ContainsMS <= 0 || r.InsertMS <= 0 || r.RemoveMS <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
	}
	if rows[0].SpeedupC != 1 || rows[0].SpeedupI != 1 || rows[0].SpeedupR != 1 {
		t.Fatal("baseline speedup must be 1")
	}
	if rows[1].SpeedupC <= 0 {
		t.Fatal("speedup not computed")
	}
}

func TestRunSeqCompareShape(t *testing.T) {
	res := RunSeqCompare(tiny(), core.Config{}, 1)
	if res.ISTBatchedMS <= 0 || res.ISTScalarMS <= 0 || res.RBTreeMS <= 0 || res.SkipListMS <= 0 {
		t.Fatalf("non-positive timing: %+v", res)
	}
	if res.SpeedupVsRB <= 0 || res.SpeedupScalar <= 0 {
		t.Fatal("speedups not computed")
	}
	if res.M != 4000 {
		t.Fatalf("M = %d, want 4000", res.M)
	}
}

func TestRunAblationTraverseShape(t *testing.T) {
	rows := RunAblationTraverse(tiny(), 2, 1)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		names = append(names, r.Distribution)
	}
	for _, want := range []string{"uniform", "clustered", "zipf", "expspaced"} {
		if !slices.Contains(names, want) {
			t.Fatalf("distributions = %v, missing %q", names, want)
		}
	}
	for _, r := range rows {
		if r.InterpolationMS <= 0 || r.RankMS <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
	}
}

func TestRunAblationRebuildCShape(t *testing.T) {
	rows := RunAblationRebuildC(tiny(), 2, 2, []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ChurnMS <= 0 || r.FinalHgt <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[0].C != 1 || rows[1].C != 4 {
		t.Fatal("C column wrong")
	}
}

func TestRunMapWorkloadShape(t *testing.T) {
	rows := RunMapWorkload(tiny(), []int{1, 2}, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Fatal("worker column wrong")
	}
	for _, r := range rows {
		if r.PutMS <= 0 || r.GetMS <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
	}
	if rows[0].SpeedupP != 1 || rows[0].SpeedupG != 1 {
		t.Fatal("baseline speedup must be 1")
	}
}

func TestMapPayloadsDerivedFromKeys(t *testing.T) {
	keys := []int64{-3, 0, 7}
	vals := MapPayloads(keys)
	for i, k := range keys {
		if vals[i] != MapPayload(k) {
			t.Fatalf("payload %d not derived from key %d", i, k)
		}
	}
	if MapPayload(1) == MapPayload(2) {
		t.Fatal("payloads must distinguish keys")
	}
}

func TestRunSetAlgebraWorkloadShape(t *testing.T) {
	rows := RunSetAlgebraWorkload(tiny(), 2, 1)
	if len(rows) != len(SetAlgebraRatios) {
		t.Fatalf("got %d rows, want %d", len(rows), len(SetAlgebraRatios))
	}
	for i, r := range rows {
		if r.Ratio == "" || r.BKeys < 1 {
			t.Fatalf("row %d: bad operand column %+v", i, r)
		}
		if r.UnionMS <= 0 || r.InterMS <= 0 || r.DiffMS <= 0 || r.SymMS <= 0 || r.SliceMS <= 0 {
			t.Fatalf("row %d: non-positive timing %+v", i, r)
		}
	}
	// Operand size must shrink with the ratio.
	for i := 1; i < len(rows); i++ {
		if rows[i].BKeys >= rows[i-1].BKeys {
			t.Fatalf("|B| did not shrink: %d then %d", rows[i-1].BKeys, rows[i].BKeys)
		}
	}
}

func TestSliceUnionBaseline(t *testing.T) {
	got := sliceUnionBaseline([]int64{1, 3, 5}, []int64{2, 3, 6})
	if want := []int64{1, 2, 3, 5, 6}; !slices.Equal(got, want) {
		t.Fatalf("sliceUnionBaseline = %v, want %v", got, want)
	}
}

func TestRunBaselineTreapShape(t *testing.T) {
	rows := RunBaselineTreap(tiny(), 2, 1)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ISTMS <= 0 || r.TreapMS <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestRunConcurrentWorkloadShape(t *testing.T) {
	rows := RunConcurrentWorkload(tiny(), []int{1, 2}, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Clients != 1 || rows[1].Clients != 2 {
		t.Fatal("clients column wrong")
	}
	for _, r := range rows {
		if r.CombineMops <= 0 || r.RWMapMops <= 0 || r.SyncMapMops <= 0 {
			t.Fatalf("non-positive throughput in %+v", r)
		}
		if r.EpochOps <= 0 {
			t.Fatalf("epoch size not measured in %+v", r)
		}
	}
}

func TestConcurrentScriptsDeterministicAndFair(t *testing.T) {
	w := tiny()
	a := concurrentScripts(w, 0, 4)
	b := concurrentScripts(w, 0, 4)
	if len(a) != 4 {
		t.Fatalf("got %d client scripts, want 4", len(a))
	}
	total, reads := 0, 0
	for c := range a {
		if len(a[c]) != len(b[c]) {
			t.Fatal("scripts not deterministic")
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatal("scripts not deterministic")
			}
			total++
			if a[c][i].kind == scGet {
				reads++
			}
		}
	}
	if total != w.M {
		t.Fatalf("scripts carry %d ops, want M=%d", total, w.M)
	}
	// The mix is 90% reads; allow generous slack for RNG noise.
	if frac := float64(reads) / float64(total); frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction %.3f, want ≈0.9", frac)
	}
	// No ops may be dropped when M is not divisible by the client
	// count: the remainder is dealt out one extra op per client.
	for _, clients := range []int{3, 7, 64} {
		total := 0
		for _, sc := range concurrentScripts(w, 1, clients) {
			total += len(sc)
		}
		if total != w.M {
			t.Fatalf("%d clients: scripts carry %d ops, want M=%d", clients, total, w.M)
		}
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule wrong: %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestSeriesJSON(t *testing.T) {
	s := NewSeries("fig17", tiny(), []string{"workers", "t_ms", "speedup"},
		[][]string{{"2", "12.5", "1.80x"}, {"4", "note", "2.40x"}})
	if s.Experiment != "fig17" || s.Workload["n"] != 20000 {
		t.Fatalf("series header wrong: %+v", s)
	}
	if v, ok := s.Rows[0]["workers"].(int64); !ok || v != 2 {
		t.Fatalf("integer cell not parsed: %#v", s.Rows[0]["workers"])
	}
	if v, ok := s.Rows[0]["t_ms"].(float64); !ok || v != 12.5 {
		t.Fatalf("float cell not parsed: %#v", s.Rows[0]["t_ms"])
	}
	if v, ok := s.Rows[0]["speedup"].(float64); !ok || v != 1.8 {
		t.Fatalf("speedup cell not parsed: %#v", s.Rows[0]["speedup"])
	}
	if v, ok := s.Rows[1]["t_ms"].(string); !ok || v != "note" {
		t.Fatalf("non-numeric cell mangled: %#v", s.Rows[1]["t_ms"])
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Series{s}); err != nil {
		t.Fatal(err)
	}
	var back []Series
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	if len(back) != 1 || back[0].Experiment != "fig17" || len(back[0].Rows) != 2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestFormatters(t *testing.T) {
	if MS(250.3) != "250" || MS(12.34) != "12.3" || MS(0.5678) != "0.568" {
		t.Fatalf("MS formatting wrong: %s %s %s", MS(250.3), MS(12.34), MS(0.5678))
	}
	if X(2.5) != "2.50x" {
		t.Fatalf("X formatting wrong: %s", X(2.5))
	}
}
