package bench

import (
	"time"

	"repro/internal/obs"
	"repro/pbist"
)

// RebuildSchedRow is one point of the rebuild-scheduler experiment:
// client-observed latency percentiles of write-heavy point-op churn
// under one rebuild-scheduling mode. The eager row is the paper's
// behavior (every due rebuild inline, RebuildBudgetPerEpoch unset) and
// is the baseline the bounded and async rows are gated against: the
// whole point of the scheduler is the p999 column, which under eager
// scheduling absorbs the full O(n) root-rebuild stall plus the queueing
// backlog it causes (the open-loop harness charges a stall to every op
// it postpones).
type RebuildSchedRow struct {
	Mode         string  // "eager" | "bounded" | "async"
	Dist         string  // batch distribution of the churn scripts
	Budget       int     // RebuildBudgetPerEpoch (0 for eager)
	Clients      int     // client goroutines offering load
	OfferedKops  float64 // scheduled aggregate arrival rate, kops/s
	AchievedKops float64
	MeanUS       float64
	P50US        float64
	P90US        float64
	P99US        float64
	P999US       float64
	MaxUS        float64
	// MaxEpochRebuildKeys is the largest per-epoch rebuild spend any
	// recorded epoch trace reports — the empirical witness that the
	// cap held (eager mode reports 0: no scheduler, nothing counted).
	MaxEpochRebuildKeys int
	// PeakRebuildDebt is the largest outstanding-debt figure any epoch
	// trace reports, in keys — how far behind the drain ran.
	PeakRebuildDebt int
}

// rebuildChurnPermille fixes the rebuild experiment's op mix at 10%
// Get, 45% Put, 45% Delete: write-heavy churn is what drives modCnt
// into the rebuild threshold over and over, which is the regime the
// scheduler exists for.
const rebuildChurnPermille = 100

// RunRebuildSched measures the latency effect of the amortized rebuild
// scheduler: the same open-loop write-heavy churn is replayed against
// three identically loaded Concurrent frontends — eager (no budget),
// bounded-sync (budget, inline drains), async (budget + background
// rebuilds) — and each run reports the coordinated-omission-safe
// percentiles plus the scheduler evidence from its epoch traces.
// rateKops <= 0 replays closed-loop (saturation latency).
func RunRebuildSched(w Workload, clients int, rateKops float64, reps, budget int) []RebuildSchedRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	if clients < 1 {
		clients = 16
	}
	if budget <= 0 {
		budget = 4096
	}
	base := w.BaseKeys()
	baseVals := MapPayloads(base)

	var interval time.Duration
	if rateKops > 0 {
		interval = time.Duration(float64(clients) / (rateKops * 1e3) * 1e9)
	}

	distName := w.DistName()
	scripts := make([][][]scriptOp, reps)
	for rep := 0; rep < reps; rep++ {
		scripts[rep] = scriptsWithMix(w, rep, clients, rebuildChurnPermille)
	}
	ops := 0
	for _, sc := range scripts[0] {
		ops += len(sc)
	}

	modes := []struct {
		name   string
		budget int
		async  bool
	}{
		{"eager", 0, false},
		{"bounded", budget, false},
		{"async", budget, true},
	}

	rows := make([]RebuildSchedRow, 0, len(modes))
	for _, m := range modes {
		c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{
			Options: pbist.Options{
				AssumeSorted:          true, // base is sorted unique
				RebuildBudgetPerEpoch: m.budget,
				AsyncRebuild:          m.async,
			},
			TraceDepth: 1 << 15,
		}, base, baseVals)
		h := obs.NewHistogram()
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			total += replayOpenLoop(scripts[rep], interval, h,
				func(k int64) { c.Get(k) },
				func(k int64, v uint64) { c.Put(k, v) },
				func(k int64) { c.Delete(k) })
		}
		maxSpend, peakDebt := 0, 0
		for _, tr := range c.Trace(0) {
			if tr.RebuildKeys > maxSpend {
				maxSpend = tr.RebuildKeys
			}
			if tr.RebuildDebt > peakDebt {
				peakDebt = tr.RebuildDebt
			}
		}
		c.Close()

		lr := latencyRowFrom("concurrent", distName, clients, rateKops,
			ops, total/time.Duration(reps), h.Snapshot())
		rows = append(rows, RebuildSchedRow{
			Mode:                m.name,
			Dist:                distName,
			Budget:              m.budget,
			Clients:             clients,
			OfferedKops:         lr.OfferedKops,
			AchievedKops:        lr.AchievedKops,
			MeanUS:              lr.MeanUS,
			P50US:               lr.P50US,
			P90US:               lr.P90US,
			P99US:               lr.P99US,
			P999US:              lr.P999US,
			MaxUS:               lr.MaxUS,
			MaxEpochRebuildKeys: maxSpend,
			PeakRebuildDebt:     peakDebt,
		})
	}
	return rows
}
