package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTable renders rows as an aligned plain-text table, the format
// cmd/pbench prints experiment results in.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders rows as comma-separated values with a header line.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is one experiment's result set in machine-readable form:
// the experiment name, the workload it ran under, and one object per
// row keyed by column name. It is what pbench -json emits (files like
// BENCH_<experiment>.json capturing a perf trajectory per PR).
type Series struct {
	Experiment string           `json:"experiment"`
	Workload   map[string]any   `json:"workload"`
	Columns    []string         `json:"columns"`
	Rows       []map[string]any `json:"rows"`
}

// NewSeries converts a rendered table into a Series, parsing cells
// back into JSON numbers where possible: integers stay integers,
// floats stay floats, and speedup cells drop their "x" suffix. Cells
// that are not numeric survive as strings.
func NewSeries(experiment string, w Workload, header []string, rows [][]string) Series {
	s := Series{
		Experiment: experiment,
		Workload: map[string]any{
			"n": w.N, "m": w.M, "seed": w.Seed, "dist": w.DistName(),
		},
		Columns: header,
	}
	for _, row := range rows {
		obj := make(map[string]any, len(row))
		for i, cell := range row {
			if i >= len(header) {
				break
			}
			obj[header[i]] = parseCell(cell)
		}
		s.Rows = append(s.Rows, obj)
	}
	return s
}

// parseCell recovers a typed value from a formatted table cell.
func parseCell(cell string) any {
	if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return v
	}
	num := strings.TrimSuffix(cell, "x")
	if v, err := strconv.ParseFloat(num, 64); err == nil {
		return v
	}
	return cell
}

// WriteJSON renders a slice of Series as one indented JSON array, the
// pbench -json output format.
func WriteJSON(w io.Writer, series []Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series)
}

// MS formats a millisecond value with sub-millisecond precision for
// small numbers and whole milliseconds above 100.
func MS(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// X formats a speedup factor.
func X(v float64) string {
	return fmt.Sprintf("%.2fx", v)
}
