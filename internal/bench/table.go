package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders rows as an aligned plain-text table, the format
// cmd/pbench prints experiment results in.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders rows as comma-separated values with a header line.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// MS formats a millisecond value with sub-millisecond precision for
// small numbers and whole milliseconds above 100.
func MS(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// X formats a speedup factor.
func X(v float64) string {
	return fmt.Sprintf("%.2fx", v)
}
