package bench

import "testing"

func TestRunSweepLeafCapShape(t *testing.T) {
	rows := RunSweepLeafCap(tiny(), 2, 1, []int{8, 64})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].H != 8 || rows[1].H != 64 {
		t.Fatal("H column wrong")
	}
	for _, r := range rows {
		if r.ContainsMS <= 0 || r.UpdateMS <= 0 || r.Height <= 0 || r.Leaves <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Bigger leaves → fewer leaves.
	if rows[1].Leaves >= rows[0].Leaves {
		t.Fatalf("leaf count did not shrink with H: %d vs %d", rows[0].Leaves, rows[1].Leaves)
	}
}

func TestRunSweepIndexFactorShape(t *testing.T) {
	rows := RunSweepIndexFactor(tiny(), 2, 1, []float64{0.5, 2})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ContainsMS <= 0 || r.IndexBytes <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Bigger factor → more index memory.
	if rows[1].IndexBytes <= rows[0].IndexBytes {
		t.Fatalf("index bytes did not grow with factor: %d vs %d",
			rows[0].IndexBytes, rows[1].IndexBytes)
	}
}

func TestRunSweepBatchSizeShape(t *testing.T) {
	rows := RunSweepBatchSize(tiny(), 2, 1, []int{100, 2000})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ContainsMS <= 0 || r.NSPerKey <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[0].M != 100 || rows[1].M != 2000 {
		t.Fatal("M column wrong")
	}
}
