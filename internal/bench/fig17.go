package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// Fig17Row is one point of the paper's Fig. 17: the time of each
// batched operation at a given worker count, plus speedup relative to
// one worker and -benchmem-style allocation counters per batched
// operation (the perf trajectory of the arena-backed rebuild engine
// shows up here as falling allocs/op at flat-or-better times).
type Fig17Row struct {
	Workers    int
	ContainsMS float64
	InsertMS   float64
	RemoveMS   float64
	SpeedupC   float64
	SpeedupI   float64
	SpeedupR   float64
	Insert     AllocStat // per InsertBatched call
	Remove     AllocStat // per RemoveBatched call
}

// RunFig17 reproduces the three scaling curves of Fig. 17: it builds
// the §9 tree, then measures ContainsBatched, InsertBatched and
// RemoveBatched on batches of M keys for every requested worker count,
// averaging reps repetitions. The same pre-generated batches are used
// at every worker count so the curves are directly comparable.
//
// Within one repetition the operations run in sequence on the same
// tree (search on the pristine tree, then insert, then remove), and
// every repetition starts from a freshly built tree, so mutation
// history never leaks across measurements.
func RunFig17(w Workload, cfg core.Config, workers []int, reps int) []Fig17Row {
	w = w.WithDefaults()
	base := w.BaseKeys()
	if reps < 1 {
		reps = 1
	}
	// Pre-generate one batch triple per repetition.
	searchB := make([][]int64, reps)
	insertB := make([][]int64, reps)
	removeB := make([][]int64, reps)
	for rep := 0; rep < reps; rep++ {
		searchB[rep] = w.Batch(3 * rep)
		insertB[rep] = w.Batch(3*rep + 1)
		removeB[rep] = w.Batch(3*rep + 2)
	}

	rows := make([]Fig17Row, 0, len(workers))
	for _, nw := range workers {
		pool := parallel.NewPool(nw)
		var cms, ims, rms float64
		var ins, rem AllocStat
		for rep := 0; rep < reps; rep++ {
			tree := core.NewFromSorted(cfg, pool, base)
			cms += timeMS(func() { tree.ContainsBatched(searchB[rep]) })
			ms, st := timeAllocMS(func() { tree.InsertBatched(insertB[rep]) })
			ims += ms
			ins.BytesOp += st.BytesOp
			ins.AllocsOp += st.AllocsOp
			ms, st = timeAllocMS(func() { tree.RemoveBatched(removeB[rep]) })
			rms += ms
			rem.BytesOp += st.BytesOp
			rem.AllocsOp += st.AllocsOp
		}
		ur := uint64(reps)
		rows = append(rows, Fig17Row{
			Workers:    nw,
			ContainsMS: cms / float64(reps),
			InsertMS:   ims / float64(reps),
			RemoveMS:   rms / float64(reps),
			Insert:     AllocStat{BytesOp: ins.BytesOp / ur, AllocsOp: ins.AllocsOp / ur},
			Remove:     AllocStat{BytesOp: rem.BytesOp / ur, AllocsOp: rem.AllocsOp / ur},
		})
	}
	if len(rows) > 0 {
		base := rows[0]
		for i := range rows {
			rows[i].SpeedupC = safeRatio(base.ContainsMS, rows[i].ContainsMS)
			rows[i].SpeedupI = safeRatio(base.InsertMS, rows[i].InsertMS)
			rows[i].SpeedupR = safeRatio(base.RemoveMS, rows[i].RemoveMS)
		}
	}
	return rows
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
