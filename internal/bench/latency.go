package bench

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pbist"
)

// LatencyRow is one point of the latency experiment: client-observed
// point-operation latency percentiles for one frontend under one batch
// distribution at a fixed offered arrival rate. Latencies are measured
// open-loop — from each operation's scheduled arrival time, not from
// the moment the client got around to issuing it — so an engine stall
// charges every operation queued behind it and the percentiles are
// free of coordinated omission.
type LatencyRow struct {
	Frontend     string  // "concurrent" | "sharded"
	Dist         string  // batch distribution the keys were drawn from
	Clients      int     // client goroutines offering load
	OfferedKops  float64 // scheduled arrival rate, thousand ops/s (all clients)
	AchievedKops float64 // completed ops over wall time
	MeanUS       float64
	P50US        float64
	P90US        float64
	P99US        float64
	P999US       float64
	MaxUS        float64
}

// latencyDists is the distribution grid of the latency experiment: the
// smooth case interpolation search is built for and the skewed case
// that hammers a few shards/subtrees.
var latencyDists = []string{"uniform", "zipf"}

// replayOpenLoop replays every client script open-loop: client c's
// i-th operation is scheduled at start + i·interval, the client sleeps
// until then (never ahead), issues the op, and records
// now − scheduledStart into h. When the engine falls behind, the
// client does not wait to reschedule — the next operations fire
// immediately and their recorded latencies include the backlog, which
// is exactly the coordinated-omission-safe accounting HdrHistogram's
// correction approximates after the fact.
func replayOpenLoop(scripts [][]scriptOp, interval time.Duration, h *obs.Histogram,
	get func(int64), put func(int64, uint64), del func(int64)) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, sc := range scripts {
		wg.Add(1)
		go func(sc []scriptOp) {
			defer wg.Done()
			<-start
			t0 := time.Now()
			for i, op := range sc {
				sched := t0.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				switch op.kind {
				case scGet:
					get(op.key)
				case scPut:
					put(op.key, MapPayload(op.key))
				case scDelete:
					del(op.key)
				}
				h.Record(time.Since(sched).Nanoseconds())
			}
		}(sc)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

// latencyRowFrom converts a histogram snapshot plus wall-clock
// accounting into the experiment's row (all latencies in µs).
func latencyRowFrom(frontend, dist string, clients int, offered float64,
	ops int, elapsed time.Duration, hs obs.HistSnapshot) LatencyRow {
	row := LatencyRow{
		Frontend:    frontend,
		Dist:        dist,
		Clients:     clients,
		OfferedKops: offered,
		MeanUS:      hs.Mean / 1e3,
		P50US:       float64(hs.P50) / 1e3,
		P90US:       float64(hs.P90) / 1e3,
		P99US:       float64(hs.P99) / 1e3,
		P999US:      float64(hs.P999) / 1e3,
		MaxUS:       float64(hs.Max) / 1e3,
	}
	if elapsed > 0 {
		row.AchievedKops = float64(ops) / elapsed.Seconds() / 1e3
	}
	return row
}

// RunLatencyWorkload measures client-observed operation latency under
// an open-loop arrival process: for every frontend in {Concurrent,
// Sharded(shards)} and every distribution in {uniform, zipf}, the
// engine is bulk-loaded with the base keys, then clients goroutines
// replay the standard 90/5/5 point-op scripts with operations
// scheduled at a fixed aggregate rate of rateKops thousand ops per
// second. Each op's latency is measured from its scheduled arrival
// (not its actual issue time), so queueing delay behind a slow epoch
// or a rebuild is charged to every op it postpones. reps repetitions
// accumulate into one histogram per row.
//
// rateKops <= 0 selects a closed-loop fallback (interval 0): clients
// issue back-to-back and the row reports saturation latency.
func RunLatencyWorkload(w Workload, clients, shards int, rateKops float64, reps int) []LatencyRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	if clients < 1 {
		clients = 16
	}
	if shards < 1 {
		shards = 8
	}
	base := w.BaseKeys()
	baseVals := MapPayloads(base)
	opts := pbist.Options{AssumeSorted: true} // base is sorted unique

	var interval time.Duration
	if rateKops > 0 {
		// Aggregate rate split evenly: each client schedules one op
		// every clients/rate seconds.
		interval = time.Duration(float64(clients) / (rateKops * 1e3) * 1e9)
	}

	rows := make([]LatencyRow, 0, 2*len(latencyDists))
	for _, distName := range latencyDists {
		dw := w
		dw.Dist = distName
		dw.Clusters = 0
		scripts := make([][][]scriptOp, reps)
		for rep := 0; rep < reps; rep++ {
			scripts[rep] = concurrentScripts(dw, rep, clients)
		}
		ops := 0
		for _, sc := range scripts[0] {
			ops += len(sc)
		}

		// Combining frontend.
		{
			c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{Options: opts}, base, baseVals)
			h := obs.NewHistogram()
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replayOpenLoop(scripts[rep], interval, h,
					func(k int64) { c.Get(k) },
					func(k int64, v uint64) { c.Put(k, v) },
					func(k int64) { c.Delete(k) })
			}
			c.Close()
			rows = append(rows, latencyRowFrom("concurrent", distName, clients, rateKops,
				ops, total/time.Duration(reps), h.Snapshot()))
		}

		// Sharded frontend, same scripts.
		{
			s := pbist.NewShardedFromItems(pbist.ShardedOptions{
				ConcurrentOptions: pbist.ConcurrentOptions{Options: opts},
				Shards:            shards,
			}, base, baseVals)
			h := obs.NewHistogram()
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replayOpenLoop(scripts[rep], interval, h,
					func(k int64) { s.Get(k) },
					func(k int64, v uint64) { s.Put(k, v) },
					func(k int64) { s.Delete(k) })
			}
			s.Close()
			rows = append(rows, latencyRowFrom("sharded", distName, clients, rateKops,
				ops, total/time.Duration(reps), h.Snapshot()))
		}
	}
	return rows
}
