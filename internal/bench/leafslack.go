package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// LeafSlackRow is one point of the leaf-slack sweep: sustained
// insert/remove churn under one (LeafSlack, RebuildFactor) pair. The
// two knobs trade against each other — slack buys in-place leaf merges
// (fewer reallocations) at the cost of dead array space, while C sets
// how long a subtree may degrade before a rebuild compacts everything
// anyway — so the interesting readout is churn time against the two
// rates, not either knob alone.
type LeafSlackRow struct {
	Slack       float64
	C           int
	ChurnMS     float64
	LeafGrows   int64   // leaf merges that had to reallocate
	ChunkBuilds int64   // subtree (re)builds the churn triggered
	DeadRatio   float64 // dead keys per live key after the churn
	FinalHgt    int
}

// RunLeafSlack sweeps leaf merge headroom × rebuild constant: for every
// (slack, C) pair a fresh tree is bulk-loaded with the workload's base
// keys and churned with rounds alternating insert/remove batches, all
// pairs seeing identical batches.
func RunLeafSlack(w Workload, workers, rounds int, slacks []float64, cs []int) []LeafSlackRow {
	w = w.WithDefaults()
	if len(slacks) == 0 {
		slacks = []float64{1.0, 1.25, 1.5, 2.0}
	}
	if len(cs) == 0 {
		cs = []int{2, 4}
	}
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	rows := make([]LeafSlackRow, 0, len(slacks)*len(cs))
	for _, c := range cs {
		for _, slack := range slacks {
			tree := core.NewFromSorted(core.Config{RebuildFactor: c, LeafSlack: slack}, pool, base)
			total := 0.0
			for round := 0; round < rounds; round++ {
				ins := w.Batch(2 * round)
				rem := w.Batch(2*round + 1)
				total += timeMS(func() {
					tree.InsertBatched(ins)
					tree.RemoveBatched(rem)
				})
			}
			s := tree.Stats()
			dead := 0.0
			if s.LiveKeys > 0 {
				dead = float64(s.DeadKeys) / float64(s.LiveKeys)
			}
			rows = append(rows, LeafSlackRow{
				Slack:       slack,
				C:           c,
				ChurnMS:     total,
				LeafGrows:   s.LeafGrows,
				ChunkBuilds: s.ChunkBuilds,
				DeadRatio:   dead,
				FinalHgt:    s.Height,
			})
		}
	}
	return rows
}
