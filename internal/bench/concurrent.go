package bench

import (
	"sync"
	"time"

	"repro/internal/dist"
	"repro/pbist"
)

// ConcurrentRow is one point of the concurrent-clients experiment:
// point-operation throughput (million ops per second) at a given
// client-goroutine count for the combining frontend and the two
// baselines, plus the mean combined epoch size the frontend achieved.
type ConcurrentRow struct {
	Clients     int
	CombineMops float64 // pbist.Concurrent (combining frontend)
	RWMapMops   float64 // sync.RWMutex around a pbist.Map
	SyncMapMops float64 // sync.Map
	EpochOps    float64 // mean ops combined per epoch (frontend only)
	EpochKeys   float64 // mean keys combined per epoch
	SizeFlushes int64   // epochs flushed by the MaxBatch size trigger
	MeanWaitUS  float64 // mean µs an op queued before its epoch began
}

// script op kinds; the per-client scripts are generated once per
// repetition and replayed identically against every engine, so the
// three throughput columns measure the same key/op sequence.
const (
	scGet uint8 = iota
	scPut
	scDelete
)

type scriptOp struct {
	kind uint8
	key  int64
}

// readPermille fixes the op mix of the concurrent experiment at
// 90% Get, 5% Put, 5% Delete — the read-mostly point-op traffic the
// related concurrent-set evaluations (non-blocking ISTs, flat
// combining) use as their standard workload.
const readPermille = 900

// concurrentScripts deals one workload batch (M keys from the
// configured distribution) into per-client operation scripts: each
// client gets a contiguous slice of the batch, shuffled with its own
// deterministic RNG and tagged with the standard read-mostly op mix.
func concurrentScripts(w Workload, rep, clients int) [][]scriptOp {
	return scriptsWithMix(w, rep, clients, readPermille)
}

// scriptsWithMix is concurrentScripts with an explicit read share:
// readPermille out of every 1000 ops are Gets, the remainder split
// evenly between Puts and Deletes. The rebuild-scheduler experiment
// uses a write-heavy mix to drive subtrees into their rebuild budget.
func scriptsWithMix(w Workload, rep, clients, readPerm int) [][]scriptOp {
	keys := w.Batch(rep)
	per, rem := len(keys)/clients, len(keys)%clients
	scripts := make([][]scriptOp, 0, clients)
	start := 0
	for c := 0; c < clients && start < len(keys); c++ {
		// Deal every key: the first rem clients take one extra, so the
		// scripts carry exactly M ops whatever the client count.
		end := start + per
		if c < rem {
			end++
		}
		part := keys[start:end]
		start = end
		r := dist.NewRNG(w.Seed ^ 0xc11e47 ^ uint64(rep)<<20 ^ uint64(c))
		sc := make([]scriptOp, len(part))
		for i, k := range part {
			sc[i] = scriptOp{kind: scGet, key: k}
			if p := r.Uint64n(1000); p >= uint64(readPerm) {
				if p&1 == 0 {
					sc[i].kind = scPut
				} else {
					sc[i].kind = scDelete
				}
			}
		}
		// Fisher–Yates with the client's deterministic RNG: the batch
		// arrives sorted, point traffic should not.
		for i := len(sc) - 1; i > 0; i-- {
			j := int(r.Uint64n(uint64(i + 1)))
			sc[i], sc[j] = sc[j], sc[i]
		}
		scripts = append(scripts, sc)
	}
	return scripts
}

// replay runs every client script against an engine described by its
// three point operations, all clients released by one barrier, and
// returns the elapsed wall time.
func replay(scripts [][]scriptOp, get func(int64), put func(int64, uint64), del func(int64)) time.Duration {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, sc := range scripts {
		wg.Add(1)
		go func(sc []scriptOp) {
			defer wg.Done()
			<-start
			for _, op := range sc {
				switch op.kind {
				case scGet:
					get(op.key)
				case scPut:
					put(op.key, MapPayload(op.key))
				case scDelete:
					del(op.key)
				}
			}
		}(sc)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

func mops(scripts [][]scriptOp, elapsed time.Duration) float64 {
	n := 0
	for _, sc := range scripts {
		n += len(sc)
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds() / 1e6
}

// RunConcurrentWorkload measures point-operation throughput versus
// client-goroutine count: every engine is bulk-loaded with the §9
// base keys (8-byte payloads), then each repetition replays the same
// per-client scripts — M mixed point ops split across the clients —
// against the combining frontend (pbist.Concurrent), an RWMutex-
// guarded pbist.Map, and a sync.Map.
func RunConcurrentWorkload(w Workload, clients []int, reps int) []ConcurrentRow {
	w = w.WithDefaults()
	if reps < 1 {
		reps = 1
	}
	base := w.BaseKeys()
	baseVals := MapPayloads(base)
	opts := pbist.Options{AssumeSorted: true} // base is sorted unique; workers default to GOMAXPROCS

	rows := make([]ConcurrentRow, 0, len(clients))
	for _, nc := range clients {
		scripts := make([][][]scriptOp, reps)
		for rep := 0; rep < reps; rep++ {
			scripts[rep] = concurrentScripts(w, rep, nc)
		}

		row := ConcurrentRow{Clients: nc}

		// Combining frontend. One structure per client count; the reps
		// drift its contents slightly (puts/deletes), identically to
		// the baselines below, which replay the same scripts.
		{
			c := pbist.NewConcurrentFromItems(pbist.ConcurrentOptions{Options: opts}, base, baseVals)
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replay(scripts[rep],
					func(k int64) { c.Get(k) },
					func(k int64, v uint64) { c.Put(k, v) },
					func(k int64) { c.Delete(k) })
			}
			row.CombineMops = mops(scripts[0], total/time.Duration(reps))
			st := c.Stats()
			row.EpochOps = st.MeanOps
			row.EpochKeys = st.MeanKeys
			row.SizeFlushes = st.SizeFlushes
			row.MeanWaitUS = float64(st.MeanWait.Nanoseconds()) / 1e3
			c.Close()
		}

		// Baseline 1: pbist.Map behind a sync.RWMutex.
		{
			m := pbist.NewMapFromItems(opts, base, baseVals)
			var mu sync.RWMutex
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replay(scripts[rep],
					func(k int64) { mu.RLock(); m.Get(k); mu.RUnlock() },
					func(k int64, v uint64) { mu.Lock(); m.Put(k, v); mu.Unlock() },
					func(k int64) { mu.Lock(); m.Delete(k); mu.Unlock() })
			}
			row.RWMapMops = mops(scripts[0], total/time.Duration(reps))
		}

		// Baseline 2: sync.Map.
		{
			var m sync.Map
			for i, k := range base {
				m.Store(k, baseVals[i])
			}
			var total time.Duration
			for rep := 0; rep < reps; rep++ {
				total += replay(scripts[rep],
					func(k int64) { m.Load(k) },
					func(k int64, v uint64) { m.Store(k, v) },
					func(k int64) { m.Delete(k) })
			}
			row.SyncMapMops = mops(scripts[0], total/time.Duration(reps))
		}

		rows = append(rows, row)
	}
	return rows
}
