// Package bench is the experiment harness of the reproduction: it
// regenerates every figure and table of the paper's evaluation (§9)
// plus the ablations listed in DESIGN.md, printing the same series the
// paper reports (operation time versus worker count, and the
// sequential IST-versus-red-black-tree comparison).
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dist"
)

// Workload describes one experimental setup, mirroring §9: the tree is
// initialized with every integer in [Lo, Hi] taken with probability ½,
// then batches of M keys are drawn from the same range.
type Workload struct {
	// N is the target (expected) tree size. The key range is derived
	// from it: [−N, N], so that density p = ½ reproduces the paper's
	// setup at any scale. The paper uses N = 10⁸.
	N int
	// M is the batch size. The paper uses M = 10⁷.
	M int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Clusters > 0 draws batches from a non-smooth clustered
	// distribution instead of uniform (ablation A3).
	Clusters int
	// Dist selects the batch distribution by name: uniform,
	// clustered, zipf, runs, or expspaced. Empty means uniform, or
	// clustered when Clusters > 0, so existing configurations keep
	// their meaning. When Dist is "clustered" and Clusters > 0,
	// Clusters overrides the default cluster count. (halfdense is an
	// initialization shape, not a batch distribution: it is
	// density-driven and would break the exactly-M-keys contract.)
	Dist string
}

// WithDefaults fills in the container-scale defaults documented in
// DESIGN.md (N = 4·10⁶, M = 10⁶ — same log log regime as the paper's
// sizes, laptop-friendly runtime).
func (w Workload) WithDefaults() Workload {
	if w.N <= 0 {
		w.N = 4_000_000
	}
	if w.M <= 0 {
		w.M = 1_000_000
	}
	if w.Seed == 0 {
		w.Seed = 0x5eed
	}
	return w
}

// Range returns the key range [lo, hi] of the workload.
func (w Workload) Range() (lo, hi int64) {
	return -int64(w.N), int64(w.N)
}

// BaseKeys generates the initial tree contents: each integer of the
// range with probability ½ (§9).
func (w Workload) BaseKeys() []int64 {
	lo, hi := w.Range()
	return dist.HalfDense(dist.NewRNG(w.Seed), lo, hi, 0.5)
}

// DistName resolves the effective batch distribution: Dist when set,
// otherwise clustered/uniform according to the legacy Clusters knob.
func (w Workload) DistName() string {
	if w.Dist != "" {
		return w.Dist
	}
	if w.Clusters > 0 {
		return "clustered"
	}
	return "uniform"
}

// Validate reports whether the workload's distribution selector names
// a usable batch generator; commands call it before spending time on
// setup. halfdense is rejected: its output size is density-driven,
// so batches would not hold exactly M keys and timing rows would
// compare unequal batch sizes across distributions.
func (w Workload) Validate() error {
	name := w.DistName()
	if name == "halfdense" {
		return fmt.Errorf("workload: halfdense is the tree-initialization shape, not a batch distribution (batches must have exactly M keys)")
	}
	_, err := dist.Generate(name, dist.NewRNG(1), 0, 0, 1)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if lo, hi := w.Range(); uint64(w.M) > uint64(hi)-uint64(lo)+1 {
		return fmt.Errorf("workload: batch size m=%d exceeds the %d distinct keys of [%d,%d] (raise -n or lower -m)",
			w.M, uint64(hi)-uint64(lo)+1, lo, hi)
	}
	return nil
}

// Batch generates the idx-th operation batch: M distinct keys from the
// range, drawn from the configured distribution (uniform by default).
func (w Workload) Batch(idx int) []int64 {
	lo, hi := w.Range()
	r := dist.NewRNG(w.Seed ^ (0xb47c4 + uint64(idx)*0x9e37))
	name := w.DistName()
	if name == "clustered" && w.Clusters > 0 {
		return dist.Clustered(r, w.M, w.Clusters, lo, hi)
	}
	keys, err := dist.Generate(name, r, w.M, lo, hi)
	if err != nil {
		panic(err) // Validate gates this in the commands
	}
	return keys
}

// timeMS runs f once and returns the elapsed wall time in
// milliseconds.
func timeMS(f func()) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// meanMS averages reps timings of fresh invocations produced by mk:
// mk(rep) must return the closure to measure for that repetition,
// performing its setup outside the timed section.
func meanMS(reps int, mk func(rep int) func()) float64 {
	if reps < 1 {
		reps = 1
	}
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		f := mk(rep)
		total += timeMS(f)
	}
	return total / float64(reps)
}

// AllocStat is one measured operation's allocation cost in the
// -benchmem style: heap bytes and allocation count per operation.
type AllocStat struct {
	BytesOp  uint64
	AllocsOp uint64
}

// timeAllocMS runs f once and returns its wall time in milliseconds
// plus the heap bytes and allocations it performed. The counters are
// whole-process deltas (runtime.ReadMemStats); experiment runners
// execute one operation at a time, so the delta is attributable to f.
// ReadMemStats stops the world briefly — outside the timed section.
func timeAllocMS(f func()) (ms float64, st AllocStat) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ms = timeMS(f)
	runtime.ReadMemStats(&after)
	st.BytesOp = after.TotalAlloc - before.TotalAlloc
	st.AllocsOp = after.Mallocs - before.Mallocs
	return ms, st
}

// meanAllocMS is meanMS with allocation tracking: it averages wall
// time and the per-operation allocation counters over reps runs.
func meanAllocMS(reps int, mk func(rep int) func()) (float64, AllocStat) {
	if reps < 1 {
		reps = 1
	}
	total := 0.0
	var bytes, allocs uint64
	for rep := 0; rep < reps; rep++ {
		f := mk(rep)
		ms, st := timeAllocMS(f)
		total += ms
		bytes += st.BytesOp
		allocs += st.AllocsOp
	}
	return total / float64(reps), AllocStat{
		BytesOp:  bytes / uint64(reps),
		AllocsOp: allocs / uint64(reps),
	}
}
