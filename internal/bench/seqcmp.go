package bench

import (
	"repro/internal/core"
	"repro/internal/iseq"
	"repro/internal/rbtree"
	"repro/internal/skiplist"
)

// SeqCompareResult reproduces the in-text sequential comparison of §9:
// the time to answer M membership queries against an N-key set, for
// the batched IST restricted to one worker (the paper's "one process"
// number), the scalar sequential IST, and the classic O(log n)
// baselines (red-black tree standing in for std::set, plus a skip
// list).
type SeqCompareResult struct {
	N, M          int
	ISTBatchedMS  float64 // PB-IST ContainsBatched, 1 worker
	ISTScalarMS   float64 // sequential IST, one Contains per key
	RBTreeMS      float64 // red-black tree, one Contains per key
	SkipListMS    float64 // skip list, one Contains per key
	SpeedupVsRB   float64 // RBTreeMS / ISTBatchedMS (paper reports ≈2.6)
	SpeedupScalar float64 // RBTreeMS / ISTScalarMS
}

// RunSeqCompare runs the §9 sequential-throughput comparison,
// averaging reps repetitions with distinct query batches.
func RunSeqCompare(w Workload, cfg core.Config, reps int) SeqCompareResult {
	w = w.WithDefaults()
	base := w.BaseKeys()

	ist := core.NewFromSorted(cfg, nil, base) // nil pool: one worker
	seq := iseq.NewFromSorted(iseq.Config{
		LeafCap:         cfg.LeafCap,
		RebuildFactor:   cfg.RebuildFactor,
		IndexSizeFactor: cfg.IndexSizeFactor,
	}, base)
	rb := rbtree.New[int64]()
	for _, k := range base {
		rb.Insert(k)
	}
	sl := skiplist.New[int64](w.Seed)
	for _, k := range base {
		sl.Insert(k)
	}

	res := SeqCompareResult{N: len(base), M: w.M}
	res.ISTBatchedMS = meanMS(reps, func(rep int) func() {
		batch := w.Batch(rep)
		return func() { ist.ContainsBatched(batch) }
	})
	res.ISTScalarMS = meanMS(reps, func(rep int) func() {
		batch := w.Batch(rep)
		return func() {
			for _, k := range batch {
				seq.Contains(k)
			}
		}
	})
	res.RBTreeMS = meanMS(reps, func(rep int) func() {
		batch := w.Batch(rep)
		return func() {
			for _, k := range batch {
				rb.Contains(k)
			}
		}
	})
	res.SkipListMS = meanMS(reps, func(rep int) func() {
		batch := w.Batch(rep)
		return func() {
			for _, k := range batch {
				sl.Contains(k)
			}
		}
	})
	res.SpeedupVsRB = safeRatio(res.RBTreeMS, res.ISTBatchedMS)
	res.SpeedupScalar = safeRatio(res.RBTreeMS, res.ISTScalarMS)
	return res
}
