package bench

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// LeafCapRow is one point of the H sweep (§3.4): leaf capacity against
// batched search and update cost plus resulting tree shape.
type LeafCapRow struct {
	H          int
	ContainsMS float64
	UpdateMS   float64 // one insert batch + one remove batch
	Height     int
	Leaves     int
}

// RunSweepLeafCap sweeps the leaf capacity H.
func RunSweepLeafCap(w Workload, workers, reps int, hs []int) []LeafCapRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	rows := make([]LeafCapRow, 0, len(hs))
	for _, h := range hs {
		cfg := core.Config{LeafCap: h}
		tree := core.NewFromSorted(cfg, pool, base)
		s := tree.Stats()
		row := LeafCapRow{H: h, Height: s.Height, Leaves: s.Leaves}
		row.ContainsMS = meanMS(reps, func(rep int) func() {
			batch := w.Batch(rep)
			return func() { tree.ContainsBatched(batch) }
		})
		row.UpdateMS = meanMS(reps, func(rep int) func() {
			fresh := core.NewFromSorted(cfg, pool, base)
			ins := w.Batch(100 + rep)
			rem := w.Batch(200 + rep)
			return func() {
				fresh.InsertBatched(ins)
				fresh.RemoveBatched(rem)
			}
		})
		rows = append(rows, row)
	}
	return rows
}

// IndexFactorRow is one point of the ε sweep (§3.2): interpolation
// index size factor against search cost and index memory.
type IndexFactorRow struct {
	Factor     float64
	ContainsMS float64
	IndexBytes int
}

// RunSweepIndexFactor sweeps the per-node index size factor.
func RunSweepIndexFactor(w Workload, workers, reps int, factors []float64) []IndexFactorRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)

	rows := make([]IndexFactorRow, 0, len(factors))
	for _, f := range factors {
		tree := core.NewFromSorted(core.Config{IndexSizeFactor: f}, pool, base)
		row := IndexFactorRow{Factor: f, IndexBytes: tree.Stats().IndexBytes}
		row.ContainsMS = meanMS(reps, func(rep int) func() {
			batch := w.Batch(rep)
			return func() { tree.ContainsBatched(batch) }
		})
		rows = append(rows, row)
	}
	return rows
}

// BatchSizeRow is one point of the batch-size sweep: per-key cost of a
// batched search as the batch grows, against the scalar red-black
// baseline cost measured in RunSeqCompare. This sweep exposes the
// amortization the paper's batched design banks on: upper tree levels
// are traversed once per batch rather than once per key.
type BatchSizeRow struct {
	M          int
	ContainsMS float64
	NSPerKey   float64
}

// RunSweepBatchSize sweeps the batch size m at a fixed tree size.
func RunSweepBatchSize(w Workload, workers, reps int, ms []int) []BatchSizeRow {
	w = w.WithDefaults()
	base := w.BaseKeys()
	pool := parallel.NewPool(workers)
	tree := core.NewFromSorted(core.Config{}, pool, base)

	rows := make([]BatchSizeRow, 0, len(ms))
	for _, m := range ms {
		wl := w
		wl.M = m
		t := meanMS(reps, func(rep int) func() {
			batch := wl.Batch(rep)
			return func() { tree.ContainsBatched(batch) }
		})
		rows = append(rows, BatchSizeRow{
			M:          m,
			ContainsMS: t,
			NSPerKey:   t * 1e6 / float64(m),
		})
	}
	return rows
}
