package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/parallel"
)

// payload derives a checkable value from a key so alignment bugs show
// up as value mismatches anywhere in the tree.
func payload(k int64, gen int) uint64 {
	return uint64(k)*0x9e3779b97f4a7c15 + uint64(gen)
}

func payloads(keys []int64, gen int) []uint64 {
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = payload(k, gen)
	}
	return out
}

func TestPutGetBatchedRoundTrip(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			keys := sortedUniqueKeys(51, 20000, 1<<34)
			tr := New[int64, uint64](Config{}, p)
			if n := tr.PutBatched(keys, payloads(keys, 1)); n != len(keys) {
				t.Fatalf("PutBatched inserted %d, want %d", n, len(keys))
			}
			vals, found := tr.GetBatched(keys)
			for i, k := range keys {
				if !found[i] || vals[i] != payload(k, 1) {
					t.Fatalf("GetBatched[%d] = (%d, %v), want (%d, true)", i, vals[i], found[i], payload(k, 1))
				}
			}
			// Overwrite every value: size must not change, values must.
			if n := tr.PutBatched(keys, payloads(keys, 2)); n != 0 {
				t.Fatalf("overwrite PutBatched inserted %d, want 0", n)
			}
			if tr.Len() != len(keys) {
				t.Fatalf("Len = %d after overwrite, want %d", tr.Len(), len(keys))
			}
			vals, _ = tr.GetBatched(keys)
			for i, k := range keys {
				if vals[i] != payload(k, 2) {
					t.Fatalf("value %d not overwritten", i)
				}
			}
		})
	}
}

func TestGetBatchedAbsentAndDead(t *testing.T) {
	keys := sortedUniqueKeys(52, 10000, 1<<30)
	tr := NewFromSortedKV(Config{}, parallel.NewPool(4), keys, payloads(keys, 0))
	dead := keys[2000:5000]
	tr.RemoveBatched(dead)
	vals, found := tr.GetBatched(keys)
	for i, k := range keys {
		isDead := i >= 2000 && i < 5000
		if found[i] == isDead {
			t.Fatalf("found[%d] = %v, dead = %v", i, found[i], isDead)
		}
		if isDead && vals[i] != 0 {
			t.Fatalf("dead key %d leaked value %d", k, vals[i])
		}
	}
	// Reviving a dead key must store the NEW value, not resurrect the
	// stale one left in the vals slot.
	if n := tr.PutBatched(dead, payloads(dead, 9)); n != len(dead) {
		t.Fatalf("revive PutBatched = %d, want %d", n, len(dead))
	}
	vals, found = tr.GetBatched(dead)
	for i, k := range dead {
		if !found[i] || vals[i] != payload(k, 9) {
			t.Fatalf("revived key %d has value %d, want %d", k, vals[i], payload(k, 9))
		}
	}
}

// TestMapDifferentialWithRebuilds drives the KV tree through a churn
// profile aggressive enough to exercise every rebuild path (flatten +
// MergeKV / DifferenceKV + buildIdeal) and checks values never detach
// from their keys.
func TestMapDifferentialWithRebuilds(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			tr := New[int64, uint64](Config{LeafCap: 4, RebuildFactor: 1}, p)
			ref := map[int64]uint64{}
			r := rand.New(rand.NewSource(53))
			const span = 4000
			for round := 0; round < 60; round++ {
				batch := randomBatch(r, 700, span)
				switch round % 4 {
				case 0, 1:
					vals := payloads(batch, round)
					want := 0
					for i, k := range batch {
						if _, ok := ref[k]; !ok {
							want++
						}
						ref[k] = vals[i]
					}
					if got := tr.PutBatched(batch, vals); got != want {
						t.Fatalf("round %d: PutBatched = %d, want %d", round, got, want)
					}
				case 2:
					want := 0
					for _, k := range batch {
						if _, ok := ref[k]; ok {
							delete(ref, k)
							want++
						}
					}
					if got := tr.RemoveBatched(batch); got != want {
						t.Fatalf("round %d: RemoveBatched = %d, want %d", round, got, want)
					}
				default:
					vals, found := tr.GetBatched(batch)
					for i, k := range batch {
						rv, ok := ref[k]
						if found[i] != ok || (ok && vals[i] != rv) {
							t.Fatalf("round %d: GetBatched[%d] = (%d,%v), want (%d,%v)",
								round, i, vals[i], found[i], rv, ok)
						}
					}
				}
				if tr.Len() != len(ref) {
					t.Fatalf("round %d: Len = %d, want %d", round, tr.Len(), len(ref))
				}
			}
			gotK, gotV := tr.Items()
			wantK := make([]int64, 0, len(ref))
			for k := range ref {
				wantK = append(wantK, k)
			}
			slices.Sort(wantK)
			if !slices.Equal(gotK, wantK) {
				t.Fatal("final key sets differ")
			}
			for i, k := range gotK {
				if gotV[i] != ref[k] {
					t.Fatalf("Items value misaligned at key %d", k)
				}
			}
		})
	}
}

func TestValueCarryingQueries(t *testing.T) {
	keys := []int64{10, 20, 30, 40, 50}
	tr := NewFromSortedKV(Config{LeafCap: 2}, nil, keys, payloads(keys, 3))
	if k, v, ok := tr.Min(); !ok || k != 10 || v != payload(10, 3) {
		t.Fatalf("Min = (%d,%d,%v)", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 50 || v != payload(50, 3) {
		t.Fatalf("Max = (%d,%d,%v)", k, v, ok)
	}
	if k, v, ok := tr.Select(2); !ok || k != 30 || v != payload(30, 3) {
		t.Fatalf("Select(2) = (%d,%d,%v)", k, v, ok)
	}
	rk, rv := tr.RangeKV(15, 45)
	if !slices.Equal(rk, []int64{20, 30, 40}) {
		t.Fatalf("RangeKV keys = %v", rk)
	}
	for i, k := range rk {
		if rv[i] != payload(k, 3) {
			t.Fatalf("RangeKV value misaligned at %d", i)
		}
	}
	if v, ok := tr.Get(30); !ok || v != payload(30, 3) {
		t.Fatalf("Get(30) = (%d,%v)", v, ok)
	}
	if _, ok := tr.Get(31); ok {
		t.Fatal("Get(31) found a phantom key")
	}
	if !tr.Put(60, 7) || tr.Put(60, 8) {
		t.Fatal("scalar Put new/overwrite semantics wrong")
	}
	if v, _ := tr.Get(60); v != 8 {
		t.Fatalf("Get(60) = %d after overwrite, want 8", v)
	}
}

func TestIterators(t *testing.T) {
	keys := sortedUniqueKeys(54, 5000, 1<<30)
	tr := NewFromSortedKV(Config{LeafCap: 8}, parallel.NewPool(4), keys, payloads(keys, 5))
	dead := keys[1000:2000]
	tr.RemoveBatched(dead)
	live := append(slices.Clone(keys[:1000]), keys[2000:]...)

	var gotK []int64
	for k, v := range tr.All() {
		if v != payload(k, 5) {
			t.Fatalf("All: value misaligned at key %d", k)
		}
		gotK = append(gotK, k)
	}
	if !slices.Equal(gotK, live) {
		t.Fatal("All does not visit exactly the live keys in order")
	}

	// Ascend over a window must agree with RangeKV.
	lo, hi := live[len(live)/4], live[3*len(live)/4]
	wantK, wantV := tr.RangeKV(lo, hi)
	gotK = gotK[:0]
	var gotV []uint64
	for k, v := range tr.Ascend(lo, hi) {
		gotK = append(gotK, k)
		gotV = append(gotV, v)
	}
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
		t.Fatal("Ascend disagrees with RangeKV")
	}

	// Early termination must stop the walk, not panic or overrun.
	n := 0
	for range tr.All() {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("early break visited %d pairs", n)
	}

	// Inverted bounds yield nothing.
	for k := range tr.Ascend(10, 5) {
		t.Fatalf("Ascend(10, 5) yielded %d", k)
	}
}

func TestPutBatchedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatched with mismatched lengths must panic")
		}
	}()
	tr := New[int64, uint64](Config{}, nil)
	tr.PutBatched([]int64{1, 2}, []uint64{1})
}
