package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// ContainsBatched reports membership for every key of the sorted
// duplicate-free batch: result[i] is true iff keys[i] is in the tree
// (§4, Listing 1.2). Expected O(m·log log n) work and polylog span.
// The result is freshly allocated (it escapes to the caller); the
// write paths reuse the traversal through containsInto with a scratch
// destination instead.
func (t *Tree[K, V]) ContainsBatched(keys []K) []bool {
	result := make([]bool, len(keys))
	if len(keys) == 0 {
		return result
	}
	t.containsRec(t.root, keys, 0, len(keys), result)
	return result
}

// containsInto resolves membership into the caller-provided result
// slice (len(keys), zero-initialized: entries of absent keys are left
// untouched). It is the arena-friendly entry the batched write paths
// use with recycled buffers.
func (t *Tree[K, V]) containsInto(keys []K, result []bool) {
	if len(keys) == 0 {
		return
	}
	t.containsRec(t.root, keys, 0, len(keys), result)
}

// ContainsBatchedInto is ContainsBatched writing into a caller-provided
// destination instead of allocating one: result must have len(keys) and
// be zero-initialized — entries of absent keys are left untouched. It
// exists so per-epoch callers (the combining frontend) can recycle
// result arrays through an arena instead of allocating each epoch.
func (t *Tree[K, V]) ContainsBatchedInto(keys []K, result []bool) {
	t.containsInto(keys, result)
}

// GetBatchedInto is GetBatched writing into caller-provided
// destinations: vals and found must have len(keys) and be
// zero-initialized — entries of absent keys are left untouched, which
// is exactly the zero-value-when-absent contract of GetBatched. Like
// ContainsBatchedInto, it lets per-epoch callers recycle both arrays.
func (t *Tree[K, V]) GetBatchedInto(keys []K, vals []V, found []bool) {
	if len(keys) == 0 {
		return
	}
	t.getRec(t.root, keys, 0, len(keys), vals, found)
}

// GetBatched fetches the value stored under every key of the sorted
// duplicate-free batch: found[i] reports whether keys[i] is live, and
// vals[i] is its value (the zero value when absent). It is the same
// batched traversal as ContainsBatched with one extra value read per
// key found, so it keeps the O(m·log log n) expected work bound.
func (t *Tree[K, V]) GetBatched(keys []K) (vals []V, found []bool) {
	vals = make([]V, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found
	}
	t.getRec(t.root, keys, 0, len(keys), vals, found)
	return vals, found
}

// containsRec is BatchedTraverse (§4.1, §4.2): it resolves membership
// of keys[l:r) within the subtree of v, writing into result at global
// batch positions. Position buffers come from the tree arena; a
// node's buffer stays borrowed until its whole child fan-out returns,
// then recycles.
func (t *Tree[K, V]) containsRec(v *node[K, V], keys []K, l, r int, result []bool) {
	if v == nil {
		return // result entries stay false
	}
	seg := r - l
	if seg <= seqSegCutoff || t.pool.Workers() == 1 {
		sc := t.newScratch()
		t.containsSeq(v, keys, l, r, result, sc, 0)
		sc.release()
		return
	}
	pf := t.ar.i32s.Get(seg)
	defer t.ar.i32s.Put(pf)
	t.findPositions(v, keys, l, r, pf)
	// Keys found in rep resolve here: present iff not logically
	// removed (§6).
	exists := v.exists
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			result[l+i] = exists[pf[i]>>1]
		}
	})
	if v.isLeaf() {
		return // leaves are the last possible location (§4.1)
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		t.containsRec(v.children[child], keys, l+lo, l+hi, result)
	})
}

// getRec is containsRec with a value read: keys found live in v's rep
// resolve here with their stored value, the rest descend.
func (t *Tree[K, V]) getRec(v *node[K, V], keys []K, l, r int, vals []V, found []bool) {
	if v == nil {
		return // found entries stay false
	}
	seg := r - l
	if seg <= seqSegCutoff || t.pool.Workers() == 1 {
		sc := t.newScratch()
		t.getSeq(v, keys, l, r, vals, found, sc, 0)
		sc.release()
		return
	}
	pf := t.ar.i32s.Get(seg)
	defer t.ar.i32s.Put(pf)
	t.findPositions(v, keys, l, r, pf)
	exists, vv := v.exists, v.vals
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 && exists[pf[i]>>1] {
			found[l+i] = true
			vals[l+i] = vv[pf[i]>>1]
		}
	})
	if v.isLeaf() {
		return
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		t.getRec(v.children[child], keys, l+lo, l+hi, vals, found)
	})
}

// findPositions locates each key of keys[l:r) in v.rep and packs the
// result into pf: pf[i] = pos<<1 | found, where pos is the lower-bound
// position of keys[l+i] (which doubles as the child index to descend
// into when the key is absent from rep, §3.3). Every pf entry is
// written, so dirty recycled buffers are fine here.
func (t *Tree[K, V]) findPositions(v *node[K, V], keys []K, l, r int, pf []int32) {
	if t.cfg.Traverse == TraverseRank {
		// §4.1: one merge-based Rank of the whole sub-batch against
		// rep. ranks[i] = #elements of rep <= key.
		ranks := parallel.Rank(t.pool, v.rep, keys[l:r])
		rep := v.rep
		parallel.For(t.pool, r-l, 0, func(i int) {
			ub := ranks[i]
			if ub > 0 && rep[ub-1] == keys[l+i] {
				pf[i] = int32(ub-1)<<1 | 1
			} else {
				pf[i] = int32(ub) << 1
			}
		})
		return
	}
	// §4.2, Listing 1.4: per-key interpolation search in a parallel
	// loop. Inner nodes use the prebuilt index; leaf reps mutate, so
	// they interpolate on the fly.
	rep, idx := v.rep, &v.idx
	leaf := v.isLeaf()
	parallel.For(t.pool, r-l, 0, func(i int) {
		var pos int
		var found bool
		if leaf {
			pos, found = iindex.InterpolationSearch(rep, keys[l+i])
		} else {
			pos, found = iindex.Find(rep, idx, keys[l+i])
		}
		if found {
			pf[i] = int32(pos)<<1 | 1
		} else {
			pf[i] = int32(pos) << 1
		}
	})
}

// forEachChildRun partitions the sub-batch into maximal runs of keys
// that route to the same child and invokes fn for each such run in
// parallel (the per-child recursion fan-out of §4.2). Runs whose keys
// were found in rep are skipped — those keys resolved at this node.
//
// Because keys are sorted, pf is non-decreasing, every pf value forms
// one contiguous run, and distinct absent runs map to distinct
// children, so parallel invocations of fn touch disjoint children.
func (t *Tree[K, V]) forEachChildRun(pf []int32, fn func(lo, hi int, child int)) {
	buf := t.ar.ints.Get(len(pf))
	starts := parallel.FilterIndicesInto(t.pool, len(pf), buf, func(i int) bool {
		return i == 0 || pf[i] != pf[i-1]
	})
	parallel.For(t.pool, len(starts), 1, func(q int) {
		lo := starts[q]
		hi := len(pf)
		if q+1 < len(starts) {
			hi = starts[q+1]
		}
		if pf[lo]&1 == 1 {
			return // run of a key found in rep
		}
		fn(lo, hi, int(pf[lo]>>1))
	})
	t.ar.ints.Put(buf)
}
