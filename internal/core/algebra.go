package core

import "repro/internal/parallel"

// Whole-tree set algebra (§2.2 taken to its conclusion): where
// InsertBatched/RemoveBatched combine a tree with a *slice*, the
// operations here combine a tree with another *tree*. Following the
// bulk route of Akhremtsev & Sanders ("Fast Parallel Operations on
// Search Trees") adapted to the IST's rebuild machinery, every
// operation is flatten–combine–rebuild: both operands flatten in
// parallel (§7.2), a shard-parallel merge kernel combines the sorted
// key/value arrays, and buildIdeal (§7.3) rebuilds an ideally balanced
// result — O(n₁+n₂) work and polylogarithmic span, which matches the
// cost of the rebuild any sufficiently large batch triggers anyway,
// and leaves the result in the best possible shape for later batches.
//
// All operations are non-mutating: the operands survive untouched and
// the result is a fresh tree carrying the receiver's configuration and
// pool (each result owns a fresh arena — scratch buffers never cross
// trees). Every temporary of the flatten-combine-rebuild cycle — both
// flatten buffer pairs and the combine destination — is receiver-arena
// scratch, returned once buildIdeal has copied the combined pairs into
// the result's chunk storage. Operands whose combined size is small
// run fully sequentially, mirroring the seqpath.go cutoff.

// algebraPool returns the pool tree-to-tree combine kernels run on:
// the tree's own pool, or nil (sequential) when the combined operand
// size is too small to win anything from forking — the same cutoff
// that gates flatten and buildIdeal.
func (t *Tree[K, V]) algebraPool(n int) *parallel.Pool {
	if n <= buildSeqCutoff {
		return nil
	}
	return t.pool
}

// flattenPairScratch flattens the receiver and other into sorted
// key/value arrays drawn from the receiver's arena, the two flattens
// themselves running in parallel with each other on the receiver's
// pool. The caller must return both pairs with t.ar.putKV once the
// data has been copied onward.
//
//pbist:owner
func (t *Tree[K, V]) flattenPairScratch(other *Tree[K, V]) (ak []K, av []V, bk []K, bv []V) {
	t.pool.Do(
		func() { ak, av = t.flattenScratch(t.root) },
		func() {
			if other.root == nil {
				return
			}
			bk = t.ar.keys.Get(other.root.size)
			bv = t.ar.vals.Get(other.root.size)
			t.fillFlat(other.root, bk, bv)
		},
	)
	return ak, av, bk, bv
}

// combineDst borrows a combine destination large enough for any result
// over operands of combined size n.
//
//pbist:owner
func (t *Tree[K, V]) combineDst(n int) ([]K, []V) {
	return t.ar.keys.Get(n), t.ar.vals.Get(n)
}

// rebuiltFrom wraps sorted duplicate-free keys/vals into a fresh
// ideally balanced tree with the receiver's configuration and pool.
func (t *Tree[K, V]) rebuiltFrom(keys []K, vals []V) *Tree[K, V] {
	res := New[K, V](t.cfg, t.pool)
	res.root = res.buildIdeal(keys, vals)
	return res
}

// Union returns a new tree holding every key of t and other. On keys
// present in both, the value comes from other when otherWins is true
// and from t otherwise (for the set instantiation V = struct{} the
// flag is irrelevant). Neither operand is modified.
func (t *Tree[K, V]) Union(other *Tree[K, V], otherWins bool) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPairScratch(other)
	p := t.algebraPool(len(ak) + len(bk))
	dstK, dstV := t.combineDst(len(ak) + len(bk))
	var mk []K
	var mv []V
	if otherWins {
		mk, mv = parallel.UnionKVInto(p, ak, av, bk, bv, dstK, dstV)
	} else {
		mk, mv = parallel.UnionKVInto(p, bk, bv, ak, av, dstK, dstV)
	}
	res := t.rebuiltFrom(mk, mv)
	t.ar.putKV(ak, av)
	t.ar.putKV(bk, bv)
	t.ar.putKV(dstK, dstV)
	return res
}

// Intersect returns a new tree holding the keys present in both t and
// other, with values from other when otherWins is true and from t
// otherwise. Neither operand is modified.
func (t *Tree[K, V]) Intersect(other *Tree[K, V], otherWins bool) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPairScratch(other)
	p := t.algebraPool(len(ak) + len(bk))
	dstK, dstV := t.combineDst(min(len(ak), len(bk)))
	xk, xv := ak, av
	yk, yv := bk, bv
	if otherWins {
		xk, xv, yk, yv = bk, bv, ak, av
	}
	mk, mv := parallel.IntersectKVInto(p, xk, xv, yk, yv, dstK, dstV)
	res := t.rebuiltFrom(mk, mv)
	t.ar.putKV(ak, av)
	t.ar.putKV(bk, bv)
	t.ar.putKV(dstK, dstV)
	return res
}

// DifferenceTree returns a new tree holding the keys of t that are not
// in other, keeping t's values. Neither operand is modified. (The name
// leaves Difference free for slice-operand helpers in the public API.)
func (t *Tree[K, V]) DifferenceTree(other *Tree[K, V]) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPairScratch(other)
	p := t.algebraPool(len(ak) + len(bk))
	dstK, dstV := t.combineDst(len(ak))
	mk, mv := parallel.DifferenceKVInto(p, ak, av, bk, dstK, dstV)
	res := t.rebuiltFrom(mk, mv)
	t.ar.putKV(ak, av)
	t.ar.putKV(bk, bv)
	t.ar.putKV(dstK, dstV)
	return res
}

// SymmetricDifference returns a new tree holding the keys present in
// exactly one of t and other, each key keeping the value of the
// operand it came from. Neither operand is modified.
func (t *Tree[K, V]) SymmetricDifference(other *Tree[K, V]) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPairScratch(other)
	p := t.algebraPool(len(ak) + len(bk))
	dstK, dstV := t.combineDst(len(ak) + len(bk))
	mk, mv := parallel.SymmetricDifferenceKVInto(p, ak, av, bk, bv, dstK, dstV)
	res := t.rebuiltFrom(mk, mv)
	t.ar.putKV(ak, av)
	t.ar.putKV(bk, bv)
	t.ar.putKV(dstK, dstV)
	return res
}

// Split partitions t by key into two new ideally balanced trees: left
// holds the keys < key, right the keys >= key. t is not modified; the
// two rebuilds run in parallel.
func (t *Tree[K, V]) Split(key K) (left, right *Tree[K, V]) {
	ak, av := t.flattenScratch(t.root)
	cut := parallel.LowerBound(ak, key)
	left = New[K, V](t.cfg, t.pool)
	right = New[K, V](t.cfg, t.pool)
	t.pool.Do(
		func() { left.root = left.buildIdeal(ak[:cut], av[:cut]) },
		func() { right.root = right.buildIdeal(ak[cut:], av[cut:]) },
	)
	t.ar.putKV(ak, av)
	return left, right
}

// Join returns a new tree holding every pair of t and other, requiring
// every key of t to be strictly smaller than every key of other (the
// inverse of Split; use Union for overlapping ranges). It panics when
// the ranges touch or overlap. Neither operand is modified.
func (t *Tree[K, V]) Join(other *Tree[K, V]) *Tree[K, V] {
	if t.Len() > 0 && other.Len() > 0 {
		maxK, _, _ := t.Max()
		minK, _, _ := other.Min()
		if maxK >= minK {
			panic("core: Join requires every key of the receiver to be smaller than every key of the argument")
		}
	}
	ak, av, bk, bv := t.flattenPairScratch(other)
	keys, vals := t.combineDst(len(ak) + len(bk))
	t.pool.Do(
		func() { copy(keys, ak); copy(vals, av) },
		func() { copy(keys[len(ak):], bk); copy(vals[len(av):], bv) },
	)
	res := t.rebuiltFrom(keys, vals)
	t.ar.putKV(ak, av)
	t.ar.putKV(bk, bv)
	t.ar.putKV(keys, vals)
	return res
}
