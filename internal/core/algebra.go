package core

import "repro/internal/parallel"

// Whole-tree set algebra (§2.2 taken to its conclusion): where
// InsertBatched/RemoveBatched combine a tree with a *slice*, the
// operations here combine a tree with another *tree*. Following the
// bulk route of Akhremtsev & Sanders ("Fast Parallel Operations on
// Search Trees") adapted to the IST's rebuild machinery, every
// operation is flatten–combine–rebuild: both operands flatten in
// parallel (§7.2), a shard-parallel merge kernel combines the sorted
// key/value arrays, and buildIdeal (§7.3) rebuilds an ideally balanced
// result — O(n₁+n₂) work and polylogarithmic span, which matches the
// cost of the rebuild any sufficiently large batch triggers anyway,
// and leaves the result in the best possible shape for later batches.
//
// All operations are non-mutating: the operands survive untouched and
// the result is a fresh tree carrying the receiver's configuration and
// pool. Operands whose combined size is small run fully sequentially,
// mirroring the seqpath.go cutoff.

// algebraPool returns the pool tree-to-tree combine kernels run on:
// the tree's own pool, or nil (sequential) when the combined operand
// size is too small to win anything from forking — the same cutoff
// that gates flatten and buildIdeal.
func (t *Tree[K, V]) algebraPool(n int) *parallel.Pool {
	if n <= buildSeqCutoff {
		return nil
	}
	return t.pool
}

// flattenPair flattens the receiver and other into sorted key/value
// arrays, the two flattens themselves running in parallel with each
// other on the receiver's pool.
func (t *Tree[K, V]) flattenPair(other *Tree[K, V]) (ak []K, av []V, bk []K, bv []V) {
	t.pool.Do(
		func() { ak, av = t.flatten(t.root) },
		func() { bk, bv = t.flatten(other.root) },
	)
	return ak, av, bk, bv
}

// rebuiltFrom wraps sorted duplicate-free keys/vals into a fresh
// ideally balanced tree with the receiver's configuration and pool.
func (t *Tree[K, V]) rebuiltFrom(keys []K, vals []V) *Tree[K, V] {
	res := New[K, V](t.cfg, t.pool)
	res.root = res.buildIdeal(keys, vals)
	return res
}

// Union returns a new tree holding every key of t and other. On keys
// present in both, the value comes from other when otherWins is true
// and from t otherwise (for the set instantiation V = struct{} the
// flag is irrelevant). Neither operand is modified.
func (t *Tree[K, V]) Union(other *Tree[K, V], otherWins bool) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPair(other)
	p := t.algebraPool(len(ak) + len(bk))
	var mk []K
	var mv []V
	if otherWins {
		mk, mv = parallel.UnionKV(p, ak, av, bk, bv)
	} else {
		mk, mv = parallel.UnionKV(p, bk, bv, ak, av)
	}
	return t.rebuiltFrom(mk, mv)
}

// Intersect returns a new tree holding the keys present in both t and
// other, with values from other when otherWins is true and from t
// otherwise. Neither operand is modified.
func (t *Tree[K, V]) Intersect(other *Tree[K, V], otherWins bool) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPair(other)
	p := t.algebraPool(len(ak) + len(bk))
	if otherWins {
		ak, av, bk, bv = bk, bv, ak, av
	}
	mk, mv := parallel.IntersectKV(p, ak, av, bk, bv)
	return t.rebuiltFrom(mk, mv)
}

// DifferenceTree returns a new tree holding the keys of t that are not
// in other, keeping t's values. Neither operand is modified. (The name
// leaves Difference free for slice-operand helpers in the public API.)
func (t *Tree[K, V]) DifferenceTree(other *Tree[K, V]) *Tree[K, V] {
	ak, av, bk, _ := t.flattenPair(other)
	p := t.algebraPool(len(ak) + len(bk))
	mk, mv := parallel.DifferenceKV(p, ak, av, bk)
	return t.rebuiltFrom(mk, mv)
}

// SymmetricDifference returns a new tree holding the keys present in
// exactly one of t and other, each key keeping the value of the
// operand it came from. Neither operand is modified.
func (t *Tree[K, V]) SymmetricDifference(other *Tree[K, V]) *Tree[K, V] {
	ak, av, bk, bv := t.flattenPair(other)
	p := t.algebraPool(len(ak) + len(bk))
	mk, mv := parallel.SymmetricDifferenceKV(p, ak, av, bk, bv)
	return t.rebuiltFrom(mk, mv)
}

// Split partitions t by key into two new ideally balanced trees: left
// holds the keys < key, right the keys >= key. t is not modified; the
// two rebuilds run in parallel.
func (t *Tree[K, V]) Split(key K) (left, right *Tree[K, V]) {
	ak, av := t.flatten(t.root)
	cut := parallel.LowerBound(ak, key)
	left = New[K, V](t.cfg, t.pool)
	right = New[K, V](t.cfg, t.pool)
	t.pool.Do(
		func() { left.root = left.buildIdeal(ak[:cut], av[:cut]) },
		func() { right.root = right.buildIdeal(ak[cut:], av[cut:]) },
	)
	return left, right
}

// Join returns a new tree holding every pair of t and other, requiring
// every key of t to be strictly smaller than every key of other (the
// inverse of Split; use Union for overlapping ranges). It panics when
// the ranges touch or overlap. Neither operand is modified.
func (t *Tree[K, V]) Join(other *Tree[K, V]) *Tree[K, V] {
	if t.Len() > 0 && other.Len() > 0 {
		maxK, _, _ := t.Max()
		minK, _, _ := other.Min()
		if maxK >= minK {
			panic("core: Join requires every key of the receiver to be smaller than every key of the argument")
		}
	}
	ak, av, bk, bv := t.flattenPair(other)
	keys := make([]K, len(ak)+len(bk))
	vals := make([]V, len(ak)+len(bk))
	t.pool.Do(
		func() { copy(keys, ak); copy(vals, av) },
		func() { copy(keys[len(ak):], bk); copy(vals[len(av):], bv) },
	)
	return t.rebuiltFrom(keys, vals)
}
