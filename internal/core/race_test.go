//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// the exact-zero allocation ceilings skip under instrumentation, which
// adds bookkeeping allocations of its own.
const raceEnabled = true
