package core

import (
	"math"

	"repro/internal/arena"
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// buildSeqCutoff is the subtree size below which flattening and ideal
// construction run sequentially: spawning tasks for tiny subtrees costs
// more than the work they contain.
const buildSeqCutoff = 4096

// flatten collects the live keys of subtree v — and their values,
// position-aligned — into freshly allocated sorted arrays (§7.2): O(n)
// work, O(log³ n) span (Theorem 1). Use it when the result escapes to
// the caller (Keys, Items); internal rebuild paths use flattenScratch.
func (t *Tree[K, V]) flatten(v *node[K, V]) ([]K, []V) {
	if v == nil {
		return nil, nil
	}
	outK := make([]K, v.size)
	outV := make([]V, v.size)
	t.fillFlat(v, outK, outV)
	return outK, outV
}

// flattenScratch is flatten into arena-recycled buffers. The result
// must never escape the tree: the caller copies it onward (buildIdeal
// copies every key into chunk storage) and then returns both buffers
// with t.ar.putKV, at which point a retired flatten buffer becomes the
// next rebuild's merge or flatten buffer.
//
//pbist:owner
func (t *Tree[K, V]) flattenScratch(v *node[K, V]) ([]K, []V) {
	if v == nil {
		return nil, nil
	}
	outK := t.ar.keys.Get(v.size)
	outV := t.ar.vals.Get(v.size)
	t.fillFlat(v, outK, outV)
	return outK, outV
}

// fillFlat writes the live keys and values of v into outK/outV, which
// have length v.size. Following §7.2, an inner node with k rep slots
// has 2k+1 key sources — child i is source 2i, rep slot i is source
// 2i+1 — whose output offsets are the exclusive prefix sums of their
// live sizes (Fig. 15). All sources then emit in parallel. The offsets
// buffer lives in the arena only for the duration of this node's fan-
// out (children borrow their own).
func (t *Tree[K, V]) fillFlat(v *node[K, V], outK []K, outV []V) {
	if v.isLeaf() {
		w := 0
		for i, x := range v.rep {
			if v.exists[i] {
				outK[w] = x
				outV[w] = v.vals[i]
				w++
			}
		}
		return
	}
	k := len(v.rep)
	pool := t.pool
	if v.size <= buildSeqCutoff {
		pool = nil
	}
	offsets := t.ar.ints.GetZero(2*k + 1)
	parallel.For(pool, k, 0, func(i int) {
		if c := v.children[i]; c != nil {
			offsets[2*i] = c.size
		}
		if v.exists[i] {
			offsets[2*i+1] = 1
		}
	})
	if c := v.children[k]; c != nil {
		offsets[2*k] = c.size
	}
	parallel.ScanInPlace(pool, offsets)
	parallel.For(pool, 2*k+1, 1, func(s int) {
		if s%2 == 0 {
			if c := v.children[s/2]; c != nil {
				t.fillFlat(c, outK[offsets[s]:offsets[s]+c.size], outV[offsets[s]:offsets[s]+c.size])
			}
		} else if j := s / 2; v.exists[j] {
			outK[offsets[s]] = v.rep[j]
			outV[offsets[s]] = v.vals[j]
		}
	})
	t.ar.ints.Put(offsets)
}

// buildIdeal constructs an ideally balanced IST (Definition 5) over
// sorted duplicate-free keys and their position-aligned values: O(n)
// work and O(log n·log log n) span (Theorem 1). Rep elements are
// spread evenly — k = ⌊√m⌋ slots at positions (i+1)·m/(k+1) — and the
// k+1 children build in parallel. Both inputs are copied into chunk
// storage, never aliased, so callers may keep mutating them.
//
// Storage is chunked (internal/arena.Chunk): every key of the subtree
// lands in exactly one rep slot — inner nodes hold some, leaves the
// rest — so one chunk of exactly m key/value/liveness slots backs the
// whole subtree, and each node's arrays are carved out of it at
// offsets the recursion derives locally. The carve windows of parallel
// siblings are disjoint by construction, so the fill needs no
// synchronization beyond the fork-join itself.
//
// (§7.3 spaces rep elements exactly k apart, which covers the input
// only when m is a perfect square; the even spread is the Definition 5
// reading and is what keeps every child at Θ(√m) keys.)
func (t *Tree[K, V]) buildIdeal(keys []K, vals []V) *node[K, V] {
	m := len(keys)
	if m == 0 {
		return nil
	}
	ch := t.newChunk(m)
	root := t.buildInto(ch, 0, keys, vals)
	// The build root carries the chunk handle so a rebuild of an
	// enclosing subtree can retire the storage (mvcc.go).
	root.chunk = &chunkHandle[K, V]{ch: ch, born: t.writeGen}
	return root
}

// idealFanout returns k, the rep-slot count of an ideal inner node
// over m keys (§7.3): ⌊√m⌋, at least 2.
func idealFanout(m int) int {
	k := int(math.Sqrt(float64(m)))
	if k < 2 {
		k = 2
	}
	return k
}

// idealChild returns the key range [lo, hi) of child i of an ideal
// inner node over m keys with fanout k; for i < k, position hi holds
// rep slot i. This is the single definition of the ideal split:
// buildInto, buildSeqInto, and countIdeal must agree exactly, because
// countIdeal sizes the node slabs buildSeqInto consumes.
func idealChild(m, k, i int) (lo, hi int) {
	lo = 0
	if i > 0 {
		lo = i*m/(k+1) + 1
	}
	hi = m
	if i < k {
		hi = (i + 1) * m / (k + 1)
	}
	return lo, hi
}

// buildInto builds the ideal subtree over keys/vals with its node
// storage carved from ch at [base, base+len(keys)). Subtrees at or
// below buildSeqCutoff build sequentially through a node slab: their
// exact node and child-pointer counts are precomputed (the ideal
// split is deterministic in m), so the whole subtree's node headers
// and children arrays come from two bulk allocations instead of one
// or two per node.
//
//pbist:owner
func (t *Tree[K, V]) buildInto(ch arena.Chunk[K, V], base int, keys []K, vals []V) *node[K, V] {
	m := len(keys)
	if m == 0 {
		return nil // empty child range
	}
	if m <= t.cfg.LeafCap {
		v := &node[K, V]{}
		t.fillLeaf(v, ch, base, keys, vals)
		return v
	}
	if m <= buildSeqCutoff {
		nn, nc := countIdeal(m, t.cfg.LeafCap)
		slab := buildSlab[K, V]{
			nodes: make([]node[K, V], nn),
			kids:  make([]*node[K, V], nc),
		}
		return t.buildSeqInto(ch, &slab, base, keys, vals)
	}
	k := idealFanout(m)
	rep, vv, ex := ch.Carve(base, k)
	for i := range ex {
		ex[i] = true
	}
	v := &node[K, V]{
		rep:      rep,
		vals:     vv,
		exists:   ex,
		children: make([]*node[K, V], k+1),
		size:     m,
		initSize: m,
		gen:      t.writeGen,
	}
	parallel.For(t.pool, k+1, 1, func(i int) {
		lo, hi := idealChild(m, k, i)
		if i < k {
			rep[i] = keys[hi]
			vv[i] = vals[hi]
		}
		// Child i's chunk window starts after this node's k rep slots
		// and the slots of its left siblings: lo keys precede position
		// lo, of which i are rep keys, so the siblings hold lo−i.
		v.children[i] = t.buildInto(ch, base+k+lo-i, keys[lo:hi], vals[lo:hi])
	})
	v.idx = iindex.Build(v.rep, t.cfg.IndexSizeFactor)
	return v
}

// fillLeaf initializes v as a leaf over keys/vals with storage carved
// from ch at base.
//
//pbist:owner
func (t *Tree[K, V]) fillLeaf(v *node[K, V], ch arena.Chunk[K, V], base int, keys []K, vals []V) {
	m := len(keys)
	rep, vv, ex := ch.Carve(base, m)
	copy(rep, keys)
	copy(vv, vals)
	for i := range ex {
		ex[i] = true
	}
	*v = node[K, V]{rep: rep, vals: vv, exists: ex, size: m, initSize: m, gen: t.writeGen}
}

// buildSlab doles out node headers and children arrays for one
// sequentially built subtree from two exact-size bulk allocations.
// Like a Chunk, the slab's memory is retained while any node built
// from it is alive.
type buildSlab[K iindex.Numeric, V any] struct {
	nodes []node[K, V]
	kids  []*node[K, V]
}

func (s *buildSlab[K, V]) node() *node[K, V] {
	v := &s.nodes[0]
	s.nodes = s.nodes[1:]
	return v
}

func (s *buildSlab[K, V]) children(k int) []*node[K, V] {
	c := s.kids[:k:k]
	s.kids = s.kids[k:]
	return c
}

// countIdeal walks the deterministic ideal-split recursion without
// building anything and returns the node and child-pointer counts of
// the subtree buildSeqInto will produce for m keys.
func countIdeal(m, leafCap int) (nodes, kids int) {
	if m == 0 {
		return 0, 0
	}
	if m <= leafCap {
		return 1, 0
	}
	k := idealFanout(m)
	nodes, kids = 1, k+1
	for i := 0; i <= k; i++ {
		lo, hi := idealChild(m, k, i)
		cn, ck := countIdeal(hi-lo, leafCap)
		nodes += cn
		kids += ck
	}
	return nodes, kids
}

// buildSeqInto is buildInto below the parallel cutoff: same splits,
// node storage from the slab, no forking.
//
//pbist:owner
func (t *Tree[K, V]) buildSeqInto(ch arena.Chunk[K, V], slab *buildSlab[K, V], base int, keys []K, vals []V) *node[K, V] {
	m := len(keys)
	if m == 0 {
		return nil // empty child range; countIdeal counted no node
	}
	v := slab.node()
	if m <= t.cfg.LeafCap {
		t.fillLeaf(v, ch, base, keys, vals)
		return v
	}
	k := idealFanout(m)
	rep, vv, ex := ch.Carve(base, k)
	for i := range ex {
		ex[i] = true
	}
	*v = node[K, V]{
		rep:      rep,
		vals:     vv,
		exists:   ex,
		children: slab.children(k + 1),
		size:     m,
		initSize: m,
		gen:      t.writeGen,
	}
	for i := 0; i <= k; i++ {
		lo, hi := idealChild(m, k, i)
		if i < k {
			rep[i] = keys[hi]
			vv[i] = vals[hi]
		}
		v.children[i] = t.buildSeqInto(ch, slab, base+k+lo-i, keys[lo:hi], vals[lo:hi])
	}
	v.idx = iindex.Build(v.rep, t.cfg.IndexSizeFactor)
	return v
}
