package core

import (
	"math"

	"repro/internal/iindex"
	"repro/internal/parallel"
)

// buildSeqCutoff is the subtree size below which flattening and ideal
// construction run sequentially: spawning tasks for tiny subtrees costs
// more than the work they contain.
const buildSeqCutoff = 4096

// flatten collects the live keys of subtree v — and their values,
// position-aligned — into fresh sorted arrays (§7.2): O(n) work,
// O(log³ n) span (Theorem 1).
func (t *Tree[K, V]) flatten(v *node[K, V]) ([]K, []V) {
	if v == nil {
		return nil, nil
	}
	outK := make([]K, v.size)
	outV := make([]V, v.size)
	t.fillFlat(v, outK, outV)
	return outK, outV
}

// fillFlat writes the live keys and values of v into outK/outV, which
// have length v.size. Following §7.2, an inner node with k rep slots
// has 2k+1 key sources — child i is source 2i, rep slot i is source
// 2i+1 — whose output offsets are the exclusive prefix sums of their
// live sizes (Fig. 15). All sources then emit in parallel.
func (t *Tree[K, V]) fillFlat(v *node[K, V], outK []K, outV []V) {
	if v.isLeaf() {
		w := 0
		for i, x := range v.rep {
			if v.exists[i] {
				outK[w] = x
				outV[w] = v.vals[i]
				w++
			}
		}
		return
	}
	k := len(v.rep)
	pool := t.pool
	if v.size <= buildSeqCutoff {
		pool = nil
	}
	offsets := make([]int, 2*k+1)
	parallel.For(pool, k, 0, func(i int) {
		if c := v.children[i]; c != nil {
			offsets[2*i] = c.size
		}
		if v.exists[i] {
			offsets[2*i+1] = 1
		}
	})
	if c := v.children[k]; c != nil {
		offsets[2*k] = c.size
	}
	parallel.ScanInPlace(pool, offsets)
	parallel.For(pool, 2*k+1, 1, func(s int) {
		if s%2 == 0 {
			if c := v.children[s/2]; c != nil {
				t.fillFlat(c, outK[offsets[s]:offsets[s]+c.size], outV[offsets[s]:offsets[s]+c.size])
			}
		} else if j := s / 2; v.exists[j] {
			outK[offsets[s]] = v.rep[j]
			outV[offsets[s]] = v.vals[j]
		}
	})
}

// buildIdeal constructs an ideally balanced IST (Definition 5) over
// sorted duplicate-free keys and their position-aligned values: O(n)
// work and O(log n·log log n) span (Theorem 1). Rep elements are
// spread evenly — k = ⌊√m⌋ slots at positions (i+1)·m/(k+1) — and the
// k+1 children build in parallel. Both inputs are copied into fresh
// leaf and Rep arrays, never aliased, so callers may keep mutating
// them.
//
// (§7.3 spaces rep elements exactly k apart, which covers the input
// only when m is a perfect square; the even spread is the Definition 5
// reading and is what keeps every child at Θ(√m) keys.)
func (t *Tree[K, V]) buildIdeal(keys []K, vals []V) *node[K, V] {
	m := len(keys)
	if m == 0 {
		return nil
	}
	if m <= t.cfg.LeafCap {
		return &node[K, V]{
			rep:      append(make([]K, 0, m), keys...),
			vals:     append(make([]V, 0, m), vals...),
			exists:   allTrue(m),
			size:     m,
			initSize: m,
		}
	}
	k := int(math.Sqrt(float64(m)))
	if k < 2 {
		k = 2
	}
	v := &node[K, V]{
		rep:      make([]K, k),
		vals:     make([]V, k),
		exists:   allTrue(k),
		children: make([]*node[K, V], k+1),
		size:     m,
		initSize: m,
	}
	pool := t.pool
	if m <= buildSeqCutoff {
		pool = nil
	}
	parallel.For(pool, k+1, 1, func(i int) {
		lo := 0
		if i > 0 {
			lo = i*m/(k+1) + 1
		}
		hi := m
		if i < k {
			hi = (i + 1) * m / (k + 1)
			v.rep[i] = keys[hi]
			v.vals[i] = vals[hi]
		}
		v.children[i] = t.buildIdeal(keys[lo:hi], vals[lo:hi])
	})
	v.idx = iindex.Build(v.rep, t.cfg.IndexSizeFactor)
	return v
}

func allTrue(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}
