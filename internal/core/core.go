// Package core implements the paper's primary contribution: the
// Parallel-Batched Interpolation Search Tree (PB-IST).
//
// The tree stores a sorted set of numeric keys and executes whole
// batches of operations at once:
//
//   - ContainsBatched (§4) answers membership for a sorted batch,
//   - InsertBatched (§5) adds a sorted batch (set union),
//   - RemoveBatched (§6) deletes a sorted batch (set difference),
//
// each in expected O(m·log log n) work for a batch of m keys against a
// tree of n keys drawn from a smooth distribution, and polylogarithmic
// span (§8). Balance and space are maintained by amortized parallel
// subtree rebuilding (§7).
//
// A batch must be sorted and duplicate-free; the public pbist package
// wraps this contract with optional normalization. A Tree is not safe
// for concurrent use: one batched operation runs at a time and
// parallelism happens inside the operation, which is exactly the
// parallel-batched model of §2.2.
package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// TraverseMode selects how inner nodes locate batch keys in their Rep
// arrays during a batched traversal (§4.2 discusses both).
type TraverseMode int

const (
	// TraverseInterpolation performs a per-key interpolation-index
	// search inside a parallel loop (Listing 1.4). Expected O(1) per
	// key on smooth input; this is the mode that achieves
	// O(m·log log n) work and is the default.
	TraverseInterpolation TraverseMode = iota
	// TraverseRank uses the merge-based parallel Rank primitive
	// (§4.1): O(|Rep| + segment) work per node regardless of input
	// distribution. Kept for the ablation experiment A1.
	TraverseRank
)

// Config carries the tuning constants of the tree; the zero value
// selects defaults matching the paper's suggestions.
type Config struct {
	// LeafCap is H (§3.4): subtrees of at most this many keys are
	// stored as leaf arrays. Default 16.
	LeafCap int
	// RebuildFactor is C (§7.1): a subtree is rebuilt when the number
	// of modifications since its construction exceeds C times its size
	// at construction. Default 2.
	RebuildFactor int
	// IndexSizeFactor scales per-node interpolation-index bucket
	// counts relative to Rep length. Default 1.0.
	IndexSizeFactor float64
	// Traverse selects the batched traversal mode. Default
	// TraverseInterpolation.
	Traverse TraverseMode
}

func (c Config) withDefaults() Config {
	if c.LeafCap <= 0 {
		c.LeafCap = 16
	}
	if c.RebuildFactor <= 0 {
		c.RebuildFactor = 2
	}
	if c.IndexSizeFactor <= 0 {
		c.IndexSizeFactor = iindex.DefaultSizeFactor
	}
	return c
}

// Tree is a parallel-batched interpolation search tree.
type Tree[K iindex.Numeric] struct {
	root *node[K]
	cfg  Config
	pool *parallel.Pool
}

// node is one IST node (§3.1 plus the bookkeeping of §6–§7). Leaves
// have nil children; inner nodes have len(rep)+1 children, any of which
// may be nil (empty key range). Inner Rep arrays are immutable between
// rebuilds, so their interpolation index stays valid; leaf Rep arrays
// mutate on insertion and are searched with on-the-fly interpolation.
type node[K iindex.Numeric] struct {
	rep      []K
	exists   []bool
	children []*node[K]
	idx      iindex.Index
	size     int // live keys in this subtree
	initSize int // live keys when this subtree was (re)built
	modCnt   int // successful updates applied since (re)build
}

func (v *node[K]) isLeaf() bool { return v.children == nil }

// New returns an empty tree. pool bounds the parallelism of batched
// operations; a nil pool means sequential execution.
func New[K iindex.Numeric](cfg Config, pool *parallel.Pool) *Tree[K] {
	return &Tree[K]{cfg: cfg.withDefaults(), pool: pool}
}

// NewFromSorted bulk-loads a tree from sorted duplicate-free keys in
// O(n) work and polylog span, producing an ideally balanced IST
// (Definition 5). The input slice is not retained.
func NewFromSorted[K iindex.Numeric](cfg Config, pool *parallel.Pool, keys []K) *Tree[K] {
	t := New[K](cfg, pool)
	t.root = t.buildIdeal(keys)
	return t
}

// Pool returns the pool the tree runs its batched operations on.
func (t *Tree[K]) Pool() *parallel.Pool { return t.pool }

// SetPool changes the pool used by subsequent operations. It is the
// mechanism behind the worker-count sweep of the Fig. 17 experiments.
func (t *Tree[K]) SetPool(pool *parallel.Pool) { t.pool = pool }

// Len reports the number of live keys in the set.
func (t *Tree[K]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Keys returns the live keys in ascending order using the parallel
// flatten of §7.2.
func (t *Tree[K]) Keys() []K {
	return t.flatten(t.root)
}

// Contains reports whether key is in the set. It is a batch of size
// one; hot scalar paths should use the sequential tree or batch their
// queries.
func (t *Tree[K]) Contains(key K) bool {
	buf := [1]K{key}
	var res [1]bool
	t.containsRec(t.root, buf[:], 0, 1, res[:])
	return res[0]
}

// Insert adds key to the set, reporting whether it was absent.
func (t *Tree[K]) Insert(key K) bool {
	return t.InsertBatched([]K{key}) == 1
}

// Remove deletes key from the set, reporting whether it was present.
func (t *Tree[K]) Remove(key K) bool {
	return t.RemoveBatched([]K{key}) == 1
}

// rebuildDue reports whether applying k more modifications to v would
// exceed the rebuild budget C·InitSize (§7.1).
func (t *Tree[K]) rebuildDue(v *node[K], k int) bool {
	budget := t.cfg.RebuildFactor * v.initSize
	if budget < t.cfg.RebuildFactor {
		budget = t.cfg.RebuildFactor
	}
	return v.modCnt+k > budget
}
