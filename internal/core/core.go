// Package core implements the paper's primary contribution: the
// Parallel-Batched Interpolation Search Tree (PB-IST).
//
// The tree stores a sorted collection of numeric keys — each carrying
// a value of an arbitrary type V — and executes whole batches of
// operations at once:
//
//   - ContainsBatched (§4) answers membership for a sorted batch,
//   - GetBatched (§4) additionally fetches the stored values,
//   - InsertBatched (§5) adds a sorted batch (set union),
//   - PutBatched (§5) upserts a sorted batch of key-value pairs,
//   - RemoveBatched (§6) deletes a sorted batch (set difference),
//
// each in expected O(m·log log n) work for a batch of m keys against a
// tree of n keys drawn from a smooth distribution, and polylogarithmic
// span (§8). Balance and space are maintained by amortized parallel
// subtree rebuilding (§7).
//
// Node storage is chunked: a rebuilt subtree lays the rep/vals/exists
// arrays of all its nodes into three contiguous backing arrays
// (internal/arena.Chunk) that the nodes slice into at deterministic
// offsets, so a rebuild of s keys costs three array allocations plus
// one node header each instead of three-to-five heap allocations per
// node, and sibling leaves end up adjacent in memory — the
// cache-friendly layout interpolation search trees are designed
// around. Every temporary a batched operation needs (position buffers,
// membership side arrays, flatten/merge buffers) is drawn from a
// tree-owned recycled-scratch arena and returned when the operation
// completes, so steady-state batches allocate almost nothing; see
// Config.DisableBufferReuse for the escape hatch.
//
// The paper evaluates a sorted set; the set is the V = struct{}
// instantiation of this tree (NewFromSorted builds one), which costs
// nothing: every value array of an empty struct type is zero bytes.
//
// A batch must be sorted and duplicate-free; the public pbist package
// wraps this contract with optional normalization. A Tree is not safe
// for concurrent use: one batched operation runs at a time and
// parallelism happens inside the operation, which is exactly the
// parallel-batched model of §2.2.
package core

import (
	"repro/internal/iindex"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// TraverseMode selects how inner nodes locate batch keys in their Rep
// arrays during a batched traversal (§4.2 discusses both).
type TraverseMode int

const (
	// TraverseInterpolation performs a per-key interpolation-index
	// search inside a parallel loop (Listing 1.4). Expected O(1) per
	// key on smooth input; this is the mode that achieves
	// O(m·log log n) work and is the default.
	TraverseInterpolation TraverseMode = iota
	// TraverseRank uses the merge-based parallel Rank primitive
	// (§4.1): O(|Rep| + segment) work per node regardless of input
	// distribution. Kept for the ablation experiment A1.
	TraverseRank
)

// Config carries the tuning constants of the tree; the zero value
// selects defaults matching the paper's suggestions.
type Config struct {
	// LeafCap is H (§3.4): subtrees of at most this many keys are
	// stored as leaf arrays. Default 16.
	LeafCap int
	// RebuildFactor is C (§7.1): a subtree is rebuilt when the number
	// of modifications since its construction exceeds C times its size
	// at construction. Default 2.
	RebuildFactor int
	// IndexSizeFactor scales per-node interpolation-index bucket
	// counts relative to Rep length. Default 1.0.
	IndexSizeFactor float64
	// Traverse selects the batched traversal mode. Default
	// TraverseInterpolation.
	Traverse TraverseMode
	// RebuildBudgetPerEpoch caps the number of rebuild keys one
	// mutating epoch (or one standalone batched mutation) may lay
	// down. 0 (the default) keeps today's eager policy: every §7.1
	// trigger rebuilds inline, however large. A positive budget defers
	// triggers the epoch cannot afford — the subtree is recorded as
	// rebuild debt and the mutation proceeds — and repays debt in
	// later epochs, highest debt first (sched.go).
	RebuildBudgetPerEpoch int
	// AsyncRebuild drains deferred rebuild debt on a background
	// goroutine instead of inside later epochs: the indebted subtree
	// is rebuilt from the frozen published version while readers and
	// the combiner keep serving, and the result is spliced in at an
	// epoch boundary. Effective only with RebuildBudgetPerEpoch set on
	// a publishing tree (EnablePublish); otherwise deferred debt
	// drains synchronously.
	AsyncRebuild bool
	// LeafSlack is the capacity headroom factor of reallocated leaf
	// arrays: a leaf merge that outgrows its storage allocates
	// ceil(LeafSlack·n) slots for its n keys, so the next few merges
	// into the same leaf run in place. 1.0 means exact-size (every
	// merge reallocates), larger trades dead space for fewer
	// reallocations. Default 1.5.
	LeafSlack float64
	// DisableBufferReuse turns off the tree-owned scratch arena:
	// every internal temporary is then allocated fresh and dropped,
	// as if the arena did not exist. The default (false) recycles
	// scratch buffers across batched operations and rebuilds.
	// Results are identical either way; the knob exists for leak
	// analysis, allocation profiling, and differential testing.
	DisableBufferReuse bool
	// Metrics attaches the tree to an observability registry: rebuild
	// events record under "core.rebuild.*" and the arena's retention
	// and hit-rate telemetry registers as live gauges under
	// "core.arena.*" / "core.chunk.*". nil (the default) disables all
	// recording at zero cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.LeafCap <= 0 {
		c.LeafCap = 16
	}
	if c.RebuildFactor <= 0 {
		c.RebuildFactor = 2
	}
	if c.IndexSizeFactor <= 0 {
		c.IndexSizeFactor = iindex.DefaultSizeFactor
	}
	if c.LeafSlack < 1 {
		c.LeafSlack = 1.5
	}
	return c
}

// Tree is a parallel-batched interpolation search tree mapping keys of
// numeric type K to values of type V. Instantiate with V = struct{}
// for a plain sorted set.
type Tree[K iindex.Numeric, V any] struct {
	root *node[K, V]
	cfg  Config
	pool *parallel.Pool
	ar   *treeArena[K, V]
	obs  *coreObs // nil unless cfg.Metrics was set

	// Multi-version state (mvcc.go). mv is nil until EnablePublish;
	// writeGen and dirty are confined to whatever single goroutine runs
	// the batched operations (the combiner, in the published setup) and
	// stay zero/false on never-published trees.
	mv       *mvccState[K, V]
	writeGen uint64
	dirty    bool // mutations since the last publish

	// sched is the amortized rebuild scheduler (sched.go); nil — the
	// default — means every rebuild trigger runs eagerly inline.
	sched *rebuildSched[K, V]
}

// node is one IST node (§3.1 plus the bookkeeping of §6–§7). Leaves
// have nil children; inner nodes have len(rep)+1 children, any of which
// may be nil (empty key range). Inner Rep arrays are immutable between
// rebuilds, so their interpolation index stays valid; leaf Rep arrays
// mutate on insertion and are searched with on-the-fly interpolation.
// vals runs parallel to rep: vals[i] is the value of key rep[i]
// (invariant: len(vals) == len(rep)); unlike rep, vals slots of inner
// nodes may be overwritten between rebuilds (value upserts do not
// disturb the interpolation index, which depends only on keys).
type node[K iindex.Numeric, V any] struct {
	rep      []K
	vals     []V
	exists   []bool
	children []*node[K, V]
	idx      iindex.Index
	size     int // live keys in this subtree
	initSize int // live keys when this subtree was (re)built
	modCnt   int // successful updates applied since (re)build

	// gen is the tree write generation this node was created in; a
	// mutation in a later generation copies the node first (mvcc.go).
	// Zero everywhere on never-published trees.
	gen uint64
	// chunk, set only on the root node of a chunked build, ties the
	// subtree back to its contiguous storage so a rebuild of an
	// enclosing subtree can retire it for reclamation (mvcc.go).
	chunk *chunkHandle[K, V]
}

func (v *node[K, V]) isLeaf() bool { return v.children == nil }

// New returns an empty tree owning a private scratch arena. pool
// bounds the parallelism of batched operations; a nil pool means
// sequential execution.
func New[K iindex.Numeric, V any](cfg Config, pool *parallel.Pool) *Tree[K, V] {
	cfg = cfg.withDefaults()
	t := &Tree[K, V]{
		cfg:   cfg,
		pool:  pool,
		ar:    newTreeArena[K, V](cfg.DisableBufferReuse),
		obs:   newCoreObs(cfg.Metrics),
		sched: newSched[K, V](cfg),
	}
	t.ar.observe(cfg.Metrics)
	return t
}

// NewWithArena is New with a caller-provided SharedArena instead of a
// private one, so several trees (a shard group) can recycle scratch
// through one bounded free-list set. A nil arena falls back to a
// private one. cfg.DisableBufferReuse still disables recycling for
// this tree's borrows, but the authoritative disable switch of a
// shared arena is the one it was constructed with.
func NewWithArena[K iindex.Numeric, V any](cfg Config, pool *parallel.Pool, sa *SharedArena[K, V]) *Tree[K, V] {
	if sa == nil {
		return New[K, V](cfg, pool)
	}
	cfg = cfg.withDefaults()
	t := &Tree[K, V]{cfg: cfg, pool: pool, ar: sa.ar, obs: newCoreObs(cfg.Metrics), sched: newSched[K, V](cfg)}
	t.ar.observe(cfg.Metrics)
	return t
}

// NewFromSortedKVWithArena bulk-loads a tree (as NewFromSortedKV) with
// its scratch drawn from a caller-provided SharedArena.
func NewFromSortedKVWithArena[K iindex.Numeric, V any](cfg Config, pool *parallel.Pool, sa *SharedArena[K, V], keys []K, vals []V) *Tree[K, V] {
	if len(keys) != len(vals) {
		panic("core: NewFromSortedKVWithArena keys/vals length mismatch")
	}
	t := NewWithArena[K, V](cfg, pool, sa)
	t.root = t.buildIdeal(keys, vals)
	return t
}

// NewFromSorted bulk-loads a set (a Tree with struct{} values) from
// sorted duplicate-free keys in O(n) work and polylog span, producing
// an ideally balanced IST (Definition 5). The input slice is not
// retained: buildIdeal copies every key into tree-owned chunk storage
// (arena.Chunk), so the caller may mutate keys afterwards.
func NewFromSorted[K iindex.Numeric](cfg Config, pool *parallel.Pool, keys []K) *Tree[K, struct{}] {
	return NewFromSortedKV(cfg, pool, keys, make([]struct{}, len(keys)))
}

// NewFromSortedKV bulk-loads a tree from sorted duplicate-free keys and
// their values (vals[i] belongs to keys[i]; the slices must have equal
// length). Neither input slice is retained.
func NewFromSortedKV[K iindex.Numeric, V any](cfg Config, pool *parallel.Pool, keys []K, vals []V) *Tree[K, V] {
	if len(keys) != len(vals) {
		panic("core: NewFromSortedKV keys/vals length mismatch")
	}
	t := New[K, V](cfg, pool)
	t.root = t.buildIdeal(keys, vals)
	return t
}

// Pool returns the pool the tree runs its batched operations on.
func (t *Tree[K, V]) Pool() *parallel.Pool { return t.pool }

// SetPool changes the pool used by subsequent operations. It is the
// mechanism behind the worker-count sweep of the Fig. 17 experiments.
func (t *Tree[K, V]) SetPool(pool *parallel.Pool) { t.pool = pool }

// Len reports the number of live keys in the tree.
func (t *Tree[K, V]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Keys returns the live keys in ascending order using the parallel
// flatten of §7.2.
func (t *Tree[K, V]) Keys() []K {
	keys, _ := t.flatten(t.root)
	return keys
}

// Items returns the live keys in ascending order together with their
// values, position-aligned, in one parallel flatten.
func (t *Tree[K, V]) Items() ([]K, []V) {
	return t.flatten(t.root)
}

// Contains reports whether key is in the tree. It is a batch of size
// one; hot scalar paths should use the sequential tree or batch their
// queries.
func (t *Tree[K, V]) Contains(key K) bool {
	buf := [1]K{key}
	var res [1]bool
	t.containsRec(t.root, buf[:], 0, 1, res[:])
	return res[0]
}

// Get returns the value stored under key; ok is false when the key is
// absent. Like Contains, it is a batch of size one.
func (t *Tree[K, V]) Get(key K) (val V, ok bool) {
	buf := [1]K{key}
	var vals [1]V
	var found [1]bool
	t.getRec(t.root, buf[:], 0, 1, vals[:], found[:])
	return vals[0], found[0]
}

// Insert adds key with a zero value, reporting whether it was absent.
func (t *Tree[K, V]) Insert(key K) bool {
	return t.InsertBatched([]K{key}) == 1
}

// Put stores val under key (inserting or overwriting), reporting
// whether the key was absent.
func (t *Tree[K, V]) Put(key K, val V) bool {
	return t.PutBatched([]K{key}, []V{val}) == 1
}

// Remove deletes key, reporting whether it was present.
func (t *Tree[K, V]) Remove(key K) bool {
	return t.RemoveBatched([]K{key}) == 1
}

// rebuildDue reports whether applying k more modifications to v would
// exceed the rebuild budget C·InitSize (§7.1).
func (t *Tree[K, V]) rebuildDue(v *node[K, V], k int) bool {
	budget := t.cfg.RebuildFactor * v.initSize
	if budget < t.cfg.RebuildFactor {
		budget = t.cfg.RebuildFactor
	}
	return v.modCnt+k > budget
}
