package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/iindex"
)

// treeArena is the tree-owned memory pool: one recycled-scratch free
// list per element type the batched operations need, plus counters for
// the chunked rebuilds. Every temporary the write and read paths
// allocate — position buffers, membership side arrays, sub-batch
// filters, flatten and merge buffers — is drawn from here and returned
// when the operation that needed it completes, so a tree in steady
// state stops producing short-lived garbage: retired flatten buffers
// of one rebuild become the merge buffers of the next.
//
// The arena is owned by exactly one tree and lives as long as it.
// Within one batched operation many pool workers Get and Put
// concurrently; the sharded Scratch free lists make that safe and
// cheap. Buffers never cross trees (each tree has its own arena), so
// two trees sharing a parallel.Pool can run batched operations
// concurrently without ever observing each other's scratch memory.
type treeArena[K iindex.Numeric, V any] struct {
	keys  arena.Scratch[K]
	vals  arena.Scratch[V]
	bools arena.Scratch[bool]
	i32s  arena.Scratch[int32]
	ints  arena.Scratch[int]

	// seqScr pools complete sequential-walk scratches (seqpath.go)
	// with their per-depth position buffers attached, so a sequential
	// segment borrows a ready-to-go walker instead of growing one
	// level by level. sync.Pool gives the per-P sharding here.
	seqScr sync.Pool

	chunkBuilds atomic.Int64 // chunked subtree (re)builds
	chunkKeys   atomic.Int64 // key slots laid into chunks
	leafGrows   atomic.Int64 // leaf merges that reallocated (LeafSlack)

	// obsOnce makes observe idempotent: an arena shared by a whole
	// shard group registers its gauges exactly once.
	obsOnce sync.Once
}

func newTreeArena[K iindex.Numeric, V any](disabled bool) *treeArena[K, V] {
	a := &treeArena[K, V]{}
	a.keys.Disabled = disabled
	a.vals.Disabled = disabled
	a.bools.Disabled = disabled
	a.i32s.Disabled = disabled
	a.ints.Disabled = disabled
	return a
}

// putKV returns a flatten/merge buffer pair.
//
//pbist:releases
func (a *treeArena[K, V]) putKV(ks []K, vs []V) {
	a.keys.Put(ks)
	a.vals.Put(vs)
}

// scratchStats sums Get/reuse counts across the element types.
func (a *treeArena[K, V]) scratchStats() (gets, reuses int64) {
	for _, f := range []func() (int64, int64){
		a.keys.Stats, a.vals.Stats, a.bools.Stats, a.i32s.Stats, a.ints.Stats,
	} {
		g, r := f()
		gets += g
		reuses += r
	}
	return gets, reuses
}

// retained sums the idle free-list inventory across the element types.
func (a *treeArena[K, V]) retained() (buffers int, elems int64) {
	for _, f := range []func() (int, int64){
		a.keys.Retained, a.vals.Retained, a.bools.Retained,
		a.i32s.Retained, a.ints.Retained,
	} {
		b, e := f()
		buffers += b
		elems += e
	}
	return buffers, elems
}

// SharedArena is a tree scratch arena detached from any single tree,
// for handing one free-list set to a whole group of trees — the
// sharded frontend gives every partition's tree the same SharedArena,
// so the group's total retained scratch is bounded by one arena's
// structural cap instead of growing linearly with the shard count.
//
// Sharing is safe: the underlying free lists are sharded and
// mutex-guarded (arena.Scratch), the sequential-walk pool is a
// sync.Pool, and the chunk counters are atomic, so trees on different
// goroutines may run batched operations concurrently against one
// SharedArena. Buffers carry no tree identity — a flatten buffer
// retired by one tree becomes the merge buffer of another.
type SharedArena[K iindex.Numeric, V any] struct {
	ar *treeArena[K, V]
}

// NewSharedArena returns an empty shared arena. With disableReuse set
// every Get allocates fresh and every Put is dropped, mirroring
// Config.DisableBufferReuse.
func NewSharedArena[K iindex.Numeric, V any](disableReuse bool) *SharedArena[K, V] {
	return &SharedArena[K, V]{ar: newTreeArena[K, V](disableReuse)}
}

// Retained reports the arena's idle free-list inventory: buffers held
// for reuse and their summed capacity in elements. The shared-arena
// regression tests assert this stays bounded as trees are added.
func (s *SharedArena[K, V]) Retained() (buffers int, elems int64) {
	return s.ar.retained()
}

// newChunk allocates chunked node storage for a subtree of n keys and
// counts it. On a publishing tree (mvcc.go) the three backing arrays
// are drawn from the arena's scratch free lists — the very lists
// drainRetired feeds graced chunks back into — so steady-state epoch
// rebuilds cycle node storage the same way they already cycle flatten
// and merge buffers. The arrays are tree-retained until retirement;
// that deliberate ownership transfer is the //pbist:owner below.
// Non-publishing trees keep exact-size allocations: nothing ever
// retires into their lists, and Get's class-rounded capacity would be
// pure overhead on storage the GC manages anyway.
//
//pbist:owner
func (t *Tree[K, V]) newChunk(n int) arena.Chunk[K, V] {
	t.ar.chunkBuilds.Add(1)
	t.ar.chunkKeys.Add(int64(n))
	if t.mv != nil {
		return arena.Chunk[K, V]{
			Keys:   t.ar.keys.Get(n),
			Vals:   t.ar.vals.Get(n),
			Exists: t.ar.bools.Get(n),
		}
	}
	return arena.NewChunk[K, V](n)
}
