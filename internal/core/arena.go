package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/iindex"
)

// treeArena is the tree-owned memory pool: one recycled-scratch free
// list per element type the batched operations need, plus counters for
// the chunked rebuilds. Every temporary the write and read paths
// allocate — position buffers, membership side arrays, sub-batch
// filters, flatten and merge buffers — is drawn from here and returned
// when the operation that needed it completes, so a tree in steady
// state stops producing short-lived garbage: retired flatten buffers
// of one rebuild become the merge buffers of the next.
//
// The arena is owned by exactly one tree and lives as long as it.
// Within one batched operation many pool workers Get and Put
// concurrently; the sharded Scratch free lists make that safe and
// cheap. Buffers never cross trees (each tree has its own arena), so
// two trees sharing a parallel.Pool can run batched operations
// concurrently without ever observing each other's scratch memory.
type treeArena[K iindex.Numeric, V any] struct {
	keys  arena.Scratch[K]
	vals  arena.Scratch[V]
	bools arena.Scratch[bool]
	i32s  arena.Scratch[int32]
	ints  arena.Scratch[int]

	// seqScr pools complete sequential-walk scratches (seqpath.go)
	// with their per-depth position buffers attached, so a sequential
	// segment borrows a ready-to-go walker instead of growing one
	// level by level. sync.Pool gives the per-P sharding here.
	seqScr sync.Pool

	chunkBuilds atomic.Int64 // chunked subtree (re)builds
	chunkKeys   atomic.Int64 // key slots laid into chunks
}

func newTreeArena[K iindex.Numeric, V any](disabled bool) *treeArena[K, V] {
	a := &treeArena[K, V]{}
	a.keys.Disabled = disabled
	a.vals.Disabled = disabled
	a.bools.Disabled = disabled
	a.i32s.Disabled = disabled
	a.ints.Disabled = disabled
	return a
}

// putKV returns a flatten/merge buffer pair.
func (a *treeArena[K, V]) putKV(ks []K, vs []V) {
	a.keys.Put(ks)
	a.vals.Put(vs)
}

// scratchStats sums Get/reuse counts across the element types.
func (a *treeArena[K, V]) scratchStats() (gets, reuses int64) {
	for _, f := range []func() (int64, int64){
		a.keys.Stats, a.vals.Stats, a.bools.Stats, a.i32s.Stats, a.ints.Stats,
	} {
		g, r := f()
		gets += g
		reuses += r
	}
	return gets, reuses
}

// newChunk allocates chunked node storage for a subtree of n keys and
// counts it.
func (t *Tree[K, V]) newChunk(n int) arena.Chunk[K, V] {
	t.ar.chunkBuilds.Add(1)
	t.ar.chunkKeys.Add(int64(n))
	return arena.NewChunk[K, V](n)
}
