package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// seqSegCutoff is the sub-batch size below which a batched traversal
// stops forking and switches to the allocation-free sequential path.
// Small segments gain nothing from parallelism — the fan-out above
// them already saturates the pool — while per-node buffer allocations
// on the hot path cost more than the work they support.
const seqSegCutoff = 512

// scratch holds one reusable position buffer per recursion depth for a
// sequential subtree walk. A parent's buffer stays live while its
// children run, so buffers cannot be shared across depths, but sibling
// subtrees at the same depth reuse the same storage.
type scratch struct {
	levels [][]int32
}

func (s *scratch) buf(depth, n int) []int32 {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, nil)
	}
	if cap(s.levels[depth]) < n {
		s.levels[depth] = make([]int32, n)
	}
	return s.levels[depth][:n]
}

// findPositionsSeq is findPositions without parallel loops: it fills
// pf[i] = pos<<1 | found for keys[l:r) against v.rep.
func (t *Tree[K, V]) findPositionsSeq(v *node[K, V], keys []K, l, r int, pf []int32) {
	rep := v.rep
	if t.cfg.Traverse == TraverseRank {
		for i := l; i < r; i++ {
			ub := parallel.UpperBound(rep, keys[i])
			if ub > 0 && rep[ub-1] == keys[i] {
				pf[i-l] = int32(ub-1)<<1 | 1
			} else {
				pf[i-l] = int32(ub) << 1
			}
		}
		return
	}
	if v.isLeaf() {
		for i := l; i < r; i++ {
			pos, found := iindex.InterpolationSearch(rep, keys[i])
			pf[i-l] = pack(pos, found)
		}
		return
	}
	idx := &v.idx
	for i := l; i < r; i++ {
		pos, found := iindex.Find(rep, idx, keys[i])
		pf[i-l] = pack(pos, found)
	}
}

func pack(pos int, found bool) int32 {
	if found {
		return int32(pos)<<1 | 1
	}
	return int32(pos) << 1
}

// containsSeq resolves membership of keys[l:r) in v's subtree without
// allocating: positions live in the scratch arena and runs are found
// by a linear scan.
func (t *Tree[K, V]) containsSeq(v *node[K, V], keys []K, l, r int, result []bool, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 {
			result[l+i] = v.exists[p>>1]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.containsSeq(v.children[pf[i]>>1], keys, l+i, l+j, result, sc, depth+1)
		}
		i = j
	}
}

// getSeq is getRec on the sequential path: membership plus a value
// read for every key found live.
func (t *Tree[K, V]) getSeq(v *node[K, V], keys []K, l, r int, vals []V, found []bool, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 && v.exists[p>>1] {
			found[l+i] = true
			vals[l+i] = v.vals[p>>1]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.getSeq(v.children[pf[i]>>1], keys, l+i, l+j, vals, found, sc, depth+1)
		}
		i = j
	}
}

// insertSeq is insertRec on the sequential path.
func (t *Tree[K, V]) insertSeq(v *node[K, V], keys []K, vals []V, l, r int, sc *scratch, depth int) *node[K, V] {
	if v == nil {
		return t.buildIdeal(keys[l:r], vals[l:r])
	}
	k := r - l
	if t.rebuildDue(v, k) {
		flatK, flatV := t.flatten(v)
		mk, mv := parallel.MergeKV(t.pool, flatK, flatV, keys[l:r], vals[l:r])
		return t.buildIdeal(mk, mv)
	}
	v.modCnt += k
	v.size += k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	found := 0
	for i, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = true // revive (§6), storing the new value
			v.vals[p>>1] = vals[l+i]
			found++
		}
	}
	if v.isLeaf() {
		if found < seg {
			v.rep, v.vals, v.exists = mergeLeafPF(v.rep, v.vals, v.exists, keys[l:r], vals[l:r], pf, seg-found)
		}
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.insertSeq(v.children[c], keys, vals, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// updateSeq is updateRec on the sequential path: overwrite the value
// of every (live) key at the node whose Rep holds it.
func (t *Tree[K, V]) updateSeq(v *node[K, V], keys []K, vals []V, l, r int, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 {
			v.vals[p>>1] = vals[l+i]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.updateSeq(v.children[pf[i]>>1], keys, vals, l+i, l+j, sc, depth+1)
		}
		i = j
	}
}

// removeSeq is removeRec on the sequential path.
func (t *Tree[K, V]) removeSeq(v *node[K, V], keys []K, l, r int, sc *scratch, depth int) *node[K, V] {
	k := r - l
	if t.rebuildDue(v, k) {
		flatK, flatV := t.flatten(v)
		keptK, keptV := parallel.DifferenceKV(t.pool, flatK, flatV, keys[l:r])
		return t.buildIdeal(keptK, keptV)
	}
	v.modCnt += k
	v.size -= k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for _, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = false
		}
	}
	if v.isLeaf() {
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.removeSeq(v.children[c], keys, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// mergeLeafPF merges the physically absent batch pairs (found bit
// clear in pf) into a leaf's rep/vals/exists triple in one exact-size
// pass.
func mergeLeafPF[K iindex.Numeric, V any](rep []K, vals []V, exists []bool, batchK []K, batchV []V, pf []int32, absent int) ([]K, []V, []bool) {
	n := len(rep) + absent
	nr := make([]K, 0, n)
	nv := make([]V, 0, n)
	ne := make([]bool, 0, n)
	i, j := 0, 0
	for i < len(rep) && j < len(batchK) {
		if pf[j]&1 == 1 {
			j++ // revived in place; already present in rep
			continue
		}
		if rep[i] < batchK[j] {
			nr = append(nr, rep[i])
			nv = append(nv, vals[i])
			ne = append(ne, exists[i])
			i++
		} else {
			nr = append(nr, batchK[j])
			nv = append(nv, batchV[j])
			ne = append(ne, true)
			j++
		}
	}
	for ; i < len(rep); i++ {
		nr = append(nr, rep[i])
		nv = append(nv, vals[i])
		ne = append(ne, exists[i])
	}
	for ; j < len(batchK); j++ {
		if pf[j]&1 == 1 {
			continue
		}
		nr = append(nr, batchK[j])
		nv = append(nv, batchV[j])
		ne = append(ne, true)
	}
	return nr, nv, ne
}
