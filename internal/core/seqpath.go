package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// seqSegCutoff is the sub-batch size below which a batched traversal
// stops forking and switches to the allocation-free sequential path.
// Small segments gain nothing from parallelism — the fan-out above
// them already saturates the pool — while per-node buffer allocations
// on the hot path cost more than the work they support.
const seqSegCutoff = 512

// scratch holds one reusable position buffer per recursion depth for a
// sequential subtree walk. A parent's buffer stays live while its
// children run, so buffers cannot be shared across depths, but sibling
// subtrees at the same depth reuse the same storage.
type scratch struct {
	levels [][]int32
}

func (s *scratch) buf(depth, n int) []int32 {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, nil)
	}
	if cap(s.levels[depth]) < n {
		s.levels[depth] = make([]int32, n)
	}
	return s.levels[depth][:n]
}

// findPositionsSeq is findPositions without parallel loops: it fills
// pf[i] = pos<<1 | found for keys[l:r) against v.rep.
func (t *Tree[K]) findPositionsSeq(v *node[K], keys []K, l, r int, pf []int32) {
	rep := v.rep
	if t.cfg.Traverse == TraverseRank {
		for i := l; i < r; i++ {
			ub := parallel.UpperBound(rep, keys[i])
			if ub > 0 && rep[ub-1] == keys[i] {
				pf[i-l] = int32(ub-1)<<1 | 1
			} else {
				pf[i-l] = int32(ub) << 1
			}
		}
		return
	}
	if v.isLeaf() {
		for i := l; i < r; i++ {
			pos, found := iindex.InterpolationSearch(rep, keys[i])
			pf[i-l] = pack(pos, found)
		}
		return
	}
	idx := &v.idx
	for i := l; i < r; i++ {
		pos, found := iindex.Find(rep, idx, keys[i])
		pf[i-l] = pack(pos, found)
	}
}

func pack(pos int, found bool) int32 {
	if found {
		return int32(pos)<<1 | 1
	}
	return int32(pos) << 1
}

// containsSeq resolves membership of keys[l:r) in v's subtree without
// allocating: positions live in the scratch arena and runs are found
// by a linear scan.
func (t *Tree[K]) containsSeq(v *node[K], keys []K, l, r int, result []bool, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 {
			result[l+i] = v.exists[p>>1]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.containsSeq(v.children[pf[i]>>1], keys, l+i, l+j, result, sc, depth+1)
		}
		i = j
	}
}

// insertSeq is insertRec on the sequential path.
func (t *Tree[K]) insertSeq(v *node[K], keys []K, l, r int, sc *scratch, depth int) *node[K] {
	if v == nil {
		return t.buildIdeal(keys[l:r])
	}
	k := r - l
	if t.rebuildDue(v, k) {
		flat := t.flatten(v)
		merged := parallel.Merge(t.pool, flat, keys[l:r])
		return t.buildIdeal(merged)
	}
	v.modCnt += k
	v.size += k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	found := 0
	for _, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = true // revive (§6)
			found++
		}
	}
	if v.isLeaf() {
		if found < seg {
			v.rep, v.exists = mergeLeafPF(v.rep, v.exists, keys[l:r], pf, seg-found)
		}
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.insertSeq(v.children[c], keys, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// removeSeq is removeRec on the sequential path.
func (t *Tree[K]) removeSeq(v *node[K], keys []K, l, r int, sc *scratch, depth int) *node[K] {
	k := r - l
	if t.rebuildDue(v, k) {
		flat := t.flatten(v)
		kept := parallel.Difference(t.pool, flat, keys[l:r])
		return t.buildIdeal(kept)
	}
	v.modCnt += k
	v.size -= k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for _, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = false
		}
	}
	if v.isLeaf() {
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.removeSeq(v.children[c], keys, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// mergeLeafPF merges the physically absent batch keys (found bit
// clear in pf) into a leaf's rep/exists pair in one exact-size pass.
func mergeLeafPF[K iindex.Numeric](rep []K, exists []bool, batch []K, pf []int32, absent int) ([]K, []bool) {
	n := len(rep) + absent
	nr := make([]K, 0, n)
	ne := make([]bool, 0, n)
	i, j := 0, 0
	for i < len(rep) && j < len(batch) {
		if pf[j]&1 == 1 {
			j++ // revived in place; already present in rep
			continue
		}
		if rep[i] < batch[j] {
			nr = append(nr, rep[i])
			ne = append(ne, exists[i])
			i++
		} else {
			nr = append(nr, batch[j])
			ne = append(ne, true)
			j++
		}
	}
	for ; i < len(rep); i++ {
		nr = append(nr, rep[i])
		ne = append(ne, exists[i])
	}
	for ; j < len(batch); j++ {
		if pf[j]&1 == 1 {
			continue
		}
		nr = append(nr, batch[j])
		ne = append(ne, true)
	}
	return nr, ne
}
