package core

import (
	"sync"

	"repro/internal/arena"
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// seqSegCutoff is the sub-batch size below which a batched traversal
// stops forking and switches to the allocation-free sequential path.
// Small segments gain nothing from parallelism — the fan-out above
// them already saturates the pool — while per-node buffer allocations
// on the hot path cost more than the work they support.
const seqSegCutoff = 512

// scratch holds one reusable position buffer per recursion depth for a
// sequential subtree walk. A parent's buffer stays live while its
// children run, so buffers cannot be shared across depths, but sibling
// subtrees at the same depth reuse the same storage. Whole walkers —
// level buffers attached — are pooled per tree (treeArena.seqScr), so
// consecutive sequential segments reuse both the buffers and the
// levels spine; the arena free list only backs buffer growth.
type scratch struct {
	src    *arena.Scratch[int32]
	owner  *sync.Pool // nil when buffer reuse is disabled
	levels [][]int32
}

// newScratch borrows a walker from the tree's pool (or builds a fresh
// one under DisableBufferReuse). Callers must pair it with release()
// once the walk has fully returned.
func (t *Tree[K, V]) newScratch() *scratch {
	if t.cfg.DisableBufferReuse {
		return &scratch{src: &t.ar.i32s}
	}
	if v := t.ar.seqScr.Get(); v != nil {
		return v.(*scratch)
	}
	return &scratch{src: &t.ar.i32s, owner: &t.ar.seqScr}
}

func (s *scratch) buf(depth, n int) []int32 {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, nil)
	}
	if cap(s.levels[depth]) < n {
		s.src.Put(s.levels[depth])
		s.levels[depth] = s.src.Get(n) //pbist:owner — the walker retains level buffers; release() returns them
	}
	return s.levels[depth][:n]
}

// release returns the walker — buffers still attached — to its pool.
// The scratch must not be used afterwards.
func (s *scratch) release() {
	if s.owner == nil {
		for _, b := range s.levels {
			s.src.Put(b)
		}
		s.levels = nil
		return
	}
	s.owner.Put(s)
}

// findPositionsSeq is findPositions without parallel loops: it fills
// pf[i] = pos<<1 | found for keys[l:r) against v.rep.
func (t *Tree[K, V]) findPositionsSeq(v *node[K, V], keys []K, l, r int, pf []int32) {
	rep := v.rep
	if t.cfg.Traverse == TraverseRank {
		for i := l; i < r; i++ {
			ub := parallel.UpperBound(rep, keys[i])
			if ub > 0 && rep[ub-1] == keys[i] {
				pf[i-l] = int32(ub-1)<<1 | 1
			} else {
				pf[i-l] = int32(ub) << 1
			}
		}
		return
	}
	if v.isLeaf() {
		for i := l; i < r; i++ {
			pos, found := iindex.InterpolationSearch(rep, keys[i])
			pf[i-l] = pack(pos, found)
		}
		return
	}
	idx := &v.idx
	for i := l; i < r; i++ {
		pos, found := iindex.Find(rep, idx, keys[i])
		pf[i-l] = pack(pos, found)
	}
}

func pack(pos int, found bool) int32 {
	if found {
		return int32(pos)<<1 | 1
	}
	return int32(pos) << 1
}

// containsSeq resolves membership of keys[l:r) in v's subtree without
// allocating: positions live in the scratch arena and runs are found
// by a linear scan.
func (t *Tree[K, V]) containsSeq(v *node[K, V], keys []K, l, r int, result []bool, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 {
			result[l+i] = v.exists[p>>1]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.containsSeq(v.children[pf[i]>>1], keys, l+i, l+j, result, sc, depth+1)
		}
		i = j
	}
}

// getSeq is getRec on the sequential path: membership plus a value
// read for every key found live.
func (t *Tree[K, V]) getSeq(v *node[K, V], keys []K, l, r int, vals []V, found []bool, sc *scratch, depth int) {
	if v == nil {
		return
	}
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 && v.exists[p>>1] {
			found[l+i] = true
			vals[l+i] = v.vals[p>>1]
		}
	}
	if v.isLeaf() {
		return
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			t.getSeq(v.children[pf[i]>>1], keys, l+i, l+j, vals, found, sc, depth+1)
		}
		i = j
	}
}

// insertSeq is insertRec on the sequential path.
func (t *Tree[K, V]) insertSeq(v *node[K, V], keys []K, vals []V, l, r int, sc *scratch, depth int) *node[K, V] {
	if v == nil {
		return t.buildIdeal(keys[l:r], vals[l:r])
	}
	k := r - l
	if t.rebuildDue(v, k) {
		if t.tryReserveRebuild(v.size + k) {
			root := t.rebuildMerged(v, keys, vals, l, r)
			t.retireSubtree(v)
			return root
		}
		t.deferRebuild(v, k, v.size+k) // over budget: debt, not rebuild
	}
	v = t.owned(v)
	v.modCnt += k
	v.size += k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	found := 0
	for i, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = true // revive (§6), storing the new value
			v.vals[p>>1] = vals[l+i]
			found++
		}
	}
	if v.isLeaf() {
		if found < seg {
			var grew bool
			v.rep, v.vals, v.exists, grew = mergeLeafPF(v.rep, v.vals, v.exists, keys[l:r], vals[l:r], pf, seg-found, t.cfg.LeafSlack)
			if grew {
				t.ar.leafGrows.Add(1)
			}
		}
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.insertSeq(v.children[c], keys, vals, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// updateSeq is updateRec on the sequential path: overwrite the value
// of every (live) key at the node whose Rep holds it, copying
// out-of-generation nodes first and returning the possibly copied
// subtree root.
func (t *Tree[K, V]) updateSeq(v *node[K, V], keys []K, vals []V, l, r int, sc *scratch, depth int) *node[K, V] {
	if v == nil {
		return nil
	}
	v = t.owned(v)
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for i, p := range pf {
		if p&1 == 1 {
			v.vals[p>>1] = vals[l+i]
		}
	}
	if v.isLeaf() {
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.updateSeq(v.children[c], keys, vals, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// removeSeq is removeRec on the sequential path.
func (t *Tree[K, V]) removeSeq(v *node[K, V], keys []K, l, r int, sc *scratch, depth int) *node[K, V] {
	k := r - l
	if t.rebuildDue(v, k) {
		if t.tryReserveRebuild(v.size - k) {
			root := t.rebuildSubtracted(v, keys, l, r)
			t.retireSubtree(v)
			return root
		}
		t.deferRebuild(v, k, v.size-k) // over budget: debt, not rebuild
	}
	v = t.owned(v)
	v.modCnt += k
	v.size -= k
	seg := r - l
	pf := sc.buf(depth, seg)
	t.findPositionsSeq(v, keys, l, r, pf)
	for _, p := range pf {
		if p&1 == 1 {
			v.exists[p>>1] = false
		}
	}
	if v.isLeaf() {
		return v
	}
	for i := 0; i < seg; {
		j := i + 1
		for j < seg && pf[j] == pf[i] {
			j++
		}
		if pf[i]&1 == 0 {
			c := pf[i] >> 1
			v.children[c] = t.removeSeq(v.children[c], keys, l+i, l+j, sc, depth+1)
		}
		i = j
	}
	return v
}

// mergeLeafPF merges the physically absent batch pairs into a leaf's
// rep/vals/exists triple. A nil pf means the whole batch is absent
// (the parallel insertion path pre-filters); otherwise entries with
// the found bit set were revived in place and are skipped. absent is
// the number of pairs that will actually be written.
//
// When the leaf's arrays have spare capacity the merge runs in place
// (backward, so sources are consumed before being overwritten);
// otherwise fresh arrays are allocated with slack·n capacity
// (Config.LeafSlack), so the next few merges into the same leaf cost
// nothing — grew reports that reallocation, feeding the leaf-growth
// counter the leafslack experiment sweeps. Chunk-carved arrays are
// capacity-clamped and therefore always take the allocating path on
// their first merge, which is what keeps leaf growth out of shared
// chunk storage. The arrays are leaf-retained either way, so they
// never come from recycled scratch.
func mergeLeafPF[K iindex.Numeric, V any](rep []K, vals []V, exists []bool, batchK []K, batchV []V, pf []int32, absent int, slack float64) ([]K, []V, []bool, bool) {
	skip := func(j int) bool { return pf != nil && pf[j]&1 == 1 }
	n := len(rep) + absent
	if cap(rep) >= n && cap(vals) >= n && cap(exists) >= n {
		i := len(rep) - 1
		rep, vals, exists = rep[:n], vals[:n], exists[:n]
		w := n - 1
		for j := len(batchK) - 1; j >= 0; j-- {
			if skip(j) {
				continue // revived in place; already present in rep
			}
			for i >= 0 && rep[i] > batchK[j] {
				rep[w] = rep[i]
				vals[w] = vals[i]
				exists[w] = exists[i]
				i--
				w--
			}
			rep[w] = batchK[j]
			vals[w] = batchV[j]
			exists[w] = true
			w--
		}
		return rep, vals, exists, false
	}
	grown := n + int(float64(n)*(slack-1)) // headroom for in-place follow-up merges
	nr := make([]K, 0, grown)
	nv := make([]V, 0, grown)
	ne := make([]bool, 0, grown)
	i, j := 0, 0
	for i < len(rep) && j < len(batchK) {
		if skip(j) {
			j++ // revived in place; already present in rep
			continue
		}
		if rep[i] < batchK[j] {
			nr = append(nr, rep[i])
			nv = append(nv, vals[i])
			ne = append(ne, exists[i])
			i++
		} else {
			nr = append(nr, batchK[j])
			nv = append(nv, batchV[j])
			ne = append(ne, true)
			j++
		}
	}
	for ; i < len(rep); i++ {
		nr = append(nr, rep[i])
		nv = append(nv, vals[i])
		ne = append(ne, exists[i])
	}
	for ; j < len(batchK); j++ {
		if skip(j) {
			continue
		}
		nr = append(nr, batchK[j])
		nv = append(nv, batchV[j])
		ne = append(ne, true)
	}
	return nr, nv, ne, true
}
