package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/iindex"
)

// This file implements the amortized rebuild scheduler: the machinery
// that decouples "subtree is over its modification budget" (§7.1) from
// "rebuild it now". With Config.RebuildBudgetPerEpoch unset (the
// default) the scheduler does not exist and every trigger site rebuilds
// eagerly, exactly as before. With a budget set, each mutating epoch
// (or standalone batch) may lay down at most that many rebuild keys;
// triggers that would exceed the budget record the subtree as rebuild
// debt instead and the mutation proceeds, letting modCnt run past
// C·initSize. Debt is repaid in later epochs — synchronously from the
// debt-priority heap (bounded-sync mode), or on a background goroutine
// that rebuilds from the frozen published tree and splices the result
// in at an epoch boundary (async mode, Config.AsyncRebuild, publishing
// trees only).
//
// Concurrency: the heap, the byKey index, and the spent counter are
// guarded by mu because rebuild triggers fire inside the parallel
// batch recursion (insertRec/removeRec fan out across pool workers).
// Everything else — epoch bracketing, drains, async kick/splice — runs
// on the goroutine that owns the tree (the combiner, in the published
// setup), like every other mutating method. The async worker itself
// touches only its job and the shared arena/pool/metric handles, all
// of which are concurrency-safe.

// debtRec locates one indebted subtree: key is the first rep key the
// subtree root held when the debt was recorded (stable across COW
// copies, which share or copy the rep array verbatim, and across leaf
// merges, which only add keys), debt is its priority — the modCnt the
// subtree had reached when last deferred. Records are resolved lazily
// by walking the live tree (findIndebted); a record whose walk finds no
// over-budget node is stale (an enclosing rebuild already repaid it)
// and is dropped.
type debtRec[K iindex.Numeric] struct {
	key  K
	debt int
}

// schedCounters is the scheduler's observable state, split from the
// generic scheduler so obs.go can register it without type parameters.
type schedCounters struct {
	debtKeys      atomic.Int64 // outstanding debt (sum of record priorities)
	deferredKeys  atomic.Int64 // cumulative rebuild keys whose work was deferred
	asyncRuns     atomic.Int64 // background rebuilds launched
	spliceRetries atomic.Int64 // async splices abandoned (subtree changed)
}

// asyncResult is what one background rebuild hands back: the rebuilt
// subtree (nil when every key of the old subtree was logically dead)
// and the number of keys it laid down.
type asyncResult[K iindex.Numeric, V any] struct {
	built *node[K, V]
	keys  int
}

// asyncJob is one in-flight background rebuild. The owning goroutine
// (combiner) fills the capture fields at launch; the worker publishes
// exactly once through done. old is safe for the worker to read without
// synchronization beyond done: it was captured from a just-published
// tree, so every node in it is frozen — later mutations copy before
// writing — and the pin keeps its chunk storage out of the recycler.
type asyncJob[K iindex.Numeric, V any] struct {
	key  K           // debt-record key, for the splice walk
	old  *node[K, V] // captured subtree root; identity = unchanged
	gen  uint64      // writeGen at capture; the build's node generation
	pin  ReaderPin
	done atomic.Pointer[asyncResult[K, V]]
}

// rebuildSched is the per-tree scheduler state. nil (budget unset)
// means eager rebuilds everywhere.
type rebuildSched[K iindex.Numeric, V any] struct {
	budget int  // max rebuild keys per epoch/batch
	async  bool // drain debt on a background goroutine

	mu        sync.Mutex
	spent     int  // rebuild keys reserved in the current epoch/batch
	epochOpen bool // a combiner epoch brackets the current batches
	heap      []debtRec[K]
	byKey     map[K]int // record key → heap position

	c schedCounters

	job *asyncJob[K, V] // in-flight background rebuild, nil if none
}

// newSched builds the scheduler for cfg, nil when no budget is set.
func newSched[K iindex.Numeric, V any](cfg Config) *rebuildSched[K, V] {
	if cfg.RebuildBudgetPerEpoch <= 0 {
		return nil
	}
	s := &rebuildSched[K, V]{
		budget: cfg.RebuildBudgetPerEpoch,
		async:  cfg.AsyncRebuild,
		byKey:  make(map[K]int),
	}
	s.c.observe(cfg.Metrics)
	return s
}

// --- debt heap (max-heap by debt, byKey position index) ---
// All heap mutators run with s.mu held.

func (s *rebuildSched[K, V]) swap(i, j int) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	s.byKey[h[i].key] = i
	s.byKey[h[j].key] = j
}

func (s *rebuildSched[K, V]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].debt >= s.heap[i].debt {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *rebuildSched[K, V]) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < n && s.heap[l].debt > s.heap[big].debt {
			big = l
		}
		if r < n && s.heap[r].debt > s.heap[big].debt {
			big = r
		}
		if big == i {
			return
		}
		s.swap(i, big)
		i = big
	}
}

func (s *rebuildSched[K, V]) heapPush(rec debtRec[K]) {
	s.heap = append(s.heap, rec)
	s.byKey[rec.key] = len(s.heap) - 1
	s.siftUp(len(s.heap) - 1)
}

// removeAt drops the record at heap position i, keeping the debt gauge
// in step.
func (s *rebuildSched[K, V]) removeAt(i int) {
	rec := s.heap[i]
	last := len(s.heap) - 1
	s.swap(i, last)
	s.heap = s.heap[:last]
	delete(s.byKey, rec.key)
	if i < last {
		s.siftDown(i)
		s.siftUp(i)
	}
	s.c.debtKeys.Add(-int64(rec.debt))
}

// removeRecord drops the record for key if one exists.
func (s *rebuildSched[K, V]) removeRecord(key K) {
	s.mu.Lock()
	if i, ok := s.byKey[key]; ok {
		s.removeAt(i)
	}
	s.mu.Unlock()
}

// peekTop returns the highest-debt record without removing it.
func (s *rebuildSched[K, V]) peekTop() (debtRec[K], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.heap) == 0 {
		return debtRec[K]{}, false
	}
	return s.heap[0], true
}

// --- budget accounting (trigger sites, parallel-safe) ---

// tryReserveRebuild reserves est rebuild keys against the current
// epoch's budget, reporting whether the rebuild may proceed. The
// trigger sites compute est exactly — every batch key is pre-filtered
// live/absent, so an insert rebuild lays down size+k keys and a remove
// rebuild size−k — which makes the reservation the spend: no refund
// path, and the per-epoch cap holds under the parallel recursion
// because check and reserve are one critical section. A nil scheduler
// always allows (eager behavior).
func (t *Tree[K, V]) tryReserveRebuild(est int) bool {
	s := t.sched
	if s == nil {
		return true
	}
	s.mu.Lock()
	ok := s.spent+est <= s.budget
	if ok {
		s.spent += est
	}
	s.mu.Unlock()
	return ok
}

// deferRebuild records subtree v as rebuild debt: the trigger fired but
// the epoch's budget could not cover it, so the mutation proceeds and
// modCnt runs past the §7.1 budget until a later drain repays it. debt
// is the modCnt the subtree will have after the triggering batch
// applies; est is the rebuild size that was deferred (feeds the
// deferred_keys counter). Called from inside the parallel recursion.
func (t *Tree[K, V]) deferRebuild(v *node[K, V], k, est int) {
	s := t.sched
	key := v.rep[0]
	debt := v.modCnt + k
	s.mu.Lock()
	if i, ok := s.byKey[key]; ok {
		if d := debt - s.heap[i].debt; d > 0 {
			s.heap[i].debt = debt
			s.siftUp(i)
			s.c.debtKeys.Add(int64(d))
		}
	} else {
		s.heapPush(debtRec[K]{key: key, debt: debt})
		s.c.debtKeys.Add(int64(debt))
	}
	s.mu.Unlock()
	s.c.deferredKeys.Add(int64(est))
}

// --- record resolution (owning goroutine only) ---

// stepPos locates key in v.rep for a single-key walk, honoring the
// tree's traversal mode the same way findPositionsSeq does: child
// stepPos descends children[pos] when !found.
func (t *Tree[K, V]) stepPos(v *node[K, V], key K) (pos int, found bool) {
	if t.cfg.Traverse == TraverseRank {
		ub := upperBound(v.rep, key)
		if ub > 0 && v.rep[ub-1] == key {
			return ub - 1, true
		}
		return ub, false
	}
	if v.isLeaf() {
		return iindex.InterpolationSearch(v.rep, key)
	}
	return iindex.Find(v.rep, &v.idx, key)
}

// upperBound is a plain binary search: the number of rep keys <= key.
func upperBound[K iindex.Numeric](rep []K, key K) int {
	lo, hi := 0, len(rep)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rep[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findIndebted resolves a debt-record key to the topmost over-budget
// node on its root-to-leaf path, or nil when the record is stale (an
// enclosing rebuild already repaid the debt). Rebuilding the topmost
// such node repays every deeper debt under it in one stroke; records
// of those deeper subtrees then resolve to nil and are dropped.
// Staleness is exact: a record's key physically stays inside the
// subtree it was recorded for (inner reps are immutable, leaf reps
// only grow) until a rebuild removes the subtree, so the walk cannot
// stop short of a still-indebted recordee.
func (t *Tree[K, V]) findIndebted(key K) *node[K, V] {
	v := t.root
	for v != nil {
		if t.rebuildDue(v, 0) {
			return v
		}
		if v.isLeaf() {
			return nil
		}
		pos, found := t.stepPos(v, key)
		if found {
			return nil
		}
		v = v.children[pos]
	}
	return nil
}

// rebuildNode rebuilds subtree v ideally from its live contents — the
// drain-path analog of rebuildMerged/rebuildSubtracted, with no batch
// riding along — returning the new subtree root (nil when every key
// was logically dead) and the number of keys laid down.
func (t *Tree[K, V]) rebuildNode(v *node[K, V]) (*node[K, V], int) {
	t0 := obsNow(t.obs)
	flatK, flatV := t.flattenScratch(v)
	n := len(flatK)
	root := t.labeledBuild(flatK, flatV)
	t.ar.putKV(flatK, flatV)
	t.recordRebuild(t0, n)
	return root, n
}

// drainDebt synchronously repays deferred debt, highest priority
// first, until the heap empties or the next victim would push the
// epoch past its budget. A victim larger than the whole budget
// therefore starves in bounded-sync mode — the documented tradeoff
// that async mode exists to remove. Owning goroutine only.
func (t *Tree[K, V]) drainDebt() {
	s := t.sched
	for {
		rec, ok := s.peekTop()
		if !ok {
			return
		}
		v := t.findIndebted(rec.key)
		if v == nil {
			s.removeRecord(rec.key)
			continue
		}
		s.mu.Lock()
		fits := s.spent+v.size <= s.budget
		if fits {
			s.spent += v.size
		}
		s.mu.Unlock()
		if !fits {
			return
		}
		repl, _ := t.rebuildNode(v)
		if !t.replaceAtKey(rec.key, v, repl) {
			// Unreachable on the owning goroutine — nothing ran between
			// findIndebted and the splice — but fail safe: recycle the
			// orphan build and leave the record for the next drain.
			t.discardBuilt(repl)
			return
		}
		s.removeRecord(rec.key)
	}
}

// --- async drain (owning goroutine kicks/splices; worker builds) ---

// tickAsync advances the background drain by one step: splice a
// finished job if one is waiting, then — when the live tree is clean,
// i.e. identical to the published version with every node frozen —
// launch the next job from the top of the debt heap. Owning goroutine
// only; called at epoch boundaries.
func (t *Tree[K, V]) tickAsync() {
	s := t.sched
	if j := s.job; j != nil {
		res := j.done.Load()
		if res == nil {
			return // still building
		}
		s.job = nil
		if t.replaceAtKey(j.key, j.old, res.built) {
			s.removeRecord(j.key)
		} else {
			// The subtree changed while the worker built (its root was
			// COW-replaced), so the build describes a stale state: count
			// the retry and recycle the never-published chunk directly —
			// no grace period needed, no reader ever saw it.
			s.c.spliceRetries.Add(1)
			t.discardBuilt(res.built)
		}
	}
	if t.dirty {
		// Unpublished mutations exist, so live nodes of the current
		// generation could mutate in place under a worker — pointer
		// identity would no longer mean "unchanged". Kick next epoch,
		// right after a publish, when everything is frozen again.
		return
	}
	for {
		rec, ok := s.peekTop()
		if !ok {
			return
		}
		v := t.findIndebted(rec.key)
		if v == nil {
			s.removeRecord(rec.key)
			continue
		}
		j := &asyncJob[K, V]{key: rec.key, old: v, gen: t.writeGen, pin: t.PinReader()}
		s.job = j
		s.c.asyncRuns.Add(1)
		go t.runAsyncRebuild(j)
		return
	}
}

// runAsyncRebuild is the worker: flatten the captured (frozen) subtree
// and build its ideal replacement off the critical path, then hand the
// result back for the next epoch boundary to splice. It works through
// a detached tree handle so the build is attributed to the capture
// generation and draws exact-size GC-managed chunks (mv nil), while
// sharing the arena free lists, pool, and metric handles — all safe
// for concurrent use. The pin covers every read of the old subtree's
// chunk storage and is released before the result is published, so an
// abandoned job (frontend closed mid-build) cannot wedge reclamation.
func (t *Tree[K, V]) runAsyncRebuild(j *asyncJob[K, V]) {
	bt := &Tree[K, V]{cfg: t.cfg, pool: t.pool, ar: t.ar, obs: t.obs, writeGen: j.gen}
	built, n := bt.rebuildNode(j.old)
	j.pin.Release()
	j.done.Store(&asyncResult[K, V]{built: built, keys: n})
}

// --- epoch bracketing ---

// beginBatch opens the per-batch accounting window of a standalone
// batched mutation: reset the budget and run one drain step. Inside a
// combiner epoch (epochOpen) the bracket is wider — BeginRebuildEpoch
// already reset the budget, and the epoch's PutBatched and
// RemoveBatched share it — so this is a no-op.
func (t *Tree[K, V]) beginBatch() {
	s := t.sched
	if s == nil {
		return
	}
	s.mu.Lock()
	open := s.epochOpen
	if !open {
		s.spent = 0
	}
	s.mu.Unlock()
	if open {
		return
	}
	if s.async && t.mv != nil {
		t.tickAsync()
	} else {
		t.drainDebt()
	}
}

// BeginRebuildEpoch opens one combining epoch's rebuild budget. The
// combiner calls it before executing the epoch (combine.RebuildScheduled);
// every rebuild the epoch's write traversals perform — plus the
// EndRebuildEpoch drain — then shares one RebuildBudgetPerEpoch cap.
// In async mode a finished background rebuild is spliced here, before
// the epoch's reads, so the epoch already serves the repaired shape.
// No-op without a scheduler.
func (t *Tree[K, V]) BeginRebuildEpoch() {
	s := t.sched
	if s == nil {
		return
	}
	s.mu.Lock()
	s.epochOpen = true
	s.spent = 0
	s.mu.Unlock()
	if s.async && t.mv != nil {
		t.tickAsync()
	}
}

// EndRebuildEpoch closes the epoch's budget window after the epoch has
// published: bounded-sync mode drains debt up to the remaining budget;
// async mode splices/kicks background work (the post-publish moment is
// exactly when the live tree is frozen, so a job can launch). Returns
// the rebuild keys the epoch spent — the number the per-epoch cap
// bounds — and the outstanding debt, both of which feed the epoch
// trace. No-op (0, 0) without a scheduler.
func (t *Tree[K, V]) EndRebuildEpoch() (spentKeys, debtKeys int) {
	s := t.sched
	if s == nil {
		return 0, 0
	}
	if s.async && t.mv != nil {
		t.tickAsync()
	} else {
		t.drainDebt()
	}
	s.mu.Lock()
	spentKeys = s.spent
	s.epochOpen = false
	s.mu.Unlock()
	return spentKeys, int(s.c.debtKeys.Load())
}
