package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/parallel"
)

// corePools are the worker configurations the batched operations are
// exercised with.
func corePools() map[string]*parallel.Pool {
	return map[string]*parallel.Pool{
		"seq": nil,
		"w2":  parallel.NewPool(2),
		"w8":  parallel.NewPool(8),
	}
}

func sortedUniqueKeys(seed int64, n int, span int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestEmptyTreeBatches(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			tr := New[int64, struct{}](Config{}, p)
			if got := tr.ContainsBatched([]int64{1, 2, 3}); slices.Contains(got, true) {
				t.Fatal("empty tree claims to contain keys")
			}
			if n := tr.RemoveBatched([]int64{1, 2, 3}); n != 0 {
				t.Fatalf("removed %d keys from empty tree", n)
			}
			if n := tr.InsertBatched(nil); n != 0 {
				t.Fatal("empty insert batch inserted keys")
			}
			if tr.Len() != 0 || tr.Keys() != nil {
				t.Fatal("tree not empty after no-op batches")
			}
		})
	}
}

func TestInsertBatchedIntoEmptyTree(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			keys := sortedUniqueKeys(1, 10000, 1<<40)
			tr := New[int64, struct{}](Config{}, p)
			if n := tr.InsertBatched(keys); n != len(keys) {
				t.Fatalf("inserted %d, want %d", n, len(keys))
			}
			if tr.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
			}
			if !slices.Equal(tr.Keys(), keys) {
				t.Fatal("Keys() does not match inserted batch")
			}
			res := tr.ContainsBatched(keys)
			for i, ok := range res {
				if !ok {
					t.Fatalf("key %d missing after insert", keys[i])
				}
			}
		})
	}
}

func TestContainsBatchedMixedPresentAbsent(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			// Even keys present, odd keys absent.
			var present, probe []int64
			var want []bool
			for i := int64(0); i < 20000; i += 2 {
				present = append(present, i)
			}
			for i := int64(0); i < 20000; i++ {
				probe = append(probe, i)
				want = append(want, i%2 == 0)
			}
			tr := NewFromSorted(Config{}, p, present)
			got := tr.ContainsBatched(probe)
			if !slices.Equal(got, want) {
				t.Fatal("membership vector mismatch")
			}
		})
	}
}

func TestInsertBatchedSkipsDuplicates(t *testing.T) {
	tr := NewFromSorted(Config{}, parallel.NewPool(4), []int64{1, 3, 5, 7, 9})
	// §5's example: inserting [2 4 5 7 8] into {1 3 5 7 9} inserts
	// only [2 4 8].
	if n := tr.InsertBatched([]int64{2, 4, 5, 7, 8}); n != 3 {
		t.Fatalf("inserted %d keys, want 3", n)
	}
	want := []int64{1, 2, 3, 4, 5, 7, 8, 9}
	if !slices.Equal(tr.Keys(), want) {
		t.Fatalf("Keys() = %v, want %v", tr.Keys(), want)
	}
}

func TestRemoveBatchedSkipsAbsent(t *testing.T) {
	tr := NewFromSorted(Config{}, parallel.NewPool(4), []int64{1, 3, 5, 7, 9})
	// §6's example: removing [2 3 6 7 9] from {1 3 5 7 9} removes
	// only [3 7 9].
	if n := tr.RemoveBatched([]int64{2, 3, 6, 7, 9}); n != 3 {
		t.Fatalf("removed %d keys, want 3", n)
	}
	want := []int64{1, 5}
	if !slices.Equal(tr.Keys(), want) {
		t.Fatalf("Keys() = %v, want %v", tr.Keys(), want)
	}
}

func TestReviveBatch(t *testing.T) {
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			keys := sortedUniqueKeys(7, 5000, 1<<30)
			tr := NewFromSorted(Config{}, p, keys)
			dead := keys[1000:3000]
			if n := tr.RemoveBatched(dead); n != len(dead) {
				t.Fatalf("removed %d, want %d", n, len(dead))
			}
			// Reinserting the same keys must revive them in place.
			if n := tr.InsertBatched(dead); n != len(dead) {
				t.Fatalf("revived %d, want %d", n, len(dead))
			}
			if !slices.Equal(tr.Keys(), keys) {
				t.Fatal("set contents wrong after remove+revive")
			}
		})
	}
}

func TestScalarWrappers(t *testing.T) {
	tr := New[int64, struct{}](Config{}, nil)
	if !tr.Insert(5) || tr.Insert(5) {
		t.Fatal("scalar Insert semantics wrong")
	}
	if !tr.Contains(5) || tr.Contains(6) {
		t.Fatal("scalar Contains semantics wrong")
	}
	if !tr.Remove(5) || tr.Remove(5) {
		t.Fatal("scalar Remove semantics wrong")
	}
}

func TestSetPool(t *testing.T) {
	tr := New[int64, struct{}](Config{}, nil)
	if tr.Pool().Workers() != 1 {
		t.Fatal("nil pool should report one worker")
	}
	p := parallel.NewPool(4)
	tr.SetPool(p)
	if tr.Pool() != p {
		t.Fatal("SetPool did not take effect")
	}
	tr.InsertBatched([]int64{1, 2, 3})
	if tr.Len() != 3 {
		t.Fatal("tree broken after pool swap")
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	keys := sortedUniqueKeys(9, 30000, 1<<35)
	bulk := NewFromSorted(Config{}, parallel.NewPool(8), keys)
	incr := New[int64, struct{}](Config{}, parallel.NewPool(8))
	for lo := 0; lo < len(keys); lo += 1000 {
		hi := min(lo+1000, len(keys))
		batch := slices.Clone(keys[lo:hi])
		incr.InsertBatched(batch)
	}
	if !slices.Equal(bulk.Keys(), incr.Keys()) {
		t.Fatal("bulk-loaded and incrementally built trees disagree")
	}
}

func TestResultsIndependentOfWorkerCount(t *testing.T) {
	// The same operation sequence must produce identical observable
	// results on every pool width — batched parallelism must be
	// invisible.
	base := sortedUniqueKeys(11, 20000, 1<<34)
	probes := sortedUniqueKeys(12, 20000, 1<<34)
	ins := sortedUniqueKeys(13, 10000, 1<<34)
	rem := sortedUniqueKeys(14, 10000, 1<<34)

	type outcome struct {
		contains []bool
		nIns     int
		nRem     int
		keys     []int64
	}
	run := func(p *parallel.Pool) outcome {
		tr := NewFromSorted(Config{}, p, base)
		var o outcome
		o.contains = tr.ContainsBatched(probes)
		o.nIns = tr.InsertBatched(ins)
		o.nRem = tr.RemoveBatched(rem)
		o.keys = tr.Keys()
		return o
	}
	ref := run(nil)
	for _, w := range []int{2, 4, 8, 16} {
		got := run(parallel.NewPool(w))
		if !slices.Equal(got.contains, ref.contains) || got.nIns != ref.nIns ||
			got.nRem != ref.nRem || !slices.Equal(got.keys, ref.keys) {
			t.Fatalf("results differ between 1 and %d workers", w)
		}
	}
}

func TestTraverseModesAgree(t *testing.T) {
	base := sortedUniqueKeys(21, 30000, 1<<34)
	probes := sortedUniqueKeys(22, 30000, 1<<34)
	ins := sortedUniqueKeys(23, 15000, 1<<34)
	rem := sortedUniqueKeys(24, 15000, 1<<34)
	p := parallel.NewPool(8)

	run := func(mode TraverseMode) ([]bool, []int64) {
		tr := NewFromSorted(Config{Traverse: mode}, p, base)
		res := tr.ContainsBatched(probes)
		tr.InsertBatched(ins)
		tr.RemoveBatched(rem)
		return res, tr.Keys()
	}
	iRes, iKeys := run(TraverseInterpolation)
	rRes, rKeys := run(TraverseRank)
	if !slices.Equal(iRes, rRes) {
		t.Fatal("traverse modes give different membership answers")
	}
	if !slices.Equal(iKeys, rKeys) {
		t.Fatal("traverse modes give different final sets")
	}
}
