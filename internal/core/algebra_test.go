package core

import (
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/rbtree"
)

// algebraPools are the worker counts the whole-tree operations run
// under in the differential harness: sequential, moderately parallel,
// and machine-wide.
func algebraPools() map[string]*parallel.Pool {
	return map[string]*parallel.Pool{
		"w1": parallel.NewPool(1),
		"w4": parallel.NewPool(4),
		"wN": parallel.NewPool(runtime.GOMAXPROCS(0)),
	}
}

// sliceUnion and friends are the sorted-slice oracle: sequential
// two-pointer walks over sorted duplicate-free inputs, independent of
// every parallel kernel under test.
func sliceUnion(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func sliceIntersect(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func sliceDiff(a, b []int64) []int64 {
	var out []int64
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

func sliceSymDiff(a, b []int64) []int64 {
	return sliceUnion(sliceDiff(a, b), sliceDiff(b, a))
}

// rbFromKeys builds the red-black-tree baseline from a key slice.
func rbFromKeys(keys []int64) *rbtree.Tree[int64] {
	rb := rbtree.New[int64]()
	for _, k := range keys {
		rb.Insert(k)
	}
	return rb
}

// rbUnion and friends compute the same operations on the independently
// written red-black tree, the second oracle of the harness.
func rbUnion(a, b []int64) []int64 {
	rb := rbFromKeys(a)
	for _, k := range b {
		rb.Insert(k)
	}
	return rb.Keys()
}

func rbIntersect(a, b []int64) []int64 {
	rb := rbFromKeys(a)
	out := make([]int64, 0)
	for _, k := range b {
		if rb.Contains(k) {
			out = append(out, k)
		}
	}
	return out
}

func rbDiff(a, b []int64) []int64 {
	rb := rbFromKeys(a)
	for _, k := range b {
		rb.Remove(k)
	}
	return rb.Keys()
}

func rbSymDiff(a, b []int64) []int64 {
	rb := rbFromKeys(a)
	for _, k := range b {
		if rb.Contains(k) {
			rb.Remove(k)
		} else {
			rb.Insert(k)
		}
	}
	return rb.Keys()
}

// distOperands draws two sorted duplicate-free key sets from the named
// workload generators over overlapping ranges, so every operation sees
// both common and one-sided keys.
func distOperands(t *testing.T, genA, genB string, seed uint64, nA, nB int) (a, b []int64) {
	t.Helper()
	a, err := dist.Generate(genA, dist.NewRNG(seed), nA, 0, 1<<21)
	if err != nil {
		t.Fatalf("generate %s: %v", genA, err)
	}
	b, err = dist.Generate(genB, dist.NewRNG(seed^0xabcdef), nB, 1<<19, 1<<21+1<<19)
	if err != nil {
		t.Fatalf("generate %s: %v", genB, err)
	}
	return a, b
}

// TestSetAlgebraDifferential checks every whole-tree operation against
// both oracles — the sorted-slice walk and the red-black tree — for
// operand pairs drawn from every pair of distribution generators, at
// three worker counts. CI's -race job runs it with the race detector
// watching the parallel flatten/combine/rebuild pipeline.
func TestSetAlgebraDifferential(t *testing.T) {
	gens := []string{"uniform", "clustered", "zipf", "expspaced"}
	sizes := [][2]int{{4000, 4000}, {6000, 40}, {25, 3000}}
	for pname, p := range algebraPools() {
		for _, genA := range gens {
			for _, genB := range gens {
				name := pname + "/" + genA + "-" + genB
				t.Run(name, func(t *testing.T) {
					for si, sz := range sizes {
						a, b := distOperands(t, genA, genB, uint64(1000+si), sz[0], sz[1])
						ta := NewFromSorted(Config{}, p, a)
						tb := NewFromSorted(Config{}, p, b)

						for _, tc := range []struct {
							op   string
							got  *Tree[int64, struct{}]
							want []int64
							rb   []int64
						}{
							{"union", ta.Union(tb, true), sliceUnion(a, b), rbUnion(a, b)},
							{"intersect", ta.Intersect(tb, false), sliceIntersect(a, b), rbIntersect(a, b)},
							{"difference", ta.DifferenceTree(tb), sliceDiff(a, b), rbDiff(a, b)},
							{"symdiff", ta.SymmetricDifference(tb), sliceSymDiff(a, b), rbSymDiff(a, b)},
						} {
							keys := tc.got.Keys()
							if !slices.Equal(keys, tc.want) {
								t.Fatalf("%s: diverges from sorted-slice oracle (|got|=%d |want|=%d)",
									tc.op, len(keys), len(tc.want))
							}
							if !slices.Equal(keys, tc.rb) {
								t.Fatalf("%s: diverges from rbtree oracle", tc.op)
							}
							if tc.got.Len() != len(tc.want) {
								t.Fatalf("%s: Len = %d, want %d", tc.op, tc.got.Len(), len(tc.want))
							}
							checkInvariants(t, tc.got)
						}

						// Operands must survive every operation untouched.
						if !slices.Equal(ta.Keys(), a) || !slices.Equal(tb.Keys(), b) {
							t.Fatal("set algebra mutated an operand")
						}
					}
				})
			}
		}
	}
}

// TestSetAlgebraRandomSequences drives random sequences of whole-tree
// operations — the result of each round becomes the left operand of
// the next — against a sorted-slice oracle evolved in lockstep.
func TestSetAlgebraRandomSequences(t *testing.T) {
	gens := []string{"uniform", "clustered", "zipf", "expspaced", "runs"}
	for pname, p := range algebraPools() {
		t.Run(pname, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(len(pname)) * 7919))
			cur := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 1}, p)
			oracle := []int64{}
			for round := 0; round < 30; round++ {
				gen := gens[r.Intn(len(gens))]
				n := 1 + r.Intn(3000)
				b, err := dist.Generate(gen, dist.NewRNG(uint64(round)*77+1), n, 0, 1<<18)
				if err != nil {
					t.Fatalf("generate %s: %v", gen, err)
				}
				tb := NewFromSorted(Config{}, p, b)
				switch round % 4 {
				case 0:
					cur = cur.Union(tb, true)
					oracle = sliceUnion(oracle, b)
				case 1:
					cur = cur.DifferenceTree(tb)
					oracle = sliceDiff(oracle, b)
				case 2:
					cur = cur.SymmetricDifference(tb)
					oracle = sliceSymDiff(oracle, b)
				default:
					// Intersecting with a small set would collapse the
					// sequence; union the intersection back instead.
					cur = cur.Union(cur.Intersect(tb, false), false)
					oracle = sliceUnion(oracle, sliceIntersect(oracle, b))
				}
				if got := cur.Keys(); !slices.Equal(got, oracle) {
					t.Fatalf("round %d (%s): sequence diverged (|got|=%d |want|=%d)",
						round, gen, len(got), len(oracle))
				}
			}
			checkInvariants(t, cur)
		})
	}
}

// TestSplitJoinRoundTrip splits at random keys (present, absent, below
// min, above max) and checks both halves against the oracle, then
// joins them back and demands the original contents.
func TestSplitJoinRoundTrip(t *testing.T) {
	for pname, p := range algebraPools() {
		t.Run(pname, func(t *testing.T) {
			keys := sortedUniqueKeys(99, 20000, 1<<30)
			tr := NewFromSorted(Config{}, p, keys)
			r := rand.New(rand.NewSource(4242))
			cuts := []int64{-1, 0, keys[0], keys[len(keys)-1], keys[len(keys)-1] + 1}
			for i := 0; i < 10; i++ {
				cuts = append(cuts, keys[r.Intn(len(keys))], r.Int63n(1<<30))
			}
			for _, cut := range cuts {
				left, right := tr.Split(cut)
				idx := parallel.LowerBound(keys, cut)
				if !slices.Equal(left.Keys(), keys[:idx]) {
					t.Fatalf("Split(%d): left diverges", cut)
				}
				if !slices.Equal(right.Keys(), keys[idx:]) {
					t.Fatalf("Split(%d): right diverges", cut)
				}
				checkInvariants(t, left)
				checkInvariants(t, right)
				joined := left.Join(right)
				if !slices.Equal(joined.Keys(), keys) {
					t.Fatalf("Split(%d)+Join: round trip lost keys", cut)
				}
				checkInvariants(t, joined)
			}
			if !slices.Equal(tr.Keys(), keys) {
				t.Fatal("Split mutated its receiver")
			}
		})
	}
}

func TestJoinRejectsOverlap(t *testing.T) {
	p := parallel.NewPool(2)
	a := NewFromSorted(Config{}, p, []int64{1, 2, 3})
	b := NewFromSorted(Config{}, p, []int64{3, 4, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("Join of overlapping ranges did not panic")
		}
	}()
	a.Join(b)
}

func TestJoinEmptyOperands(t *testing.T) {
	p := parallel.NewPool(2)
	empty := New[int64, struct{}](Config{}, p)
	full := NewFromSorted(Config{}, p, []int64{1, 2, 3})
	if got := empty.Join(full).Keys(); !slices.Equal(got, []int64{1, 2, 3}) {
		t.Fatalf("empty.Join(full) = %v", got)
	}
	if got := full.Join(empty).Keys(); !slices.Equal(got, []int64{1, 2, 3}) {
		t.Fatalf("full.Join(empty) = %v", got)
	}
	if got := empty.Join(empty).Len(); got != 0 {
		t.Fatalf("empty.Join(empty).Len() = %d", got)
	}
}

// TestSetAlgebraValues pins the merge-policy semantics of the
// value-carrying tree: otherWins selects whose value survives on
// common keys, and one-sided keys always keep their own value.
func TestSetAlgebraValues(t *testing.T) {
	p := parallel.NewPool(4)
	mk := func(keys []int64, tag uint64) *Tree[int64, uint64] {
		vals := make([]uint64, len(keys))
		for i, k := range keys {
			vals[i] = uint64(k)*10 + tag
		}
		return NewFromSortedKV(Config{}, p, keys, vals)
	}
	a := sortedUniqueKeys(7, 5000, 1<<20)
	b := sortedUniqueKeys(8, 5000, 1<<20)
	ta, tb := mk(a, 1), mk(b, 2)
	common := sliceIntersect(a, b)

	check := func(op string, tr *Tree[int64, uint64], wantKeys []int64, tagFor func(k int64) uint64) {
		t.Helper()
		keys, vals := tr.Items()
		if !slices.Equal(keys, wantKeys) {
			t.Fatalf("%s: wrong key set", op)
		}
		for i, k := range keys {
			if want := uint64(k)*10 + tagFor(k); vals[i] != want {
				t.Fatalf("%s: value[%d] (key %d) = %d, want %d", op, i, k, vals[i], want)
			}
		}
	}
	inB := func(k int64) bool { _, ok := slices.BinarySearch(common, k); return ok }

	check("union otherWins", ta.Union(tb, true), sliceUnion(a, b), func(k int64) uint64 {
		if _, ok := slices.BinarySearch(b, k); ok {
			return 2
		}
		return 1
	})
	check("union selfWins", ta.Union(tb, false), sliceUnion(a, b), func(k int64) uint64 {
		if _, ok := slices.BinarySearch(a, k); ok {
			return 1
		}
		return 2
	})
	check("intersect selfVals", ta.Intersect(tb, false), common, func(int64) uint64 { return 1 })
	check("intersect otherVals", ta.Intersect(tb, true), common, func(int64) uint64 { return 2 })
	check("difference", ta.DifferenceTree(tb), sliceDiff(a, b), func(int64) uint64 { return 1 })
	check("symdiff", ta.SymmetricDifference(tb), sliceSymDiff(a, b), func(k int64) uint64 {
		if inB(k) {
			t.Fatalf("symdiff kept common key %d", k)
		}
		if _, ok := slices.BinarySearch(a, k); ok {
			return 1
		}
		return 2
	})
}

// TestSetAlgebraEmptyAndSelf covers the degenerate operand shapes.
func TestSetAlgebraEmptyAndSelf(t *testing.T) {
	p := parallel.NewPool(4)
	keys := sortedUniqueKeys(3, 3000, 1<<20)
	tr := NewFromSorted(Config{}, p, keys)
	empty := New[int64, struct{}](Config{}, p)

	if got := tr.Union(empty, true).Keys(); !slices.Equal(got, keys) {
		t.Fatal("A ∪ ∅ != A")
	}
	if got := empty.Union(tr, true).Keys(); !slices.Equal(got, keys) {
		t.Fatal("∅ ∪ A != A")
	}
	if got := tr.Intersect(empty, false).Len(); got != 0 {
		t.Fatal("A ∩ ∅ != ∅")
	}
	if got := tr.DifferenceTree(empty).Keys(); !slices.Equal(got, keys) {
		t.Fatal("A \\ ∅ != A")
	}
	if got := empty.DifferenceTree(tr).Len(); got != 0 {
		t.Fatal("∅ \\ A != ∅")
	}
	if got := tr.SymmetricDifference(empty).Keys(); !slices.Equal(got, keys) {
		t.Fatal("A △ ∅ != A")
	}

	if got := tr.Union(tr, true).Keys(); !slices.Equal(got, keys) {
		t.Fatal("A ∪ A != A")
	}
	if got := tr.Intersect(tr, false).Keys(); !slices.Equal(got, keys) {
		t.Fatal("A ∩ A != A")
	}
	if got := tr.DifferenceTree(tr).Len(); got != 0 {
		t.Fatal("A \\ A != ∅")
	}
	if got := tr.SymmetricDifference(tr).Len(); got != 0 {
		t.Fatal("A △ A != ∅")
	}
}

// TestSetAlgebraAfterChurn runs the whole-tree operations on operands
// that carry dead keys from earlier batched removals, so flatten must
// skip logically deleted entries before combining.
func TestSetAlgebraAfterChurn(t *testing.T) {
	p := parallel.NewPool(4)
	r := rand.New(rand.NewSource(17))
	ta := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 4}, p)
	tb := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 4}, p)
	refA, refB := refSet{}, refSet{}
	for round := 0; round < 10; round++ {
		ins, rem := randomBatch(r, 2000, 1<<14), randomBatch(r, 1500, 1<<14)
		ta.InsertBatched(ins)
		refA.insertBatch(ins)
		ta.RemoveBatched(rem)
		refA.removeBatch(rem)
		ins, rem = randomBatch(r, 2000, 1<<14), randomBatch(r, 1500, 1<<14)
		tb.InsertBatched(ins)
		refB.insertBatch(ins)
		tb.RemoveBatched(rem)
		refB.removeBatch(rem)
	}
	a, b := refA.sorted(), refB.sorted()
	if got := ta.Union(tb, true).Keys(); !slices.Equal(got, sliceUnion(a, b)) {
		t.Fatal("union over churned operands diverged")
	}
	if got := ta.Intersect(tb, false).Keys(); !slices.Equal(got, sliceIntersect(a, b)) {
		t.Fatal("intersect over churned operands diverged")
	}
	if got := ta.SymmetricDifference(tb).Keys(); !slices.Equal(got, sliceSymDiff(a, b)) {
		t.Fatal("symdiff over churned operands diverged")
	}
}
