package core

import "repro/internal/iindex"

// Ordered queries beyond membership: extrema, range extraction,
// counting, and order statistics. These are standard sorted-map API
// surface (std::map exposes the equivalents through iterators) and all
// respect logical deletion — dead keys are invisible. Key-returning
// queries carry the stored value along; set instantiations
// (V = struct{}) simply ignore it.

// Min returns the smallest live key and its value; ok is false when
// the tree is empty. Cost O(height · fanout) worst case; the size
// counters let the walk skip all-dead subtrees.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	v := t.root
	for v != nil && v.size > 0 {
		if v.isLeaf() {
			for i, x := range v.rep {
				if v.exists[i] {
					return x, v.vals[i], true
				}
			}
			return key, val, false // unreachable while size > 0
		}
		descended := false
		for i := range v.rep {
			if c := v.children[i]; c != nil && c.size > 0 {
				v, descended = c, true
				break
			}
			if v.exists[i] {
				return v.rep[i], v.vals[i], true
			}
		}
		if !descended {
			v = v.children[len(v.rep)]
		}
	}
	return key, val, false
}

// Max returns the largest live key and its value; ok is false when the
// tree is empty.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	v := t.root
	for v != nil && v.size > 0 {
		if v.isLeaf() {
			for i := len(v.rep) - 1; i >= 0; i-- {
				if v.exists[i] {
					return v.rep[i], v.vals[i], true
				}
			}
			return key, val, false // unreachable while size > 0
		}
		if c := v.children[len(v.rep)]; c != nil && c.size > 0 {
			v = c
			continue
		}
		descended := false
		for i := len(v.rep) - 1; i >= 0; i-- {
			if v.exists[i] {
				return v.rep[i], v.vals[i], true
			}
			if c := v.children[i]; c != nil && c.size > 0 {
				v, descended = c, true
				break
			}
		}
		if !descended {
			return key, val, false // unreachable while size > 0
		}
	}
	return key, val, false
}

// Range returns the live keys in [lo, hi] in ascending order.
func (t *Tree[K, V]) Range(lo, hi K) []K {
	keys, _ := t.AppendRangeKV(nil, nil, lo, hi)
	return keys
}

// RangeKV returns the live keys in [lo, hi] in ascending order
// together with their values, position-aligned.
func (t *Tree[K, V]) RangeKV(lo, hi K) ([]K, []V) {
	return t.AppendRangeKV(nil, nil, lo, hi)
}

// AppendRange appends the live keys in [lo, hi], ascending, to dst and
// returns the extended slice; values are not materialized (for the
// set instantiation the value slice is zero-byte anyway).
func (t *Tree[K, V]) AppendRange(dst []K, lo, hi K) []K {
	dst, _ = t.AppendRangeKV(dst, nil, lo, hi)
	return dst
}

// AppendRangeKV appends the live keys in [lo, hi], ascending, to dstK
// and their values to dstV, returning the extended slices. It shares
// the bounded walk of the Ascend iterator (iter.go): only the two
// boundary root-to-leaf paths inspect keys individually, so the cost
// is O(log log n + output) on a balanced tree.
func (t *Tree[K, V]) AppendRangeKV(dstK []K, dstV []V, lo, hi K) ([]K, []V) {
	if hi < lo {
		return dstK, dstV
	}
	ascendNode(t.root, &lo, &hi, func(k K, v V) bool {
		dstK = append(dstK, k)
		dstV = append(dstV, v)
		return true
	})
	return dstK, dstV
}

// CountRange reports the number of live keys in [lo, hi] without
// materializing them: covered subtrees contribute their cached sizes,
// so only the two boundary paths recurse.
func (t *Tree[K, V]) CountRange(lo, hi K) int {
	if hi < lo {
		return 0
	}
	return countRange(t.root, &lo, &hi)
}

func countRange[K iindex.Numeric, V any](v *node[K, V], lo, hi *K) int {
	if v == nil || v.size == 0 {
		return 0
	}
	if lo == nil && hi == nil {
		return v.size
	}
	inRange := func(x K) bool {
		return (lo == nil || *lo <= x) && (hi == nil || x <= *hi)
	}
	n := 0
	if v.isLeaf() {
		for i, x := range v.rep {
			if v.exists[i] && inRange(x) {
				n++
			}
		}
		return n
	}
	k := len(v.rep)
	start, end := 0, k
	if lo != nil {
		start = lowerBoundKeys(v.rep, *lo)
	}
	if hi != nil {
		end = upperBoundKeys(v.rep, *hi)
	}
	for i := start; i <= end; i++ {
		clo, chi := lo, hi
		if i > start {
			clo = nil
		}
		if i < end {
			chi = nil
		}
		n += countRange(v.children[i], clo, chi)
		if i < end && v.exists[i] && inRange(v.rep[i]) {
			n++
		}
	}
	return n
}

// Select returns the idx-th smallest live key (0-based) and its value;
// ok is false when idx is out of range. Cached subtree sizes make each
// level a prefix scan over one node's sources.
func (t *Tree[K, V]) Select(idx int) (key K, val V, ok bool) {
	v := t.root
	if v == nil || idx < 0 || idx >= v.size {
		return key, val, false
	}
	for {
		if v.isLeaf() {
			for i, x := range v.rep {
				if !v.exists[i] {
					continue
				}
				if idx == 0 {
					return x, v.vals[i], true
				}
				idx--
			}
			return key, val, false // unreachable: idx < live count
		}
		descended := false
		for i := range v.rep {
			if c := v.children[i]; c != nil {
				if idx < c.size {
					v, descended = c, true
					break
				}
				idx -= c.size
			}
			if v.exists[i] {
				if idx == 0 {
					return v.rep[i], v.vals[i], true
				}
				idx--
			}
		}
		if !descended {
			v = v.children[len(v.rep)]
		}
	}
}

// RankOf reports the number of live keys strictly less than key.
func (t *Tree[K, V]) RankOf(key K) int {
	v := t.root
	rank := 0
	for v != nil {
		var pos int
		var found bool
		if v.isLeaf() {
			pos, found = iindex.InterpolationSearch(v.rep, key)
		} else {
			pos, found = iindex.Find(v.rep, &v.idx, key)
		}
		for i := 0; i < pos; i++ {
			if !v.isLeaf() {
				if c := v.children[i]; c != nil {
					rank += c.size
				}
			}
			if v.exists[i] {
				rank++
			}
		}
		if v.isLeaf() {
			return rank
		}
		if found {
			if c := v.children[pos]; c != nil {
				rank += c.size
			}
			return rank
		}
		v = v.children[pos]
	}
	return rank
}

func lowerBoundKeys[K iindex.Numeric](s []K, x K) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBoundKeys[K iindex.Numeric](s []K, x K) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
