package core

import "repro/internal/iindex"

// Ordered-set queries beyond membership: extrema, range extraction,
// counting, and order statistics. These are standard sorted-set API
// surface (std::set exposes the equivalents through iterators) and all
// respect logical deletion — dead keys are invisible.

// Min returns the smallest live key; ok is false when the set is
// empty. Cost O(height · fanout) worst case; the size counters let the
// walk skip all-dead subtrees.
func (t *Tree[K]) Min() (key K, ok bool) {
	v := t.root
	for v != nil && v.size > 0 {
		if v.isLeaf() {
			for i, x := range v.rep {
				if v.exists[i] {
					return x, true
				}
			}
			return key, false // unreachable while size > 0
		}
		descended := false
		for i := range v.rep {
			if c := v.children[i]; c != nil && c.size > 0 {
				v, descended = c, true
				break
			}
			if v.exists[i] {
				return v.rep[i], true
			}
		}
		if !descended {
			v = v.children[len(v.rep)]
		}
	}
	return key, false
}

// Max returns the largest live key; ok is false when the set is empty.
func (t *Tree[K]) Max() (key K, ok bool) {
	v := t.root
	for v != nil && v.size > 0 {
		if v.isLeaf() {
			for i := len(v.rep) - 1; i >= 0; i-- {
				if v.exists[i] {
					return v.rep[i], true
				}
			}
			return key, false // unreachable while size > 0
		}
		if c := v.children[len(v.rep)]; c != nil && c.size > 0 {
			v = c
			continue
		}
		descended := false
		for i := len(v.rep) - 1; i >= 0; i-- {
			if v.exists[i] {
				return v.rep[i], true
			}
			if c := v.children[i]; c != nil && c.size > 0 {
				v, descended = c, true
				break
			}
		}
		if !descended {
			return key, false // unreachable while size > 0
		}
	}
	return key, false
}

// Range returns the live keys in [lo, hi] in ascending order.
func (t *Tree[K]) Range(lo, hi K) []K {
	return t.AppendRange(nil, lo, hi)
}

// AppendRange appends the live keys in [lo, hi], ascending, to dst and
// returns the extended slice. Only the two boundary root-to-leaf paths
// inspect keys individually; fully covered subtrees are emitted
// wholesale, so the cost is O(log log n + output) on a balanced tree.
func (t *Tree[K]) AppendRange(dst []K, lo, hi K) []K {
	if hi < lo {
		return dst
	}
	return appendRange(t.root, dst, &lo, &hi)
}

// appendRange emits live keys of v between the bounds; a nil bound
// means that side is unconstrained, which lets covered subtrees skip
// per-key comparisons entirely.
func appendRange[K iindex.Numeric](v *node[K], dst []K, lo, hi *K) []K {
	if v == nil || v.size == 0 {
		return dst
	}
	if lo == nil && hi == nil {
		return appendLiveKeys(v, dst)
	}
	inRange := func(x K) bool {
		return (lo == nil || *lo <= x) && (hi == nil || x <= *hi)
	}
	if v.isLeaf() {
		for i, x := range v.rep {
			if v.exists[i] && inRange(x) {
				dst = append(dst, x)
			}
		}
		return dst
	}
	k := len(v.rep)
	start, end := 0, k
	if lo != nil {
		start = lowerBoundKeys(v.rep, *lo) // children before this cannot intersect
	}
	if hi != nil {
		end = upperBoundKeys(v.rep, *hi) // children after this cannot intersect
	}
	for i := start; i <= end; i++ {
		clo, chi := lo, hi
		if i > start {
			clo = nil // interior child: fully above lo
		}
		if i < end {
			chi = nil // interior child: fully below hi
		}
		dst = appendRange(v.children[i], dst, clo, chi)
		if i < end && v.exists[i] && inRange(v.rep[i]) {
			dst = append(dst, v.rep[i])
		}
	}
	return dst
}

// appendLiveKeys emits every live key of v in ascending order.
func appendLiveKeys[K iindex.Numeric](v *node[K], dst []K) []K {
	if v == nil {
		return dst
	}
	if v.isLeaf() {
		for i, x := range v.rep {
			if v.exists[i] {
				dst = append(dst, x)
			}
		}
		return dst
	}
	for i := range v.rep {
		dst = appendLiveKeys(v.children[i], dst)
		if v.exists[i] {
			dst = append(dst, v.rep[i])
		}
	}
	return appendLiveKeys(v.children[len(v.rep)], dst)
}

// CountRange reports the number of live keys in [lo, hi] without
// materializing them: covered subtrees contribute their cached sizes,
// so only the two boundary paths recurse.
func (t *Tree[K]) CountRange(lo, hi K) int {
	if hi < lo {
		return 0
	}
	return countRange(t.root, &lo, &hi)
}

func countRange[K iindex.Numeric](v *node[K], lo, hi *K) int {
	if v == nil || v.size == 0 {
		return 0
	}
	if lo == nil && hi == nil {
		return v.size
	}
	inRange := func(x K) bool {
		return (lo == nil || *lo <= x) && (hi == nil || x <= *hi)
	}
	n := 0
	if v.isLeaf() {
		for i, x := range v.rep {
			if v.exists[i] && inRange(x) {
				n++
			}
		}
		return n
	}
	k := len(v.rep)
	start, end := 0, k
	if lo != nil {
		start = lowerBoundKeys(v.rep, *lo)
	}
	if hi != nil {
		end = upperBoundKeys(v.rep, *hi)
	}
	for i := start; i <= end; i++ {
		clo, chi := lo, hi
		if i > start {
			clo = nil
		}
		if i < end {
			chi = nil
		}
		n += countRange(v.children[i], clo, chi)
		if i < end && v.exists[i] && inRange(v.rep[i]) {
			n++
		}
	}
	return n
}

// Select returns the idx-th smallest live key (0-based); ok is false
// when idx is out of range. Cached subtree sizes make each level a
// prefix scan over one node's sources.
func (t *Tree[K]) Select(idx int) (key K, ok bool) {
	v := t.root
	if v == nil || idx < 0 || idx >= v.size {
		return key, false
	}
	for {
		if v.isLeaf() {
			for i, x := range v.rep {
				if !v.exists[i] {
					continue
				}
				if idx == 0 {
					return x, true
				}
				idx--
			}
			return key, false // unreachable: idx < live count
		}
		descended := false
		for i := range v.rep {
			if c := v.children[i]; c != nil {
				if idx < c.size {
					v, descended = c, true
					break
				}
				idx -= c.size
			}
			if v.exists[i] {
				if idx == 0 {
					return v.rep[i], true
				}
				idx--
			}
		}
		if !descended {
			v = v.children[len(v.rep)]
		}
	}
}

// RankOf reports the number of live keys strictly less than key.
func (t *Tree[K]) RankOf(key K) int {
	v := t.root
	rank := 0
	for v != nil {
		var pos int
		var found bool
		if v.isLeaf() {
			pos, found = iindex.InterpolationSearch(v.rep, key)
		} else {
			pos, found = iindex.Find(v.rep, &v.idx, key)
		}
		for i := 0; i < pos; i++ {
			if !v.isLeaf() {
				if c := v.children[i]; c != nil {
					rank += c.size
				}
			}
			if v.exists[i] {
				rank++
			}
		}
		if v.isLeaf() {
			return rank
		}
		if found {
			if c := v.children[pos]; c != nil {
				rank += c.size
			}
			return rank
		}
		v = v.children[pos]
	}
	return rank
}

func lowerBoundKeys[K iindex.Numeric](s []K, x K) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBoundKeys[K iindex.Numeric](s []K, x K) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
