package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/parallel"
)

// assertBalanced checks the dynamic half of the arenapair contract:
// once no batched operation is in flight, every free-list Get has been
// matched by a Put. The i32s scratch is deliberately exempt — the
// pooled sequential walkers (seqpath.go) retain their per-depth level
// buffers across borrows by design, so its gets legitimately run ahead
// of its puts.
func assertBalanced[K ~int64 | ~int32, V any](t *testing.T, label string, tr *Tree[K, V]) {
	t.Helper()
	type balancer interface{ Balance() (gets, puts int64) }
	for name, s := range map[string]balancer{
		"keys":  &tr.ar.keys,
		"vals":  &tr.ar.vals,
		"bools": &tr.ar.bools,
		"ints":  &tr.ar.ints,
	} {
		gets, puts := s.Balance()
		if gets != puts {
			t.Errorf("%s: %s scratch unbalanced: %d gets, %d puts (leaked %d borrows)",
				label, name, gets, puts, gets-puts)
		}
	}
}

// TestScratchBorrowBalance is the dynamic counterpart of the static
// arenapair analyzer: it drives every batched path — mixed batched
// writes with rebuilds, range reads, tree-to-tree algebra, split and
// join — and asserts each participating tree's arena took back every
// buffer it lent out.
func TestScratchBorrowBalance(t *testing.T) {
	p := parallel.NewPool(4)
	rng := rand.New(rand.NewSource(7))

	// Batched operations require sorted duplicate-free key batches.
	batch := func(n int) ([]int64, []int64) {
		ks := make([]int64, n)
		for i := range ks {
			ks[i] = rng.Int63n(1 << 16)
		}
		slices.Sort(ks)
		ks = slices.Compact(ks)
		vs := make([]int64, len(ks))
		for i := range vs {
			vs[i] = rng.Int63()
		}
		return ks, vs
	}

	tr := New[int64, int64](Config{LeafCap: 8}, p)
	for round := 0; round < 6; round++ {
		ks, vs := batch(500 + round*200)
		tr.PutBatched(ks, vs)
		tr.InsertBatched(ks[:len(ks)/3])
		tr.RemoveBatched(ks[len(ks)/2:])
		tr.Range(ks[0]-100, ks[0]+100)
		tr.RangeKV(0, 1<<15)
	}
	assertBalanced(t, "batched writes", tr)

	mk := func(n int) *Tree[int64, int64] {
		tt := New[int64, int64](Config{LeafCap: 8}, p)
		ks, vs := batch(n)
		tt.PutBatched(ks, vs)
		return tt
	}
	a, b := mk(2000), mk(1500)
	u := a.Union(b, true)
	x := a.Intersect(b, false)
	d := a.DifferenceTree(b)
	sd := a.SymmetricDifference(b)
	l, r := u.Split(1 << 15)
	j := l.Join(r)
	for _, c := range []struct {
		label string
		tr    *Tree[int64, int64]
	}{
		{"algebra operand a", a}, {"algebra operand b", b},
		{"union result", u}, {"intersect result", x},
		{"difference result", d}, {"symdiff result", sd},
		{"split left", l}, {"split right", r}, {"join result", j},
	} {
		assertBalanced(t, c.label, c.tr)
	}
}
