package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// coreObs bundles the rebuild metric handles of one observed tree,
// resolved once at construction so the write paths never touch the
// registry. nil (the default) disables every recording site. Trees
// sharing a registry — the shard group case — resolve the same names
// and aggregate automatically.
type coreObs struct {
	rebuilds    *obs.Counter   // subtree (re)build events
	rebuildKeys *obs.Counter   // keys laid down by those rebuilds
	rebuildNS   *obs.Histogram // per-event duration, ns
	rebuildSize *obs.Histogram // per-event subtree size, keys
}

// newCoreObs resolves the tree metric handles; nil registry → nil obs.
func newCoreObs(r *obs.Registry) *coreObs {
	if r == nil {
		return nil
	}
	return &coreObs{
		rebuilds:    r.Counter("core.rebuild.count"),
		rebuildKeys: r.Counter("core.rebuild.keys"),
		rebuildNS:   r.Histogram("core.rebuild.duration_ns"),
		rebuildSize: r.Histogram("core.rebuild.size_keys"),
	}
}

// obsNow stamps the start of an observed event: time.Now() when the
// tree records metrics, the zero Time otherwise — the same "stamp only
// when observed" discipline the inline rebuild paths follow, packaged
// for call sites outside this file (the scheduler's drain rebuilds).
func obsNow(o *coreObs) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe registers the rebuild scheduler's counters as live gauges
// under the "core.rebuild." prefix. Func-backed gauges sum across
// registrations, so a shard group sharing one registry reads group
// totals, matching the arena and MVCC gauges.
func (c *schedCounters) observe(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Func("core.rebuild.debt_keys", c.debtKeys.Load)
	r.Func("core.rebuild.deferred_keys", c.deferredKeys.Load)
	r.Func("core.rebuild.async_count", c.asyncRuns.Load)
	r.Func("core.rebuild.splice_retries", c.spliceRetries.Load)
}

// recordRebuild stores one §7.1 rebuild event: a subtree of size keys
// rebuilt ideally in the time elapsed since t0. No-op on an unobserved
// tree — callers stamp t0 only when t.obs is set, so the hot path pays
// one nil check.
func (t *Tree[K, V]) recordRebuild(t0 time.Time, size int) {
	if t.obs == nil {
		return
	}
	d := int64(time.Since(t0))
	t.obs.rebuilds.Add(1)
	t.obs.rebuildKeys.Add(int64(size))
	t.obs.rebuildNS.Record(d)
	t.obs.rebuildSize.Record(int64(size))
}

// labeledBuild runs buildIdeal under the "rebuild" pprof label when
// the tree is observed, so CPU profiles split rebuild work out of the
// surrounding traversal; unobserved trees call buildIdeal directly and
// allocate no closure.
func (t *Tree[K, V]) labeledBuild(keys []K, vals []V) (root *node[K, V]) {
	if t.obs == nil {
		return t.buildIdeal(keys, vals)
	}
	parallel.WithLabel(true, "rebuild", func() {
		root = t.buildIdeal(keys, vals)
	})
	return root
}

// observe registers the arena's live telemetry with r as gauge
// functions under the "core." prefix: free-list inventory, cumulative
// scratch gets and reuse hits, and the chunk-build counters. Once per
// arena, however many trees share it — a shard group must not count
// one SharedArena per shard.
func (a *treeArena[K, V]) observe(r *obs.Registry) {
	if r == nil {
		return
	}
	a.obsOnce.Do(func() {
		r.Func("core.arena.retained_buffers", func() int64 {
			b, _ := a.retained()
			return int64(b)
		})
		r.Func("core.arena.retained_elems", func() int64 {
			_, e := a.retained()
			return e
		})
		r.Func("core.arena.scratch_gets", func() int64 {
			g, _ := a.scratchStats()
			return g
		})
		r.Func("core.arena.scratch_reuses", func() int64 {
			_, u := a.scratchStats()
			return u
		})
		r.Func("core.chunk.builds", a.chunkBuilds.Load)
		r.Func("core.chunk.keys", a.chunkKeys.Load)
	})
}
