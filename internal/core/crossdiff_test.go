package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/iseq"
	"repro/internal/parallel"
	"repro/internal/rbtree"
	"repro/internal/skiplist"
	"repro/internal/treap"
)

// Cross-implementation differential tests: five independently written
// sorted sets (the parallel-batched IST, the sequential IST, the
// red-black tree, the skip list, and the treap) execute the same
// operation stream and must agree on every observable result. A bug in
// any one implementation — or a systematic misreading of the paper's
// semantics — surfaces as a divergence.

func TestCrossImplementationAgreement(t *testing.T) {
	pool := parallel.NewPool(4)
	ist := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 2}, pool)
	seq := iseq.New[int64](iseq.Config{LeafCap: 8, RebuildFactor: 2})
	rb := rbtree.New[int64]()
	sl := skiplist.New[int64](77)
	tp := treap.New[int64](pool)

	r := rand.New(rand.NewSource(2718))
	const span = 3000
	for round := 0; round < 120; round++ {
		batch := randomBatch(r, 400, span)
		switch round % 3 {
		case 0:
			got := ist.InsertBatched(batch)
			want := 0
			for _, k := range batch {
				if seq.Insert(k) {
					want++
				}
				rb.Insert(k)
				sl.Insert(k)
			}
			tp.UnionWith(batch)
			if got != want {
				t.Fatalf("round %d: InsertBatched = %d, sequential IST says %d", round, got, want)
			}
		case 1:
			got := ist.RemoveBatched(batch)
			want := 0
			for _, k := range batch {
				if seq.Remove(k) {
					want++
				}
				rb.Remove(k)
				sl.Remove(k)
			}
			tp.DifferenceWith(batch)
			if got != want {
				t.Fatalf("round %d: RemoveBatched = %d, sequential IST says %d", round, got, want)
			}
		default:
			res := ist.ContainsBatched(batch)
			for i, k := range batch {
				if res[i] != seq.Contains(k) {
					t.Fatalf("round %d: IST batched and sequential disagree on %d", round, k)
				}
				if res[i] != rb.Contains(k) {
					t.Fatalf("round %d: IST and red-black tree disagree on %d", round, k)
				}
				if res[i] != sl.Contains(k) {
					t.Fatalf("round %d: IST and skip list disagree on %d", round, k)
				}
				if res[i] != tp.Contains(k) {
					t.Fatalf("round %d: IST and treap disagree on %d", round, k)
				}
			}
		}
		if ist.Len() != seq.Len() || ist.Len() != rb.Len() ||
			ist.Len() != sl.Len() || ist.Len() != tp.Len() {
			t.Fatalf("round %d: sizes diverge: ist=%d iseq=%d rb=%d sl=%d treap=%d",
				round, ist.Len(), seq.Len(), rb.Len(), sl.Len(), tp.Len())
		}
	}
	keys := ist.Keys()
	if !slices.Equal(keys, seq.Keys()) {
		t.Fatal("final contents: batched IST != sequential IST")
	}
	if !slices.Equal(keys, rb.Keys()) {
		t.Fatal("final contents: IST != red-black tree")
	}
	if !slices.Equal(keys, sl.Keys()) {
		t.Fatal("final contents: IST != skip list")
	}
	if !slices.Equal(keys, tp.Keys()) {
		t.Fatal("final contents: IST != treap")
	}
}

func TestExtremeKeyValues(t *testing.T) {
	// Interpolation arithmetic must survive the int64 extremes, where
	// float64 conversion loses precision.
	const maxi = int64(1)<<62 - 1
	keys := []int64{-maxi, -maxi + 1, -1, 0, 1, maxi - 1, maxi}
	tr := New[int64, struct{}](Config{LeafCap: 2}, parallel.NewPool(2))
	if n := tr.InsertBatched(keys); n != len(keys) {
		t.Fatalf("inserted %d extreme keys, want %d", n, len(keys))
	}
	res := tr.ContainsBatched(keys)
	for i, ok := range res {
		if !ok {
			t.Fatalf("extreme key %d lost", keys[i])
		}
	}
	probe := []int64{-maxi - 1, 2, maxi - 2}
	want := []bool{false, false, false}
	if got := tr.ContainsBatched(probe); !slices.Equal(got, want) {
		t.Fatalf("phantom extreme keys: %v", got)
	}
	if n := tr.RemoveBatched(keys); n != len(keys) {
		t.Fatal("failed to remove extreme keys")
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty after removing extremes")
	}
}

func TestHugeSingleBatchIntoTinyTree(t *testing.T) {
	// A batch far larger than the tree must trigger a top-level rebuild
	// and produce an ideally balanced result.
	tr := NewFromSorted(Config{}, parallel.NewPool(8), []int64{500_000})
	batch := make([]int64, 300_000)
	for i := range batch {
		batch[i] = int64(i * 3)
	}
	if n := tr.InsertBatched(batch); n != len(batch) {
		t.Fatalf("inserted %d, want %d", n, len(batch))
	}
	if tr.Len() != len(batch)+1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if h := tr.Height(); h > 6 {
		t.Fatalf("height %d after giant batch; rebuild did not balance", h)
	}
	checkInvariants(t, tr)
}

func TestAlternatingReviveChurn(t *testing.T) {
	// Pathological revive pattern: the same batch is removed and
	// re-inserted repeatedly; size accounting and rebuild counters must
	// stay exact.
	keys := sortedUniqueKeys(55, 20000, 1<<30)
	tr := NewFromSorted(Config{}, parallel.NewPool(4), keys)
	batch := keys[5000:15000]
	for cycle := 0; cycle < 12; cycle++ {
		if n := tr.RemoveBatched(batch); n != len(batch) {
			t.Fatalf("cycle %d: removed %d", cycle, n)
		}
		if tr.Len() != len(keys)-len(batch) {
			t.Fatalf("cycle %d: Len = %d", cycle, tr.Len())
		}
		if n := tr.InsertBatched(batch); n != len(batch) {
			t.Fatalf("cycle %d: revived %d", cycle, n)
		}
		if tr.Len() != len(keys) {
			t.Fatalf("cycle %d: Len = %d", cycle, tr.Len())
		}
	}
	if !slices.Equal(tr.Keys(), keys) {
		t.Fatal("contents corrupted by revive churn")
	}
	checkInvariants(t, tr)
}

func TestOverlappingHalfBatches(t *testing.T) {
	// Batches that 50%-overlap current contents stress the
	// filter-then-apply pipeline of §5/§6.
	pool := parallel.NewPool(4)
	tr := New[int64, struct{}](Config{}, pool)
	ref := refSet{}
	r := rand.New(rand.NewSource(56))
	for round := 0; round < 30; round++ {
		batch := randomBatch(r, 5000, 10000) // dense span: heavy overlap
		if got, want := tr.InsertBatched(batch), ref.insertBatch(batch); got != want {
			t.Fatalf("round %d insert: %d vs %d", round, got, want)
		}
		batch = randomBatch(r, 5000, 10000)
		if got, want := tr.RemoveBatched(batch), ref.removeBatch(batch); got != want {
			t.Fatalf("round %d remove: %d vs %d", round, got, want)
		}
	}
	if !slices.Equal(tr.Keys(), ref.sorted()) {
		t.Fatal("overlap churn diverged")
	}
}
