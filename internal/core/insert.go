package core

import (
	"time"

	"repro/internal/parallel"
)

// InsertBatched adds every key of the sorted duplicate-free batch with
// a zero value and returns the number of keys actually inserted (keys
// already present are skipped, keeping their stored value). It
// implements §5: the batch is first filtered against the current
// contents with one batched membership traversal, then the surviving
// keys traverse to their target leaves, reviving logically removed
// slots on the way (§6, Fig. 13) and merging into leaf Rep arrays
// (Fig. 11). Subtrees whose modification budget is exceeded are
// rebuilt ideally en route (§7.1). The membership side array and the
// filtered sub-batch are arena scratch with this call's lifetime.
//
// InsertBatched(B) is set union: A.InsertBatched(B) makes A = A ∪ B
// (§2.2).
func (t *Tree[K, V]) InsertBatched(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	t.beginBatch()
	present := t.ar.bools.GetZero(len(keys))
	t.containsInto(keys, present)
	freshBuf := t.ar.keys.Get(len(keys))
	fresh := parallel.FilterIndexInto(t.pool, keys, freshBuf, func(i int) bool { return !present[i] })
	t.ar.bools.Put(present)
	n := len(fresh)
	if n > 0 {
		t.dirty = true
		zeroV := t.ar.vals.GetZero(n)
		t.root = t.insertRec(t.root, fresh, zeroV, 0, n)
		t.ar.vals.Put(zeroV)
	}
	t.ar.keys.Put(freshBuf)
	return n
}

// PutBatched upserts every (keys[i], vals[i]) pair of the sorted
// duplicate-free batch and returns the number of keys that were newly
// inserted (as opposed to overwritten). The batch splits against the
// current contents: keys already live take one value-overwrite
// traversal (updateRec — no structural change, so no rebuild
// accounting), absent keys take the §5 insertion traversal with their
// values riding alongside. Both halves are batched; there is no
// per-key fallback. All split buffers are arena scratch scoped to
// this call — safe because no traversal retains a batch slice.
func (t *Tree[K, V]) PutBatched(keys []K, vals []V) int {
	if len(keys) != len(vals) {
		panic("core: PutBatched keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return 0
	}
	t.beginBatch()
	present := t.ar.bools.GetZero(len(keys))
	t.containsInto(keys, present)
	hitKBuf := t.ar.keys.Get(len(keys))
	hitK := parallel.FilterIndexInto(t.pool, keys, hitKBuf, func(i int) bool { return present[i] })
	if len(hitK) > 0 {
		t.dirty = true
		hitVBuf := t.ar.vals.Get(len(vals))
		hitV := parallel.FilterIndexInto(t.pool, vals, hitVBuf, func(i int) bool { return present[i] })
		t.root = t.updateRec(t.root, hitK, hitV, 0, len(hitK))
		t.ar.vals.Put(hitVBuf)
	}
	inserted := len(keys) - len(hitK)
	if inserted > 0 {
		t.dirty = true
		freshKBuf := t.ar.keys.Get(len(keys))
		freshVBuf := t.ar.vals.Get(len(vals))
		freshK := parallel.FilterIndexInto(t.pool, keys, freshKBuf, func(i int) bool { return !present[i] })
		freshV := parallel.FilterIndexInto(t.pool, vals, freshVBuf, func(i int) bool { return !present[i] })
		t.root = t.insertRec(t.root, freshK, freshV, 0, len(freshK))
		t.ar.keys.Put(freshKBuf)
		t.ar.vals.Put(freshVBuf)
	}
	t.ar.keys.Put(hitKBuf)
	t.ar.bools.Put(present)
	return inserted
}

// rebuildMerged is §7.1 step 2a, shared by the parallel and sequential
// insertion paths: flatten v, merge the triggering sub-batch, rebuild
// ideally. Every temporary is arena scratch: the flatten buffers and
// the merge destination are returned the moment buildIdeal has copied
// the merged pairs into chunk storage, so consecutive rebuilds cycle
// the same backing arrays.
func (t *Tree[K, V]) rebuildMerged(v *node[K, V], keys []K, vals []V, l, r int) *node[K, V] {
	var t0 time.Time
	if t.obs != nil {
		t0 = time.Now()
	}
	flatK, flatV := t.flattenScratch(v)
	n := len(flatK) + (r - l)
	mkBuf := t.ar.keys.Get(n)
	mvBuf := t.ar.vals.Get(n)
	mk, mv := parallel.MergeKVInto(t.pool, flatK, flatV, keys[l:r], vals[l:r], mkBuf, mvBuf)
	root := t.labeledBuild(mk, mv)
	t.ar.putKV(flatK, flatV)
	t.ar.putKV(mkBuf, mvBuf)
	t.recordRebuild(t0, len(mk))
	return root
}

// rebuildSubtracted is §7.1 step 2b, shared by both removal paths:
// flatten v, subtract the triggering sub-batch, rebuild ideally, with
// the same scratch lifetimes as rebuildMerged.
func (t *Tree[K, V]) rebuildSubtracted(v *node[K, V], keys []K, l, r int) *node[K, V] {
	var t0 time.Time
	if t.obs != nil {
		t0 = time.Now()
	}
	flatK, flatV := t.flattenScratch(v)
	dkBuf := t.ar.keys.Get(len(flatK))
	dvBuf := t.ar.vals.Get(len(flatV))
	keptK, keptV := parallel.DifferenceKVInto(t.pool, flatK, flatV, keys[l:r], dkBuf, dvBuf)
	root := t.labeledBuild(keptK, keptV)
	t.ar.putKV(flatK, flatV)
	t.ar.putKV(dkBuf, dvBuf)
	t.recordRebuild(t0, len(keptK))
	return root
}

// insertRec inserts keys[l:r) — all logically absent from the tree —
// with their values into subtree v and returns the possibly replaced
// subtree root.
func (t *Tree[K, V]) insertRec(v *node[K, V], keys []K, vals []V, l, r int) *node[K, V] {
	if v == nil {
		// Empty range: the sub-batch becomes a fresh ideal subtree.
		return t.buildIdeal(keys[l:r], vals[l:r])
	}
	if r-l <= seqSegCutoff || t.pool.Workers() == 1 {
		sc := t.newScratch()
		root := t.insertSeq(v, keys, vals, l, r, sc, 0)
		sc.release()
		return root
	}
	k := r - l
	if t.rebuildDue(v, k) {
		// §7.1 step 2a: the recursion stops here for this subtree —
		// unless the epoch's rebuild budget cannot cover it, in which
		// case the subtree is recorded as debt and the insertion
		// proceeds below (sched.go).
		if t.tryReserveRebuild(v.size + k) {
			root := t.rebuildMerged(v, keys, vals, l, r)
			t.retireSubtree(v)
			return root
		}
		t.deferRebuild(v, k, v.size+k)
	}
	v = t.owned(v)
	v.modCnt += k
	v.size += k

	seg := r - l
	pf := t.ar.i32s.Get(seg)
	t.findPositions(v, keys, l, r, pf)

	// Revive keys that still exist physically but were logically
	// removed (§6), storing the incoming value: they are guaranteed
	// dead here because the batch was filtered against live contents.
	exists, vv := v.exists, v.vals
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			exists[pf[i]>>1] = true
			vv[pf[i]>>1] = vals[l+i]
		}
	})

	if v.isLeaf() {
		// Fig. 11: merge the physically absent pairs into the leaf.
		akBuf := t.ar.keys.Get(seg)
		absentK := parallel.FilterIndexInto(t.pool, keys[l:r], akBuf, func(i int) bool { return pf[i]&1 == 0 })
		if len(absentK) > 0 {
			avBuf := t.ar.vals.Get(seg)
			absentV := parallel.FilterIndexInto(t.pool, vals[l:r], avBuf, func(i int) bool { return pf[i]&1 == 0 })
			var grew bool
			v.rep, v.vals, v.exists, grew = mergeLeafPF(v.rep, v.vals, v.exists, absentK, absentV, nil, len(absentK), t.cfg.LeafSlack)
			if grew {
				t.ar.leafGrows.Add(1)
			}
			t.ar.vals.Put(avBuf)
		}
		t.ar.keys.Put(akBuf)
		t.ar.i32s.Put(pf)
		return v
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		v.children[child] = t.insertRec(v.children[child], keys, vals, l+lo, l+hi)
	})
	t.ar.i32s.Put(pf)
	return v
}

// updateRec overwrites the stored values of keys[l:r) — all logically
// present — with vals[l:r) and returns the possibly copied subtree
// root. Value overwrites are not structural modifications: Rep arrays,
// sizes, and the rebuild budget are untouched, so the traversal is
// read-shaped (like containsRec) with one write per key at the node
// whose Rep holds it — but on a publishing tree even a value write
// copies out-of-generation nodes, so the path to every written slot
// is returned upward like the insertion path. Each batch key is live,
// so it is found exactly once along its root-to-leaf path, at a live
// slot.
func (t *Tree[K, V]) updateRec(v *node[K, V], keys []K, vals []V, l, r int) *node[K, V] {
	if v == nil {
		return nil
	}
	seg := r - l
	if seg <= seqSegCutoff || t.pool.Workers() == 1 {
		sc := t.newScratch()
		root := t.updateSeq(v, keys, vals, l, r, sc, 0)
		sc.release()
		return root
	}
	v = t.owned(v)
	pf := t.ar.i32s.Get(seg)
	defer t.ar.i32s.Put(pf)
	t.findPositions(v, keys, l, r, pf)
	vv := v.vals
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			vv[pf[i]>>1] = vals[l+i]
		}
	})
	if v.isLeaf() {
		return v
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		v.children[child] = t.updateRec(v.children[child], keys, vals, l+lo, l+hi)
	})
	return v
}
