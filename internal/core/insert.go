package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// InsertBatched adds every key of the sorted duplicate-free batch with
// a zero value and returns the number of keys actually inserted (keys
// already present are skipped, keeping their stored value). It
// implements §5: the batch is first filtered against the current
// contents with ContainsBatched + Filter, then the surviving keys
// traverse to their target leaves, reviving logically removed slots on
// the way (§6, Fig. 13) and merging into leaf Rep arrays (Fig. 11).
// Subtrees whose modification budget is exceeded are rebuilt ideally
// en route (§7.1).
//
// InsertBatched(B) is set union: A.InsertBatched(B) makes A = A ∪ B
// (§2.2).
func (t *Tree[K, V]) InsertBatched(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	present := t.ContainsBatched(keys)
	fresh := parallel.FilterIndex(t.pool, keys, func(i int) bool { return !present[i] })
	if len(fresh) == 0 {
		return 0
	}
	t.root = t.insertRec(t.root, fresh, make([]V, len(fresh)), 0, len(fresh))
	return len(fresh)
}

// PutBatched upserts every (keys[i], vals[i]) pair of the sorted
// duplicate-free batch and returns the number of keys that were newly
// inserted (as opposed to overwritten). The batch splits against the
// current contents: keys already live take one value-overwrite
// traversal (updateRec — no structural change, so no rebuild
// accounting), absent keys take the §5 insertion traversal with their
// values riding alongside. Both halves are batched; there is no
// per-key fallback.
func (t *Tree[K, V]) PutBatched(keys []K, vals []V) int {
	if len(keys) != len(vals) {
		panic("core: PutBatched keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return 0
	}
	present := t.ContainsBatched(keys)
	hitK := parallel.FilterIndex(t.pool, keys, func(i int) bool { return present[i] })
	if len(hitK) > 0 {
		hitV := parallel.FilterIndex(t.pool, vals, func(i int) bool { return present[i] })
		t.updateRec(t.root, hitK, hitV, 0, len(hitK))
	}
	if len(hitK) == len(keys) {
		return 0
	}
	freshK := parallel.FilterIndex(t.pool, keys, func(i int) bool { return !present[i] })
	freshV := parallel.FilterIndex(t.pool, vals, func(i int) bool { return !present[i] })
	t.root = t.insertRec(t.root, freshK, freshV, 0, len(freshK))
	return len(freshK)
}

// insertRec inserts keys[l:r) — all logically absent from the tree —
// with their values into subtree v and returns the possibly replaced
// subtree root.
func (t *Tree[K, V]) insertRec(v *node[K, V], keys []K, vals []V, l, r int) *node[K, V] {
	if v == nil {
		// Empty range: the sub-batch becomes a fresh ideal subtree.
		return t.buildIdeal(keys[l:r], vals[l:r])
	}
	if r-l <= seqSegCutoff || t.pool.Workers() == 1 {
		return t.insertSeq(v, keys, vals, l, r, &scratch{}, 0)
	}
	k := r - l
	if t.rebuildDue(v, k) {
		// §7.1 step 2a: flatten, merge the triggering sub-batch,
		// rebuild ideally. The recursion stops here for this subtree.
		flatK, flatV := t.flatten(v)
		mk, mv := parallel.MergeKV(t.pool, flatK, flatV, keys[l:r], vals[l:r])
		return t.buildIdeal(mk, mv)
	}
	v.modCnt += k
	v.size += k

	seg := r - l
	pf := make([]int32, seg)
	t.findPositions(v, keys, l, r, pf)

	// Revive keys that still exist physically but were logically
	// removed (§6), storing the incoming value: they are guaranteed
	// dead here because the batch was filtered against live contents.
	exists, vv := v.exists, v.vals
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			exists[pf[i]>>1] = true
			vv[pf[i]>>1] = vals[l+i]
		}
	})

	if v.isLeaf() {
		// Fig. 11: merge the physically absent pairs into the leaf.
		absentK := parallel.FilterIndex(t.pool, keys[l:r], func(i int) bool { return pf[i]&1 == 0 })
		if len(absentK) > 0 {
			absentV := parallel.FilterIndex(t.pool, vals[l:r], func(i int) bool { return pf[i]&1 == 0 })
			v.rep, v.vals, v.exists = mergeLeaf(v.rep, v.vals, v.exists, absentK, absentV)
		}
		return v
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		v.children[child] = t.insertRec(v.children[child], keys, vals, l+lo, l+hi)
	})
	return v
}

// updateRec overwrites the stored values of keys[l:r) — all logically
// present — with vals[l:r). Value overwrites are not structural
// modifications: Rep arrays, sizes, and the rebuild budget are
// untouched, so the traversal is read-shaped (like containsRec) with
// one write per key at the node whose Rep holds it. Each batch key is
// live, so it is found exactly once along its root-to-leaf path, at a
// live slot.
func (t *Tree[K, V]) updateRec(v *node[K, V], keys []K, vals []V, l, r int) {
	if v == nil {
		return
	}
	seg := r - l
	if seg <= seqSegCutoff || t.pool.Workers() == 1 {
		t.updateSeq(v, keys, vals, l, r, &scratch{}, 0)
		return
	}
	pf := make([]int32, seg)
	t.findPositions(v, keys, l, r, pf)
	vv := v.vals
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			vv[pf[i]>>1] = vals[l+i]
		}
	})
	if v.isLeaf() {
		return
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		t.updateRec(v.children[child], keys, vals, l+lo, l+hi)
	})
}

// mergeLeaf merges the sorted batch and its values into a leaf's
// rep/vals/exists triple. Batch keys are new and therefore live. The
// merge is sequential: the rebuild rule bounds live leaf growth by
// C·InitSize before a rebuild replaces the leaf, so this is
// O(LeafCap·(C+1)) per leaf, and distinct leaves merge in parallel
// with each other.
func mergeLeaf[K iindex.Numeric, V any](rep []K, vals []V, exists []bool, batchK []K, batchV []V) ([]K, []V, []bool) {
	n := len(rep) + len(batchK)
	nr := make([]K, 0, n)
	nv := make([]V, 0, n)
	ne := make([]bool, 0, n)
	i, j := 0, 0
	for i < len(rep) && j < len(batchK) {
		if rep[i] < batchK[j] {
			nr = append(nr, rep[i])
			nv = append(nv, vals[i])
			ne = append(ne, exists[i])
			i++
		} else {
			nr = append(nr, batchK[j])
			nv = append(nv, batchV[j])
			ne = append(ne, true)
			j++
		}
	}
	for ; i < len(rep); i++ {
		nr = append(nr, rep[i])
		nv = append(nv, vals[i])
		ne = append(ne, exists[i])
	}
	for ; j < len(batchK); j++ {
		nr = append(nr, batchK[j])
		nv = append(nv, batchV[j])
		ne = append(ne, true)
	}
	return nr, nv, ne
}
