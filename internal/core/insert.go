package core

import (
	"repro/internal/iindex"
	"repro/internal/parallel"
)

// InsertBatched adds every key of the sorted duplicate-free batch to
// the set and returns the number of keys actually inserted (keys
// already present are skipped). It implements §5: the batch is first
// filtered against the current contents with ContainsBatched + Filter,
// then the surviving keys traverse to their target leaves, reviving
// logically removed slots on the way (§6, Fig. 13) and merging into
// leaf Rep arrays (Fig. 11). Subtrees whose modification budget is
// exceeded are rebuilt ideally en route (§7.1).
//
// InsertBatched(B) is set union: A.InsertBatched(B) makes A = A ∪ B
// (§2.2).
func (t *Tree[K]) InsertBatched(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	present := t.ContainsBatched(keys)
	fresh := parallel.FilterIndex(t.pool, keys, func(i int) bool { return !present[i] })
	if len(fresh) == 0 {
		return 0
	}
	t.root = t.insertRec(t.root, fresh, 0, len(fresh))
	return len(fresh)
}

// insertRec inserts keys[l:r) — all logically absent from the set —
// into subtree v and returns the possibly replaced subtree root.
func (t *Tree[K]) insertRec(v *node[K], keys []K, l, r int) *node[K] {
	if v == nil {
		// Empty range: the sub-batch becomes a fresh ideal subtree.
		return t.buildIdeal(keys[l:r])
	}
	if r-l <= seqSegCutoff || t.pool.Workers() == 1 {
		return t.insertSeq(v, keys, l, r, &scratch{}, 0)
	}
	k := r - l
	if t.rebuildDue(v, k) {
		// §7.1 step 2a: flatten, merge the triggering sub-batch,
		// rebuild ideally. The recursion stops here for this subtree.
		flat := t.flatten(v)
		merged := parallel.Merge(t.pool, flat, keys[l:r])
		return t.buildIdeal(merged)
	}
	v.modCnt += k
	v.size += k

	seg := r - l
	pf := make([]int32, seg)
	t.findPositions(v, keys, l, r, pf)

	// Revive keys that still exist physically but were logically
	// removed (§6): they are guaranteed dead here because the batch
	// was filtered against live contents.
	exists := v.exists
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			exists[pf[i]>>1] = true
		}
	})

	if v.isLeaf() {
		// Fig. 11: merge the physically absent keys into the leaf.
		absent := parallel.FilterIndex(t.pool, keys[l:r], func(i int) bool { return pf[i]&1 == 0 })
		if len(absent) > 0 {
			v.rep, v.exists = mergeLeaf(v.rep, v.exists, absent)
		}
		return v
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		v.children[child] = t.insertRec(v.children[child], keys, l+lo, l+hi)
	})
	return v
}

// mergeLeaf merges the sorted batch into a leaf's rep/exists pair.
// Batch keys are new and therefore live. The merge is sequential: the
// rebuild rule bounds live leaf growth by C·InitSize before a rebuild
// replaces the leaf, so this is O(LeafCap·(C+1)) per leaf, and distinct
// leaves merge in parallel with each other.
func mergeLeaf[K iindex.Numeric](rep []K, exists []bool, batch []K) ([]K, []bool) {
	nr := make([]K, 0, len(rep)+len(batch))
	ne := make([]bool, 0, len(rep)+len(batch))
	i, j := 0, 0
	for i < len(rep) && j < len(batch) {
		if rep[i] < batch[j] {
			nr = append(nr, rep[i])
			ne = append(ne, exists[i])
			i++
		} else {
			nr = append(nr, batch[j])
			ne = append(ne, true)
			j++
		}
	}
	for ; i < len(rep); i++ {
		nr = append(nr, rep[i])
		ne = append(ne, exists[i])
	}
	for ; j < len(batch); j++ {
		nr = append(nr, batch[j])
		ne = append(ne, true)
	}
	return nr, ne
}
