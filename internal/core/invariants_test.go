package core

import (
	"slices"
	"testing"
)

// checkInvariants validates the structural invariants of the whole
// tree for any value type: rep sortedness and uniqueness, child key
// ranges, rep/vals/exists length agreement, size bookkeeping, the
// rebuild-counter budget, and Stats/Height consistency. It is the
// shared post-condition of the differential, cross-implementation, and
// set-algebra tests.
func checkInvariants[V any](t *testing.T, tr *Tree[int64, V]) {
	t.Helper()
	// Snapshot the rebuild scheduler's debt-record keys: with a rebuild
	// budget configured, a node may legally exceed its §7.1 budget as
	// long as the excess is tracked as debt (see sched.go).
	var debtKeys []int64
	if s := tr.sched; s != nil {
		s.mu.Lock()
		for _, rec := range s.heap {
			debtKeys = append(debtKeys, rec.key)
		}
		s.mu.Unlock()
	}
	var walk func(v *node[int64, V], lo, hi *int64) int
	walk = func(v *node[int64, V], lo, hi *int64) int {
		if v == nil {
			return 0
		}
		if len(v.rep) == 0 {
			t.Fatalf("node with empty rep")
		}
		if len(v.exists) != len(v.rep) {
			t.Fatalf("exists/rep length mismatch: %d vs %d", len(v.exists), len(v.rep))
		}
		if len(v.vals) != len(v.rep) {
			t.Fatalf("vals/rep length mismatch: %d vs %d", len(v.vals), len(v.rep))
		}
		if !slices.IsSorted(v.rep) {
			t.Fatalf("rep not sorted")
		}
		for i := 1; i < len(v.rep); i++ {
			if v.rep[i] == v.rep[i-1] {
				t.Fatalf("duplicate rep key %d", v.rep[i])
			}
		}
		if lo != nil && v.rep[0] <= *lo {
			t.Fatalf("rep[0]=%d <= lower bound %d", v.rep[0], *lo)
		}
		if hi != nil && v.rep[len(v.rep)-1] >= *hi {
			t.Fatalf("rep max %d >= upper bound %d", v.rep[len(v.rep)-1], *hi)
		}
		// Rebuild accounting: modCnt only ever grows between rebuilds
		// and may never exceed the C·initSize budget — rebuildDue must
		// have fired first (§7.1).
		if v.modCnt < 0 || v.initSize < 0 {
			t.Fatalf("negative rebuild counters: modCnt=%d initSize=%d", v.modCnt, v.initSize)
		}
		budget := tr.cfg.RebuildFactor * v.initSize
		if budget < tr.cfg.RebuildFactor {
			budget = tr.cfg.RebuildFactor
		}
		if v.modCnt > budget {
			// Over budget is legal only when a rebuild scheduler holds a
			// covering debt record: one whose key falls inside this
			// subtree's bounds (a record key physically stays inside the
			// subtree it was recorded for until a rebuild repays it, so
			// an untracked over-budget node has no such record).
			covered := false
			for _, k := range debtKeys {
				if (lo == nil || k > *lo) && (hi == nil || k < *hi) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("modCnt %d exceeds rebuild budget %d (initSize %d) with no covering debt record", v.modCnt, budget, v.initSize)
			}
		}
		live := 0
		for _, ok := range v.exists {
			if ok {
				live++
			}
		}
		if !v.isLeaf() {
			if len(v.children) != len(v.rep)+1 {
				t.Fatalf("children/rep length mismatch")
			}
			for i, c := range v.children {
				var clo, chi *int64
				if i > 0 {
					clo = &v.rep[i-1]
				} else {
					clo = lo
				}
				if i < len(v.rep) {
					chi = &v.rep[i]
				} else {
					chi = hi
				}
				live += walk(c, clo, chi)
			}
		}
		if v.size != live {
			t.Fatalf("size %d != live count %d", v.size, live)
		}
		return live
	}
	if got := walk(tr.root, nil, nil); got != tr.Len() {
		t.Fatalf("walked live count %d != Len %d", got, tr.Len())
	}
	s := tr.Stats()
	if s.LiveKeys != tr.Len() {
		t.Fatalf("Stats.LiveKeys %d != Len %d", s.LiveKeys, tr.Len())
	}
	if h := tr.Height(); h != s.Height {
		t.Fatalf("Height() %d != Stats.Height %d", h, s.Height)
	}
	if tr.Len() > 0 && s.Height < 1 {
		t.Fatalf("non-empty tree with height %d", s.Height)
	}
	if tr.Len() == 0 && tr.root != nil && s.DeadKeys == 0 {
		t.Fatalf("empty tree retains a root without dead keys")
	}
}
