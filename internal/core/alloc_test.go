package core

import (
	"sync"
	"testing"

	"repro/internal/parallel"
)

// Steady-state allocation regression tests for the arena-backed
// rebuild engine: batched writes against a warmed tree must allocate a
// small, bounded amount, and recycling must beat the same churn with
// the arena disabled by a clear margin. DisableBufferReuse only turns
// off scratch recycling — chunked node storage stays on (it is pure
// layout, not a cache) — so the "fresh" baseline here already enjoys
// the chunking half of the win; the full ≥50% drop versus the
// pre-arena engine is pinned by the committed BenchmarkPutBatched /
// BenchmarkRemoveBatched -benchmem numbers and the CI allocs/op
// ceiling. The absolute ceilings below are deliberately generous
// (rebuild cadence moves the per-run average around); the relative
// assertion is the in-repo regression surface.

func seqKeys(n int, start, stride int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*stride
	}
	return out
}

// churnAllocs measures the mean allocations of one InsertBatched +
// RemoveBatched churn round against a 100k-key tree (batch 2000),
// after warming to steady state. Sequential pool: AllocsPerRun pins
// GOMAXPROCS to 1 anyway, and the sequential path is deterministic.
func churnAllocs(disable bool) float64 {
	tree := NewFromSorted(Config{DisableBufferReuse: disable}, nil, seqKeys(100_000, 0, 2))
	batch := seqKeys(2000, 1, 100) // interleaves the base range: misses and hits
	for i := 0; i < 4; i++ {
		tree.InsertBatched(batch)
		tree.RemoveBatched(batch)
	}
	return testing.AllocsPerRun(20, func() {
		tree.InsertBatched(batch)
		tree.RemoveBatched(batch)
	})
}

func TestSteadyStateChurnAllocs(t *testing.T) {
	reuse := churnAllocs(false)
	fresh := churnAllocs(true)
	t.Logf("insert+remove churn allocs/round: reuse=%.1f fresh=%.1f", reuse, fresh)
	if reuse > fresh*4/5 {
		t.Errorf("buffer reuse saves too little: %.1f allocs/round vs %.1f without reuse", reuse, fresh)
	}
	// Absolute bound: a 2000-key churn round allocates for leaf merges
	// and periodic rebuilds (observed ≈2.1k/round), but must stay well
	// under the one-allocation-per-temporary regime of the pre-arena
	// engine (>8k/round at this shape).
	if reuse > 4000 {
		t.Errorf("steady-state churn allocates %.1f per round, ceiling 4000", reuse)
	}
}

// putBatchAllocs measures PutBatched upsert rounds (mixed fresh
// inserts and value overwrites) with the inverse RemoveBatched kept
// outside the measured closure via a second batch cycle.
func TestSteadyStatePutBatchedAllocs(t *testing.T) {
	run := func(disable bool) float64 {
		tree := NewFromSortedKV(Config{DisableBufferReuse: disable}, nil,
			seqKeys(100_000, 0, 2), make([]uint64, 100_000))
		batch := seqKeys(2000, 0, 97) // every other key hits the base set
		vals := make([]uint64, len(batch))
		for i := 0; i < 4; i++ {
			tree.PutBatched(batch, vals)
			tree.RemoveBatched(batch)
		}
		return testing.AllocsPerRun(20, func() {
			tree.PutBatched(batch, vals)
			tree.RemoveBatched(batch)
		})
	}
	reuse := run(false)
	fresh := run(true)
	t.Logf("put+remove churn allocs/round: reuse=%.1f fresh=%.1f", reuse, fresh)
	if reuse > fresh*4/5 {
		t.Errorf("buffer reuse saves too little: %.1f vs %.1f", reuse, fresh)
	}
	if reuse > 4500 {
		t.Errorf("steady-state put churn allocates %.1f per round, ceiling 4500", reuse)
	}
}

func TestUnionAllocs(t *testing.T) {
	run := func(disable bool) float64 {
		cfg := Config{DisableBufferReuse: disable}
		a := NewFromSorted(cfg, nil, seqKeys(50_000, 0, 2))
		b := NewFromSorted(cfg, nil, seqKeys(5_000, 1, 20))
		a.Union(b, true) // warm the arena
		return testing.AllocsPerRun(5, func() { a.Union(b, true) })
	}
	reuse := run(false)
	fresh := run(true)
	t.Logf("union allocs/op: reuse=%.1f fresh=%.1f", reuse, fresh)
	// The chunked build benefits both sides; recycling must still
	// strictly win by removing the flatten/combine temporaries.
	if reuse >= fresh {
		t.Errorf("union with reuse allocates %.1f, no better than %.1f without", reuse, fresh)
	}
}

// TestConcurrentTreesSharedPool drives two trees that share one worker
// pool from two goroutines at once. Each tree owns its arena, so this
// must be race-free (run under -race) and each tree must end exactly
// at its oracle contents — a recycled buffer leaking across trees
// would corrupt one of them.
func TestConcurrentTreesSharedPool(t *testing.T) {
	pool := parallel.NewPool(4)
	for _, disable := range []bool{false, true} {
		name := "reuse"
		if disable {
			name = "fresh"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{LeafCap: 8, RebuildFactor: 1, DisableBufferReuse: disable}
			var wg sync.WaitGroup
			trees := make([]*Tree[int64, struct{}], 2)
			finals := make([][]int64, 2)
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Distinct key universes per tree: any cross-tree
					// buffer leak shows up as foreign keys.
					base := seqKeys(30_000, int64(g)*10_000_000, 3)
					tr := NewFromSorted(cfg, pool, base)
					oracle := make(map[int64]bool, len(base))
					for _, k := range base {
						oracle[k] = true
					}
					for round := 0; round < 25; round++ {
						ins := seqKeys(1500, int64(g)*10_000_000+int64(round), 7)
						del := seqKeys(1500, int64(g)*10_000_000+int64(round)*2, 11)
						tr.InsertBatched(ins)
						for _, k := range ins {
							oracle[k] = true
						}
						tr.RemoveBatched(del)
						for _, k := range del {
							delete(oracle, k)
						}
					}
					want := make([]int64, 0, len(oracle))
					for k := range oracle {
						want = append(want, k)
					}
					trees[g] = tr
					finals[g] = want
				}(g)
			}
			wg.Wait()
			for g := 0; g < 2; g++ {
				got := trees[g].Keys()
				if len(got) != len(finals[g]) {
					t.Fatalf("tree %d: %d keys, oracle %d", g, len(got), len(finals[g]))
				}
				seen := make(map[int64]bool, len(got))
				for i, k := range got {
					if i > 0 && got[i-1] >= k {
						t.Fatalf("tree %d: keys not strictly sorted at %d", g, i)
					}
					seen[k] = true
				}
				for _, k := range finals[g] {
					if !seen[k] {
						t.Fatalf("tree %d: missing key %d", g, k)
					}
				}
				checkInvariants(t, trees[g])
			}
		})
	}
}

// TestCloneDetached proves core Clone shares nothing mutable with the
// receiver, in both arena modes and mid-churn (dead keys, rebuild
// debt).
func TestCloneDetached(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "reuse"
		if disable {
			name = "fresh"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{LeafCap: 8, RebuildFactor: 2, DisableBufferReuse: disable}
			tr := NewFromSorted(cfg, parallel.NewPool(2), seqKeys(20_000, 0, 3))
			tr.RemoveBatched(seqKeys(3000, 0, 6)) // leave dead keys behind
			want := tr.Keys()

			cp := tr.Clone()
			if s := cp.Stats(); s.DeadKeys != 0 {
				t.Fatalf("clone carries %d dead keys; Clone must compact", s.DeadKeys)
			}
			// Mutate the original heavily; the clone must not move.
			tr.InsertBatched(seqKeys(5000, 1, 9))
			tr.RemoveBatched(seqKeys(5000, 0, 12))
			gotCp := cp.Keys()
			if len(gotCp) != len(want) {
				t.Fatalf("clone drifted after mutating original: %d vs %d keys", len(gotCp), len(want))
			}
			for i := range want {
				if gotCp[i] != want[i] {
					t.Fatalf("clone key %d drifted: %d vs %d", i, gotCp[i], want[i])
				}
			}
			// And the other direction.
			wantOrig := tr.Keys()
			cp.InsertBatched(seqKeys(4000, 2, 5))
			cp.RemoveBatched(seqKeys(4000, 0, 15))
			gotOrig := tr.Keys()
			if len(gotOrig) != len(wantOrig) {
				t.Fatalf("original drifted after mutating clone")
			}
			checkInvariants(t, tr)
			checkInvariants(t, cp)
		})
	}
}

func TestCloneEmpty(t *testing.T) {
	tr := New[int64, struct{}](Config{}, nil)
	cp := tr.Clone()
	if cp.Len() != 0 {
		t.Fatalf("clone of empty tree has %d keys", cp.Len())
	}
	cp.InsertBatched(seqKeys(100, 0, 1))
	if tr.Len() != 0 {
		t.Fatal("mutating clone of empty tree affected the original")
	}
}
