package core

import "repro/internal/iindex"

// Stats summarizes tree shape for inspection tools and balance tests,
// plus the arena counters that track the memory behavior of the
// rebuild engine.
type Stats struct {
	LiveKeys   int // keys logically in the tree
	DeadKeys   int // logically removed keys awaiting a rebuild
	Nodes      int // total nodes, leaves included
	Leaves     int // leaf nodes
	Height     int // nodes on the longest root-to-leaf path; 0 when empty
	RootRepLen int // length of the root's Rep array
	MaxLeafLen int // longest leaf Rep
	IndexBytes int // memory held by interpolation indexes

	// Arena counters, cumulative since construction. ScratchReuses /
	// ScratchGets is the recycling hit rate of the tree's internal
	// temporaries; it climbs toward 1 as the tree reaches steady
	// state (and stays 0 with buffer reuse disabled). ChunkBuilds
	// counts chunked subtree (re)builds and ChunkKeys the key slots
	// they laid out contiguously.
	ScratchGets   int64
	ScratchReuses int64
	ChunkBuilds   int64
	ChunkKeys     int64

	// LeafGrows counts leaf merges that outgrew their arrays and
	// reallocated with LeafSlack headroom — the realloc-rate axis of
	// the leafslack experiment.
	LeafGrows int64

	// Rebuild-scheduler counters (sched.go); all zero without
	// Config.RebuildBudgetPerEpoch. DebtKeys is the outstanding
	// rebuild debt (a gauge); DeferredKeys the cumulative rebuild keys
	// whose work was deferred past its triggering epoch; AsyncRebuilds
	// the background rebuilds launched; SpliceRetries the async
	// splices abandoned because the subtree changed mid-build.
	DebtKeys      int64
	DeferredKeys  int64
	AsyncRebuilds int64
	SpliceRetries int64
}

// Stats computes shape statistics in one O(n) traversal and snapshots
// the arena counters.
func (t *Tree[K, V]) Stats() Stats {
	var s Stats
	if t.root != nil {
		s.RootRepLen = len(t.root.rep)
	}
	statsRec(t.root, 1, &s)
	s.ScratchGets, s.ScratchReuses = t.ar.scratchStats()
	s.ChunkBuilds = t.ar.chunkBuilds.Load()
	s.ChunkKeys = t.ar.chunkKeys.Load()
	s.LeafGrows = t.ar.leafGrows.Load()
	if sc := t.sched; sc != nil {
		s.DebtKeys = sc.c.debtKeys.Load()
		s.DeferredKeys = sc.c.deferredKeys.Load()
		s.AsyncRebuilds = sc.c.asyncRuns.Load()
		s.SpliceRetries = sc.c.spliceRetries.Load()
	}
	return s
}

func statsRec[K iindex.Numeric, V any](v *node[K, V], depth int, s *Stats) {
	if v == nil {
		return
	}
	s.Nodes++
	if depth > s.Height {
		s.Height = depth
	}
	s.IndexBytes += v.idx.Bytes()
	for _, ok := range v.exists {
		if ok {
			s.LiveKeys++
		} else {
			s.DeadKeys++
		}
	}
	if v.isLeaf() {
		s.Leaves++
		if len(v.rep) > s.MaxLeafLen {
			s.MaxLeafLen = len(v.rep)
		}
		return
	}
	for _, c := range v.children {
		statsRec(c, depth+1, s)
	}
}

// Height reports the number of nodes on the longest root-to-leaf path.
func (t *Tree[K, V]) Height() int {
	return heightRec(t.root)
}

func heightRec[K iindex.Numeric, V any](v *node[K, V]) int {
	if v == nil {
		return 0
	}
	h := 0
	for _, c := range v.children {
		if ch := heightRec(c); ch > h {
			h = ch
		}
	}
	return h + 1
}
