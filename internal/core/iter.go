package core

import (
	"iter"

	"repro/internal/iindex"
)

// In-order iteration (Go 1.23 range-over-func). Iterators walk the
// tree lazily and stop as soon as the consumer breaks, so a prefix
// scan of a huge tree costs only the prefix. Like every other read,
// iteration is not safe concurrently with batched updates on the same
// tree.

// All returns an in-order iterator over every live (key, value) pair.
func (t *Tree[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		ascendNode(t.root, nil, nil, yield)
	}
}

// Ascend returns an in-order iterator over the live (key, value) pairs
// with lo <= key <= hi. Like AppendRangeKV, only the two boundary
// root-to-leaf paths compare keys individually; interior subtrees are
// walked bound-free.
func (t *Tree[K, V]) Ascend(lo, hi K) iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		if hi < lo {
			return
		}
		ascendNode(t.root, &lo, &hi, yield)
	}
}

// ascendNode yields the live pairs of v between the bounds (nil means
// unconstrained) in ascending key order, returning false when the
// consumer stopped early.
func ascendNode[K iindex.Numeric, V any](v *node[K, V], lo, hi *K, yield func(K, V) bool) bool {
	if v == nil || v.size == 0 {
		return true
	}
	if v.isLeaf() {
		for i, x := range v.rep {
			if !v.exists[i] {
				continue
			}
			if lo != nil && x < *lo {
				continue
			}
			if hi != nil && *hi < x {
				return true // leaf rep is sorted: nothing further matches
			}
			if !yield(x, v.vals[i]) {
				return false
			}
		}
		return true
	}
	k := len(v.rep)
	start, end := 0, k
	if lo != nil {
		start = lowerBoundKeys(v.rep, *lo)
	}
	if hi != nil {
		end = upperBoundKeys(v.rep, *hi)
	}
	for i := start; i <= end; i++ {
		clo, chi := lo, hi
		if i > start {
			clo = nil // interior child: fully above lo
		}
		if i < end {
			chi = nil // interior child: fully below hi
		}
		if !ascendNode(v.children[i], clo, chi, yield) {
			return false
		}
		if i < end && v.exists[i] {
			x := v.rep[i]
			if (lo == nil || *lo <= x) && (hi == nil || x <= *hi) {
				if !yield(x, v.vals[i]) {
					return false
				}
			}
		}
	}
	return true
}
