package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/parallel"
)

// Tests for the multi-version layer (mvcc.go): publish gating,
// copy-on-write isolation of published versions, O(1) durable
// snapshots, chunk reclamation, and the allocation contract of the
// *Into read variants. Concurrency is exercised end to end in the
// pbist frontends; here the layer's semantics are pinned down
// single-goroutine, where every interleaving is explicit.

func sortedBatch(r *rand.Rand, n int, span int64) []int64 {
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// TestPublishGating: mutations are invisible to the fast path until
// PublishVersion, then exactly visible.
func TestPublishGating(t *testing.T) {
	tr := New[int64, int64](Config{}, nil)
	tr.EnablePublish()
	if n := tr.SnapshotLen(); n != 0 {
		t.Fatalf("fresh published tree: SnapshotLen = %d, want 0", n)
	}
	tr.PutBatched([]int64{1, 2, 3}, []int64{10, 20, 30})
	if tr.SnapshotContains(2) {
		t.Fatal("unpublished insert visible to SnapshotContains")
	}
	if tr.Len() != 3 {
		t.Fatalf("live Len = %d, want 3", tr.Len())
	}
	tr.PublishVersion()
	if v, ok := tr.SnapshotGet(2); !ok || v != 20 {
		t.Fatalf("after publish: SnapshotGet(2) = (%d, %v), want (20, true)", v, ok)
	}
	if n := tr.SnapshotLen(); n != 3 {
		t.Fatalf("after publish: SnapshotLen = %d, want 3", n)
	}
	// Value overwrite alone must also republish (dirty tracking).
	tr.PutBatched([]int64{2}, []int64{99})
	tr.PublishVersion()
	if v, _ := tr.SnapshotGet(2); v != 99 {
		t.Fatalf("overwrite not republished: got %d, want 99", v)
	}
	// Removal too.
	tr.RemoveBatched([]int64{2})
	tr.PublishVersion()
	if tr.SnapshotContains(2) {
		t.Fatal("removed key still visible after publish")
	}
}

// TestVersionImmutability: a version handle taken at the fence keeps
// reading the state it was published with, across arbitrary later
// churn — including the rebuilds and chunk retirements that churn
// triggers.
func TestVersionImmutability(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pool := parallel.NewPool(4)
	tr := New[int64, int64](Config{}, pool)
	tr.EnablePublish()

	keys := sortedBatch(r, 4000, 1<<20)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = k * 3
	}
	tr.PutBatched(keys, vals)
	tr.PublishVersion()

	snap := tr.SnapshotNow()
	oracleK := slices.Clone(keys)

	// Churn hard enough to rebuild most of the tree several times.
	for round := 0; round < 50; round++ {
		b := sortedBatch(r, 500, 1<<20)
		bv := make([]int64, len(b))
		for i := range bv {
			bv[i] = -int64(round)
		}
		tr.PutBatched(b, bv)
		tr.RemoveBatched(sortedBatch(r, 300, 1<<20))
		tr.PublishVersion()
	}

	gotK, gotV := snap.Items()
	if !slices.Equal(gotK, oracleK) {
		t.Fatalf("snapshot keys drifted: got %d keys, want %d", len(gotK), len(oracleK))
	}
	for i, k := range gotK {
		if gotV[i] != k*3 {
			t.Fatalf("snapshot value drifted at key %d: got %d, want %d", k, gotV[i], k*3)
		}
	}
}

// TestSnapshotDetached: writes to a durable snapshot never leak into
// the live tree, and vice versa.
func TestSnapshotDetached(t *testing.T) {
	tr := New[int64, int64](Config{}, nil)
	tr.EnablePublish()
	keys := seqKeys(2000, 0, 2)
	vals := make([]int64, len(keys))
	tr.PutBatched(keys, vals)
	tr.PublishVersion()

	snap := tr.SnapshotNow()
	snap.PutBatched(seqKeys(500, 1, 4), make([]int64, 500))
	snap.RemoveBatched(seqKeys(100, 0, 2))

	if tr.Len() != 2000 {
		t.Fatalf("live tree mutated through snapshot: Len = %d, want 2000", tr.Len())
	}
	if tr.Contains(1) {
		t.Fatal("snapshot insert visible in live tree")
	}
	tr.PutBatched(seqKeys(300, 3, 8), make([]int64, 300))
	tr.PublishVersion()
	if snap.Len() != 2000+500-100 {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), 2000+500-100)
	}
	if snap.Contains(3) {
		t.Fatal("live insert visible in snapshot")
	}
}

// TestReclamationDrains: without outstanding snapshots or pins, the
// grace ring drains within two publishes of a retirement, and recycled
// chunk storage really does re-enter the scratch free lists.
func TestReclamationDrains(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := New[int64, struct{}](Config{}, nil)
	tr.EnablePublish()
	for round := 0; round < 120; round++ {
		tr.InsertBatched(sortedBatch(r, 400, 1<<16))
		tr.RemoveBatched(sortedBatch(r, 350, 1<<16))
		tr.PublishVersion()
	}
	// Quiesce: idle publishes advance the era and drain the ring.
	tr.dirty = true // force two more version bumps
	tr.PublishVersion()
	tr.dirty = true
	tr.PublishVersion()
	tr.PublishVersion()
	if n := len(tr.mv.ring); n != 0 {
		t.Fatalf("grace ring not drained: %d entries pending", n)
	}
	if _, reuses := tr.ar.keys.Stats(); reuses == 0 {
		t.Fatal("no key-buffer reuse after chunked churn: recycling is not reaching the free lists")
	}
}

// TestSnapshotCutoffBlocksRecycling: chunks reachable from a durable
// snapshot must never re-enter the free lists, however much the live
// tree churns — the snapshot keeps reading valid data (checked against
// an oracle) because those chunks are dropped to the GC instead.
func TestSnapshotCutoffBlocksRecycling(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tr := New[int64, int64](Config{}, nil)
	tr.EnablePublish()
	keys := sortedBatch(r, 3000, 1<<18)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = k + 7
	}
	tr.PutBatched(keys, vals)
	tr.PublishVersion()
	snap := tr.SnapshotNow()

	for round := 0; round < 200; round++ {
		tr.InsertBatched(sortedBatch(r, 200, 1<<18))
		tr.RemoveBatched(sortedBatch(r, 200, 1<<18))
		tr.PublishVersion()
	}
	for _, i := range []int{0, 1, len(keys) / 2, len(keys) - 1} {
		if v, ok := snap.Get(keys[i]); !ok || v != keys[i]+7 {
			t.Fatalf("snapshot read corrupted at key %d: (%d, %v)", keys[i], v, ok)
		}
	}
	if snap.Len() != len(keys) {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), len(keys))
	}
}

// TestMVCCDifferential: the fast path agrees with a map oracle at
// every fence, across random batched churn on every pool shape.
func TestMVCCDifferential(t *testing.T) {
	for name, pool := range corePools() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			tr := New[int64, int64](Config{}, pool)
			tr.EnablePublish()
			oracle := make(map[int64]int64)
			const span = 1 << 14
			for round := 0; round < 60; round++ {
				put := sortedBatch(r, 150, span)
				pv := make([]int64, len(put))
				for i := range pv {
					pv[i] = int64(round)<<20 | int64(i)
				}
				tr.PutBatched(put, pv)
				for i, k := range put {
					oracle[k] = pv[i]
				}
				del := sortedBatch(r, 100, span)
				tr.RemoveBatched(del)
				for _, k := range del {
					delete(oracle, k)
				}
				tr.PublishVersion()
				if got := tr.SnapshotLen(); got != len(oracle) {
					t.Fatalf("round %d: SnapshotLen = %d, oracle %d", round, got, len(oracle))
				}
				for i := 0; i < 200; i++ {
					k := r.Int63n(span)
					wantV, want := oracle[k]
					gotV, got := tr.SnapshotGet(k)
					if got != want || (got && gotV != wantV) {
						t.Fatalf("round %d key %d: fast path (%d, %v), oracle (%d, %v)",
							round, k, gotV, got, wantV, want)
					}
				}
			}
		})
	}
}

// TestIntoVariantsMatchAllocating: the *Into read variants agree with
// their allocating counterparts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := New[int64, int64](Config{}, nil)
	keys := sortedBatch(r, 5000, 1<<16)
	vals := make([]int64, len(keys))
	for i := range vals {
		vals[i] = int64(i)
	}
	tr.PutBatched(keys, vals)
	probe := sortedBatch(r, 2000, 1<<16)

	wantV, wantF := tr.GetBatched(probe)
	gotV := make([]int64, len(probe))
	gotF := make([]bool, len(probe))
	tr.GetBatchedInto(probe, gotV, gotF)
	if !slices.Equal(gotF, wantF) || !slices.Equal(gotV, wantV) {
		t.Fatal("GetBatchedInto disagrees with GetBatched")
	}

	wantC := tr.ContainsBatched(probe)
	gotC := make([]bool, len(probe))
	tr.ContainsBatchedInto(probe, gotC)
	if !slices.Equal(gotC, wantC) {
		t.Fatal("ContainsBatchedInto disagrees with ContainsBatched")
	}
}

// TestReadIntoAllocs is the satellite AllocsPerRun ceiling: warmed
// steady-state batched reads through the *Into variants must not
// allocate at all — destinations are caller-recycled and the traversal
// scratch comes from the arena.
func TestReadIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceiling is checked in the non-race run")
	}
	r := rand.New(rand.NewSource(3))
	tr := New[int64, int64](Config{}, nil)
	tr.PutBatched(seqKeys(20000, 0, 3), make([]int64, 20000))
	probe := sortedBatch(r, 1000, 60000)
	vals := make([]int64, len(probe))
	found := make([]bool, len(probe))
	res := make([]bool, len(probe))
	// Warm the walker pool and the arena.
	tr.GetBatchedInto(probe, vals, found)
	tr.ContainsBatchedInto(probe, res)

	if avg := testing.AllocsPerRun(20, func() {
		clear(vals)
		clear(found)
		tr.GetBatchedInto(probe, vals, found)
	}); avg > 0 {
		t.Fatalf("GetBatchedInto allocates %.1f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		clear(res)
		tr.ContainsBatchedInto(probe, res)
	}); avg > 0 {
		t.Fatalf("ContainsBatchedInto allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestFastReadAllocs: the wait-free point lookup is allocation-free.
func TestFastReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceiling is checked in the non-race run")
	}
	tr := New[int64, int64](Config{}, nil)
	tr.EnablePublish()
	tr.PutBatched(seqKeys(50000, 0, 2), make([]int64, 50000))
	tr.PublishVersion()
	var sink int64
	if avg := testing.AllocsPerRun(100, func() {
		v, _ := tr.SnapshotGet(31415)
		sink += v
	}); avg > 0 {
		t.Fatalf("SnapshotGet allocates %.1f/op, want 0", avg)
	}
	_ = sink
}

// TestNonPublishingTreesStayGenZero: trees that never EnablePublish
// must never copy a node — the whole layer is opt-in.
func TestNonPublishingTreesStayGenZero(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := New[int64, int64](Config{}, nil)
	for round := 0; round < 20; round++ {
		b := sortedBatch(r, 300, 1<<14)
		tr.PutBatched(b, make([]int64, len(b)))
		tr.RemoveBatched(sortedBatch(r, 200, 1<<14))
	}
	if tr.writeGen != 0 || tr.mv != nil {
		t.Fatalf("non-publishing tree grew MVCC state: writeGen=%d mv=%v", tr.writeGen, tr.mv)
	}
	var walk func(v *node[int64, int64])
	walk = func(v *node[int64, int64]) {
		if v == nil {
			return
		}
		if v.gen != 0 {
			t.Fatalf("node with gen %d in a never-published tree", v.gen)
		}
		for _, c := range v.children {
			walk(c)
		}
	}
	walk(tr.root)
}
