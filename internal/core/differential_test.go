package core

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

// refSet is the model the tree is differentially tested against.
type refSet map[int64]bool

func (r refSet) insertBatch(keys []int64) int {
	n := 0
	for _, k := range keys {
		if !r[k] {
			r[k] = true
			n++
		}
	}
	return n
}

func (r refSet) removeBatch(keys []int64) int {
	n := 0
	for _, k := range keys {
		if r[k] {
			delete(r, k)
			n++
		}
	}
	return n
}

func (r refSet) containsBatch(keys []int64) []bool {
	out := make([]bool, len(keys))
	for i, k := range keys {
		out[i] = r[k]
	}
	return out
}

func (r refSet) sorted() []int64 {
	out := make([]int64, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// randomBatch draws a sorted duplicate-free batch from [0, span).
func randomBatch(r *rand.Rand, maxLen int, span int64) []int64 {
	n := r.Intn(maxLen + 1)
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestDifferentialBatchSequences(t *testing.T) {
	configs := map[string]Config{
		"defaults":       {},
		"tinyLeaves":     {LeafCap: 4, RebuildFactor: 1},
		"lazyRebuild":    {LeafCap: 32, RebuildFactor: 8},
		"rankTraverse":   {Traverse: TraverseRank},
		"coarseIndex":    {IndexSizeFactor: 0.25},
		"aggressiveRank": {Traverse: TraverseRank, LeafCap: 4, RebuildFactor: 1},
		// Arena matrix: the full harness must pass bit-identically with
		// buffer recycling off, and with it on under rebuild churn.
		"noReuse":     {DisableBufferReuse: true},
		"noReuseTiny": {DisableBufferReuse: true, LeafCap: 4, RebuildFactor: 1},
	}
	for cname, cfg := range configs {
		for pname, p := range corePools() {
			t.Run(cname+"/"+pname, func(t *testing.T) {
				tr := New[int64, struct{}](cfg, p)
				ref := refSet{}
				r := rand.New(rand.NewSource(int64(len(cname)*31 + len(pname))))
				const span = 5000
				for round := 0; round < 60; round++ {
					batch := randomBatch(r, 800, span)
					switch round % 3 {
					case 0:
						if got, want := tr.InsertBatched(batch), ref.insertBatch(batch); got != want {
							t.Fatalf("round %d: InsertBatched = %d, want %d", round, got, want)
						}
					case 1:
						if got, want := tr.RemoveBatched(batch), ref.removeBatch(batch); got != want {
							t.Fatalf("round %d: RemoveBatched = %d, want %d", round, got, want)
						}
					default:
						if got, want := tr.ContainsBatched(batch), ref.containsBatch(batch); !slices.Equal(got, want) {
							t.Fatalf("round %d: ContainsBatched mismatch", round)
						}
					}
					if tr.Len() != len(ref) {
						t.Fatalf("round %d: Len = %d, want %d", round, tr.Len(), len(ref))
					}
				}
				if !slices.Equal(tr.Keys(), ref.sorted()) {
					t.Fatal("final key sets differ")
				}
				checkInvariants(t, tr)
			})
		}
	}
}

func TestLargeChurnKeepsBalance(t *testing.T) {
	// Sustained insert/remove churn across many batches: the rebuild
	// rule must keep height doubly logarithmic and reclaim dead keys.
	p := parallel.NewPool(8)
	tr := New[int64, struct{}](Config{}, p)
	ref := refSet{}
	r := rand.New(rand.NewSource(77))
	const span = 1 << 22
	for round := 0; round < 40; round++ {
		ins := randomBatch(r, 20000, span)
		rem := randomBatch(r, 20000, span)
		tr.InsertBatched(ins)
		ref.insertBatch(ins)
		tr.RemoveBatched(rem)
		ref.removeBatch(rem)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	if !slices.Equal(tr.Keys(), ref.sorted()) {
		t.Fatal("contents diverged under churn")
	}
	s := tr.Stats()
	if s.Height > 10 {
		t.Fatalf("height = %d after churn; rebuilds not maintaining balance", s.Height)
	}
	if s.DeadKeys > 4*s.LiveKeys+1000 {
		t.Fatalf("dead keys %d vs live %d: space not being reclaimed", s.DeadKeys, s.LiveKeys)
	}
	checkInvariants(t, tr)
}

func TestMonotoneBatchesRebalance(t *testing.T) {
	// Strictly ascending batches are the adversarial pattern of
	// Fig. 7: without rebuilds everything piles into the rightmost
	// leaf.
	tr := New[int64, struct{}](Config{}, parallel.NewPool(4))
	next := int64(0)
	for round := 0; round < 50; round++ {
		batch := make([]int64, 2000)
		for i := range batch {
			batch[i] = next
			next++
		}
		if n := tr.InsertBatched(batch); n != len(batch) {
			t.Fatalf("round %d: inserted %d", round, n)
		}
	}
	if tr.Len() != int(next) {
		t.Fatalf("Len = %d, want %d", tr.Len(), next)
	}
	if h := tr.Height(); h > 10 {
		t.Fatalf("height = %d after monotone batch inserts", h)
	}
	checkInvariants(t, tr)
}

func TestSingletonBatches(t *testing.T) {
	// Degenerate batch size m=1 must behave exactly like scalar ops.
	tr := New[int64, struct{}](Config{LeafCap: 4, RebuildFactor: 1}, parallel.NewPool(2))
	ref := refSet{}
	r := rand.New(rand.NewSource(31))
	for op := 0; op < 5000; op++ {
		k := r.Int63n(300)
		switch op % 3 {
		case 0:
			if got, want := tr.InsertBatched([]int64{k}), ref.insertBatch([]int64{k}); got != want {
				t.Fatalf("op %d: insert mismatch", op)
			}
		case 1:
			if got, want := tr.RemoveBatched([]int64{k}), ref.removeBatch([]int64{k}); got != want {
				t.Fatalf("op %d: remove mismatch", op)
			}
		default:
			if got, want := tr.Contains(k), ref[k]; got != want {
				t.Fatalf("op %d: contains mismatch", op)
			}
		}
	}
	if !slices.Equal(tr.Keys(), ref.sorted()) {
		t.Fatal("final sets differ")
	}
}

func TestQuickPropertyBatches(t *testing.T) {
	p := parallel.NewPool(4)
	prop := func(rounds []byte, seed int64) bool {
		tr := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 2}, p)
		ref := refSet{}
		r := rand.New(rand.NewSource(seed))
		for _, op := range rounds {
			batch := randomBatch(r, 64, 256)
			switch op % 3 {
			case 0:
				if tr.InsertBatched(batch) != ref.insertBatch(batch) {
					return false
				}
			case 1:
				if tr.RemoveBatched(batch) != ref.removeBatch(batch) {
					return false
				}
			default:
				if !slices.Equal(tr.ContainsBatched(batch), ref.containsBatch(batch)) {
					return false
				}
			}
		}
		return slices.Equal(tr.Keys(), ref.sorted())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAlgebraIdentities(t *testing.T) {
	// §2.2: InsertBatched is union, RemoveBatched is difference,
	// ContainsBatched is intersection.
	p := parallel.NewPool(8)
	a := sortedUniqueKeys(41, 20000, 1<<24)
	b := sortedUniqueKeys(42, 20000, 1<<24)

	union := parallel.Merge(p, a, parallel.Difference(p, b, a))
	diff := parallel.Difference(p, a, b)
	inter := parallel.Intersect(p, a, b)

	tr := NewFromSorted(Config{}, p, a)
	tr.InsertBatched(b)
	if !slices.Equal(tr.Keys(), union) {
		t.Fatal("InsertBatched does not implement union")
	}

	tr = NewFromSorted(Config{}, p, a)
	tr.RemoveBatched(b)
	if !slices.Equal(tr.Keys(), diff) {
		t.Fatal("RemoveBatched does not implement difference")
	}

	tr = NewFromSorted(Config{}, p, a)
	res := tr.ContainsBatched(b)
	var got []int64
	for i, ok := range res {
		if ok {
			got = append(got, b[i])
		}
	}
	if !slices.Equal(got, inter) {
		t.Fatal("ContainsBatched does not implement intersection")
	}
}
