package core

import "repro/internal/parallel"

// RemoveBatched deletes every key of the sorted duplicate-free batch
// from the tree and returns the number of keys actually removed (absent
// keys are skipped). It implements §6: the batch is filtered to the
// keys currently present, then the traversal marks each of them
// logically removed in the Exists array of the node whose Rep holds it
// (Fig. 12). Space — including the value slots — is reclaimed by the
// next rebuild of an enclosing subtree (§7). The membership side array
// and the filtered batch are arena scratch with this call's lifetime.
//
// RemoveBatched(B) is set difference: A.RemoveBatched(B) makes
// A = A \ B (§2.2).
func (t *Tree[K, V]) RemoveBatched(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	t.beginBatch()
	present := t.ar.bools.GetZero(len(keys))
	t.containsInto(keys, present)
	doomedBuf := t.ar.keys.Get(len(keys))
	doomed := parallel.FilterIndexInto(t.pool, keys, doomedBuf, func(i int) bool { return present[i] })
	t.ar.bools.Put(present)
	n := len(doomed)
	if n > 0 {
		t.dirty = true
		t.root = t.removeRec(t.root, doomed, 0, n)
	}
	t.ar.keys.Put(doomedBuf)
	return n
}

// removeRec removes keys[l:r) — all logically present — from subtree v
// and returns the possibly replaced subtree root.
func (t *Tree[K, V]) removeRec(v *node[K, V], keys []K, l, r int) *node[K, V] {
	if r-l <= seqSegCutoff || t.pool.Workers() == 1 {
		sc := t.newScratch()
		root := t.removeSeq(v, keys, l, r, sc, 0)
		sc.release()
		return root
	}
	k := r - l
	if t.rebuildDue(v, k) {
		// §7.1 step 2b: the recursion stops here for this subtree —
		// unless the epoch's budget cannot cover the v.size−k keys the
		// rebuild would lay down; then the subtree is recorded as debt
		// and the removal proceeds below (sched.go).
		if t.tryReserveRebuild(v.size - k) {
			root := t.rebuildSubtracted(v, keys, l, r)
			t.retireSubtree(v)
			return root
		}
		t.deferRebuild(v, k, v.size-k)
	}
	v = t.owned(v)
	v.modCnt += k
	v.size -= k

	seg := r - l
	pf := t.ar.i32s.Get(seg)
	defer t.ar.i32s.Put(pf)
	t.findPositions(v, keys, l, r, pf)

	// Mark keys found in this rep as logically removed (§6). Every
	// batch key is live in the tree, so each is found exactly once
	// along its root-to-leaf path.
	exists := v.exists
	parallel.For(t.pool, seg, 0, func(i int) {
		if pf[i]&1 == 1 {
			exists[pf[i]>>1] = false
		}
	})

	if v.isLeaf() {
		return v // all segment keys were necessarily found here
	}
	t.forEachChildRun(pf, func(lo, hi int, child int) {
		v.children[child] = t.removeRec(v.children[child], keys, l+lo, l+hi)
	})
	return v
}
