package core

// Clone returns a deep, fully detached copy of the tree: one parallel
// flatten of the receiver (§7.2) into arena scratch, one chunked ideal
// rebuild (§7.3) into the clone — O(n) work and polylogarithmic span.
// The clone shares the receiver's configuration and worker pool but
// owns its own root, node storage, and arena, so subsequent batched
// operations on either tree can never be observed through the other.
// It is also ideally balanced even when the receiver is mid-churn,
// which makes Clone a compaction: logically removed keys and the
// receiver's rebuild debt do not carry over.
//
// Values are copied by assignment; for pointer-typed V both trees
// share the pointed-to data, as with any shallow value copy.
func (t *Tree[K, V]) Clone() *Tree[K, V] {
	res := New[K, V](t.cfg, t.pool)
	if t.root == nil {
		return res
	}
	fk, fv := t.flattenScratch(t.root)
	res.root = res.buildIdeal(fk, fv)
	t.ar.putKV(fk, fv)
	return res
}
