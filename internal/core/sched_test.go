package core

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"
)

// schedMutation is one step of a deterministic churn script: a put
// batch or a remove batch, shared verbatim across scheduler configs by
// the differential tests.
type schedMutation struct {
	put  bool
	keys []int64
	vals []int64
}

// schedScript builds a write-heavy churn script: puts with a skewed
// reinsert rate plus periodic removes, sized so the root trips its
// rebuild budget several times over the run.
func schedScript(seed int64, steps, batch int) []schedMutation {
	r := rand.New(rand.NewSource(seed))
	script := make([]schedMutation, 0, steps)
	for i := 0; i < steps; i++ {
		keys := sortedUniqueKeys(r.Int63(), batch, 1<<16)
		if i%4 == 3 {
			script = append(script, schedMutation{keys: keys})
			continue
		}
		vals := make([]int64, len(keys))
		for j := range vals {
			vals[j] = r.Int63()
		}
		script = append(script, schedMutation{put: true, keys: keys, vals: vals})
	}
	return script
}

// applyScript runs script against tr. When epochs is true every step is
// bracketed the way the combiner brackets an epoch — BeginRebuildEpoch,
// mutate, PublishVersion, EndRebuildEpoch — and the per-epoch rebuild
// spend is asserted against budget (0 disables the assertion).
func applyScript(t *testing.T, tr *Tree[int64, int64], script []schedMutation, epochs bool, budget int) {
	t.Helper()
	for i, m := range script {
		if epochs {
			tr.BeginRebuildEpoch()
		}
		if m.put {
			tr.PutBatched(m.keys, m.vals)
		} else {
			tr.RemoveBatched(m.keys)
		}
		if epochs {
			tr.PublishVersion()
			spent, _ := tr.EndRebuildEpoch()
			if budget > 0 && spent > budget {
				t.Fatalf("step %d: epoch spent %d rebuild keys, budget %d", i, spent, budget)
			}
		}
	}
}

// drainAsync runs empty epochs until the scheduler's debt heap empties:
// each round splices any finished background rebuild, republishes, and
// kicks the next job. Fails the test if debt does not converge.
func drainAsync(t *testing.T, tr *Tree[int64, int64]) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		tr.BeginRebuildEpoch()
		tr.PublishVersion()
		tr.EndRebuildEpoch()
		tr.sched.mu.Lock()
		debt := len(tr.sched.heap)
		busy := tr.sched.job != nil
		tr.sched.mu.Unlock()
		if debt == 0 && !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("async drain did not converge: %d debt records outstanding", debt)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRebuildBudgetStandaloneBatches: without epoch bracketing, every
// batched mutation is its own budget window — the spend after any batch
// never exceeds the cap, and deferred debt is tracked, not lost.
func TestRebuildBudgetStandaloneBatches(t *testing.T) {
	const budget = 512
	for name, p := range corePools() {
		t.Run(name, func(t *testing.T) {
			tr := New[int64, int64](Config{RebuildBudgetPerEpoch: budget}, p)
			for i, m := range schedScript(11, 120, 512) {
				if m.put {
					tr.PutBatched(m.keys, m.vals)
				} else {
					tr.RemoveBatched(m.keys)
				}
				tr.sched.mu.Lock()
				spent := tr.sched.spent
				tr.sched.mu.Unlock()
				if spent > budget {
					t.Fatalf("batch %d: spent %d rebuild keys, budget %d", i, spent, budget)
				}
			}
			checkInvariants(t, tr)
			if tr.Stats().DeferredKeys == 0 {
				t.Fatal("write-heavy churn never deferred a rebuild; budget not exercised")
			}
		})
	}
}

// TestRebuildBudgetEpochCap: under combiner-style epoch bracketing the
// spend EndRebuildEpoch reports — write-traversal rebuilds plus the
// post-publish drain — respects the cap every epoch, in both bounded
// modes. This is the acceptance assertion behind the epoch traces.
func TestRebuildBudgetEpochCap(t *testing.T) {
	const budget = 1024
	for _, async := range []bool{false, true} {
		name := "bounded-sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			tr := New[int64, int64](Config{RebuildBudgetPerEpoch: budget, AsyncRebuild: async}, nil)
			tr.EnablePublish()
			applyScript(t, tr, schedScript(7, 200, 512), true, budget)
			checkInvariants(t, tr)
			st := tr.Stats()
			if st.DeferredKeys == 0 {
				t.Fatal("write-heavy churn never deferred a rebuild; budget not exercised")
			}
			if async {
				drainAsync(t, tr)
				if d := tr.Stats().DebtKeys; d != 0 {
					t.Fatalf("debt gauge %d after async drain, want 0", d)
				}
				if tr.Stats().AsyncRebuilds == 0 {
					t.Fatal("async mode launched no background rebuilds")
				}
				checkInvariants(t, tr)
			}
		})
	}
}

// TestSchedDifferentialConvergence: one churn script applied under
// eager, bounded-sync, and async scheduling converges to identical
// contents — scheduling moves rebuild work in time, never changes what
// the tree stores — and every variant passes the full invariant check.
func TestSchedDifferentialConvergence(t *testing.T) {
	script := schedScript(42, 160, 384)

	eager := New[int64, int64](Config{}, nil)
	eager.EnablePublish()
	applyScript(t, eager, script, true, 0)

	bounded := New[int64, int64](Config{RebuildBudgetPerEpoch: 256}, nil)
	bounded.EnablePublish()
	applyScript(t, bounded, script, true, 256)

	async := New[int64, int64](Config{RebuildBudgetPerEpoch: 256, AsyncRebuild: true}, nil)
	async.EnablePublish()
	applyScript(t, async, script, true, 256)
	drainAsync(t, async)

	wantK, wantV := eager.Items()
	for _, v := range []struct {
		name string
		tr   *Tree[int64, int64]
	}{{"bounded-sync", bounded}, {"async", async}} {
		gotK, gotV := v.tr.Items()
		if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
			t.Fatalf("%s diverged from eager: %d keys vs %d", v.name, len(gotK), len(wantK))
		}
		checkInvariants(t, v.tr)
	}
	checkInvariants(t, eager)
}

// TestAsyncRebuildWithSnapshotReaders races background rebuilds and
// their splices against wait-free snapshot readers across many
// reclamation grace periods: readers pin versions, iterate durable
// snapshots, and must never observe a key the published version did
// not contain. Run under -race this also checks the splice path
// publishes the rebuilt subtree safely.
func TestAsyncRebuildWithSnapshotReaders(t *testing.T) {
	tr := New[int64, int64](Config{RebuildBudgetPerEpoch: 128, AsyncRebuild: true}, nil)
	tr.EnablePublish()
	tr.PublishVersion()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r.Intn(3) {
				case 0:
					tr.SnapshotContains(r.Int63n(1 << 14))
				case 1:
					if v, ok := tr.SnapshotGet(r.Int63n(1 << 14)); ok && v < 0 {
						panic("negative value from snapshot")
					}
				default:
					snap := tr.SnapshotNow()
					k := snap.Keys()
					if !slices.IsSorted(k) {
						panic("snapshot keys unsorted")
					}
				}
			}
		}(int64(g) + 1)
	}

	// Small key span + small batches force heavy leaf churn and many
	// subtree retirements, cycling the grace ring while readers hold
	// pins; the async drain splices mid-churn.
	applyScript(t, tr, schedScript(99, 250, 128), true, 128)
	drainAsync(t, tr)
	close(stop)
	wg.Wait()
	checkInvariants(t, tr)
}
