package core

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

// rangeRef computes [lo,hi] extraction over a sorted reference slice.
func rangeRef(keys []int64, lo, hi int64) []int64 {
	var out []int64
	for _, k := range keys {
		if k >= lo && k <= hi {
			out = append(out, k)
		}
	}
	return out
}

func TestMinMax(t *testing.T) {
	tr := New[int64, struct{}](Config{}, nil)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported ok")
	}
	keys := sortedUniqueKeys(1, 10000, 1<<40)
	tr = NewFromSorted(Config{}, parallel.NewPool(4), keys)
	if mn, _, ok := tr.Min(); !ok || mn != keys[0] {
		t.Fatalf("Min = %d,%v want %d", mn, ok, keys[0])
	}
	if mx, _, ok := tr.Max(); !ok || mx != keys[len(keys)-1] {
		t.Fatalf("Max = %d,%v want %d", mx, ok, keys[len(keys)-1])
	}
}

func TestMinMaxSkipDeadKeys(t *testing.T) {
	keys := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	tr := NewFromSorted(Config{LeafCap: 4}, nil, keys)
	tr.RemoveBatched([]int64{1, 2, 3, 18, 19, 20})
	if mn, _, ok := tr.Min(); !ok || mn != 4 {
		t.Fatalf("Min after removals = %d,%v want 4", mn, ok)
	}
	if mx, _, ok := tr.Max(); !ok || mx != 17 {
		t.Fatalf("Max after removals = %d,%v want 17", mx, ok)
	}
	tr.RemoveBatched(tr.Keys())
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on fully-emptied tree reported ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on fully-emptied tree reported ok")
	}
}

func TestRangeMatchesReference(t *testing.T) {
	keys := sortedUniqueKeys(2, 20000, 1<<20)
	tr := NewFromSorted(Config{}, parallel.NewPool(4), keys)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a, b := r.Int63n(1<<20), r.Int63n(1<<20)
		lo, hi := min(a, b), max(a, b)
		got := tr.Range(lo, hi)
		want := rangeRef(keys, lo, hi)
		if !slices.Equal(got, want) {
			t.Fatalf("Range(%d,%d): got %d keys, want %d", lo, hi, len(got), len(want))
		}
		if c := tr.CountRange(lo, hi); c != len(want) {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, c, len(want))
		}
	}
	// Inverted and empty ranges.
	if got := tr.Range(100, 50); got != nil {
		t.Fatal("inverted range should be empty")
	}
	if c := tr.CountRange(100, 50); c != 0 {
		t.Fatal("inverted CountRange should be 0")
	}
	// Full range equals Keys.
	if !slices.Equal(tr.Range(-1<<40, 1<<40), keys) {
		t.Fatal("full range mismatch")
	}
}

func TestRangeRespectsLogicalDeletion(t *testing.T) {
	keys := sortedUniqueKeys(4, 5000, 1<<16)
	tr := NewFromSorted(Config{}, parallel.NewPool(4), keys)
	dead := keys[1000:2000]
	tr.RemoveBatched(dead)
	live := tr.Keys()
	got := tr.Range(keys[0], keys[len(keys)-1])
	if !slices.Equal(got, live) {
		t.Fatal("Range leaks logically removed keys")
	}
	if c := tr.CountRange(keys[0], keys[len(keys)-1]); c != len(live) {
		t.Fatalf("CountRange counts dead keys: %d vs %d", c, len(live))
	}
}

func TestRangeBoundsInclusive(t *testing.T) {
	tr := NewFromSorted(Config{}, nil, []int64{10, 20, 30, 40, 50})
	if got := tr.Range(20, 40); !slices.Equal(got, []int64{20, 30, 40}) {
		t.Fatalf("Range(20,40) = %v", got)
	}
	if got := tr.Range(20, 20); !slices.Equal(got, []int64{20}) {
		t.Fatalf("Range(20,20) = %v", got)
	}
	if got := tr.Range(21, 29); len(got) != 0 {
		t.Fatalf("Range(21,29) = %v, want empty", got)
	}
}

func TestAppendRangeReusesBuffer(t *testing.T) {
	tr := NewFromSorted(Config{}, nil, []int64{1, 2, 3})
	buf := make([]int64, 0, 16)
	out := tr.AppendRange(buf, 1, 3)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendRange reallocated despite sufficient capacity")
	}
}

func TestSelectAndRankOf(t *testing.T) {
	keys := sortedUniqueKeys(5, 8000, 1<<30)
	tr := NewFromSorted(Config{}, parallel.NewPool(4), keys)
	for _, idx := range []int{0, 1, 100, 4000, len(keys) - 1} {
		if got, _, ok := tr.Select(idx); !ok || got != keys[idx] {
			t.Fatalf("Select(%d) = %d,%v want %d", idx, got, ok, keys[idx])
		}
	}
	if _, _, ok := tr.Select(-1); ok {
		t.Fatal("Select(-1) should fail")
	}
	if _, _, ok := tr.Select(len(keys)); ok {
		t.Fatal("Select(len) should fail")
	}
	for _, i := range []int{0, 7, 777, 7999} {
		if got := tr.RankOf(keys[i]); got != i {
			t.Fatalf("RankOf(%d) = %d, want %d", keys[i], got, i)
		}
	}
	// Rank of an absent key equals the rank of its insertion point.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		x := r.Int63n(1 << 30)
		want, _ := slices.BinarySearch(keys, x)
		if got := tr.RankOf(x); got != want {
			t.Fatalf("RankOf(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSelectRankAfterChurn(t *testing.T) {
	tr := New[int64, struct{}](Config{LeafCap: 8, RebuildFactor: 2}, parallel.NewPool(4))
	ref := refSet{}
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		ins := randomBatch(r, 300, 4000)
		rem := randomBatch(r, 300, 4000)
		tr.InsertBatched(ins)
		ref.insertBatch(ins)
		tr.RemoveBatched(rem)
		ref.removeBatch(rem)
	}
	sorted := ref.sorted()
	for _, idx := range []int{0, len(sorted) / 3, len(sorted) - 1} {
		if idx < 0 || len(sorted) == 0 {
			continue
		}
		if got, _, ok := tr.Select(idx); !ok || got != sorted[idx] {
			t.Fatalf("Select(%d) after churn = %d,%v want %d", idx, got, ok, sorted[idx])
		}
		if got := tr.RankOf(sorted[idx]); got != idx {
			t.Fatalf("RankOf(%d) after churn = %d, want %d", sorted[idx], got, idx)
		}
	}
}

func TestSelectRankRoundTripQuick(t *testing.T) {
	keys := sortedUniqueKeys(8, 3000, 1<<25)
	tr := NewFromSorted(Config{}, nil, keys)
	prop := func(rawIdx uint16) bool {
		idx := int(rawIdx) % len(keys)
		k, _, ok := tr.Select(idx)
		return ok && tr.RankOf(k) == idx
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQuickAgainstReference(t *testing.T) {
	keys := sortedUniqueKeys(9, 2000, 1<<16)
	tr := NewFromSorted(Config{}, parallel.NewPool(2), keys)
	prop := func(a, b uint16) bool {
		lo, hi := int64(min(a, b)), int64(max(a, b))
		return slices.Equal(tr.Range(lo, hi), rangeRef(keys, lo, hi)) &&
			tr.CountRange(lo, hi) == len(rangeRef(keys, lo, hi))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
