package core

import (
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/iindex"
	"repro/internal/obs"
)

// This file implements the tree's multi-version layer: copy-on-rebuild
// publication of immutable roots, wait-free point reads against the
// published version, O(changed) durable snapshots that share chunk
// storage with the live tree, and epoch-based reclamation of retired
// chunks.
//
// The design follows the non-blocking C-IST line (Prokopec, Brown,
// Alistarh; see PAPERS.md): reads interpolate against a published
// immutable version while the combiner keeps batching writes into the
// live tree. Three pieces make that sound here:
//
//   - Generations. The tree carries a write generation (writeGen,
//     combiner-confined) and every node records the generation it was
//     created in. A mutation first calls owned(): a node from an older
//     generation is copied (path copying), so nodes reachable from a
//     published Version are never written again. Publishing bumps
//     writeGen, freezing everything published. Trees that never call
//     EnablePublish keep writeGen at zero forever, every node matches,
//     and owned() is an equality test — the direct Map/Tree views pay
//     nothing for this layer.
//
//   - Publication. PublishVersion (combiner-confined) wraps the
//     current root in an immutable Version and stores it in an
//     atomic.Pointer. Readers load the pointer and walk — no locks, no
//     queues, no retries: wait-free.
//
//   - Reclamation. A rebuild disconnects the replaced subtree, whose
//     chunk-backed arrays may still be visible to a reader that loaded
//     an older Version moments ago. Retired chunks therefore enter a
//     bounded grace ring stamped with the current reclamation era;
//     readers pin a striped counter band keyed by era parity around
//     each walk. The era only advances (at publish time) when the band
//     about to be reused has drained, and a chunk recycles into the
//     tree arena's scratch free lists — composing with the scratch
//     recycling the write paths already do — only once the era has
//     advanced twice past its stamp, i.e. after every reader that
//     could possibly have seen it has unpinned. Chunks that might be
//     referenced by a durable snapshot (born at or before the latest
//     Snapshot cut) and ring overflow are dropped to the GC instead:
//     reclamation degrades, never breaks.
const (
	// retireRingCap bounds the grace ring: retired chunks beyond this
	// many pending entries are dropped to the GC instead of recycled,
	// so a rebuild storm cannot accumulate unbounded reclamation debt.
	retireRingCap = 256
	// readerStripes spreads reader pins over independent cache lines
	// per era band, so concurrent fast reads do not contend on one
	// counter word.
	readerStripes = 8
)

// Version is one published immutable tree state. Pointer identity is
// version identity: two loads returning the same *Version observed the
// same state. A Version is safe for concurrent walks by any number of
// goroutines; nothing reachable from it is ever mutated.
type Version[K iindex.Numeric, V any] struct {
	root *node[K, V]
	size int
	gen  uint64 // writeGen the version was built under
	seq  uint64 // publish sequence number (1, 2, ...)
	at   int64  // publish wall time, unix nanoseconds
}

// Len reports the number of live keys in the version. Nil-safe: a tree
// that never published reads as empty.
func (v *Version[K, V]) Len() int {
	if v == nil {
		return 0
	}
	return v.size
}

// Seq returns the publish sequence number (0 for nil).
func (v *Version[K, V]) Seq() uint64 {
	if v == nil {
		return 0
	}
	return v.seq
}

// stripe is one padded reader counter.
type stripe struct {
	n atomic.Int64
	_ [56]byte
}

// band is one era-parity set of reader counters.
type band struct {
	cells [readerStripes]stripe
}

func (b *band) sum() int64 {
	var s int64
	for i := range b.cells {
		s += b.cells[i].n.Load()
	}
	return s
}

// retiredChunk is one grace-ring entry: chunk storage disconnected
// from the live tree, waiting out its grace period.
type retiredChunk[K iindex.Numeric, V any] struct {
	ch    arena.Chunk[K, V]
	born  uint64 // writeGen the chunk was built under
	stamp uint64 // era at retirement
}

// chunkHandle ties the root node of a chunked build back to its chunk
// so a later rebuild of an enclosing subtree can retire the storage.
// COW copies share the handle with their original; that is safe
// because at most one of them is reachable from the live tree, and
// only the live tree retires.
type chunkHandle[K iindex.Numeric, V any] struct {
	ch   arena.Chunk[K, V]
	born uint64
}

// mvccState is the publication and reclamation state of one publishing
// tree. pub, era, bands, and snapCutoff are shared with reader
// goroutines (atomics); seq and ring are combiner-confined like the
// tree itself.
type mvccState[K iindex.Numeric, V any] struct {
	pub        atomic.Pointer[Version[K, V]]
	era        atomic.Uint64
	bands      [2]band
	snapCutoff atomic.Uint64 // max Version.gen captured by a durable Snapshot

	seq  uint64               // publish counter
	ring []retiredChunk[K, V] // grace ring

	published *obs.Counter // versions published
	retired   *obs.Counter // chunks entering the grace ring
	recycled  *obs.Counter // graced chunks recycled into the arena
	dropped   *obs.Counter // graced chunks dropped to the GC
}

// EnablePublish switches the tree into publishing mode and publishes
// the current contents as the first Version. Call it once, before the
// tree is shared with a combiner; it is not safe to enable concurrently
// with operations. From here on every batched mutation copies
// out-of-generation nodes before writing (path copying), so published
// versions stay immutable, and rebuild-retired chunk storage flows
// through the grace ring back into the scratch arena.
func (t *Tree[K, V]) EnablePublish() {
	if t.mv != nil {
		return
	}
	m := &mvccState[K, V]{}
	if r := t.cfg.Metrics; r != nil {
		m.published = r.Counter("core.mvcc.published")
		m.retired = r.Counter("core.mvcc.chunks_retired")
		m.recycled = r.Counter("core.mvcc.chunks_recycled")
		m.dropped = r.Counter("core.mvcc.chunks_dropped")
		r.Func("core.mvcc.snapshot_age_ns", func() int64 {
			v := m.pub.Load()
			if v == nil {
				return 0
			}
			return time.Now().UnixNano() - v.at
		})
	}
	t.mv = m
	t.dirty = true
	t.PublishVersion()
}

// PublishVersion publishes the current tree state as a new immutable
// Version (when anything changed since the last publish) and runs one
// round of reclamation bookkeeping: advance the era if the stale
// reader band has drained, then recycle or drop graced chunks.
// Combiner-confined, like every mutating method of the tree; no-op on
// a non-publishing tree.
func (t *Tree[K, V]) PublishVersion() {
	m := t.mv
	if m == nil {
		return
	}
	if t.dirty {
		m.seq++
		m.pub.Store(&Version[K, V]{
			root: t.root,
			size: t.Len(),
			gen:  t.writeGen,
			seq:  m.seq,
			at:   time.Now().UnixNano(),
		})
		t.writeGen++ // freeze everything just published
		t.dirty = false
		if m.published != nil {
			m.published.Add(1)
		}
	}
	// Era advance: the band of the parity we are about to hand to new
	// readers must be empty, which proves every reader pinned two eras
	// ago is gone. Only the combiner stores era, so load+store is fine.
	e := m.era.Load()
	if m.bands[(e+1)&1].sum() == 0 {
		m.era.Store(e + 1)
	}
	t.drainRetired()
}

// pin registers the caller as an active reader of the current era and
// returns the counter cell to release. Wait-free: one atomic load, one
// atomic add. The era may advance at most once between the load and
// the add; recycling needs two advances past a retirement, so a chunk
// visible to any version this reader can load is never recycled while
// the pin is held.
func (m *mvccState[K, V]) pin() *atomic.Int64 {
	e := m.era.Load()
	c := &m.bands[e&1].cells[rand.Uint32()&(readerStripes-1)].n
	c.Add(1)
	return c
}

// ReaderPin is a held reader registration; Release it when the walk
// over version-shared storage is done.
type ReaderPin struct {
	c *atomic.Int64
}

// Release ends the reader registration. Safe on the zero value.
func (p ReaderPin) Release() {
	if p.c != nil {
		p.c.Add(-1)
	}
}

// PinReader registers the calling goroutine as an active reader, so
// chunk storage reachable from any Version loaded while the pin is
// held stays valid. Wait-free; pair with Release.
func (t *Tree[K, V]) PinReader() ReaderPin {
	if t.mv == nil {
		return ReaderPin{}
	}
	return ReaderPin{c: t.mv.pin()}
}

// CurrentVersion returns the most recently published Version (nil
// before EnablePublish). To walk version-shared storage safely, hold a
// ReaderPin across both the load and the walk; pointer-compare two
// loads to detect an intervening publish.
func (t *Tree[K, V]) CurrentVersion() *Version[K, V] {
	if t.mv == nil {
		return nil
	}
	return t.mv.pub.Load()
}

// SnapshotGet is the wait-free read fast path: it fetches key's value
// from the latest published Version without touching the live tree.
// Safe to call from any goroutine concurrently with batched mutations;
// it observes every mutation published before the call and none after.
func (t *Tree[K, V]) SnapshotGet(key K) (V, bool) {
	m := t.mv
	if m == nil {
		panic("core: SnapshotGet before EnablePublish")
	}
	c := m.pin()
	val, ok := lookupVersion(m.pub.Load(), key)
	c.Add(-1)
	return val, ok
}

// SnapshotContains is SnapshotGet without the value.
func (t *Tree[K, V]) SnapshotContains(key K) bool {
	_, ok := t.SnapshotGet(key)
	return ok
}

// SnapshotLen reports the key count of the latest published Version.
// No pin needed: Version headers are GC-managed, only chunk storage is
// recycled.
func (t *Tree[K, V]) SnapshotLen() int {
	if t.mv == nil {
		panic("core: SnapshotLen before EnablePublish")
	}
	return t.mv.pub.Load().Len()
}

// lookupVersion is a sequential root-to-leaf interpolation walk over an
// immutable version: the single-key form of the §4.2 traversal, with no
// batch machinery and no scratch. A key found in a rep array resolves
// there (live or logically removed — §6 guarantees a key occupies at
// most one slot); an absent key descends the lower-bound child.
//
//pbist:noalloc
func lookupVersion[K iindex.Numeric, V any](ver *Version[K, V], key K) (val V, ok bool) {
	var zero V
	if ver == nil {
		return zero, false
	}
	v := ver.root
	for v != nil {
		var pos int
		var found bool
		if v.children == nil {
			pos, found = iindex.InterpolationSearch(v.rep, key)
		} else {
			pos, found = iindex.Find(v.rep, &v.idx, key)
		}
		if found {
			if v.exists[pos] {
				return v.vals[pos], true
			}
			return zero, false
		}
		if v.children == nil {
			return zero, false
		}
		v = v.children[pos]
	}
	return zero, false
}

// SnapshotNow returns a new Tree handle over the latest published
// Version in O(1): the snapshot shares every unrebuilt chunk with the
// live tree instead of flattening and rebuilding. The handle is a
// fully independent single-goroutine tree — mutations copy shared
// nodes on write (its generation starts past everything it shares),
// and its own rebuilds drop replaced storage to the GC, never into the
// live tree's reclamation ring.
//
// Durability: the cut generation is recorded (snapCutoff) under a
// reader pin before the handle escapes, so chunk storage reachable
// from the snapshot is permanently exempt from recycling — the live
// tree drops it to the GC instead, which collects it when the snapshot
// itself goes away.
func (t *Tree[K, V]) SnapshotNow() *Tree[K, V] {
	m := t.mv
	if m == nil {
		panic("core: SnapshotNow before EnablePublish")
	}
	c := m.pin()
	v := m.pub.Load()
	for {
		cur := m.snapCutoff.Load()
		if v.gen <= cur || m.snapCutoff.CompareAndSwap(cur, v.gen) {
			break
		}
	}
	c.Add(-1)
	nt := &Tree[K, V]{
		cfg:  t.cfg,
		pool: t.pool,
		ar:   t.ar, // scratch free lists are concurrency-safe (SharedArena contract)
	}
	nt.root = v.root
	nt.writeGen = v.gen + 1 // strictly newer than anything shared
	return nt
}

// VersionItems flattens a pinned Version into freshly allocated sorted
// key/value arrays (§7.2). The caller must hold a ReaderPin taken
// before the Version was loaded and keep it until VersionItems
// returns; the sharded frontend uses this to merge one consistent cut
// across all shards.
func (t *Tree[K, V]) VersionItems(v *Version[K, V]) ([]K, []V) {
	if v == nil || v.root == nil {
		return nil, nil
	}
	outK := make([]K, v.size)
	outV := make([]V, v.size)
	t.fillFlat(v.root, outK, outV)
	return outK, outV
}

// owned returns a node the current generation may write to: v itself
// when it was created in this generation, otherwise a copy (path
// copying). Inner copies share the rep array and its interpolation
// index — both immutable between rebuilds — and copy the mutable
// vals/exists/children arrays; leaf copies duplicate all three arrays
// because leaf reps mutate on insertion. The chunk handle rides along
// (see chunkHandle). On a tree that never published, writeGen and every
// node generation are zero and this is one predictable branch.
func (t *Tree[K, V]) owned(v *node[K, V]) *node[K, V] {
	if v.gen == t.writeGen {
		return v
	}
	cp := &node[K, V]{
		idx:      v.idx,
		size:     v.size,
		initSize: v.initSize,
		modCnt:   v.modCnt,
		gen:      t.writeGen,
		chunk:    v.chunk,
	}
	if v.children == nil {
		cp.rep = append(make([]K, 0, len(v.rep)), v.rep...)
		cp.vals = append(make([]V, 0, len(v.vals)), v.vals...)
		cp.exists = append(make([]bool, 0, len(v.exists)), v.exists...)
	} else {
		cp.rep = v.rep
		cp.vals = append(make([]V, 0, len(v.vals)), v.vals...)
		cp.exists = append(make([]bool, 0, len(v.exists)), v.exists...)
		cp.children = append(make([]*node[K, V], 0, len(v.children)), v.children...)
	}
	return cp
}

// replaceAtKey splices repl in place of the subtree rooted at target,
// located by walking key from the root. The walk must reach target by
// pointer identity — that identity is the splice's linearization
// guard: every node of target was frozen when it was captured (its
// generation predates the current one), so any mutation of the subtree
// since then replaced its root via path copying, and finding the same
// pointer proves the subtree is exactly the state the replacement was
// built from. On success the old subtree's chunks retire through the
// grace ring (readers of published versions may still hold them) and
// the path down to the splice point is copied for the current
// generation, so previously published versions stay intact. Returns
// false — tree untouched — when the walk no longer reaches target.
// Owning goroutine only, like every mutating method.
func (t *Tree[K, V]) replaceAtKey(key K, target, repl *node[K, V]) bool {
	if t.root == target {
		t.retireSubtree(target)
		t.root = repl
		t.dirty = true
		return true
	}
	var nodes []*node[K, V]
	var slots []int
	v := t.root
	for v != nil && v != target {
		if v.isLeaf() {
			return false
		}
		pos, found := t.stepPos(v, key)
		if found {
			return false // key's node was rebuilt away or merged upward
		}
		nodes = append(nodes, v)
		slots = append(slots, pos)
		v = v.children[pos]
	}
	if v != target {
		return false
	}
	t.retireSubtree(target)
	top := t.owned(nodes[0])
	cur := top
	for i := 1; i < len(nodes); i++ {
		next := t.owned(nodes[i])
		cur.children[slots[i-1]] = next
		cur = next
	}
	cur.children[slots[len(slots)-1]] = repl
	t.root = top
	t.dirty = true
	return true
}

// discardBuilt recycles a rebuilt subtree that was never linked into
// the tree (an async build whose splice lost to a concurrent change).
// No grace period applies: the chunk was drawn fresh for this build
// and no reader, version, or snapshot ever saw it, so its arrays go
// straight back to the scratch free lists.
//
//pbist:releases
func (t *Tree[K, V]) discardBuilt(v *node[K, V]) {
	if v == nil {
		return
	}
	if v.chunk != nil {
		t.ar.keys.Put(v.chunk.ch.Keys)
		t.ar.vals.Put(v.chunk.ch.Vals)
		t.ar.bools.Put(v.chunk.ch.Exists)
	}
	for _, c := range v.children {
		if c != nil {
			t.discardBuilt(c)
		}
	}
}

// retireSubtree walks a subtree just replaced by a rebuild and moves
// every chunk handle it roots into the grace ring. Only meaningful on
// a publishing tree: older versions (and pinned readers) may still
// reach this storage, so it must wait out the grace period before the
// arrays recycle. Non-publishing trees leave retirement to the GC.
func (t *Tree[K, V]) retireSubtree(v *node[K, V]) {
	if t.mv == nil || v == nil {
		return
	}
	t.collectRetired(v, t.mv.era.Load())
}

func (t *Tree[K, V]) collectRetired(v *node[K, V], era uint64) {
	if v.chunk != nil {
		m := t.mv
		if len(m.ring) >= retireRingCap {
			// Ring full: drop to the GC rather than grow without bound.
			if m.dropped != nil {
				m.dropped.Add(1)
			}
		} else {
			m.ring = append(m.ring, retiredChunk[K, V]{ch: v.chunk.ch, born: v.chunk.born, stamp: era})
			if m.retired != nil {
				m.retired.Add(1)
			}
		}
	}
	for _, c := range v.children {
		if c != nil {
			t.collectRetired(c, era)
		}
	}
}

// drainRetired recycles every graced ring entry: two era advances past
// the retirement stamp prove no reader can still reach the chunk, and
// a born generation later than the durable-snapshot cutoff proves no
// Snapshot can either. Recycled arrays re-enter the tree arena's
// scratch free lists — the same pools the flatten/merge buffers cycle
// through — and chunks a snapshot may still reference are dropped to
// the GC instead. Combiner-confined.
func (t *Tree[K, V]) drainRetired() {
	m := t.mv
	if len(m.ring) == 0 {
		return
	}
	era := m.era.Load()
	cutoff := m.snapCutoff.Load()
	w := 0
	for _, rc := range m.ring {
		if rc.stamp+2 > era {
			m.ring[w] = rc
			w++
			continue
		}
		if rc.born > cutoff {
			t.ar.keys.Put(rc.ch.Keys)
			t.ar.vals.Put(rc.ch.Vals)
			t.ar.bools.Put(rc.ch.Exists)
			if m.recycled != nil {
				m.recycled.Add(1)
			}
		} else if m.dropped != nil {
			m.dropped.Add(1)
		}
	}
	for i := w; i < len(m.ring); i++ {
		m.ring[i] = retiredChunk[K, V]{}
	}
	m.ring = m.ring[:w]
}
