// Package skiplist implements a probabilistic skip list sorted set
// (Pugh, CACM 1990) — one of the classic O(log n) sorted-set
// structures cited in the paper's introduction. It serves as a second
// scalar baseline next to the red-black tree: same asymptotics, very
// different constant factors and memory behavior.
package skiplist

import "cmp"

const (
	// maxLevel bounds tower height; 2^32 expected keys is far beyond
	// any workload in this repository.
	maxLevel = 32
	// pInverse is 1/p for the geometric level distribution: a node is
	// promoted to the next level with probability 1/4 (Pugh's
	// recommended trade-off between search cost and space).
	pInverse = 4
)

type node[K cmp.Ordered] struct {
	key  K
	next []*node[K]
}

// List is a sorted set backed by a skip list. Use New to create one;
// List is not safe for concurrent use.
type List[K cmp.Ordered] struct {
	head  *node[K] // sentinel with maxLevel links; key unused
	level int      // current highest level in use
	size  int
	rng   uint64 // splitmix64 state for level draws
}

// New returns an empty skip list seeded deterministically; two lists
// built with the same seed and operation sequence have identical shape.
func New[K cmp.Ordered](seed uint64) *List[K] {
	return &List[K]{
		head:  &node[K]{next: make([]*node[K], maxLevel)},
		level: 1,
		rng:   seed ^ 0x9e3779b97f4a7c15,
	}
}

// Len reports the number of keys in the set.
func (l *List[K]) Len() int { return l.size }

// Contains reports whether key is in the set.
func (l *List[K]) Contains(key K) bool {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	return x != nil && x.key == key
}

// Insert adds key to the set, reporting whether it was absent.
func (l *List[K]) Insert(key K) bool {
	var update [maxLevel]*node[K]
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if cand := x.next[0]; cand != nil && cand.key == key {
		return false
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	n := &node[K]{key: key, next: make([]*node[K], lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.size++
	return true
}

// Remove deletes key from the set, reporting whether it was present.
func (l *List[K]) Remove(key K) bool {
	var update [maxLevel]*node[K]
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	x = x.next[0]
	if x == nil || x.key != key {
		return false
	}
	for i := 0; i < len(x.next); i++ {
		if update[i].next[i] == x {
			update[i].next[i] = x.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// Keys returns the keys in ascending order.
func (l *List[K]) Keys() []K {
	out := make([]K, 0, l.size)
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.key)
	}
	return out
}

// Level reports the current number of levels in use (for shape tests).
func (l *List[K]) Level() int { return l.level }

// randomLevel draws a tower height from the geometric distribution
// with success probability 1/pInverse.
func (l *List[K]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.next64()%pInverse == 0 {
		lvl++
	}
	return lvl
}

// next64 advances the embedded splitmix64 generator.
func (l *List[K]) next64() uint64 {
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
