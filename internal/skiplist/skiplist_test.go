package skiplist

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New[int](1)
	if l.Len() != 0 || l.Contains(3) || l.Remove(3) {
		t.Fatal("empty list misbehaves")
	}
	if len(l.Keys()) != 0 {
		t.Fatal("empty list has keys")
	}
}

func TestInsertRemoveBasic(t *testing.T) {
	l := New[int](2)
	for _, k := range []int{9, 1, 5, 3, 7} {
		if !l.Insert(k) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	if l.Insert(5) {
		t.Fatal("duplicate insert succeeded")
	}
	if !slices.Equal(l.Keys(), []int{1, 3, 5, 7, 9}) {
		t.Fatalf("Keys() = %v", l.Keys())
	}
	if !l.Remove(5) || l.Remove(5) {
		t.Fatal("Remove semantics wrong")
	}
	if !slices.Equal(l.Keys(), []int{1, 3, 7, 9}) {
		t.Fatalf("Keys() = %v", l.Keys())
	}
}

func TestDifferentialRandom(t *testing.T) {
	l := New[int64](3)
	ref := map[int64]bool{}
	r := rand.New(rand.NewSource(4))
	for op := 0; op < 60000; op++ {
		k := r.Int63n(2500)
		switch r.Intn(3) {
		case 0:
			want := !ref[k]
			ref[k] = true
			if l.Insert(k) != want {
				t.Fatalf("op %d: Insert(%d) mismatch", op, k)
			}
		case 1:
			want := ref[k]
			delete(ref, k)
			if l.Remove(k) != want {
				t.Fatalf("op %d: Remove(%d) mismatch", op, k)
			}
		default:
			if l.Contains(k) != ref[k] {
				t.Fatalf("op %d: Contains(%d) mismatch", op, k)
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, l.Len(), len(ref))
		}
	}
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	if !slices.Equal(l.Keys(), keys) {
		t.Fatal("final contents differ")
	}
}

func TestKeysAlwaysSorted(t *testing.T) {
	l := New[int64](5)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		l.Insert(r.Int63n(1 << 40))
	}
	if !slices.IsSorted(l.Keys()) {
		t.Fatal("Keys() not sorted")
	}
}

func TestLevelDistribution(t *testing.T) {
	// With p = 1/4 the expected level for n keys is log4(n); assert a
	// generous envelope so the RNG wiring is validated without
	// flakiness.
	l := New[int64](7)
	const n = 100000
	for i := int64(0); i < n; i++ {
		l.Insert(i)
	}
	if lv := l.Level(); lv < 5 || lv > 20 {
		t.Fatalf("level = %d for n = %d; level distribution broken", lv, n)
	}
}

func TestDeterministicShape(t *testing.T) {
	a := New[int](42)
	b := New[int](42)
	for i := 0; i < 1000; i++ {
		a.Insert(i)
		b.Insert(i)
	}
	if a.Level() != b.Level() {
		t.Fatal("same seed produced different shapes")
	}
}

func TestQuickProperty(t *testing.T) {
	prop := func(ops []int16, seed uint64) bool {
		l := New[int16](seed)
		ref := map[int16]bool{}
		for _, raw := range ops {
			k := raw % 100
			if raw%2 == 0 {
				want := !ref[k]
				ref[k] = true
				if l.Insert(k) != want {
					return false
				}
			} else {
				want := ref[k]
				delete(ref, k)
				if l.Remove(k) != want {
					return false
				}
			}
		}
		return l.Len() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
