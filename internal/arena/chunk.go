package arena

// Chunk is contiguous node storage for one rebuilt subtree: three
// backing arrays — keys, values, liveness — of exactly n slots, where
// n is the subtree's key count. Every key of an ideally built subtree
// is stored exactly once (inner Rep slots hold some, leaf arrays hold
// the rest), so the builder can carve each node's rep/vals/exists
// triple out of these arrays at deterministic offsets with no second
// sizing pass and no per-node allocations.
//
// A Chunk is write-once plumbing for a build: nodes keep slicing into
// the backing arrays for their lifetime, and it collapses the
// 3·(nodes) allocations of a rebuild into 3. On a non-publishing tree
// a chunk is never recycled through a Scratch — live nodes own it and
// the GC frees it when the last node built from it is unreachable. A
// publishing tree (core MVCC) does route rebuilt-over chunks back
// into its Scratch free lists, but only through the grace ring: the
// combiner retires the chunk, waits until the era counters prove no
// pinned reader can still reach it, and only then Puts the three
// arrays back (chunks a durable snapshot may reach are dropped to the
// GC instead; see internal/core/mvcc.go).
type Chunk[K any, V any] struct {
	Keys   []K
	Vals   []V
	Exists []bool
}

// NewChunk allocates storage for a subtree of n keys.
func NewChunk[K any, V any](n int) Chunk[K, V] {
	return Chunk[K, V]{
		Keys:   make([]K, n),
		Vals:   make([]V, n),
		Exists: make([]bool, n),
	}
}

// Carve returns the storage triple for one node's n slots starting at
// base. The slices are capacity-clamped so a later append on a node's
// arrays (leaf merges grow leaves) can never bleed into a sibling's
// slots. Callers hand out disjoint [base, base+n) windows; Carve does
// not track them.
func (c Chunk[K, V]) Carve(base, n int) (keys []K, vals []V, exists []bool) {
	return c.Keys[base : base+n : base+n],
		c.Vals[base : base+n : base+n],
		c.Exists[base : base+n : base+n]
}
