package arena

import (
	"unsafe"

	"repro/internal/obs"
)

// ObserveScratch registers one free list's live telemetry with r as
// gauge functions under prefix: retained idle buffers, their summed
// capacity in elements and in bytes, and the cumulative Get and
// reuse-hit counts (whose ratio is the free list's hit rate). Several
// scratches registered under one prefix — the per-element-type lists
// of a tree arena or a combiner bundle — sum into single gauges,
// except for the bytes gauge, which each instantiation scales by its
// own element size first.
//
// Snapshot-time cost only: nothing is recorded on the Get/Put paths,
// the gauges read the same mutex-guarded counters Stats and Retained
// expose.
func ObserveScratch[T any](r *obs.Registry, prefix string, s *Scratch[T]) {
	if r == nil || s == nil {
		return
	}
	var zero T
	elemSize := int64(unsafe.Sizeof(zero))
	r.Func(prefix+".retained_buffers", func() int64 {
		b, _ := s.Retained()
		return int64(b)
	})
	r.Func(prefix+".retained_elems", func() int64 {
		_, e := s.Retained()
		return e
	})
	r.Func(prefix+".retained_bytes", func() int64 {
		_, e := s.Retained()
		return e * elemSize
	})
	r.Func(prefix+".gets", func() int64 {
		g, _ := s.Stats()
		return g
	})
	r.Func(prefix+".reuses", func() int64 {
		_, u := s.Stats()
		return u
	})
}
