// Package arena provides the memory machinery behind the rebuild-heavy
// batched tree: size-classed recycled scratch buffers (Scratch) and
// contiguous node storage for rebuilt subtrees (Chunk).
//
// The paper's cost model (§7–§8) amortizes rebuilds into O(n) work, but
// a naive implementation turns that work into O(n/LeafCap) separate
// heap allocations per rebuild plus fresh O(n) temporaries on every
// batched operation. The two types here remove both:
//
//   - Scratch[T] hands out []T buffers whose backing arrays are
//     recycled across calls, so steady-state batched operations stop
//     producing short-lived garbage.
//   - Chunk[K, V] lays the rep/vals/exists storage of an entire rebuilt
//     subtree into three contiguous backing arrays that nodes slice
//     into, replacing per-node allocations with one allocation per
//     array — and giving rebuilt subtrees the cache-friendly contiguous
//     layout interpolation search trees are built for.
//
// Scratch is safe for concurrent use: buffers are held in per-worker
// shards, each guarded by its own mutex, so parallel traversals that
// Get and Put from many goroutines at once do not serialize on one
// lock. A buffer must be Put back by at most one holder and never used
// after Put — the usual ownership rule of any free list.
package arena

import (
	"math/bits"
	"math/rand/v2"
	"sync"
)

const (
	// numShards is the number of independent free lists per Scratch
	// (power of two). Callers are spread across shards with a cheap
	// per-goroutine random draw, so concurrent Get/Put from a parallel
	// traversal rarely contend on the same mutex.
	numShards = 8
	// numClasses bounds the recyclable buffer size: class c holds
	// buffers of capacity at least 2^c elements, so buffers up to
	// 2^(numClasses-1) elements participate in recycling and larger
	// requests fall through to plain allocation.
	numClasses = 28
	// maxPerClass bounds how many buffers one shard retains per size
	// class; surplus Puts are dropped for the GC, so an allocation
	// burst (one huge rebuild) cannot pin its high-water mark forever.
	maxPerClass = 4
)

// Scratch is a size-classed, sharded free list of []T buffers. The
// zero value is ready to use. Get returns a buffer of the requested
// length (contents arbitrary — use GetZero where the caller relies on
// zero initialization) and Put recycles one; both are safe for
// concurrent use.
//
// With Disabled set, Get always allocates fresh and Put drops its
// argument, restoring allocate-and-forget semantics bit for bit; the
// flag backs the public ReuseBuffers knob and lets every test run
// under both settings.
type Scratch[T any] struct {
	// Disabled turns the free list off: Get allocates, Put discards.
	// Toggle only while no buffers are outstanding.
	Disabled bool

	shards [numShards]shard[T]
}

type shard[T any] struct {
	mu     sync.Mutex
	free   [numClasses][][]T
	gets   int64
	puts   int64
	reuses int64
	_      [24]byte // keep neighboring shards off one cache line
}

// class returns the size class a request of n elements is served from:
// the smallest c with 2^c >= n. Buffers stored in class c always have
// capacity >= 2^c, so any buffer found there satisfies the request.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a buffer of length n with arbitrary contents. Requests
// beyond the recyclable range (or with the free list disabled) are
// served by a fresh exact-size allocation.
func (s *Scratch[T]) Get(n int) []T {
	c := class(n)
	if s.Disabled || c >= numClasses {
		return make([]T, n)
	}
	// Start at a random shard (spreading concurrent callers), but fall
	// through the remaining shards before giving up: with only a few
	// buffers in circulation, insisting on one shard would miss ~7/8 of
	// the time and allocate, defeating the free list exactly in the
	// common steady state.
	start := rand.Uint32() & (numShards - 1)
	for i := uint32(0); i < numShards; i++ {
		sh := &s.shards[(start+i)&(numShards-1)]
		sh.mu.Lock()
		if i == 0 {
			sh.gets++
		}
		if stack := sh.free[c]; len(stack) > 0 {
			buf := stack[len(stack)-1]
			stack[len(stack)-1] = nil
			sh.free[c] = stack[:len(stack)-1]
			sh.reuses++
			sh.mu.Unlock()
			return buf[:n]
		}
		sh.mu.Unlock()
	}
	// Miss: allocate the full class capacity so the buffer re-enters
	// this class when Put back, whatever length it was requested at.
	return make([]T, n, 1<<c)
}

// GetZero returns a zeroed buffer of length n. Use it wherever the
// caller's algorithm relies on zero initialization (recycled buffers
// come back dirty).
//
//pbist:owner
func (s *Scratch[T]) GetZero(n int) []T {
	buf := s.Get(n)
	clear(buf)
	return buf
}

// Put recycles buf's backing array for a later Get. buf must not be
// used (through any aliasing slice) after Put. nil and zero-capacity
// buffers are ignored, so callers can Put unconditionally.
func (s *Scratch[T]) Put(buf []T) {
	if s.Disabled || cap(buf) == 0 {
		return
	}
	// File under the largest class the capacity fully covers, so a
	// future Get from that class is always satisfied.
	c := bits.Len(uint(cap(buf))) - 1
	if c >= numClasses {
		return
	}
	sh := &s.shards[rand.Uint32()&(numShards-1)]
	sh.mu.Lock()
	sh.puts++
	if len(sh.free[c]) < maxPerClass {
		sh.free[c] = append(sh.free[c], buf[:cap(buf)])
	}
	sh.mu.Unlock()
}

// Balance reports the Get and Put calls that went through the free
// list. Disabled and beyond-class traffic is excluded symmetrically on
// both sides, so for a caller that returns every borrow — the
// arenapair contract pbistvet enforces statically — gets == puts
// whenever no operation is in flight. The borrow-balance regression
// tests assert exactly that after exercising the batched paths.
func (s *Scratch[T]) Balance() (gets, puts int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		gets += sh.gets
		puts += sh.puts
		sh.mu.Unlock()
	}
	return gets, puts
}

// Stats reports the total Get calls served and how many of them reused
// a recycled buffer.
func (s *Scratch[T]) Stats() (gets, reuses int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		gets += sh.gets
		reuses += sh.reuses
		sh.mu.Unlock()
	}
	return gets, reuses
}

// Retained reports the free-list inventory at this instant: how many
// idle buffers the Scratch is holding for reuse and their summed
// capacity in elements. Buffers currently lent out by Get are not
// counted — Retained measures what the free list itself pins.
//
// The structural bound is numShards × numClasses × maxPerClass buffers
// regardless of how many trees or combiners share the Scratch, which
// is exactly why sharing one Scratch across a shard group bounds total
// retained memory where per-shard free lists would multiply it; the
// shared-arena regression tests assert on this number.
func (s *Scratch[T]) Retained() (buffers int, elems int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c := range sh.free {
			for _, buf := range sh.free[c] {
				buffers++
				elems += int64(cap(buf))
			}
		}
		sh.mu.Unlock()
	}
	return buffers, elems
}
