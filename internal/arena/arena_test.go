package arena

import (
	"sync"
	"testing"
)

func TestScratchGetLenAndClassCap(t *testing.T) {
	var s Scratch[int64]
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 1000, 1 << 20} {
		buf := s.Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d): len = %d", n, len(buf))
		}
		if n > 0 && cap(buf) < n {
			t.Fatalf("Get(%d): cap = %d < n", n, cap(buf))
		}
	}
}

func TestScratchReuse(t *testing.T) {
	var s Scratch[int]
	buf := s.Get(100)
	for i := range buf {
		buf[i] = i
	}
	s.Put(buf)
	// A same-class request must find the recycled buffer (possibly
	// dirty): the shard scan guarantees a single circulating buffer is
	// found wherever Put filed it.
	got := s.Get(80) // class(80) == class(100)
	if cap(got) != cap(buf) {
		t.Fatalf("expected recycled buffer (cap %d), got cap %d", cap(buf), cap(got))
	}
	gets, reuses := s.Stats()
	if gets != 2 || reuses != 1 {
		t.Fatalf("stats = (%d gets, %d reuses), want (2, 1)", gets, reuses)
	}
}

func TestScratchGetZero(t *testing.T) {
	var s Scratch[int32]
	buf := s.Get(128)
	for i := range buf {
		buf[i] = -1
	}
	s.Put(buf)
	z := s.GetZero(128)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero left dirt at %d: %d", i, v)
		}
	}
}

func TestScratchDisabled(t *testing.T) {
	s := Scratch[int]{Disabled: true}
	buf := s.Get(50)
	s.Put(buf)
	got := s.Get(50)
	if &got[0] == &buf[0] {
		t.Fatal("disabled scratch recycled a buffer")
	}
	if gets, reuses := s.Stats(); gets != 0 || reuses != 0 {
		t.Fatalf("disabled scratch counted (%d, %d)", gets, reuses)
	}
}

func TestScratchPutForeignCapacity(t *testing.T) {
	var s Scratch[byte]
	// A non-power-of-two capacity files under the class it fully
	// covers, so a later Get from that class must fit.
	s.Put(make([]byte, 100, 100))
	got := s.Get(64) // class 6: buffers of cap >= 64
	if cap(got) < 64 {
		t.Fatalf("recycled foreign buffer too small: cap %d", cap(got))
	}
}

func TestScratchBoundedRetention(t *testing.T) {
	var s Scratch[int]
	// Put far more buffers than the free lists retain; no panic, no
	// unbounded growth (indirectly: the per-shard, per-class cap).
	for i := 0; i < numShards*maxPerClass*3; i++ {
		s.Put(make([]int, 256))
	}
	total := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		for _, stack := range s.shards[i].free {
			total += len(stack)
		}
		s.shards[i].mu.Unlock()
	}
	if total > numShards*maxPerClass {
		t.Fatalf("retained %d buffers, cap is %d", total, numShards*maxPerClass)
	}
}

// TestScratchConcurrent hammers one Scratch from many goroutines; run
// under -race it proves Get/Put need no external synchronization and
// never hand one buffer to two holders (each holder stamps and checks
// its exclusive ownership of element 0).
func TestScratchConcurrent(t *testing.T) {
	var s Scratch[uint64]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stamp := uint64(g + 1)
			for i := 0; i < 2000; i++ {
				buf := s.Get(64 + i%256)
				buf[0] = stamp
				for k := 0; k < 8 && k < len(buf); k++ {
					buf[k] = stamp
				}
				if buf[0] != stamp {
					t.Errorf("buffer shared across holders")
					return
				}
				s.Put(buf)
			}
		}(g)
	}
	wg.Wait()
}

func TestChunkCarve(t *testing.T) {
	ch := NewChunk[int64, string](10)
	k1, v1, e1 := ch.Carve(0, 4)
	k2, v2, e2 := ch.Carve(4, 6)
	if len(k1) != 4 || len(v1) != 4 || len(e1) != 4 {
		t.Fatalf("Carve(0,4) lengths: %d %d %d", len(k1), len(v1), len(e1))
	}
	// Capacity clamp: appending to a carved window must reallocate,
	// never bleed into the neighbor's slots.
	k1 = append(k1, 99)
	k1[4] = 99
	if k2[0] == 99 {
		t.Fatal("append on carved slice bled into the next window")
	}
	// Disjoint windows share one backing array.
	k2[0] = 42
	v2[0] = "x"
	e2[0] = true
	if ch.Keys[4] != 42 || ch.Vals[4] != "x" || !ch.Exists[4] {
		t.Fatal("carved windows do not alias chunk storage")
	}
}

func TestClassRounding(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1 << 10: 10, 1<<10 + 1: 11}
	for n, want := range cases {
		if got := class(n); got != want {
			t.Errorf("class(%d) = %d, want %d", n, got, want)
		}
	}
}
