package iindex

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// refLowerBound is the specification Find is tested against.
func refLowerBound(rep []int64, x int64) (int, bool) {
	pos, found := slices.BinarySearch(rep, x)
	return pos, found
}

func sortedUniqueInt64(seed int64, n int, span int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestBuildDegenerateCases(t *testing.T) {
	if ix := Build([]int64{}, 0); ix.Buckets() != 0 {
		t.Error("empty rep should build a degenerate index")
	}
	if ix := Build([]int64{5}, 0); ix.Buckets() != 0 {
		t.Error("single-element rep should build a degenerate index")
	}
	if ix := Build([]float64{1.5, 1.5}, 0); ix.Buckets() != 0 {
		t.Error("zero value range should build a degenerate index")
	}
	nan := math.NaN()
	if ix := Build([]float64{nan, nan}, 0); ix.Buckets() != 0 {
		t.Error("NaN range should build a degenerate index")
	}
}

func TestFindOnEveryElement(t *testing.T) {
	rep := sortedUniqueInt64(1, 3000, 1<<40)
	ix := Build(rep, 0)
	for i, x := range rep {
		pos, found := Find(rep, &ix, x)
		if !found || pos != i {
			t.Fatalf("Find(rep, %d) = (%d,%v), want (%d,true)", x, pos, found, i)
		}
	}
}

func TestFindOnAbsentKeys(t *testing.T) {
	rep := sortedUniqueInt64(2, 2000, 1<<30)
	ix := Build(rep, 0)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		x := r.Int63n(1 << 31)
		gotPos, gotFound := Find(rep, &ix, x)
		wantPos, wantFound := refLowerBound(rep, x)
		if gotPos != wantPos || gotFound != wantFound {
			t.Fatalf("Find(%d) = (%d,%v), want (%d,%v)", x, gotPos, gotFound, wantPos, wantFound)
		}
	}
}

func TestFindExtremes(t *testing.T) {
	rep := []int64{10, 20, 30, 40, 50}
	ix := Build(rep, 0)
	cases := []struct {
		x     int64
		pos   int
		found bool
	}{
		{5, 0, false}, {10, 0, true}, {15, 1, false}, {50, 4, true},
		{55, 5, false}, {30, 2, true}, {31, 3, false},
	}
	for _, c := range cases {
		pos, found := Find(rep, &ix, c.x)
		if pos != c.pos || found != c.found {
			t.Errorf("Find(%d) = (%d,%v), want (%d,%v)", c.x, pos, found, c.pos, c.found)
		}
	}
}

func TestFindEmptyAndDegenerateIndex(t *testing.T) {
	var ix Index
	if pos, found := Find([]int64{}, &ix, 7); pos != 0 || found {
		t.Fatal("Find on empty rep must be (0,false)")
	}
	// A degenerate index must still produce correct results via walking
	// and the binary fallback.
	rep := sortedUniqueInt64(4, 500, 1<<20)
	for _, x := range rep {
		pos, found := Find(rep, &ix, x)
		wantPos, _ := refLowerBound(rep, x)
		if !found || pos != wantPos {
			t.Fatalf("degenerate-index Find(%d) = (%d,%v)", x, pos, found)
		}
	}
}

func TestFindClusteredAdversarialInput(t *testing.T) {
	// Highly non-smooth input: two dense clusters at the range ends.
	// Interpolation estimates are badly wrong; the capped walk plus
	// binary fallback must still give exact answers.
	var rep []int64
	for i := int64(0); i < 3000; i++ {
		rep = append(rep, i)
	}
	for i := int64(0); i < 3000; i++ {
		rep = append(rep, 1<<40+i)
	}
	ix := Build(rep, 0)
	r := rand.New(rand.NewSource(5))
	probes := []int64{0, 2999, 3000, 1 << 39, 1<<40 - 1, 1 << 40, 1<<40 + 2999, 1<<40 + 3000}
	for i := 0; i < 3000; i++ {
		probes = append(probes, r.Int63n(1<<41))
	}
	for _, x := range probes {
		gotPos, gotFound := Find(rep, &ix, x)
		wantPos, wantFound := refLowerBound(rep, x)
		if gotPos != wantPos || gotFound != wantFound {
			t.Fatalf("clustered Find(%d) = (%d,%v), want (%d,%v)", x, gotPos, gotFound, wantPos, wantFound)
		}
	}
}

func TestApproxErrorSmallOnUniformInput(t *testing.T) {
	// On uniform (smooth) input the estimate must land within a few
	// positions of the truth for the vast majority of probes — this is
	// the property that makes IST search O(log log n).
	rep := sortedUniqueInt64(6, 100000, 1<<40)
	ix := Build(rep, 0)
	r := rand.New(rand.NewSource(7))
	within := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		x := r.Int63n(1 << 40)
		h := ix.Approx(float64(x))
		want, _ := refLowerBound(rep, x)
		if d := h - want; d >= -maxWalk && d <= maxWalk {
			within++
		}
	}
	if frac := float64(within) / trials; frac < 0.99 {
		t.Fatalf("only %.3f of estimates within %d positions; index quality too low", frac, maxWalk)
	}
}

func TestIndexSizeFactor(t *testing.T) {
	rep := sortedUniqueInt64(8, 1000, 1<<30)
	small := Build(rep, 0.5)
	big := Build(rep, 2.0)
	if small.Buckets() >= big.Buckets() {
		t.Fatalf("size factor not respected: %d vs %d buckets", small.Buckets(), big.Buckets())
	}
	if got, want := big.Buckets(), 2000; got != want {
		t.Fatalf("big index has %d buckets, want %d", got, want)
	}
	if big.Bytes() != 4*(big.Buckets()+1) {
		t.Fatalf("Bytes() inconsistent with bucket count")
	}
}

func TestFindFloatKeys(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	set := map[float64]struct{}{}
	for len(set) < 2000 {
		set[r.NormFloat64()*1000] = struct{}{}
	}
	rep := make([]float64, 0, len(set))
	for k := range set {
		rep = append(rep, k)
	}
	slices.Sort(rep)
	ix := Build(rep, 0)
	for i, x := range rep {
		pos, found := Find(rep, &ix, x)
		if !found || pos != i {
			t.Fatalf("float Find(%v) = (%d,%v), want (%d,true)", x, pos, found, i)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		x := r.NormFloat64() * 1000
		gotPos, gotFound := Find(rep, &ix, x)
		wantPos, wantFound := slices.BinarySearch(rep, x)
		if gotPos != wantPos || gotFound != wantFound {
			t.Fatalf("float Find(%v) mismatch", x)
		}
	}
}

func TestInterpolationSearchMatchesBinary(t *testing.T) {
	rep := sortedUniqueInt64(10, 5000, 1<<35)
	r := rand.New(rand.NewSource(11))
	for _, x := range rep {
		pos, found := InterpolationSearch(rep, x)
		wantPos, _ := refLowerBound(rep, x)
		if !found || pos != wantPos {
			t.Fatalf("InterpolationSearch(%d) = (%d,%v), want (%d,true)", x, pos, found, wantPos)
		}
	}
	for trial := 0; trial < 10000; trial++ {
		x := r.Int63n(1 << 36)
		gotPos, gotFound := InterpolationSearch(rep, x)
		wantPos, wantFound := refLowerBound(rep, x)
		if gotPos != wantPos || gotFound != wantFound {
			t.Fatalf("InterpolationSearch(%d) = (%d,%v), want (%d,%v)", x, gotPos, gotFound, wantPos, wantFound)
		}
	}
}

func TestInterpolationSearchSmallAndEmpty(t *testing.T) {
	if pos, found := InterpolationSearch([]int64{}, 3); pos != 0 || found {
		t.Fatal("empty slice must return (0,false)")
	}
	rep := []int64{42}
	cases := []struct {
		x     int64
		pos   int
		found bool
	}{{41, 0, false}, {42, 0, true}, {43, 1, false}}
	for _, c := range cases {
		if pos, found := InterpolationSearch(rep, c.x); pos != c.pos || found != c.found {
			t.Errorf("InterpolationSearch([42], %d) = (%d,%v)", c.x, pos, found)
		}
	}
}

func TestFindQuickProperty(t *testing.T) {
	prop := func(raw []int32, probes []int32) bool {
		rep64 := make([]int64, 0, len(raw))
		for _, v := range raw {
			rep64 = append(rep64, int64(v))
		}
		slices.Sort(rep64)
		rep64 = slices.Compact(rep64)
		ix := Build(rep64, 0)
		for _, p := range probes {
			x := int64(p)
			gotPos, gotFound := Find(rep64, &ix, x)
			wantPos, wantFound := refLowerBound(rep64, x)
			if gotPos != wantPos || gotFound != wantFound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolationSearchQuickProperty(t *testing.T) {
	prop := func(raw []int32, probes []int32) bool {
		rep64 := make([]int64, 0, len(raw))
		for _, v := range raw {
			rep64 = append(rep64, int64(v))
		}
		slices.Sort(rep64)
		rep64 = slices.Compact(rep64)
		for _, p := range probes {
			x := int64(p)
			gotPos, gotFound := InterpolationSearch(rep64, x)
			wantPos, wantFound := refLowerBound(rep64, x)
			if gotPos != wantPos || gotFound != wantFound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
