package iindex

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestFindExponentialMatchesFind(t *testing.T) {
	rep := sortedUniqueInt64(31, 5000, 1<<40)
	ix := Build(rep, 0)
	r := rand.New(rand.NewSource(32))
	for _, x := range rep {
		ep, ef := FindExponential(rep, &ix, x)
		wp, wf := refLowerBound(rep, x)
		if ep != wp || ef != wf {
			t.Fatalf("FindExponential(%d) = (%d,%v), want (%d,%v)", x, ep, ef, wp, wf)
		}
	}
	for trial := 0; trial < 10000; trial++ {
		x := r.Int63n(1 << 41)
		ep, ef := FindExponential(rep, &ix, x)
		wp, wf := refLowerBound(rep, x)
		if ep != wp || ef != wf {
			t.Fatalf("FindExponential(%d) = (%d,%v), want (%d,%v)", x, ep, ef, wp, wf)
		}
	}
}

func TestFindExponentialDegenerateIndex(t *testing.T) {
	// A zero index gives estimate 0 everywhere; galloping must still
	// reach any position.
	var ix Index
	rep := sortedUniqueInt64(33, 3000, 1<<30)
	for _, x := range []int64{rep[0], rep[1500], rep[2999], -5, 1 << 31} {
		ep, ef := FindExponential(rep, &ix, x)
		wp, wf := refLowerBound(rep, x)
		if ep != wp || ef != wf {
			t.Fatalf("degenerate FindExponential(%d) mismatch", x)
		}
	}
	if pos, found := FindExponential([]int64{}, &ix, 1); pos != 0 || found {
		t.Fatal("empty rep must return (0,false)")
	}
}

func TestFindExponentialClustered(t *testing.T) {
	var rep []int64
	for i := int64(0); i < 2000; i++ {
		rep = append(rep, i, 1<<40+i)
	}
	slices.Sort(rep)
	ix := Build(rep, 0)
	r := rand.New(rand.NewSource(34))
	for trial := 0; trial < 5000; trial++ {
		x := r.Int63n(1 << 41)
		ep, ef := FindExponential(rep, &ix, x)
		wp, wf := refLowerBound(rep, x)
		if ep != wp || ef != wf {
			t.Fatalf("clustered FindExponential(%d) mismatch", x)
		}
	}
}

func TestLinearModelUniformErrorSmall(t *testing.T) {
	rep := sortedUniqueInt64(35, 100000, 1<<40)
	m := BuildLinear(rep)
	// Uniform keys are nearly linear in position: the certified error
	// should be a tiny fraction of n.
	if m.MaxErr() > len(rep)/50 {
		t.Fatalf("learned index error %d too large for uniform data (n=%d)", m.MaxErr(), len(rep))
	}
}

func TestFindLinearExact(t *testing.T) {
	rep := sortedUniqueInt64(36, 20000, 1<<38)
	m := BuildLinear(rep)
	r := rand.New(rand.NewSource(37))
	for i, x := range rep {
		pos, found := FindLinear(rep, &m, x)
		if !found || pos != i {
			t.Fatalf("FindLinear(%d) = (%d,%v), want (%d,true)", x, pos, found, i)
		}
	}
	for trial := 0; trial < 10000; trial++ {
		x := r.Int63n(1 << 39)
		gp, gf := FindLinear(rep, &m, x)
		wp, wf := refLowerBound(rep, x)
		if gp != wp || gf != wf {
			t.Fatalf("FindLinear(%d) = (%d,%v), want (%d,%v)", x, gp, gf, wp, wf)
		}
	}
}

func TestFindLinearClusteredStaysCorrect(t *testing.T) {
	// Clustered data breaks the linear fit (huge maxErr) but never
	// correctness.
	var rep []int64
	for i := int64(0); i < 3000; i++ {
		rep = append(rep, i, 1<<40+i)
	}
	slices.Sort(rep)
	m := BuildLinear(rep)
	r := rand.New(rand.NewSource(38))
	for trial := 0; trial < 3000; trial++ {
		x := r.Int63n(1 << 41)
		gp, gf := FindLinear(rep, &m, x)
		wp, wf := refLowerBound(rep, x)
		if gp != wp || gf != wf {
			t.Fatalf("clustered FindLinear(%d) mismatch", x)
		}
	}
}

func TestLinearModelDegenerate(t *testing.T) {
	if m := BuildLinear([]int64{}); m.MaxErr() != 0 {
		t.Fatal("empty model should have zero error span")
	}
	if pos, found := FindLinear([]int64{}, &LinearModel{}, 9); pos != 0 || found {
		t.Fatal("empty FindLinear must be (0,false)")
	}
	one := []int64{5}
	m := BuildLinear(one)
	if pos, found := FindLinear(one, &m, 5); pos != 0 || !found {
		t.Fatal("single-element FindLinear broken")
	}
	same := []float64{2.5, 2.5, 2.5}
	ms := BuildLinear(same)
	if pos, _ := FindLinear(same, &ms, 2.5); pos != 0 {
		t.Fatal("constant-key model must fall back to full binary search")
	}
}

func TestFindLinearPanicsOnWrongArray(t *testing.T) {
	rep := sortedUniqueInt64(39, 100, 1<<20)
	m := BuildLinear(rep)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for model/array length mismatch")
		}
	}()
	FindLinear(rep[:50], &m, rep[0])
}

func TestVariantsQuickProperty(t *testing.T) {
	prop := func(raw []int32, probesRaw []int32) bool {
		rep := make([]int64, 0, len(raw))
		for _, v := range raw {
			rep = append(rep, int64(v))
		}
		slices.Sort(rep)
		rep = slices.Compact(rep)
		ix := Build(rep, 0)
		m := BuildLinear(rep)
		for _, p := range probesRaw {
			x := int64(p)
			wp, wf := refLowerBound(rep, x)
			if ep, ef := FindExponential(rep, &ix, x); ep != wp || ef != wf {
				return false
			}
			if lp, lf := FindLinear(rep, &m, x); lp != wp || lf != wf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
