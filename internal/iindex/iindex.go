// Package iindex implements the lightweight interpolation index of an
// interpolation search tree node (paper §3.2, following Mehlhorn &
// Tsakalidis) and the array searches built on top of it.
//
// An Index over a sorted array Rep with value range [a, b] is the ID
// array: ID[i] counts the elements of Rep that are at most
// a + i·(b−a)/m. Looking up a key x costs one multiplication to find
// bucket ⌊(x−a)/(b−a)·m⌋ and one array read, and yields a position
// estimate whose error is the occupancy of one bucket — expected O(1)
// when keys come from a smooth distribution (§3.5).
//
// Find refines the estimate with the paper's linear walk (Fig. 5), but
// caps the walk at a constant number of steps and falls back to binary
// search on the remaining range. The cap only strengthens the worst
// case (O(log k) per node instead of O(k)) and leaves the smooth-input
// expected cost at O(1), matching the O(log² n) worst-case search bound
// quoted in §3.5.
package iindex

// Numeric is the constraint for interpolatable keys: types with a
// total order and an order-preserving conversion to float64. The
// conversion is what lets the index map a key to a bucket with one
// multiplication.
type Numeric interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// maxWalk bounds the linear refinement walk before Find falls back to
// binary search. 16 covers several buckets of estimate error while
// keeping the worst case logarithmic.
const maxWalk = 16

// Index is the ID array of one node. The zero value is a valid
// degenerate index whose estimates are always position 0 (Find then
// behaves like a capped-walk binary search).
type Index struct {
	id    []int32
	a     float64 // value of rep[0]
	scale float64 // m / (b − a)
}

// DefaultSizeFactor is the ID-array length as a multiple of len(rep).
// The paper asks for m ∈ Θ(n^ε), ε ∈ [½, 1); since every key is stored
// in exactly one Rep across the tree, m = |Rep| keeps total index space
// linear in n while giving each bucket expected occupancy 1.
const DefaultSizeFactor = 1.0

// Build constructs the index for the sorted, duplicate-free slice rep.
// sizeFactor scales the number of buckets relative to len(rep);
// sizeFactor <= 0 selects DefaultSizeFactor. Building costs
// O(len(rep) + m) time and m+1 int32 words of space.
func Build[K Numeric](rep []K, sizeFactor float64) Index {
	k := len(rep)
	if k < 2 {
		return Index{}
	}
	if sizeFactor <= 0 {
		sizeFactor = DefaultSizeFactor
	}
	a, b := float64(rep[0]), float64(rep[k-1])
	if !(b > a) {
		// Zero (or NaN) value range: interpolation cannot discriminate.
		return Index{}
	}
	m := int(float64(k) * sizeFactor)
	if m < 2 {
		m = 2
	}
	id := make([]int32, m+1)
	width := (b - a) / float64(m)
	j := 0
	for i := 0; i <= m; i++ {
		bound := a + float64(i)*width
		if i == m {
			bound = b // avoid rounding the last bucket short
		}
		for j < k && float64(rep[j]) <= bound {
			j++
		}
		id[i] = int32(j)
	}
	return Index{id: id, a: a, scale: float64(m) / (b - a)}
}

// Approx returns an estimated position of x in the indexed array: an
// index p such that rep[p] is expected to be near the true lower-bound
// position of x. For the zero Index it returns 0.
func (ix *Index) Approx(xf float64) int {
	if len(ix.id) == 0 {
		return 0
	}
	if xf <= ix.a {
		return 0
	}
	bucket := int((xf - ix.a) * ix.scale)
	if bucket >= len(ix.id) {
		bucket = len(ix.id) - 1
	}
	return int(ix.id[bucket])
}

// Buckets reports the number of buckets (m) of the index; 0 for the
// degenerate index.
func (ix *Index) Buckets() int {
	if len(ix.id) == 0 {
		return 0
	}
	return len(ix.id) - 1
}

// Bytes reports the approximate memory footprint of the index in bytes.
func (ix *Index) Bytes() int {
	return 4 * len(ix.id)
}

// Find locates x in the sorted slice rep using the index: it returns
// the lower-bound position of x (the first index with rep[pos] >= x,
// which is also x's insertion position) and whether rep[pos] == x.
// Expected O(1) on smooth input, O(log len(rep)) worst case.
func Find[K Numeric](rep []K, ix *Index, x K) (pos int, found bool) {
	n := len(rep)
	if n == 0 {
		return 0, false
	}
	h := ix.Approx(float64(x))
	if h > n {
		h = n
	}
	if h < n && rep[h] < x {
		// Walk right (paper Fig. 5a) towards the first element >= x.
		lo := h + 1
		for steps := 0; ; steps++ {
			if lo >= n || rep[lo] >= x {
				pos = lo
				break
			}
			if steps == maxWalk {
				pos = lo + lowerBound(rep[lo:], x)
				break
			}
			lo++
		}
	} else {
		// Walk left (paper Fig. 5b) past elements >= x.
		hi := h
		for steps := 0; ; steps++ {
			if hi == 0 || rep[hi-1] < x {
				pos = hi
				break
			}
			if steps == maxWalk {
				pos = lowerBound(rep[:hi], x)
				break
			}
			hi--
		}
	}
	return pos, pos < n && rep[pos] == x
}

// InterpolationSearch locates x in the sorted duplicate-free slice rep
// without a prebuilt index, by interpolating on the fly inside a
// shrinking window. It returns the same (lower-bound position, found)
// contract as Find. A probe budget guards against adversarial inputs,
// after which the search finishes with binary search.
func InterpolationSearch[K Numeric](rep []K, x K) (pos int, found bool) {
	lo, hi := 0, len(rep) // window [lo, hi)
	for probes := 0; hi-lo > 8 && probes < maxWalk; probes++ {
		lov, hiv := float64(rep[lo]), float64(rep[hi-1])
		xf := float64(x)
		if xf <= lov {
			hi = lo + 1
			break
		}
		if xf > hiv {
			lo = hi
			break
		}
		if !(hiv > lov) {
			break
		}
		probe := lo + int((xf-lov)/(hiv-lov)*float64(hi-lo-1))
		if probe < lo {
			probe = lo
		} else if probe >= hi {
			probe = hi - 1
		}
		if rep[probe] < x {
			lo = probe + 1
		} else {
			hi = probe + 1 // rep[probe] >= x stays inside the window
		}
		if lo >= hi {
			break
		}
	}
	if lo < hi {
		lo += lowerBound(rep[lo:hi], x)
	}
	return lo, lo < len(rep) && rep[lo] == x
}

// lowerBound returns the first index of sorted rep whose element is not
// less than x.
func lowerBound[K Numeric](rep []K, x K) int {
	lo, hi := 0, len(rep)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rep[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
