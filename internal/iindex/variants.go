package iindex

import "math"

// This file implements the two index/refinement variants that §3.2 of
// the paper points at beyond the linear walk:
//
//   - exponential (galloping) refinement, citing Bentley & Yao: the
//     estimate error is bridged in O(log error) steps instead of a
//     capped linear walk;
//   - a learned model as the approximate index, citing Kraska et al.:
//     a least-squares line over (key, position) pairs with a certified
//     maximum error, searched within the ±error window.
//
// Both honor the same (lower-bound position, found) contract as Find
// and are benchmarked against it in iindex_bench_test.go.

// FindExponential locates x in rep like Find, but refines the index
// estimate by galloping: the step doubles until the target is
// bracketed, then binary search finishes inside the bracket. Worst
// case O(log k); faster than the capped walk when estimates are off by
// much more than maxWalk but by much less than k.
func FindExponential[K Numeric](rep []K, ix *Index, x K) (pos int, found bool) {
	n := len(rep)
	if n == 0 {
		return 0, false
	}
	h := ix.Approx(float64(x))
	if h > n {
		h = n
	}
	var lo, hi int
	if h < n && rep[h] < x {
		// Gallop right: invariant rep[lo-1] < x.
		lo = h + 1
		step := 1
		hi = lo + step
		for hi < n && rep[hi] < x {
			lo = hi + 1
			step <<= 1
			hi = lo + step
		}
		if hi > n {
			hi = n
		}
	} else {
		// Gallop left: invariant rep[hi] >= x (or hi == n).
		hi = h
		step := 1
		lo = hi - step
		for lo > 0 && rep[lo-1] >= x {
			hi = lo - 1
			step <<= 1
			lo = hi - step
		}
		if lo < 0 {
			lo = 0
		}
	}
	pos = lo + lowerBound(rep[lo:hi], x)
	return pos, pos < n && rep[pos] == x
}

// LinearModel is a learned approximate index: position ≈
// slope·key + intercept, with MaxErr the certified worst-case estimate
// error over the fitted array. The zero value is a degenerate model
// whose window covers the whole array.
type LinearModel struct {
	slope     float64
	intercept float64
	maxErr    int
	fitted    int // length of the array the model was fitted on
}

// BuildLinear fits a least-squares line mapping keys to their
// positions in the sorted slice rep and certifies its maximum error in
// one extra pass: O(len(rep)) build, O(1) words of state.
func BuildLinear[K Numeric](rep []K) LinearModel {
	n := len(rep)
	m := LinearModel{fitted: n, maxErr: n}
	if n < 2 {
		m.maxErr = n
		return m
	}
	// Least squares over (xᵢ, i).
	var sumX, sumY, sumXX, sumXY float64
	for i, k := range rep {
		x, y := float64(k), float64(i)
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	fn := float64(n)
	det := fn*sumXX - sumX*sumX
	if !(det > 0) || math.IsInf(sumXX, 0) || math.IsNaN(det) {
		return m // degenerate: all keys equal or overflow
	}
	m.slope = (fn*sumXY - sumX*sumY) / det
	m.intercept = (sumY - m.slope*sumX) / fn
	if !(m.slope > 0) || math.IsNaN(m.slope) || math.IsInf(m.slope, 0) {
		return m // non-increasing fit cannot certify a window
	}
	worst := 0
	for i, k := range rep {
		if d := absInt(m.predict(float64(k)) - i); d > worst {
			worst = d
		}
	}
	m.maxErr = worst
	return m
}

func (m *LinearModel) predict(xf float64) int {
	p := int(m.slope*xf + m.intercept)
	if p < 0 {
		return 0
	}
	if p >= m.fitted {
		return m.fitted - 1
	}
	return p
}

// MaxErr reports the certified worst-case estimate error.
func (m *LinearModel) MaxErr() int { return m.maxErr }

// FindLinear locates x in rep with the learned model: binary search
// confined to the certified window [predict−maxErr, predict+maxErr+1].
// rep must be the slice the model was built on.
func FindLinear[K Numeric](rep []K, m *LinearModel, x K) (pos int, found bool) {
	n := len(rep)
	if n == 0 {
		return 0, false
	}
	if m.fitted != n {
		panic("iindex: LinearModel used with a different array")
	}
	p := m.predict(float64(x))
	lo := p - m.maxErr
	if lo < 0 {
		lo = 0
	}
	hi := p + m.maxErr + 1
	if hi > n {
		hi = n
	}
	// The window bounds derive from monotonicity of the model: the true
	// lower-bound position is within maxErr+1 of the prediction.
	if lo > 0 && rep[lo] >= x {
		lo = 0 // defensive: degenerate models keep correctness
	}
	if hi < n && rep[hi-1] < x {
		hi = n
	}
	pos = lo + lowerBound(rep[lo:hi], x)
	return pos, pos < n && rep[pos] == x
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
