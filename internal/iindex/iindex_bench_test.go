package iindex

import "testing"

// Micro-benchmarks comparing the three array-search strategies of
// §3.2: indexed interpolation (Find), on-the-fly interpolation, and
// plain binary search. On uniform data Find should sit well under the
// log₂(n) probes of binary search.

func benchRep(n int) ([]int64, Index) {
	rep := sortedUniqueInt64(1, n, 1<<40)
	return rep, Build(rep, 0)
}

func probes(n int) []int64 {
	return sortedUniqueInt64(2, n, 1<<40)
}

func BenchmarkFindIndexed(b *testing.B) {
	rep, ix := benchRep(1 << 16)
	ps := probes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(rep, &ix, ps[i%len(ps)])
	}
}

func BenchmarkInterpolationSearch(b *testing.B) {
	rep, _ := benchRep(1 << 16)
	ps := probes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolationSearch(rep, ps[i%len(ps)])
	}
}

func BenchmarkBinarySearch(b *testing.B) {
	rep, _ := benchRep(1 << 16)
	ps := probes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lowerBound(rep, ps[i%len(ps)])
	}
}

func BenchmarkFindExponential(b *testing.B) {
	rep, ix := benchRep(1 << 16)
	ps := probes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindExponential(rep, &ix, ps[i%len(ps)])
	}
}

func BenchmarkFindLearnedLinear(b *testing.B) {
	rep, _ := benchRep(1 << 16)
	m := BuildLinear(rep)
	ps := probes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindLinear(rep, &m, ps[i%len(ps)])
	}
}

func BenchmarkBuildLinearModel(b *testing.B) {
	rep, _ := benchRep(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildLinear(rep)
	}
	b.SetBytes(int64(len(rep) * 8))
}

func BenchmarkBuildIndex(b *testing.B) {
	rep, _ := benchRep(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(rep, 0)
	}
	b.SetBytes(int64(len(rep) * 8))
}
