// Package combine implements a flat-combining-style concurrent
// frontend for the parallel-batched engine: arbitrarily many client
// goroutines submit single-key and mini-batch operations, a single
// combiner goroutine coalesces everything queued into an epoch, and
// each epoch executes as at most one batched read traversal plus one
// batched write traversal on the underlying engine, with full
// intra-batch parallelism.
//
// This inverts the usual lock-based recipe: instead of serializing
// clients around a structure that handles one key at a time, clients
// are serialized only for the nanoseconds it takes to enqueue, and the
// per-key work runs through the engine's O(m·log log n) batched
// traversals. The pattern follows the combining frontends of
// Akhremtsev & Sanders ("Fast Parallel Operations on Search Trees",
// arXiv:1510.05433), which bridge exactly this gap between a
// batched-sequential-at-the-top engine and a concurrent-clients
// workload.
//
// Semantics: every operation of an epoch is linearized in submission
// order. Reads observe the pre-epoch state as modified by the writes
// submitted before them in the same epoch; writes to the same key
// resolve last-wins; mini-batch operations are atomic (their elements
// occupy consecutive positions in the epoch order). Len and Snapshot
// linearize at the end of their epoch.
package combine

import (
	"cmp"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Engine is the batched structure a Combiner serves: the subset of
// *core.Tree the epoch executor needs. Batches passed to it are
// always sorted and duplicate-free. The Combiner is the only caller,
// so the Engine itself need not be safe for concurrent use.
//
// The read traversals are the *Into shape: destinations are
// caller-provided, len(keys), zero-initialized (entries of absent keys
// are left untouched), so the combiner can recycle the result arrays
// of one epoch as the result arrays of the next instead of allocating
// per epoch.
type Engine[K cmp.Ordered, V any] interface {
	ContainsBatchedInto(keys []K, found []bool)
	GetBatchedInto(keys []K, vals []V, found []bool)
	PutBatched(keys []K, vals []V) int
	RemoveBatched(keys []K) int
	Len() int
	Keys() []K
	Items() ([]K, []V)
	RangeKV(lo, hi K) ([]K, []V)
}

// Publisher is the optional engine extension for multi-version reads
// (core's MVCC layer): an engine that implements it has PublishVersion
// called at the end of every epoch, after the epoch's writes and
// before its clients are woken — so by the time any operation
// completes, its effects are visible to version readers, which is what
// keeps the wait-free fast path linearizable with combined operations.
type Publisher interface {
	PublishVersion()
}

// RebuildScheduled is the optional engine extension for amortized
// rebuild scheduling (core's sched.go): an engine that implements it
// has its epochs bracketed so one rebuild budget covers everything the
// epoch's write traversals spend. BeginRebuildEpoch runs before the
// epoch executes (and splices any finished background rebuild in, so
// the epoch serves the repaired shape); EndRebuildEpoch runs after the
// epoch publishes — the moment the live tree is frozen — draining
// deferred debt synchronously or kicking the next background rebuild,
// and reports the rebuild keys the epoch spent plus the debt still
// outstanding, which the epoch trace records. Both are cheap no-ops on
// an engine without a configured budget.
type RebuildScheduled interface {
	BeginRebuildEpoch()
	EndRebuildEpoch() (spentKeys, debtKeys int)
}

// Scratch is the per-epoch scratch arena of one or more Combiners:
// size-classed free lists for the event lists, distinct-key arrays,
// result side arrays, and write batches an epoch borrows and returns.
// The underlying free lists (arena.Scratch) are safe for concurrent
// use, so one Scratch may serve many Combiners at once — that is the
// point: a shard group hands every per-shard combiner the same Scratch
// and the group's total retained scratch stays bounded by the free
// lists' structural cap instead of multiplying with the shard count.
// NewScratch builds one; New creates a private one when none is given.
type Scratch[K cmp.Ordered, V any] struct {
	ev    arena.Scratch[event[K]]
	keys  arena.Scratch[K]
	vals  arena.Scratch[V]
	bools arena.Scratch[bool]
	i32s  arena.Scratch[int32]

	// obsOnce makes Observe idempotent: a bundle shared by a whole
	// shard group registers its gauges exactly once however many
	// combiners hold it.
	obsOnce sync.Once
}

// NewScratch returns an empty combiner scratch arena. With disabled
// set, every borrow allocates fresh and every return is dropped — the
// NoBufferReuse semantics.
func NewScratch[K cmp.Ordered, V any](disabled bool) *Scratch[K, V] {
	s := &Scratch[K, V]{}
	s.ev.Disabled = disabled
	s.keys.Disabled = disabled
	s.vals.Disabled = disabled
	s.bools.Disabled = disabled
	s.i32s.Disabled = disabled
	return s
}

// Retained reports the scratch free-list inventory across all element
// types: idle buffers held for reuse and their summed capacity in
// elements (value buffers count elements of V, key buffers elements
// of K, and so on — the number is a structural gauge, not bytes).
func (s *Scratch[K, V]) Retained() (buffers int, elems int64) {
	b, e := s.ev.Retained()
	buffers, elems = buffers+b, elems+e
	b, e = s.keys.Retained()
	buffers, elems = buffers+b, elems+e
	b, e = s.vals.Retained()
	buffers, elems = buffers+b, elems+e
	b, e = s.bools.Retained()
	buffers, elems = buffers+b, elems+e
	b, e = s.i32s.Retained()
	return buffers + b, elems + e
}

// ErrClosed is returned by operations submitted after Close.
var ErrClosed = errors.New("combine: combiner is closed")

// Options tunes the flush policy of a Combiner. The zero value
// selects the defaults.
type Options struct {
	// MaxBatch is the size trigger: an epoch is flushed as soon as the
	// queued operations carry at least this many keys. Default 8192.
	MaxBatch int
	// MaxWait is the latency trigger: an epoch is flushed once its
	// oldest operation has waited this long, however slowly the queue
	// is still growing. Below this cap the combiner flushes as soon as
	// arrivals stall (see loop), so MaxWait is a bound, not a tax paid
	// on every epoch. Default 200µs.
	MaxWait time.Duration
	// NoBufferReuse turns off the recycling of per-epoch scratch
	// buffers (event lists, distinct-key arrays, write batches)
	// through the combiner's arena. The default (false) recycles
	// them across epochs; results are identical either way.
	NoBufferReuse bool

	// Metrics attaches the combiner to an observability registry:
	// epoch counters, phase-span and client-latency histograms record
	// under the "combine." prefix, and epoch tracing turns on. nil
	// (the default) disables all recording at zero cost — the hot
	// paths carry nil metric handles whose methods no-op.
	Metrics *obs.Registry
	// TraceDepth bounds the ring of recent epoch traces kept for
	// Trace. 0 selects obs.DefaultTraceDepth when Metrics is set and
	// leaves tracing off otherwise; setting it enables tracing even
	// without a registry.
	TraceDepth int
	// ID tags this combiner's epoch traces (the sharded frontend sets
	// it to the shard index; standalone combiners leave it 0).
	ID int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8192
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	return o
}

// Kind identifies the operation an op carries.
type Kind uint8

const (
	kindGet Kind = iota + 1
	kindContains
	kindPut
	kindDelete
	kindFence    // waits for all earlier ops; reports engine length
	kindSnapshot // fence that additionally copies out all items
	kindKeys     // fence that copies out the keys only
	kindRange    // fence that copies out the items in [lo, hi]
)

// op is one client submission: a mini-batch of keys (length 1 for
// single-key operations) plus result storage filled by the combiner.
// Single-key ops use the inline arrays to stay allocation-free under
// the sync.Pool.
type op[K cmp.Ordered, V any] struct {
	kind Kind
	keys []K
	vals []V // kindPut: vals[i] to store under keys[i]

	rvals  []V    // kindGet: value per input position
	rfound []bool // get/contains: present; put: inserted; delete: removed
	rlen   int    // fence/snapshot: engine length after the epoch
	rkeys  []K    // snapshot/keys/range: copied-out keys
	lo, hi K      // kindRange: the query interval, inclusive

	enq  time.Time // for the combine-wait statistic
	done chan struct{}

	k1  [1]K
	v1  [1]V
	rv1 [1]V
	rf1 [1]bool
}

// Combiner serves concurrent clients by funneling their operations
// through epochs executed on a single Engine. Create one with New;
// all exported methods are safe for concurrent use.
type Combiner[K cmp.Ordered, V any] struct {
	eng  Engine[K, V]     //pbist:guardedby combiner
	pub  Publisher        //pbist:guardedby combiner — eng's Publisher side, nil if not implemented
	rs   RebuildScheduled //pbist:guardedby combiner — eng's rebuild-scheduler side, nil if not implemented
	pool *parallel.Pool
	opts Options

	mu          sync.Mutex
	pending     []*op[K, V] // enqueue order is the epoch linearization order
	pendingKeys int
	firstEnq    time.Time
	closed      bool

	wake     chan struct{} // capacity 1; nudges the combiner loop
	loopDone chan struct{}

	opPool sync.Pool

	// Per-epoch scratch, recycled across epochs through the same
	// size-classed free lists the core tree uses (internal/arena).
	// Only runEpoch borrows from these, and it returns every buffer
	// before the epoch's clients are woken, so no recycled buffer is
	// ever reachable from two epochs — or from any client — at once.
	// The bundle may be shared with other Combiners (NewShared): the
	// free lists are concurrency-safe and buffers carry no identity,
	// so one combiner's retired epoch buffers become another's.
	//pbist:guardedby combiner
	scr *Scratch[K, V]

	// probe is the combiner's observability hook: nil unless the
	// combiner was built with Options.Metrics or Options.TraceDepth.
	// Its handles are internally synchronized (Trace reads the ring
	// from client goroutines), so it is not combiner-confined.
	probe *probe

	smu sync.Mutex
	st  counters
}

// counters accumulates the raw statistics behind Stats.
type counters struct {
	epochs      int64
	ops         int64
	keys        int64
	sizeFlushes int64
	waitTotal   time.Duration
}

// Stats is a snapshot of combining behavior since construction.
type Stats struct {
	// Epochs is the number of combined batches executed.
	Epochs int64
	// Ops is the number of client operations served.
	Ops int64
	// Keys is the number of keys those operations carried.
	Keys int64
	// SizeFlushes counts epochs flushed by the MaxBatch size trigger;
	// the remaining Epochs − SizeFlushes were flushed by the latency
	// trigger (or by Close draining the queue).
	SizeFlushes int64
	// MeanOps and MeanKeys are the mean combined batch size per epoch,
	// in operations and in keys.
	MeanOps  float64
	MeanKeys float64
	// MeanWait is the mean time an operation spent queued before its
	// epoch began executing.
	MeanWait time.Duration
}

// New starts a Combiner serving eng with a private scratch arena.
// pool bounds the parallelism of epoch execution (batched traversals
// and result routing); a nil pool means sequential. The caller must
// not touch eng afterwards except through the Combiner, and should
// Close the Combiner to stop its goroutine.
func New[K cmp.Ordered, V any](eng Engine[K, V], pool *parallel.Pool, opts Options) *Combiner[K, V] {
	opts = opts.withDefaults()
	return NewShared(eng, pool, opts, NewScratch[K, V](opts.NoBufferReuse))
}

// NewShared is New with a caller-provided scratch arena, typically one
// Scratch handed to every combiner of a shard group so the group's
// retained scratch stays bounded regardless of shard count. With
// opts.NoBufferReuse set, the shared arena is ignored and a private
// disabled one is used, preserving the allocate-fresh semantics.
func NewShared[K cmp.Ordered, V any](eng Engine[K, V], pool *parallel.Pool, opts Options, scr *Scratch[K, V]) *Combiner[K, V] {
	opts = opts.withDefaults()
	if scr == nil || opts.NoBufferReuse {
		scr = NewScratch[K, V](opts.NoBufferReuse)
	}
	scr.Observe(opts.Metrics, "combine.scratch")
	// An engine that publishes versions gets PublishVersion called at
	// the end of every epoch; one with a rebuild scheduler gets its
	// epochs bracketed. Both detected once here, not per epoch.
	pub, _ := eng.(Publisher)
	rs, _ := eng.(RebuildScheduled)
	c := &Combiner[K, V]{
		eng:      eng,
		pool:     pool,
		opts:     opts,
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
		scr:      scr,
		pub:      pub,
		rs:       rs,
		probe:    newProbe(opts.Metrics, opts.TraceDepth, opts.ID),
	}
	c.opPool.New = func() any {
		return &op[K, V]{done: make(chan struct{}, 1)}
	}
	go c.loop()
	return c
}

// getOp takes a recycled op and arms it for one submission.
func (c *Combiner[K, V]) getOp(kind Kind) *op[K, V] {
	o := c.opPool.Get().(*op[K, V])
	o.kind = kind
	return o
}

// putOp recycles an op. Results must have been copied out already;
// references to caller slices are dropped so nothing is retained.
func (c *Combiner[K, V]) putOp(o *op[K, V]) {
	o.keys, o.vals, o.rvals, o.rfound, o.rkeys = nil, nil, nil, nil, nil
	var zk K
	var zv V
	o.lo, o.hi = zk, zk
	o.k1[0], o.v1[0], o.rv1[0], o.rf1[0] = zk, zv, zv, false
	c.opPool.Put(o)
}

// submit enqueues o and blocks until its epoch has executed. The
// caller's keys/vals slices are read by the combiner while the caller
// is blocked, never retained past completion.
func (c *Combiner[K, V]) submit(o *op[K, V]) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	o.enq = time.Now()
	if len(c.pending) == 0 {
		c.firstEnq = o.enq
	}
	c.pending = append(c.pending, o)
	c.pendingKeys += len(o.keys)
	nudge := len(c.pending) == 1
	c.mu.Unlock()
	// Only the empty→non-empty transition can find the loop blocked on
	// wake; while the queue is non-empty the loop is gathering or
	// executing and polls the queue itself.
	if nudge {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	<-o.done
	return nil
}

// loop is the combiner goroutine: it gathers queued operations into
// epochs under an adaptive flush policy and executes them.
//
// Flush policy: an epoch flushes as soon as it holds MaxBatch keys
// (size trigger); below that the combiner gathers adaptively while
// the queue is still growing, yielding the processor between polls so
// just-woken clients can enqueue, and flushes the moment arrivals
// stall — bounded by the oldest op's MaxWait deadline (latency
// trigger). A lone client therefore pays only a few yields (its queue
// never grows while it blocks), while n active clients converge to
// n-op epochs: the previous epoch's completions wake them together,
// and gathering holds the epoch open exactly until they have all
// re-enqueued. Epoch execution time adds natural batching on top —
// everything arriving during one epoch belongs to the next.
func (c *Combiner[K, V]) loop() {
	defer close(c.loopDone)
	for {
		c.mu.Lock()
		for len(c.pending) == 0 {
			if c.closed {
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.wake
			c.mu.Lock()
		}
		// Work is queued: gather while arrivals continue.
		if c.pendingKeys < c.opts.MaxBatch && !c.closed {
			deadline := c.firstEnq.Add(c.opts.MaxWait)
			prev := len(c.pending)
			c.mu.Unlock()
			for !time.Now().After(deadline) {
				for i := 0; i < 4; i++ {
					runtime.Gosched()
				}
				c.mu.Lock()
				cur, keys, closing := len(c.pending), c.pendingKeys, c.closed
				c.mu.Unlock()
				if cur == prev || keys >= c.opts.MaxBatch || closing {
					break // arrivals stalled, or a trigger fired
				}
				prev = cur
			}
			c.mu.Lock()
		}
		batch := c.pending
		keys := c.pendingKeys
		c.pending = nil
		c.pendingKeys = 0
		c.mu.Unlock()

		sized := keys >= c.opts.MaxBatch
		if c.probe != nil {
			// Tag the epoch (and every pool goroutine it forks — pprof
			// labels inherit) so CPU profiles attribute combining work.
			// The branch keeps the unobserved path free of the closure
			// allocation.
			parallel.WithLabel(true, "combine-epoch", func() {
				c.runEpoch(batch, keys, sized)
			})
		} else {
			c.runEpoch(batch, keys, sized)
		}
	}
}

// Close stops accepting operations, waits until every already
// submitted operation has completed (the drain), and stops the
// combiner goroutine. It is idempotent and safe to call concurrently
// with in-flight operations: each concurrent operation either
// completes normally or reports ErrClosed.
func (c *Combiner[K, V]) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	<-c.loopDone
}

// Closed reports whether Close has been called.
func (c *Combiner[K, V]) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Stats returns a snapshot of combining behavior.
func (c *Combiner[K, V]) Stats() Stats {
	c.smu.Lock()
	st := c.st
	c.smu.Unlock()
	s := Stats{
		Epochs:      st.epochs,
		Ops:         st.ops,
		Keys:        st.keys,
		SizeFlushes: st.sizeFlushes,
	}
	if st.epochs > 0 {
		s.MeanOps = float64(st.ops) / float64(st.epochs)
		s.MeanKeys = float64(st.keys) / float64(st.epochs)
	}
	if st.ops > 0 {
		s.MeanWait = st.waitTotal / time.Duration(st.ops)
	}
	return s
}

// Get returns the value stored under key.
func (c *Combiner[K, V]) Get(key K) (val V, ok bool, err error) {
	o := c.getOp(kindGet)
	o.k1[0] = key
	o.keys = o.k1[:]
	o.rvals, o.rfound = o.rv1[:], o.rf1[:]
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return val, false, err
	}
	val, ok = o.rv1[0], o.rf1[0]
	c.putOp(o)
	return val, ok, nil
}

// Contains reports whether key is present.
func (c *Combiner[K, V]) Contains(key K) (ok bool, err error) {
	o := c.getOp(kindContains)
	o.k1[0] = key
	o.keys = o.k1[:]
	o.rfound = o.rf1[:]
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return false, err
	}
	ok = o.rf1[0]
	c.putOp(o)
	return ok, nil
}

// Put stores val under key, reporting whether the key was absent.
func (c *Combiner[K, V]) Put(key K, val V) (inserted bool, err error) {
	o := c.getOp(kindPut)
	o.k1[0], o.v1[0] = key, val
	o.keys, o.vals = o.k1[:], o.v1[:]
	o.rfound = o.rf1[:]
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return false, err
	}
	inserted = o.rf1[0]
	c.putOp(o)
	return inserted, nil
}

// Delete removes key, reporting whether it was present.
func (c *Combiner[K, V]) Delete(key K) (removed bool, err error) {
	o := c.getOp(kindDelete)
	o.k1[0] = key
	o.keys = o.k1[:]
	o.rfound = o.rf1[:]
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return false, err
	}
	removed = o.rf1[0]
	c.putOp(o)
	return removed, nil
}

// GetBatch fetches the value for every element of keys as one atomic
// operation: vals[i] and found[i] answer keys[i], whatever the input
// order or duplication.
func (c *Combiner[K, V]) GetBatch(keys []K) (vals []V, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	o := c.getOp(kindGet)
	o.keys = keys
	o.rvals, o.rfound = make([]V, len(keys)), make([]bool, len(keys))
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return nil, nil, err
	}
	vals, found = o.rvals, o.rfound
	c.putOp(o)
	return vals, found, nil
}

// ContainsBatch reports membership for every element of keys as one
// atomic operation.
func (c *Combiner[K, V]) ContainsBatch(keys []K) (found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil
	}
	o := c.getOp(kindContains)
	o.keys = keys
	o.rfound = make([]bool, len(keys))
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return nil, err
	}
	found = o.rfound
	c.putOp(o)
	return found, nil
}

// PutBatch upserts every (keys[i], vals[i]) pair as one atomic
// operation and reports how many keys it newly inserted. Duplicate
// keys in the batch resolve to the last occurrence.
func (c *Combiner[K, V]) PutBatch(keys []K, vals []V) (inserted int, err error) {
	if len(keys) != len(vals) {
		panic("combine: PutBatch keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return 0, nil
	}
	o := c.getOp(kindPut)
	o.keys, o.vals = keys, vals
	o.rfound = make([]bool, len(keys))
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return 0, err
	}
	for _, in := range o.rfound {
		if in {
			inserted++
		}
	}
	c.putOp(o)
	return inserted, nil
}

// DeleteBatch removes every element of keys as one atomic operation
// and reports how many were present.
func (c *Combiner[K, V]) DeleteBatch(keys []K) (removed int, err error) {
	if len(keys) == 0 {
		return 0, nil
	}
	o := c.getOp(kindDelete)
	o.keys = keys
	o.rfound = make([]bool, len(keys))
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return 0, err
	}
	for _, rm := range o.rfound {
		if rm {
			removed++
		}
	}
	c.putOp(o)
	return removed, nil
}

// Len reports the number of keys stored, linearized at the end of the
// epoch that serves it (after every operation submitted before Len).
func (c *Combiner[K, V]) Len() (int, error) {
	o := c.getOp(kindFence)
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return 0, err
	}
	n := o.rlen
	c.putOp(o)
	return n, nil
}

// Flush blocks until every operation submitted before it has
// executed.
func (c *Combiner[K, V]) Flush() error {
	o := c.getOp(kindFence)
	err := c.submit(o)
	c.putOp(o)
	return err
}

// Snapshot returns all (key, value) pairs, keys ascending, linearized
// at the end of the epoch that serves it.
func (c *Combiner[K, V]) Snapshot() ([]K, []V, error) {
	o := c.getOp(kindSnapshot)
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return nil, nil, err
	}
	ks, vs := o.rkeys, o.rvals
	c.putOp(o)
	return ks, vs, nil
}

// Keys returns all keys ascending, linearized at the end of the epoch
// that serves it. Unlike Snapshot it never materializes the values.
func (c *Combiner[K, V]) Keys() ([]K, error) {
	o := c.getOp(kindKeys)
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return nil, err
	}
	ks := o.rkeys
	c.putOp(o)
	return ks, nil
}

// Range returns the (key, value) pairs with keys in [lo, hi], keys
// ascending, linearized at the end of the epoch that serves it — an
// atomic range snapshot that observes every operation submitted
// before the call.
func (c *Combiner[K, V]) Range(lo, hi K) ([]K, []V, error) {
	o := c.getOp(kindRange)
	o.lo, o.hi = lo, hi
	if err := c.submit(o); err != nil {
		c.putOp(o)
		return nil, nil, err
	}
	ks, vs := o.rkeys, o.rvals
	c.putOp(o)
	return ks, vs, nil
}
