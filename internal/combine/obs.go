package combine

import (
	"time"

	"repro/internal/obs"
)

// probe bundles the metric handles one observed Combiner records into,
// resolved once at construction so epoch execution never takes the
// registry lock. A nil probe (the default) disables every recording
// site; a probe with a nil registry still fills the trace ring, so
// tracing works without metrics and vice versa.
//
// All names live under the "combine." prefix. Several combiners
// sharing one registry (the sharded frontend) resolve the same names
// and therefore aggregate into the same counters and histograms; only
// the trace ring is private per combiner, keyed by probe id.
type probe struct {
	id   int
	ring *obs.TraceRing

	epochs      *obs.Counter
	epochOps    *obs.Counter
	epochKeys   *obs.Counter
	sizeFlushes *obs.Counter

	opLatency  *obs.Histogram // client-observed: submit to wakeup, ns
	gatherWait *obs.Histogram // first op's queue wait per epoch, ns
	epochSize  *obs.Histogram // keys per epoch

	phaseSort    *obs.Histogram
	phaseRead    *obs.Histogram
	phaseReplay  *obs.Histogram
	phaseWrite   *obs.Histogram
	phaseRebuild *obs.Histogram
	phasePublish *obs.Histogram
}

// newProbe resolves the combiner metric handles. Returns nil — probing
// fully disabled — when neither a registry nor a trace depth is given.
func newProbe(r *obs.Registry, traceDepth, id int) *probe {
	if r == nil && traceDepth <= 0 {
		return nil
	}
	return &probe{
		id:           id,
		ring:         obs.NewTraceRing(traceDepth),
		epochs:       r.Counter("combine.epochs"),
		epochOps:     r.Counter("combine.ops"),
		epochKeys:    r.Counter("combine.keys"),
		sizeFlushes:  r.Counter("combine.size_flushes"),
		opLatency:    r.Histogram("combine.op_latency_ns"),
		gatherWait:   r.Histogram("combine.epoch.gather_wait_ns"),
		epochSize:    r.Histogram("combine.epoch.keys"),
		phaseSort:    r.Histogram("combine.epoch.sort_ns"),
		phaseRead:    r.Histogram("combine.epoch.read_ns"),
		phaseReplay:  r.Histogram("combine.epoch.replay_ns"),
		phaseWrite:   r.Histogram("combine.epoch.write_ns"),
		phaseRebuild: r.Histogram("combine.epoch.rebuild_ns"),
		phasePublish: r.Histogram("combine.epoch.publish_ns"),
	}
}

// record stores one finished epoch: the trace goes to the ring, the
// phase spans and sizes to the histograms. Called by the combiner
// goroutine only.
func (p *probe) record(tr *obs.EpochTrace) {
	p.ring.Push(tr)
	p.epochs.Add(1)
	p.epochOps.Add(int64(tr.Ops))
	p.epochKeys.Add(int64(tr.Keys))
	if tr.Sized {
		p.sizeFlushes.Add(1)
	}
	p.gatherWait.Record(int64(tr.GatherWait))
	p.epochSize.Record(int64(tr.Keys))
	for _, ph := range tr.Phases() {
		var h *obs.Histogram
		switch ph.Name {
		case "sort":
			h = p.phaseSort
		case "read":
			h = p.phaseRead
		case "replay":
			h = p.phaseReplay
		case "write":
			h = p.phaseWrite
		case "rebuild":
			h = p.phaseRebuild
		case "publish":
			h = p.phasePublish
		}
		h.Record(int64(ph.Dur))
	}
}

// Trace returns up to n recent epoch traces, newest first (n <= 0
// means all retained). It returns nil unless the combiner was built
// with Options.Metrics or Options.TraceDepth set. Safe to call from
// any goroutine, concurrently with in-flight operations: the ring is
// internally synchronized and the returned traces are copies.
func (c *Combiner[K, V]) Trace(n int) []obs.EpochTrace {
	if c.probe == nil {
		return nil
	}
	return c.probe.ring.Recent(n)
}

// Observe registers the scratch arena's free-list telemetry with r as
// live gauges under prefix ("combine.scratch" for the combiner-owned
// bundle): retained buffer count and summed element capacity, plus
// cumulative gets and reuse hits. Repeat calls are idempotent — a
// Scratch shared by a whole shard group must be counted once, however
// many combiners observe it.
func (s *Scratch[K, V]) Observe(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	s.obsOnce.Do(func() {
		r.Func(prefix+".retained_buffers", func() int64 {
			b, _ := s.Retained()
			return int64(b)
		})
		r.Func(prefix+".retained_elems", func() int64 {
			_, e := s.Retained()
			return e
		})
	})
}

// traceEpoch assembles and records the trace of the epoch that just
// ran. The phase stamps are the clock reads runEpoch took at each
// stage boundary, so the six spans tile [start, end] exactly: their
// sum equals Wall by construction, up to the clock's own granularity.
// The rebuild span covers the post-publish scheduler step (debt drain
// or background splice/kick); RebuildKeys and RebuildDebt carry what
// that step reported.
//
//pbist:combiner
func (c *Combiner[K, V]) traceEpoch(ops []*op[K, V], keyCount int, sized bool, rbSpent, rbDebt int, start, tSort, tRead, tReplay, tWrite, tSched, end time.Time) {
	pr := c.probe
	var tr obs.EpochTrace
	tr.Shard = pr.id
	tr.Start = start
	tr.Wall = end.Sub(start)
	tr.GatherWait = start.Sub(ops[0].enq)
	tr.Ops = len(ops)
	tr.Keys = keyCount
	tr.Sized = sized
	tr.RebuildKeys = rbSpent
	tr.RebuildDebt = rbDebt
	tr.AddPhase("sort", tSort.Sub(start))
	tr.AddPhase("read", tRead.Sub(tSort))
	tr.AddPhase("replay", tReplay.Sub(tRead))
	tr.AddPhase("write", tWrite.Sub(tReplay))
	tr.AddPhase("rebuild", tSched.Sub(tWrite))
	tr.AddPhase("publish", end.Sub(tSched))
	pr.record(&tr)
	// Client-observed latency: enqueue to wakeup. Recorded before the
	// done sends so no op is touched after its client may reuse it.
	for _, o := range ops {
		pr.opLatency.Record(int64(end.Sub(o.enq)))
	}
}
