package combine

import (
	"cmp"
	"slices"
	"time"

	"repro/internal/parallel"
)

// event is one (operation, position) element of an epoch: op ops[op]
// touches key at its position sub. Sorting events by (key, op, sub)
// groups each distinct key's touches into a run ordered by
// linearization order (the epoch slice preserves enqueue order, so
// the op index ranks submissions; sub ranks positions inside one
// mini-batch).
type event[K cmp.Ordered] struct {
	key K
	op  int32
	sub int32
}

// runEpoch executes one combined batch: it resolves the pre-epoch
// state of every distinct key with at most one batched read traversal,
// replays each key's events in linearization order to fill per-op
// results, and applies the surviving last-wins writes with at most one
// PutBatched and one RemoveBatched traversal. keyCount and sized feed
// the statistics.
//
//pbist:combiner
func (c *Combiner[K, V]) runEpoch(ops []*op[K, V], keyCount int, sized bool) {
	start := time.Now()
	pr := c.probe

	// Open the epoch's rebuild budget before any traversal: a finished
	// background rebuild splices in here, so this epoch already serves
	// the repaired shape, and every rebuild the write traversals below
	// spend shares one per-epoch cap (core's sched.go).
	if c.rs != nil {
		c.rs.BeginRebuildEpoch()
	}

	// Flatten the epoch into events. Fences carry no keys and resolve
	// after the writes. The event list and every per-run array below
	// are arena scratch: borrowed here, returned at the end of this
	// epoch (before clients wake), recycled by the next epoch.
	nev := 0
	needVals := false
	for _, o := range ops {
		nev += len(o.keys)
		if o.kind == kindGet {
			needVals = true
		}
	}
	evBuf := c.scr.ev.Get(nev)
	events := evBuf[:0]
	for i, o := range ops {
		for j := range o.keys {
			events = append(events, event[K]{key: o.keys[j], op: int32(i), sub: int32(j)})
		}
	}
	slices.SortFunc(events, func(a, b event[K]) int {
		if r := cmp.Compare(a.key, b.key); r != 0 {
			return r
		}
		if a.op != b.op {
			return int(a.op - b.op)
		}
		return int(a.sub - b.sub)
	})

	// Distinct keys and their event runs.
	rkBuf := c.scr.keys.Get(nev)
	rsBuf := c.scr.i32s.Get(nev + 1)
	readKeys := rkBuf[:0]
	runStart := rsBuf[:0]
	for i := range events {
		if i == 0 || events[i].key != events[i-1].key {
			runStart = append(runStart, int32(i))
			readKeys = append(readKeys, events[i].key)
		}
	}
	runStart = append(runStart, int32(len(events)))
	nruns := len(readKeys)

	// The phase stamps below are taken only when the combiner is
	// observed; together with start and end they tile the epoch into
	// the sort/read/replay/write/rebuild/publish spans of its trace.
	var tSort, tRead, tReplay, tWrite, tSched time.Time
	if pr != nil {
		tSort = time.Now()
	}

	// One batched read traversal resolves the pre-epoch state of every
	// key the epoch touches; values ride along only when a Get needs
	// them. Both destinations are epoch scratch (the *Into engine
	// contract wants them zeroed), returned below with the rest, so
	// steady-state epochs run the read phase allocation-free.
	var preVals []V
	preFound := c.scr.bools.GetZero(nruns)
	if nruns > 0 {
		if needVals {
			preVals = c.scr.vals.GetZero(nruns)
			c.eng.GetBatchedInto(readKeys, preVals, preFound)
		} else {
			c.eng.ContainsBatchedInto(readKeys, preFound)
		}
	}
	if pr != nil {
		tRead = time.Now()
	}

	// Replay every key's events in linearization order, in parallel
	// across keys: presence (and value) evolve per event, each event
	// writes its op's answer at its own position, and the key's final
	// state decides the write traversal below. Distinct keys never
	// share a result position, so the scatter is race-free.
	putMark := c.scr.bools.GetZero(nruns)
	delMark := c.scr.bools.GetZero(nruns)
	winVal := c.scr.vals.GetZero(nruns)
	if pr != nil {
		parallel.WithLabel(true, "combine-replay", func() {
			c.replayRuns(ops, events, runStart, preVals, preFound, putMark, delMark, winVal, needVals, nruns)
		})
		tReplay = time.Now()
	} else {
		c.replayRuns(ops, events, runStart, preVals, preFound, putMark, delMark, winVal, needVals, nruns)
	}

	// Gather the surviving writes in run order — readKeys is sorted, so
	// the write batches are sorted and duplicate-free as the engine
	// requires — and apply them with one traversal each. The engine
	// never retains a batch slice (writes copy into tree-owned
	// storage), so scratch-backed batches are safe here.
	pkBuf := c.scr.keys.Get(nruns)
	pvBuf := c.scr.vals.Get(nruns)
	dkBuf := c.scr.keys.Get(nruns)
	putK := pkBuf[:0]
	putV := pvBuf[:0]
	delK := dkBuf[:0]
	for r := 0; r < nruns; r++ {
		switch {
		case putMark[r]:
			putK = append(putK, readKeys[r])
			putV = append(putV, winVal[r])
		case delMark[r]:
			delK = append(delK, readKeys[r])
		}
	}
	if len(putK) > 0 {
		c.eng.PutBatched(putK, putV)
	}
	if len(delK) > 0 {
		c.eng.RemoveBatched(delK)
	}
	// Publish the post-epoch state for version readers before any
	// client of this epoch wakes: an operation that has completed is
	// then always visible to the wait-free fast path, which is what
	// makes fast reads linearizable with combined operations. Read-only
	// epochs publish nothing new but still advance reclamation.
	if c.pub != nil {
		c.pub.PublishVersion()
	}
	if pr != nil {
		tWrite = time.Now()
	}
	// Close the rebuild budget after the publish: this is the moment
	// the live tree is frozen (identical to the just-published
	// version), so the scheduler can drain deferred debt synchronously
	// or kick a background rebuild whose splice-by-pointer-identity
	// check stays sound. The spent/debt figures feed the epoch trace.
	var rbSpent, rbDebt int
	if c.rs != nil {
		rbSpent, rbDebt = c.rs.EndRebuildEpoch()
	}
	if pr != nil {
		tSched = time.Now()
	}

	// Fences linearize here, after every keyed operation of the epoch.
	for _, o := range ops {
		switch o.kind {
		case kindFence:
			o.rlen = c.eng.Len()
		case kindSnapshot:
			o.rlen = c.eng.Len()
			o.rkeys, o.rvals = c.eng.Items()
		case kindKeys:
			o.rlen = c.eng.Len()
			o.rkeys = c.eng.Keys()
		case kindRange:
			o.rlen = c.eng.Len()
			o.rkeys, o.rvals = c.eng.RangeKV(o.lo, o.hi)
		}
	}

	// Every scratch buffer goes back before the clients wake: nothing
	// below reads them, so the next epoch is free to recycle.
	c.scr.ev.Put(evBuf)
	c.scr.keys.Put(rkBuf)
	c.scr.i32s.Put(rsBuf)
	c.scr.bools.Put(preFound)
	c.scr.vals.Put(preVals)
	c.scr.bools.Put(putMark)
	c.scr.bools.Put(delMark)
	c.scr.vals.Put(winVal)
	c.scr.keys.Put(pkBuf)
	c.scr.vals.Put(pvBuf)
	c.scr.keys.Put(dkBuf)

	// Statistics, then wake every client. Waiters read their results
	// only after receiving from done, so the sends publish the scatter
	// writes above.
	var waitSum time.Duration
	for _, o := range ops {
		waitSum += start.Sub(o.enq)
	}
	c.smu.Lock()
	c.st.epochs++
	c.st.ops += int64(len(ops))
	c.st.keys += int64(keyCount)
	if sized {
		c.st.sizeFlushes++
	}
	c.st.waitTotal += waitSum
	c.smu.Unlock()

	if pr != nil {
		c.traceEpoch(ops, keyCount, sized, rbSpent, rbDebt, start, tSort, tRead, tReplay, tWrite, tSched, time.Now())
	}

	for _, o := range ops {
		o.done <- struct{}{}
	}
}

// replayRuns is the replay stage of runEpoch, extracted so the
// observed path can run it under a pprof label without forcing a
// closure allocation on the unobserved path. It touches no
// combiner-confined state — everything it needs arrives as epoch-local
// scratch.
func (c *Combiner[K, V]) replayRuns(ops []*op[K, V], events []event[K], runStart []int32, preVals []V, preFound []bool, putMark, delMark []bool, winVal []V, needVals bool, nruns int) {
	parallel.For(c.pool, nruns, 256, func(r int) {
		present := preFound[r]
		var val V
		if needVals {
			val = preVals[r]
		}
		wrote := false
		for i := runStart[r]; i < runStart[r+1]; i++ {
			e := events[i]
			o := ops[e.op]
			switch o.kind {
			case kindGet:
				o.rvals[e.sub] = val
				o.rfound[e.sub] = present
			case kindContains:
				o.rfound[e.sub] = present
			case kindPut:
				o.rfound[e.sub] = !present
				present = true
				val = o.vals[e.sub]
				wrote = true
			case kindDelete:
				o.rfound[e.sub] = present
				present = false
				wrote = true
			}
		}
		if !wrote {
			return
		}
		switch {
		case present:
			// The last state-setting write was a Put: install its value
			// (an upsert also when the key pre-existed, since the value
			// may differ).
			putMark[r] = true
			winVal[r] = val
		case preFound[r]:
			delMark[r] = true
		}
	})
}
