package combine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// TestEpochTracePhases is the trace-anatomy contract: every recorded
// epoch decomposes into at least four named phases whose durations sum
// to within 10% of the epoch's wall time. The phases are clock stamps
// at stage boundaries, so the sum should in fact tile the wall exactly
// up to clock granularity — the 10% bound is the acceptance criterion
// with margin for coarse clocks.
func TestEpochTracePhases(t *testing.T) {
	pool := parallel.NewPool(2)
	eng := core.New[int64, uint64](core.Config{}, pool)
	reg := obs.NewRegistry()
	c := New[int64, uint64](eng, pool, Options{Metrics: reg, TraceDepth: 32})
	defer c.Close()

	// Drive enough concurrent traffic to produce multi-op epochs.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				k := int64(g)*1000 + i
				if _, err := c.Put(k, uint64(k)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	traces := c.Trace(0)
	if len(traces) == 0 {
		t.Fatal("no epoch traces recorded")
	}
	for _, tr := range traces {
		phases := tr.Phases()
		if len(phases) < 4 {
			t.Fatalf("trace seq %d has %d phases, want >= 4", tr.Seq, len(phases))
		}
		var sum time.Duration
		for _, ph := range phases {
			if ph.Name == "" {
				t.Fatalf("trace seq %d has unnamed phase", tr.Seq)
			}
			if ph.Dur < 0 {
				t.Fatalf("trace seq %d phase %s has negative duration %v", tr.Seq, ph.Name, ph.Dur)
			}
			sum += ph.Dur
		}
		if tr.Wall <= 0 {
			t.Fatalf("trace seq %d wall = %v", tr.Seq, tr.Wall)
		}
		diff := sum - tr.Wall
		if diff < 0 {
			diff = -diff
		}
		if diff*10 > tr.Wall {
			t.Fatalf("trace seq %d: phases sum to %v, wall %v (diff > 10%%)", tr.Seq, sum, tr.Wall)
		}
		if tr.Ops <= 0 || tr.Keys < 0 {
			t.Fatalf("trace seq %d: ops %d keys %d", tr.Seq, tr.Ops, tr.Keys)
		}
		if tr.GatherWait < 0 {
			t.Fatalf("trace seq %d: gather wait %v", tr.Seq, tr.GatherWait)
		}
	}

	// The registry aggregated the same epochs the ring retained.
	s := reg.Snapshot()
	if s.Counters["combine.epochs"] == 0 {
		t.Fatal("combine.epochs counter not recorded")
	}
	if s.Histograms["combine.op_latency_ns"].Count == 0 {
		t.Fatal("op latency histogram empty")
	}
	if got, want := s.Counters["combine.ops"], s.Histograms["combine.op_latency_ns"].Count; got != want {
		t.Fatalf("combine.ops = %d but op latency samples = %d", got, want)
	}
}

// TestTraceDisabled: without Metrics or TraceDepth, Trace returns nil
// and nothing is recorded.
func TestTraceDisabled(t *testing.T) {
	pool := parallel.NewPool(1)
	eng := core.New[int64, uint64](core.Config{}, pool)
	c := New[int64, uint64](eng, pool, Options{})
	defer c.Close()
	if _, err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if tr := c.Trace(0); tr != nil {
		t.Fatalf("unobserved combiner returned traces: %v", tr)
	}
}

// TestTraceWithoutRegistry: TraceDepth alone enables the ring.
func TestTraceWithoutRegistry(t *testing.T) {
	pool := parallel.NewPool(1)
	eng := core.New[int64, uint64](core.Config{}, pool)
	c := New[int64, uint64](eng, pool, Options{TraceDepth: 4})
	defer c.Close()
	for i := int64(0); i < 10; i++ {
		if _, err := c.Put(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	traces := c.Trace(0)
	if len(traces) == 0 {
		t.Fatal("no traces with TraceDepth set")
	}
	if len(traces) > 4 {
		t.Fatalf("ring retained %d traces, depth 4", len(traces))
	}
}
