package combine

import (
	"errors"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/parallel"
)

// newCoreCombiner builds a Combiner over a real core engine.
func newCoreCombiner(t *testing.T, opts Options) *Combiner[int64, uint64] {
	t.Helper()
	pool := parallel.NewPool(4)
	eng := core.New[int64, uint64](core.Config{}, pool)
	c := New[int64, uint64](eng, pool, opts)
	t.Cleanup(c.Close)
	return c
}

// queued reports how many operations are waiting in c's queue.
func queued(c *Combiner[int64, uint64]) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// gatedEngine is a map-backed Engine whose read traversals block on a
// rendezvous, so tests can hold an epoch open while submissions queue
// behind it. Only the combiner goroutine calls it, so the plain map is
// safe.
type gatedEngine struct {
	m       map[int64]uint64
	entered chan struct{} // receives one token when a read traversal starts
	release chan struct{} // the traversal proceeds after a token arrives
}

func newGatedEngine() *gatedEngine {
	return &gatedEngine{
		m:       make(map[int64]uint64),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}, 16),
	}
}

func (e *gatedEngine) gate() {
	e.entered <- struct{}{}
	<-e.release
}

func (e *gatedEngine) ContainsBatchedInto(keys []int64, found []bool) {
	e.gate()
	for i, k := range keys {
		_, found[i] = e.m[k]
	}
}

func (e *gatedEngine) GetBatchedInto(keys []int64, vals []uint64, found []bool) {
	e.gate()
	for i, k := range keys {
		vals[i], found[i] = e.m[k]
	}
}

func (e *gatedEngine) PutBatched(keys []int64, vals []uint64) int {
	n := 0
	for i, k := range keys {
		if _, ok := e.m[k]; !ok {
			n++
		}
		e.m[k] = vals[i]
	}
	return n
}

func (e *gatedEngine) RemoveBatched(keys []int64) int {
	n := 0
	for _, k := range keys {
		if _, ok := e.m[k]; ok {
			n++
			delete(e.m, k)
		}
	}
	return n
}

func (e *gatedEngine) Len() int { return len(e.m) }

func (e *gatedEngine) Keys() []int64 {
	ks := make([]int64, 0, len(e.m))
	for k := range e.m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func (e *gatedEngine) Items() ([]int64, []uint64) {
	ks := e.Keys()
	vs := make([]uint64, len(ks))
	for i, k := range ks {
		vs[i] = e.m[k]
	}
	return ks, vs
}

func (e *gatedEngine) RangeKV(lo, hi int64) ([]int64, []uint64) {
	ks, vs := e.Items()
	i, _ := slices.BinarySearch(ks, lo)
	j, found := slices.BinarySearch(ks, hi)
	if found {
		j++
	}
	return ks[i:j], vs[i:j]
}

// TestSingleClientOracle drives one client through a long random
// mixed sequence and checks every result against a builtin map.
func TestSingleClientOracle(t *testing.T) {
	c := newCoreCombiner(t, Options{})
	oracle := make(map[int64]uint64)
	r := dist.NewRNG(0xc0ffee)
	const keyspace = 512
	for step := 0; step < 4000; step++ {
		k := r.Int63n(keyspace)
		switch r.Uint64n(5) {
		case 0: // Put
			v := r.Uint64()
			_, had := oracle[k]
			ins, err := c.Put(k, v)
			if err != nil || ins == had {
				t.Fatalf("step %d: Put(%d)=%v,%v want inserted=%v", step, k, ins, err, !had)
			}
			oracle[k] = v
		case 1: // Delete
			_, had := oracle[k]
			rm, err := c.Delete(k)
			if err != nil || rm != had {
				t.Fatalf("step %d: Delete(%d)=%v,%v want %v", step, k, rm, err, had)
			}
			delete(oracle, k)
		case 2: // Get
			wv, had := oracle[k]
			v, ok, err := c.Get(k)
			if err != nil || ok != had || (had && v != wv) {
				t.Fatalf("step %d: Get(%d)=%v,%v,%v want %v,%v", step, k, v, ok, err, wv, had)
			}
		case 3: // Contains
			_, had := oracle[k]
			ok, err := c.Contains(k)
			if err != nil || ok != had {
				t.Fatalf("step %d: Contains(%d)=%v,%v want %v", step, k, ok, err, had)
			}
		case 4: // mini-batch Get (unsorted, possibly duplicated input)
			keys := []int64{k, (k + 37) % keyspace, k}
			vals, found, err := c.GetBatch(keys)
			if err != nil {
				t.Fatalf("step %d: GetBatch: %v", step, err)
			}
			for i, q := range keys {
				wv, had := oracle[q]
				if found[i] != had || (had && vals[i] != wv) {
					t.Fatalf("step %d: GetBatch[%d]=%v,%v want %v,%v", step, i, vals[i], found[i], wv, had)
				}
			}
		}
	}
	// Final full-state comparison through an atomic snapshot.
	ks, vs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(oracle) {
		t.Fatalf("snapshot has %d keys, oracle %d", len(ks), len(oracle))
	}
	for i, k := range ks {
		if vs[i] != oracle[k] {
			t.Fatalf("snapshot[%d]=%d→%d, oracle %d", i, k, vs[i], oracle[k])
		}
	}
}

// TestMiniBatchSemantics pins the atomic mini-batch contract:
// positional answers for unsorted duplicated input, last-wins for
// duplicate keys in one PutBatch, and per-op counts.
func TestMiniBatchSemantics(t *testing.T) {
	c := newCoreCombiner(t, Options{})
	ins, err := c.PutBatch([]int64{5, 5, 7}, []uint64{1, 2, 3})
	if err != nil || ins != 2 {
		t.Fatalf("PutBatch inserted %d, %v; want 2 (5 counts once, last value wins)", ins, err)
	}
	vals, found, err := c.GetBatch([]int64{7, 5, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	wantV := []uint64{3, 2, 0, 2}
	wantF := []bool{true, true, false, true}
	if !slices.Equal(vals, wantV) || !slices.Equal(found, wantF) {
		t.Fatalf("GetBatch = %v,%v want %v,%v", vals, found, wantV, wantF)
	}
	hits, err := c.ContainsBatch([]int64{9, 7, 9, 5})
	if err != nil || !slices.Equal(hits, []bool{false, true, false, true}) {
		t.Fatalf("ContainsBatch = %v, %v", hits, err)
	}
	rm, err := c.DeleteBatch([]int64{5, 9, 5})
	if err != nil || rm != 1 {
		t.Fatalf("DeleteBatch removed %d, %v; want 1", rm, err)
	}
	n, err := c.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	ks, err := c.Keys()
	if err != nil || !slices.Equal(ks, []int64{7}) {
		t.Fatalf("Keys = %v, %v; want [7]", ks, err)
	}
}

// TestCombinesConcurrentOps holds an epoch open inside the engine
// while ten clients queue up, then verifies all ten execute as one
// combined epoch with exact per-op results.
func TestCombinesConcurrentOps(t *testing.T) {
	eng := newGatedEngine()
	pool := parallel.NewPool(2)
	c := New[int64, uint64](eng, pool, Options{})
	defer c.Close()

	// Epoch 1: a lone Contains enters the engine and blocks there.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if ok, err := c.Contains(1); ok || err != nil {
			t.Errorf("Contains(1) = %v, %v", ok, err)
		}
	}()
	<-eng.entered

	// Ten distinct-key Puts pile up behind the open epoch.
	const n = 10
	var wg sync.WaitGroup
	insertCount := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			ins, err := c.Put(k, uint64(k)*10)
			if err != nil {
				t.Errorf("Put(%d): %v", k, err)
			}
			insertCount <- ins
		}(int64(100 + i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for queued(c) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d ops queued behind the open epoch", queued(c), n)
		}
		time.Sleep(100 * time.Microsecond)
	}

	eng.release <- struct{}{} // finish epoch 1
	<-eng.entered             // epoch 2 (the ten Puts) starts its read traversal
	eng.release <- struct{}{}
	wg.Wait()
	<-firstDone

	for i := 0; i < n; i++ {
		if !<-insertCount {
			t.Fatalf("a Put of a fresh key reported inserted=false")
		}
	}
	st := c.Stats()
	if st.Epochs != 2 || st.Ops != n+1 {
		t.Fatalf("stats = %d epochs / %d ops, want 2 / %d", st.Epochs, st.Ops, n+1)
	}
	if st.SizeFlushes != 0 {
		t.Fatalf("SizeFlushes = %d, want 0 (both epochs were latency/drain flushed)", st.SizeFlushes)
	}
}

// TestInEpochOrdering gates the engine to force mixed reads and
// writes on the same keys into one epoch, with deterministic per-key
// results because every key has a single writer.
func TestInEpochOrdering(t *testing.T) {
	eng := newGatedEngine()
	eng.m[7] = 70 // pre-existing key
	c := New[int64, uint64](eng, parallel.NewPool(2), Options{})
	defer c.Close()

	opener := make(chan struct{})
	go func() {
		defer close(opener)
		c.Contains(0)
	}()
	<-eng.entered

	var wg sync.WaitGroup
	results := struct {
		sync.Mutex
		insFresh, rmExisting bool
	}{}
	wg.Add(2)
	go func() { // single writer of fresh key 3: insert must report absent
		defer wg.Done()
		ins, err := c.Put(3, 33)
		results.Lock()
		results.insFresh = ins && err == nil
		results.Unlock()
	}()
	go func() { // single deleter of pre-existing key 7
		defer wg.Done()
		rm, err := c.Delete(7)
		results.Lock()
		results.rmExisting = rm && err == nil
		results.Unlock()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for queued(c) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ops did not queue behind the open epoch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	eng.release <- struct{}{}
	<-eng.entered
	eng.release <- struct{}{}
	wg.Wait()
	<-opener

	if !results.insFresh || !results.rmExisting {
		t.Fatalf("in-epoch results wrong: insFresh=%v rmExisting=%v", results.insFresh, results.rmExisting)
	}
	if _, ok := eng.m[7]; ok {
		t.Fatal("key 7 survived its delete")
	}
	if eng.m[3] != 33 {
		t.Fatalf("key 3 = %d, want 33", eng.m[3])
	}
}

// TestRacingWritersAgree checks the linearizability invariants that
// survive scheduling nondeterminism: among N racing Puts of one fresh
// key exactly one observes an insert, and among N racing Deletes of
// one present key exactly one observes a removal.
func TestRacingWritersAgree(t *testing.T) {
	c := newCoreCombiner(t, Options{})
	const n = 64
	var wg sync.WaitGroup
	ins := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			ok, err := c.Put(42, v)
			if err != nil {
				t.Errorf("Put: %v", err)
			}
			ins <- ok
		}(uint64(i))
	}
	wg.Wait()
	count := 0
	for i := 0; i < n; i++ {
		if <-ins {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d of %d racing Puts reported inserted, want exactly 1", count, n)
	}

	rms := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := c.Delete(42)
			if err != nil {
				t.Errorf("Delete: %v", err)
			}
			rms <- ok
		}()
	}
	wg.Wait()
	count = 0
	for i := 0; i < n; i++ {
		if <-rms {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d of %d racing Deletes reported removed, want exactly 1", count, n)
	}
}

// TestSizeTriggerFlush submits one mini-batch larger than MaxBatch
// and expects a size-triggered epoch.
func TestSizeTriggerFlush(t *testing.T) {
	c := newCoreCombiner(t, Options{MaxBatch: 8})
	keys := make([]int64, 32)
	vals := make([]uint64, 32)
	for i := range keys {
		keys[i], vals[i] = int64(i), uint64(i)
	}
	if _, err := c.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SizeFlushes < 1 {
		t.Fatalf("SizeFlushes = %d, want >= 1", st.SizeFlushes)
	}
	if st.MeanKeys != 32 {
		t.Fatalf("MeanKeys = %v, want 32", st.MeanKeys)
	}
}

// TestCloseDrainsInFlight closes the combiner while an epoch is held
// open inside the engine and more operations are queued: the queued
// operations must complete, later submissions must fail.
func TestCloseDrainsInFlight(t *testing.T) {
	eng := newGatedEngine()
	c := New[int64, uint64](eng, parallel.NewPool(2), Options{})

	opener := make(chan struct{})
	go func() {
		defer close(opener)
		c.Contains(1)
	}()
	<-eng.entered

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			_, err := c.Put(k, 1)
			errs <- err
		}(int64(i + 10))
	}
	deadline := time.Now().Add(5 * time.Second)
	for queued(c) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ops did not queue behind the open epoch")
		}
		time.Sleep(100 * time.Microsecond)
	}

	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		c.Close()
	}()
	eng.release <- struct{}{} // let epoch 1 finish
	<-eng.entered             // drain epoch with the two queued Puts
	eng.release <- struct{}{}
	wg.Wait()
	<-opener
	<-closeDone

	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("in-flight op failed during Close: %v", err)
		}
	}
	if !c.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, err := c.Contains(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Contains error = %v, want ErrClosed", err)
	}
	if eng.Len() != 2 {
		t.Fatalf("engine has %d keys after drain, want 2", eng.Len())
	}
	c.Close() // idempotent
}

// TestCloseRacesSubmitters closes while many clients are mid-loop:
// every operation must either complete or report ErrClosed, and the
// call to Close must return.
func TestCloseRacesSubmitters(t *testing.T) {
	c := newCoreCombiner(t, Options{})
	const clients = 32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for step := int64(0); ; step++ {
				_, err := c.Put(id*1000+step%100, uint64(step))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(int64(i))
	}
	time.Sleep(2 * time.Millisecond)
	c.Close()
	close(stop)
	wg.Wait()
	st := c.Stats()
	if st.Ops == 0 {
		t.Fatal("no operations completed before Close")
	}
}

// TestFenceLinearizesAfterEpoch verifies Len and Flush observe every
// operation submitted before them.
func TestFenceLinearizesAfterEpoch(t *testing.T) {
	c := newCoreCombiner(t, Options{})
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(key int64) {
			defer wg.Done()
			c.Put(key, 1)
		}(int64(i))
	}
	wg.Wait()
	got, err := c.Len()
	if err != nil || got != n {
		t.Fatalf("Len = %d, %v; want %d", got, err, n)
	}
}
