// Package annot parses the //pbist:* source annotations that drive
// the pbistvet analyzers. An annotation is a directive-style comment
// (no space after //, so gofmt leaves it alone), either attached to a
// declaration's doc comment or placed on/above the statement it
// governs:
//
//	//pbist:owner          — this scratch borrow deliberately transfers
//	                         ownership (stored, returned, or handed to
//	                         another goroutine); arenapair and noescape
//	                         stop tracking it. On a func declaration it
//	                         covers every borrow in the function.
//	//pbist:releases       — calls to this function release the scratch
//	                         buffers passed as arguments (a Put
//	                         wrapper); arenapair treats its slice
//	                         arguments as returned.
//	//pbist:noalloc        — this function's body must contain no
//	                         allocating constructs; enforced by the
//	                         noalloc analyzer.
//	//pbist:combiner       — this function runs on the combiner
//	                         goroutine; it may touch combiner-confined
//	                         fields.
//	//pbist:guardedby combiner — this struct field is combiner-confined:
//	                         only //pbist:combiner functions may access
//	                         it (combinerguard).
//
// The vocabulary is closed: unknown //pbist: annotations are reported
// by every analyzer that encounters one, so a typo cannot silently
// disable a check.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the directive comment prefix of every pbist annotation.
const Prefix = "//pbist:"

// Known annotation verbs.
const (
	Owner     = "owner"
	Releases  = "releases"
	NoAlloc   = "noalloc"
	Combiner  = "combiner"
	GuardedBy = "guardedby" // takes one argument: the guard name
)

// known reports whether verb is in the closed vocabulary.
func known(verb string) bool {
	switch verb {
	case Owner, Releases, NoAlloc, Combiner, GuardedBy:
		return true
	}
	return false
}

// Annotation is one parsed //pbist: directive.
type Annotation struct {
	Verb string
	Arg  string // first token after the verb, "" if none
	Pos  token.Pos
}

// parse extracts the annotation from one comment, if any.
func parse(c *ast.Comment) (Annotation, bool) {
	text, ok := strings.CutPrefix(c.Text, Prefix)
	if !ok {
		return Annotation{}, false
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Annotation{Verb: "", Pos: c.Pos()}, true
	}
	a := Annotation{Verb: fields[0], Pos: c.Pos()}
	if len(fields) > 1 {
		a.Arg = fields[1]
	}
	return a, true
}

// InGroup reports whether doc (which may be nil) carries the verb.
func InGroup(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if a, ok := parse(c); ok && a.Verb == verb {
			return true
		}
	}
	return false
}

// GroupArg returns the argument of the verb's annotation in doc, with
// ok reporting whether the annotation is present at all.
func GroupArg(doc *ast.CommentGroup, verb string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if a, okc := parse(c); okc && a.Verb == verb {
			return a.Arg, true
		}
	}
	return "", false
}

// File indexes every pbist annotation of one source file by line, so
// statement-level lookups ("is the Get on line 42 marked owner?") are
// O(1).
type File struct {
	fset    *token.FileSet
	byLine  map[int][]Annotation
	unknown []Annotation
}

// NewFile scans file's comments (doc comments included — a func-level
// annotation is also a line annotation of its own line, which is
// harmless) and indexes the pbist directives.
func NewFile(fset *token.FileSet, file *ast.File) *File {
	af := &File{fset: fset, byLine: make(map[int][]Annotation)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			a, ok := parse(c)
			if !ok {
				continue
			}
			if !known(a.Verb) {
				af.unknown = append(af.unknown, a)
				continue
			}
			line := fset.Position(c.Pos()).Line
			af.byLine[line] = append(af.byLine[line], a)
		}
	}
	return af
}

// Unknown returns the malformed or unrecognized pbist annotations of
// the file, for analyzers to report.
func (af *File) Unknown() []Annotation { return af.unknown }

// MarkedAt reports whether pos's line carries the verb, either as a
// trailing comment on the same line or as a standalone comment on the
// line directly above.
func (af *File) MarkedAt(pos token.Pos, verb string) bool {
	line := af.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, a := range af.byLine[l] {
			if a.Verb == verb {
				return true
			}
		}
	}
	return false
}
