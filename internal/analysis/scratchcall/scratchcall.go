// Package scratchcall classifies call expressions against the arena
// contracts: which calls borrow recycled scratch buffers, which calls
// release them, and which calls carve chunk storage. The arenapair and
// noescape analyzers share these predicates so "what counts as a
// borrow" has exactly one definition.
//
// Classification is by method set shape, not import path: a borrow is
// a Get/GetZero call on a named type `Scratch` (any instantiation,
// pointer or value receiver), a release is a Put call on the same, and
// a carve is a Carve call on a named type `Chunk`. Matching by type
// name keeps the analyzers hermetically testable (testdata packages
// declare their own mini Scratch) while remaining precise on the real
// tree: the only types named Scratch in this module are
// internal/arena.Scratch and internal/combine.Scratch (whose fields
// are arena.Scratch again), and method calls named Get/Put on other
// receivers — sync.Pool, Combiner, Map, Tree — never match because
// their receiver types are not named Scratch.
package scratchcall

import (
	"go/ast"
	"go/types"
)

// Kind classifies a call against the arena contracts.
type Kind int

const (
	// None: not an arena-relevant call.
	None Kind = iota
	// Borrow: Scratch.Get or Scratch.GetZero — hands out a recycled
	// buffer the caller must Put on every path.
	Borrow
	// Release: Scratch.Put — ends a borrow.
	Release
	// Carve: Chunk.Carve — hands out node storage slices owned by the
	// subtree being built (no Put exists; escape rules still apply).
	Carve
)

// isNamed reports whether t (after unaliasing and one pointer
// dereference) is a named or instantiated-generic type with the given
// name.
func isNamed(t types.Type, name string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// Classify reports what call does under the arena contracts. For
// Borrow/Release/Carve calls, recv is the receiver expression (the x
// of x.Get(...)).
func Classify(info *types.Info, call *ast.CallExpr) (kind Kind, recv ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return None, nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return None, nil
	}
	switch sel.Sel.Name {
	case "Get", "GetZero":
		if isNamed(tv.Type, "Scratch") {
			return Borrow, sel.X
		}
	case "Put":
		if isNamed(tv.Type, "Scratch") {
			return Release, sel.X
		}
	case "Carve":
		if isNamed(tv.Type, "Chunk") {
			return Carve, sel.X
		}
	}
	return None, nil
}

// Callee resolves the called function or method object of call, nil
// when the callee is dynamic (a function value) or a type conversion.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if selInfo, ok := info.Selections[fun]; ok {
			return selInfo.Obj()
		}
		// Package-qualified call: pkg.F.
		if o := info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// RootIdent unwraps slicing, indexing, and parens down to the base
// identifier of an expression: buf, buf[:n], (buf), buf[1:] all root
// at buf. Returns nil when the expression does not root at a plain
// identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Var resolves the *types.Var an identifier denotes (through Uses or
// Defs), nil for non-variables.
func Var(info *types.Info, id *ast.Ident) *types.Var {
	o := info.Uses[id]
	if o == nil {
		o = info.Defs[id]
	}
	v, _ := o.(*types.Var)
	return v
}
