// Package load turns Go package patterns into parsed, fully
// type-checked packages for the pbistvet analyzers — a small,
// dependency-free stand-in for golang.org/x/tools/go/packages.
//
// Package metadata (directories, build-tag-filtered file lists, the
// resolved import graph) comes from one `go list -deps -json`
// invocation, so the loader sees exactly what the build sees; parsing
// and type checking then happen in-process with go/parser and
// go/types. Module-internal dependencies are type-checked from source
// recursively; standard-library dependencies are type-checked with
// function bodies skipped (their APIs are all the analyzers need),
// which keeps a whole-module load in the low seconds without any
// export-data files. Everything is offline: the only external process
// is the go tool itself, and only for metadata.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one fully loaded package: syntax plus types.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker soft errors. Analyzers run only
	// on packages that checked cleanly; the driver surfaces these.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// loader memoizes one load session: every package is parsed and
// checked at most once, and all packages share one FileSet so
// positions compare across the module.
type loader struct {
	fset     *token.FileSet
	meta     map[string]*listedPackage
	checked  map[string]*types.Package
	checking map[string]bool
	fallback types.ImporterFrom // source importer for paths go list did not report
}

// Load lists patterns in dir (the module root or any directory inside
// it) and returns the matched packages — fully parsed and type-checked
// — in dependency order. Dependencies that are not themselves matched
// are type-checked for their APIs only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:     token.NewFileSet(),
		meta:     make(map[string]*listedPackage, len(metas)),
		checked:  make(map[string]*types.Package, len(metas)),
		checking: make(map[string]bool),
	}
	// The source importer is the safety net for import paths go list
	// did not enumerate (it resolves from GOROOT/GOPATH source); with
	// -deps metadata it should never be consulted, but a nil importer
	// would turn a metadata gap into a hard failure.
	ld.fallback, _ = importer.ForCompiler(ld.fset, "source", nil).(types.ImporterFrom)
	for _, m := range metas {
		ld.meta[m.ImportPath] = m
	}
	var out []*Package
	for _, m := range metas {
		if m.DepOnly || len(m.GoFiles) == 0 {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := ld.check(m)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList shells out for metadata: one invocation, transitive closure
// included, JSON narrowed to the fields the loader reads.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var metas []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(listedPackage)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// parse reads and parses every GoFile of m under the shared FileSet.
func (ld *loader) parse(m *listedPackage) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", m.ImportPath, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check fully type-checks m (bodies included, Info populated) for
// analysis. Dependencies resolve through the loader's importer.
func (ld *loader) check(m *listedPackage) (*Package, error) {
	files, err := ld.parse(m)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg := &Package{
		ImportPath: m.ImportPath,
		Dir:        m.Dir,
		Fset:       ld.fset,
		Files:      files,
	}
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, from: m},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(m.ImportPath, ld.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	ld.checked[m.ImportPath] = tpkg
	return pkg, nil
}

// ensure type-checks the package at path for import resolution,
// memoized. Standard-library packages check with bodies skipped;
// module packages check fully so a later analysis pass of the same
// package could reuse positions, but without Info (the analyzed-
// package pass in Load builds its own).
func (ld *loader) ensure(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.checked[path]; ok {
		return p, nil
	}
	m, ok := ld.meta[path]
	if !ok {
		return nil, fmt.Errorf("load: import %q not in go list metadata", path)
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	files, err := ld.parse(m)
	if err != nil {
		return nil, err
	}
	var softErrs []error
	conf := types.Config{
		Importer:         &pkgImporter{ld: ld, from: m},
		IgnoreFuncBodies: m.Standard, // APIs suffice for dependencies
		FakeImportC:      true,
		Error:            func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(path, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking dependency %s: %v", path, err)
	}
	ld.checked[path] = tpkg
	return tpkg, nil
}

// pkgImporter resolves one package's imports: source-path spellings go
// through the importing package's ImportMap (std vendoring), then the
// loader's metadata; unknown paths fall back to the GOROOT source
// importer.
type pkgImporter struct {
	ld   *loader
	from *listedPackage
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *pkgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := pi.from.ImportMap[path]; ok {
		path = mapped
	}
	if _, ok := pi.ld.meta[path]; ok || path == "unsafe" {
		return pi.ld.ensure(path)
	}
	if pi.ld.fallback != nil {
		return pi.ld.fallback.ImportFrom(path, dir, mode)
	}
	return nil, fmt.Errorf("load: cannot resolve import %q", path)
}
