// Package arenapair defines an analyzer enforcing the arena borrow
// contract: every Scratch.Get/GetZero must reach a matching Put on
// every path out of the borrowing function — fall-through, early
// return, and panic edges alike.
//
// The check is flow-sensitive over the statement structure: borrows
// assigned to local variables enter a live set, Put calls (and calls
// to //pbist:releases-annotated wrappers) remove them, defers satisfy
// every subsequent exit, and branch arms are analyzed independently
// and merged on fall-through. A borrow still live at a return, a
// panic, or the end of the function body is reported once, at the
// Get that created it.
//
// Deliberate ownership transfer — borrows that are stored, returned,
// or otherwise handed off by design — is declared with //pbist:owner,
// either on the borrowing line (or the line above it) or in the
// enclosing function's doc comment, which covers every borrow in that
// function.
package arenapair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/annot"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/scratchcall"
)

// Analyzer is the arenapair check.
var Analyzer = &framework.Analyzer{
	Name: "arenapair",
	Doc:  "check that every Scratch.Get/GetZero is matched by a Put on all paths",
	Run:  run,
}

// borrow is one live Get: shared by every branch-local copy of the
// environment so reporting and defer-satisfaction dedupe globally.
type borrow struct {
	v        *types.Var
	pos      token.Pos // the Get call, where leaks are reported
	deferred bool      // a defer releases this borrow on every exit
	reported bool
}

// env maps live borrowed variables to their borrow records. Copies
// share the *borrow values.
type env map[*types.Var]*borrow

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// checker carries per-function analysis state.
type checker struct {
	pass      *framework.Pass
	af        *annot.File
	releasers map[types.Object]bool // //pbist:releases functions
	funcOwner bool                  // enclosing FuncDecl is //pbist:owner
}

func run(pass *framework.Pass) (any, error) {
	// First pass: collect //pbist:releases functions and report unknown
	// annotation verbs, per file.
	releasers := make(map[types.Object]bool)
	annots := make(map[*ast.File]*annot.File, len(pass.Files))
	for _, file := range pass.Files {
		af := annot.NewFile(pass.Fset, file)
		annots[file] = af
		for _, a := range af.Unknown() {
			pass.Reportf(a.Pos, "unknown pbist annotation %q (known: owner, releases, noalloc, combiner, guardedby)", a.Verb)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !annot.InGroup(fd.Doc, annot.Releases) {
				continue
			}
			if o := pass.TypesInfo.Defs[fd.Name]; o != nil {
				releasers[o] = true
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{
				pass:      pass,
				af:        annots[file],
				releasers: releasers,
				funcOwner: annot.InGroup(fd.Doc, annot.Owner),
			}
			c.checkBody(fd.Body)
		}
	}
	return nil, nil
}

// checkBody analyzes one function (or function-literal) body as an
// independent borrow scope.
func (c *checker) checkBody(body *ast.BlockStmt) {
	e := make(env)
	terminated := c.walk(body.List, e)
	if !terminated {
		c.reportLive(e)
	}
}

// reportLive flags every live, non-deferred borrow in e, once.
func (c *checker) reportLive(e env) {
	for _, b := range e {
		if b.deferred || b.reported {
			continue
		}
		b.reported = true
		c.pass.Reportf(b.pos, "scratch borrow of %s is not returned on this path; Put it or mark the borrow //pbist:owner", b.v.Name())
	}
}

// walk analyzes a statement sequence, mutating e in place, and reports
// whether every path through the sequence terminates (returns, panics,
// or branches away) rather than falling through.
func (c *checker) walk(stmts []ast.Stmt, e env) bool {
	for _, s := range stmts {
		if c.stmt(s, e) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the return value reports termination.
func (c *checker) stmt(s ast.Stmt, e env) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs, e)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.isPanic(call) {
				c.scanExpr(call, e)
				c.reportLive(e)
				return true
			}
			if c.releaseCall(call, e, false) {
				return false
			}
		}
		c.scanExpr(s.X, e)
	case *ast.DeferStmt:
		c.deferStmt(s, e)
	case *ast.GoStmt:
		// The goroutine body is its own borrow scope; releases inside it
		// happen asynchronously and do not satisfy this function's
		// obligations (noescape separately flags captured borrows).
		c.scanExpr(s.Call, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(r, e)
		}
		c.reportLive(e)
		return true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: the live set does not flow to
		// the statement after this one. Loop analysis handles the borrow
		// balance of the enclosing body conservatively.
		return true
	case *ast.IfStmt:
		return c.ifStmt(s, e)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, e)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, e)
		}
		c.loopBody(s.Body, e)
		if s.Post != nil {
			c.stmt(s.Post, e)
		}
	case *ast.RangeStmt:
		c.scanExpr(s.X, e)
		c.loopBody(s.Body, e)
	case *ast.SwitchStmt:
		return c.switchStmt(s.Init, s.Tag, s.Body, e)
	case *ast.TypeSwitchStmt:
		return c.switchStmt(s.Init, nil, s.Body, e)
	case *ast.SelectStmt:
		return c.switchStmt(nil, nil, s.Body, e)
	case *ast.BlockStmt:
		return c.walk(s.List, e)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, e)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, e)
		c.scanExpr(s.Value, e)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, e)
	}
	return false
}

// assign handles borrow creation (x := s.Get(n)) and overwrite leaks.
func (c *checker) assign(s *ast.AssignStmt, e env) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			c.bindOne(s.Lhs[i], rhs, e)
		}
		return
	}
	// Multi-value form: a Scratch borrow returns one value, so no
	// binding can originate here; just scan for misplaced borrows.
	for _, rhs := range s.Rhs {
		c.scanExpr(rhs, e)
	}
}

// valueSpec handles var declarations with initializers.
func (c *checker) valueSpec(vs *ast.ValueSpec, e env) {
	if len(vs.Names) == len(vs.Values) {
		for i, v := range vs.Values {
			c.bindOne(vs.Names[i], v, e)
		}
		return
	}
	for _, v := range vs.Values {
		c.scanExpr(v, e)
	}
}

// bindOne processes one lhs = rhs pair. A borrow call bound to a plain
// variable starts tracking; bound to anything else (a field, an index
// expression) it escapes immediately and needs //pbist:owner. A
// tracked variable overwritten while live leaks its old borrow.
func (c *checker) bindOne(lhs, rhs ast.Expr, e env) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	var kind scratchcall.Kind
	if isCall {
		kind, _ = scratchcall.Classify(c.pass.TypesInfo, call)
	}
	if kind != scratchcall.Borrow {
		c.scanExpr(rhs, e)
		// A reassignment derived from the variable itself — buf =
		// buf[:0], buf = append(buf, x) — keeps the same borrow alive;
		// only a value unrelated to the borrow drops the buffer.
		if !mentions(c.pass.TypesInfo, rhs, lhsVar(c.pass.TypesInfo, lhs)) {
			c.killOrLeak(lhs, e)
		}
		return
	}
	c.scanExpr(call.Fun, e) // receiver may itself misuse a borrow
	for _, a := range call.Args {
		c.scanExpr(a, e)
	}
	if c.ownerAt(call.Pos()) {
		c.killOrLeak(lhs, e)
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		c.pass.Reportf(call.Pos(), "scratch borrow is not bound to a variable; its Put cannot be verified (mark //pbist:owner if ownership transfers)")
		return
	}
	v := scratchcall.Var(c.pass.TypesInfo, id)
	if v == nil {
		return
	}
	c.killOrLeak(lhs, e)
	e[v] = &borrow{v: v, pos: call.Pos()}
}

// lhsVar resolves an assignment target to its variable, nil when the
// target is not a plain identifier.
func lhsVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	return scratchcall.Var(info, id)
}

// mentions reports whether v occurs anywhere in expression x.
func mentions(info *types.Info, x ast.Expr, v *types.Var) bool {
	if v == nil || x == nil {
		return false
	}
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && scratchcall.Var(info, id) == v {
			found = true
		}
		return !found
	})
	return found
}

// killOrLeak handles an assignment target that may hold a live borrow:
// overwriting a tracked variable without Put leaks the old buffer.
func (c *checker) killOrLeak(lhs ast.Expr, e env) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	v := scratchcall.Var(c.pass.TypesInfo, id)
	if v == nil {
		return
	}
	b, live := e[v]
	if !live {
		return
	}
	delete(e, v)
	if b.deferred || b.reported || c.ownerAt(lhs.Pos()) {
		return
	}
	b.reported = true
	c.pass.Reportf(lhs.Pos(), "scratch borrow of %s is overwritten before Put; the borrowed buffer leaks", v.Name())
}

// releaseCall handles Put and //pbist:releases calls, killing the
// borrows of their (root-identifier) arguments and receiver. Reports
// whether the call released anything worth skipping the generic scan
// for. asDefer marks the borrows satisfied-on-all-exits instead of
// killed.
func (c *checker) releaseCall(call *ast.CallExpr, e env, asDefer bool) bool {
	kind, _ := scratchcall.Classify(c.pass.TypesInfo, call)
	releasing := kind == scratchcall.Release
	if !releasing {
		if o := scratchcall.Callee(c.pass.TypesInfo, call); o != nil {
			if c.releasers[o] {
				releasing = true
			} else if f, ok := o.(*types.Func); ok && c.releasers[f.Origin()] {
				// Methods on instantiated generic receivers are fresh
				// objects; Origin maps back to the annotated declaration.
				releasing = true
			}
		}
	}
	if !releasing {
		return false
	}
	for _, a := range call.Args {
		id := scratchcall.RootIdent(a)
		if id == nil {
			continue
		}
		v := scratchcall.Var(c.pass.TypesInfo, id)
		if v == nil {
			continue
		}
		if b, ok := e[v]; ok {
			if asDefer {
				b.deferred = true
			} else {
				delete(e, v)
			}
		}
	}
	return true
}

// deferStmt satisfies borrows released by the deferred call — either a
// direct defer s.Put(buf) or a defer func() { ... } whose body
// releases borrows of the enclosing scope.
func (c *checker) deferStmt(s *ast.DeferStmt, e env) {
	if c.releaseCall(s.Call, e, true) {
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// Releases anywhere inside the deferred closure count: the
		// closure runs on every exit, so conditional structure inside it
		// is its own concern. The body is also checked as a scope of its
		// own (for borrows it creates) by scanExpr below.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.releaseCall(call, e, true)
			}
			return true
		})
	}
	c.scanExpr(s.Call, e)
}

// ifStmt analyzes both arms independently and merges fall-throughs.
func (c *checker) ifStmt(s *ast.IfStmt, e env) bool {
	if s.Init != nil {
		c.stmt(s.Init, e)
	}
	c.scanExpr(s.Cond, e)
	thenEnv := e.clone()
	thenTerm := c.walk(s.Body.List, thenEnv)
	elseEnv := e.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = c.stmt(s.Else, elseEnv)
	}
	merge(e, thenEnv, thenTerm, elseEnv, elseTerm)
	return thenTerm && elseTerm
}

// switchStmt analyzes each case clause independently. A switch with no
// default may match nothing, so the pre-switch environment is always a
// merge input; termination therefore requires a default (or, for
// select, is never assumed — a blocked select that never proceeds is a
// liveness bug out of scope here).
func (c *checker) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, e env) bool {
	if init != nil {
		c.stmt(init, e)
	}
	if tag != nil {
		c.scanExpr(tag, e)
	}
	var arms []env
	var terms []bool
	hasDefault := false
	for _, cl := range body.List {
		armEnv := e.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, x := range cl.List {
				c.scanExpr(x, armEnv)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.stmt(cl.Comm, armEnv)
			}
			stmts = cl.Body
		}
		terms = append(terms, c.walk(stmts, armEnv))
		arms = append(arms, armEnv)
	}
	allTerm := hasDefault && len(arms) > 0
	merged := make(env)
	for i, arm := range arms {
		if terms[i] {
			continue
		}
		allTerm = false
		for k, v := range arm {
			merged[k] = v
		}
	}
	if !hasDefault {
		for k, v := range e {
			merged[k] = v
		}
		allTerm = false
	}
	replace(e, merged)
	return allTerm
}

// loopBody analyzes a loop body once: borrows created inside the body
// must be balanced within one iteration (a borrow surviving the body
// would compound across iterations), and borrows from outside killed
// inside are conservatively treated as killed (a loop that may run
// zero times under-reports rather than false-positives).
func (c *checker) loopBody(body *ast.BlockStmt, e env) {
	inner := e.clone()
	c.walk(body.List, inner)
	for v, b := range inner {
		if _, outer := e[v]; outer {
			continue
		}
		if b.deferred || b.reported {
			continue
		}
		b.reported = true
		c.pass.Reportf(b.pos, "scratch borrow of %s is not returned within the loop iteration that created it", b.v.Name())
	}
	for v := range e {
		if _, still := inner[v]; !still {
			delete(e, v)
		}
	}
}

// merge replaces e with the union of the non-terminated arms; when
// both arms terminate, e's contents are irrelevant to the (dead) code
// after the branch.
func merge(e, thenEnv env, thenTerm bool, elseEnv env, elseTerm bool) {
	merged := make(env)
	if !thenTerm {
		for k, v := range thenEnv {
			merged[k] = v
		}
	}
	if !elseTerm {
		for k, v := range elseEnv {
			merged[k] = v
		}
	}
	replace(e, merged)
}

func replace(e, with env) {
	for k := range e {
		delete(e, k)
	}
	for k, v := range with {
		e[k] = v
	}
}

// scanExpr visits an expression for (a) borrow calls in non-binding
// positions — a Get whose result is passed straight into another call
// or expression can never be verified, so it must be owner-marked —
// and (b) function literals, whose bodies are independent borrow
// scopes (with the subtlety that assignments inside a literal to
// variables of the enclosing function are analyzed in the literal's
// own scope).
func (c *checker) scanExpr(x ast.Expr, e env) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := &checker{pass: c.pass, af: c.af, releasers: c.releasers, funcOwner: c.funcOwner}
			sub.checkBody(n.Body)
			return false
		case *ast.CallExpr:
			kind, _ := scratchcall.Classify(c.pass.TypesInfo, n)
			if kind == scratchcall.Borrow && !c.ownerAt(n.Pos()) {
				c.pass.Reportf(n.Pos(), "scratch borrow is not bound to a variable; its Put cannot be verified (mark //pbist:owner if ownership transfers)")
			}
		}
		return true
	})
}

// isPanic reports whether call is the builtin panic.
func (c *checker) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// ownerAt reports whether a borrow at pos is owner-marked, either on
// its line (or the line above) or at the enclosing function level.
func (c *checker) ownerAt(pos token.Pos) bool {
	return c.funcOwner || c.af.MarkedAt(pos, annot.Owner)
}
