package arenapair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenapair"
)

func TestArenapair(t *testing.T) {
	analysistest.Run(t, arenapair.Analyzer, analysistest.Dir("arenapair", "a"))
}
