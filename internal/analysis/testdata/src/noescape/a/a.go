// Package a is the noescape golden package: mini Scratch and Chunk
// types exercised by every escape route the analyzer guards — field
// stores, returns, channel sends, goroutine captures, composite
// literals, package variables — plus the clean downward-passing and
// synchronous-closure shapes the kernels rely on.
package a

// Scratch mimics arena.Scratch for the analyzer's name-based match.
type Scratch[T any] struct{}

func (s *Scratch[T]) Get(n int) []T { return make([]T, n) }
func (s *Scratch[T]) Put(buf []T)   {}

// Chunk mimics arena.Chunk: carved windows follow the same escape
// rules as borrows.
type Chunk[K any] struct{}

func (c *Chunk[K]) Carve(lo, hi int) []K { return make([]K, hi-lo) }

type holder struct {
	keys []int
}

var sink []int

func use(buf []int)       {}
func fill(buf []int)      {}
func each(f func(i int))  {}
func useT[T any](buf []T) {}

// fieldStore parks a borrow in a struct field.
func fieldStore(s *Scratch[int], h *holder) {
	buf := s.Get(8)
	h.keys = buf // want `stored in a struct field`
	s.Put(buf)
}

// globalStore parks a borrow in a package variable.
func globalStore(s *Scratch[int]) {
	buf := s.Get(8)
	sink = buf // want `stored in a package variable`
	s.Put(buf)
}

// returned hands the borrow to the caller.
func returned(s *Scratch[int]) []int {
	buf := s.Get(8)
	return buf // want `returned`
}

// aliasReturned escapes through a reslice alias.
func aliasReturned(s *Scratch[int]) []int {
	buf := s.Get(8)
	head := buf[:4]
	return head // want `returned`
}

// sent pushes the borrow through a channel.
func sent(s *Scratch[int], ch chan []int) {
	buf := s.Get(8)
	ch <- buf // want `sent on a channel`
	s.Put(buf)
}

// goCapture closes over the borrow in a goroutine.
func goCapture(s *Scratch[int]) {
	buf := s.Get(8)
	go func() {
		use(buf) // want `captured by a goroutine`
	}()
}

// goArg passes the borrow as a goroutine argument.
func goArg(s *Scratch[int]) {
	buf := s.Get(8)
	go use(buf) // want `captured by a goroutine`
}

// compositeStore embeds the borrow in a literal that outlives it.
func compositeStore(s *Scratch[int]) *holder {
	buf := s.Get(8)
	return &holder{keys: buf} // want `stored in a composite literal`
}

// carveStore: carved chunk windows follow the same rules.
func carveStore(ch *Chunk[int], h *holder) {
	win := ch.Carve(0, 4)
	h.keys = win // want `stored in a struct field`
}

// passesDown is the clean kernel shape: borrowed buffers flow down
// the call graph and come back.
func passesDown(s *Scratch[int]) {
	buf := s.Get(8)
	fill(buf)
	s.Put(buf)
}

// syncClosure uses the borrow inside a synchronously-run literal:
// fine — only the go keyword unbounds a closure's lifetime.
func syncClosure(s *Scratch[int]) {
	buf := s.Get(8)
	each(func(i int) { buf[i] = i })
	s.Put(buf)
}

// ownerStore transfers ownership at the marked store site.
func ownerStore(s *Scratch[int], h *holder) {
	h.keys = s.Get(8) //pbist:owner
}

// carveOwner builds the node that owns its carved windows; the
// doc-level mark sanctions every store in the function.
//
//pbist:owner
func carveOwner(ch *Chunk[int], h *holder) {
	h.keys = ch.Carve(0, 4)
}

// genericReturn shows the check is instantiation-independent.
func genericReturn[T any](s *Scratch[T]) []T {
	buf := s.Get(8)
	return buf // want `returned`
}

// genericClean is the clean generic shape.
func genericClean[T any](s *Scratch[T]) {
	buf := s.Get(8)
	useT(buf)
	s.Put(buf)
}
