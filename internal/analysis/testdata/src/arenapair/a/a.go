// Package a is the arenapair golden package: a hermetic mini Scratch
// (the analyzer matches by type name, so this stands in for
// arena.Scratch) exercised by flagged and clean borrow shapes.
package a

// Scratch mimics arena.Scratch for the analyzer's name-based match.
type Scratch[T any] struct{}

func (s *Scratch[T]) Get(n int) []T     { return make([]T, n) }
func (s *Scratch[T]) GetZero(n int) []T { return make([]T, n) }
func (s *Scratch[T]) Put(buf []T)       {}

func use(buf []int)       {}
func useT[T any](buf []T) {}
func cond() bool          { return false }

// leak never returns its borrow.
func leak(s *Scratch[int]) {
	buf := s.Get(8) // want `scratch borrow of buf is not returned`
	use(buf)
}

// balanced is the straight-line happy path.
func balanced(s *Scratch[int]) {
	buf := s.Get(8)
	use(buf)
	s.Put(buf)
}

// deferred releases through defer, satisfying every exit.
func deferred(s *Scratch[int]) {
	buf := s.GetZero(8)
	defer s.Put(buf)
	use(buf)
}

// deferEarly mixes defer with an early return: still clean.
func deferEarly(s *Scratch[int]) {
	buf := s.Get(8)
	defer s.Put(buf)
	if cond() {
		return
	}
	use(buf)
}

// deferClosure releases inside a deferred function literal.
func deferClosure(s *Scratch[int]) {
	buf := s.Get(8)
	defer func() { s.Put(buf) }()
	use(buf)
}

// earlyReturn puts only on the fall-through path.
func earlyReturn(s *Scratch[int]) {
	buf := s.Get(8) // want `not returned on this path`
	if cond() {
		return
	}
	s.Put(buf)
}

// branchBalanced puts in both arms: clean.
func branchBalanced(s *Scratch[int]) {
	buf := s.Get(8)
	if cond() {
		s.Put(buf)
	} else {
		s.Put(buf)
	}
}

// panicky leaks on the panic edge.
func panicky(s *Scratch[int]) {
	buf := s.Get(8) // want `not returned on this path`
	if cond() {
		panic("boom")
	}
	s.Put(buf)
}

// switchLeak leaks on the default arm's return.
func switchLeak(s *Scratch[int], k int) {
	buf := s.Get(8) // want `not returned on this path`
	switch k {
	case 0:
		s.Put(buf)
	default:
		return
	}
}

// loopLeak borrows every iteration without returning.
func loopLeak(s *Scratch[int]) {
	for i := 0; i < 4; i++ {
		buf := s.Get(8) // want `not returned within the loop iteration`
		use(buf)
	}
}

// loopBalanced returns within each iteration: clean.
func loopBalanced(s *Scratch[int]) {
	for i := 0; i < 4; i++ {
		buf := s.Get(8)
		use(buf)
		s.Put(buf)
	}
}

// unbound passes the borrow straight into a call: unverifiable.
func unbound(s *Scratch[int]) {
	use(s.Get(8)) // want `not bound to a variable`
}

// overwrite drops the first borrow by reassignment.
func overwrite(s *Scratch[int]) {
	buf := s.Get(8)
	buf = s.Get(16) // want `overwritten before Put`
	s.Put(buf)
}

// resliceOK reslices and self-appends the borrowed buffer before
// returning it — the standard kernel shape; the borrow stays live
// across derivations of itself.
func resliceOK(s *Scratch[int]) {
	buf := s.Get(8)
	buf = buf[:0]
	buf = append(buf, 1)
	s.Put(buf)
}

// ownerLine transfers ownership of one borrow, marked at the line.
func ownerLine(s *Scratch[int]) []int {
	buf := s.Get(8) //pbist:owner
	return buf
}

// ownerFunc transfers every borrow it makes; the doc-level mark
// covers direct returns of Get results.
//
//pbist:owner
func ownerFunc(s *Scratch[int]) ([]int, []int) {
	return s.Get(4), s.Get(4)
}

// putBoth is a Put wrapper: calling it releases both arguments.
//
//pbist:releases
func putBoth(s *Scratch[int], a, b []int) {
	s.Put(a)
	s.Put(b)
}

// viaWrapper releases through the annotated wrapper: clean.
func viaWrapper(s *Scratch[int]) {
	a := s.Get(4)
	b := s.Get(4)
	putBoth(s, a, b)
}

// genericLeak shows the check is instantiation-independent.
func genericLeak[T any](s *Scratch[T]) {
	buf := s.Get(8) // want `not returned`
	useT(buf)
}

// genericBalanced is the clean generic shape.
func genericBalanced[T any](s *Scratch[T]) {
	buf := s.Get(8)
	defer s.Put(buf)
	useT(buf)
}

//pbist:onwer typo is reported, not silently ignored // want `unknown pbist annotation`
func typoAnnotation(s *Scratch[int]) {
	buf := s.Get(4)
	s.Put(buf)
}
