// Package a is the noalloc golden package: //pbist:noalloc functions
// containing each allocating construct the analyzer reports, the
// sanctioned capacity-reuse append shape, and unannotated functions
// that allocate freely.
package a

type pair struct{ k, v int }

func consume(x any) {}
func runs(f func()) {}

// badMake allocates a temporary.
//
//pbist:noalloc
func badMake(n int) []int {
	tmp := make([]int, n) // want `make in //pbist:noalloc function allocates`
	return tmp
}

// badNew allocates a pointer.
//
//pbist:noalloc
func badNew() *pair {
	return new(pair) // want `new in //pbist:noalloc function allocates`
}

// badAppend grows someone else's slice.
//
//pbist:noalloc
func badAppend(dst, src []int) []int {
	out := append(dst, src...) // want `append in //pbist:noalloc function may allocate`
	return out
}

// selfAppend is the sanctioned capacity-reuse idiom: the result
// overwrites the slice it grew, into pre-sized capacity.
//
//pbist:noalloc
func selfAppend(dst []int, src []int) []int {
	dst = dst[:0]
	for _, x := range src {
		dst = append(dst, x)
	}
	return dst
}

// badLiteral allocates backing storage.
//
//pbist:noalloc
func badLiteral() []int {
	return []int{1, 2, 3} // want `slice or map literal in //pbist:noalloc function allocates`
}

// badPointerLiteral heap-allocates the struct.
//
//pbist:noalloc
func badPointerLiteral() *pair {
	return &pair{k: 1} // want `&composite literal in //pbist:noalloc function allocates`
}

// badClosure allocates a closure object.
//
//pbist:noalloc
func badClosure(n int) {
	runs(func() { _ = n }) // want `function literal in //pbist:noalloc function allocates a closure`
}

// badGo allocates a goroutine.
//
//pbist:noalloc
func badGo() {
	go helper() // want `go statement in //pbist:noalloc function allocates a goroutine`
}

// badConcat allocates the joined string.
//
//pbist:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation in //pbist:noalloc function allocates`
}

// badIfaceConv boxes the int.
//
//pbist:noalloc
func badIfaceConv(x int) {
	consume(any(x)) // want `conversion to interface type in //pbist:noalloc function allocates`
}

// badStringConv copies the bytes.
//
//pbist:noalloc
func badStringConv(b []byte) string {
	return string(b) // want `string/byte-slice conversion in //pbist:noalloc function allocates`
}

// cleanKernel is a representative zero-alloc fast path: index
// arithmetic, reslicing, copies, and self-append only.
//
//pbist:noalloc
func cleanKernel(dst, a, b []int) []int {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	copy(dst[:0], dst)
	return dst
}

// genericBad shows the check is instantiation-independent.
//
//pbist:noalloc
func genericBad[T any](n int) []T {
	return make([]T, n) // want `make in //pbist:noalloc function allocates`
}

// genericClean is the clean generic kernel shape.
//
//pbist:noalloc
func genericClean[T any](dst, src []T) []T {
	dst = dst[:0]
	for _, x := range src {
		dst = append(dst, x)
	}
	return dst
}

// unannotated allocates freely: not the analyzer's business.
func unannotated(n int) []int {
	out := make([]int, 0, n)
	out = append(out, []int{1, 2}...)
	return out
}

func helper() {}
