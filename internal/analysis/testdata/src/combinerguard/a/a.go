// Package a is the combinerguard golden package: a mini flat-combiner
// whose confined fields are annotated //pbist:guardedby combiner,
// accessed from combiner functions (clean), ordinary functions
// (flagged), closures inside combiner functions (flagged — closures
// run on pool workers), and keyed constructor literals (clean).
package a

type engine struct{ n int }

type combiner struct {
	pending int
	eng     *engine //pbist:guardedby combiner
	// scr is the epoch-confined scratch pool.
	//pbist:guardedby combiner
	scr []int
}

// runEpoch executes on the combiner goroutine between barriers.
//
//pbist:combiner
func (c *combiner) runEpoch() {
	c.eng.n++
	c.scr = c.scr[:0]
}

// epochWithClosure hands work to the pool: the closure does not
// inherit combiner context, so confined state must be copied to a
// local at the boundary first.
//
//pbist:combiner
func (c *combiner) epochWithClosure(run func(func())) {
	scr := c.scr
	run(func() {
		_ = scr   // local copy: fine
		_ = c.scr // want `combiner-confined field scr accessed outside`
	})
}

// outside is an ordinary method: no confined access allowed.
func (c *combiner) outside() int {
	_ = c.eng // want `combiner-confined field eng accessed outside`
	return c.pending
}

// newCombiner initializes guarded fields through a keyed literal:
// construction precedes publication, so this is clean.
func newCombiner(e *engine) *combiner {
	return &combiner{eng: e, scr: nil}
}

type genericCombiner[K any] struct {
	keys []K //pbist:guardedby combiner
}

// genericEpoch shows the check is instantiation-independent.
//
//pbist:combiner
func (g *genericCombiner[K]) genericEpoch() {
	g.keys = g.keys[:0]
}

// genericOutside is flagged the same way.
func (g *genericCombiner[K]) genericOutside() int {
	return len(g.keys) // want `combiner-confined field keys accessed outside`
}

type typoGuard struct {
	x int //pbist:guardedby epoch // want `unknown guard "epoch"`
}
