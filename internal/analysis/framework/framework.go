// Package framework is the minimal analyzer-driver contract the
// pbistvet suite is written against: Analyzer, Pass, and Diagnostic,
// mirroring the corresponding types of golang.org/x/tools/go/analysis
// field for field.
//
// The mirror exists because this module deliberately has no external
// dependencies (ROADMAP: the build must work from a bare Go toolchain,
// offline). Every analyzer's Run function receives a *Pass carrying
// exactly what the x/tools Pass carries — the file set, the package's
// syntax trees, its types.Package and types.Info, and a Report sink —
// so migrating the suite onto the real go/analysis driver (and picking
// up its multichecker, facts, and -json plumbing) is a mechanical
// import swap, not a rewrite. Until then, cmd/pbistvet plays the role
// of the multichecker and internal/analysis/analysistest the role of
// analysistest.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The zero Requires/Facts
// machinery of go/analysis is intentionally absent: every pbistvet
// analyzer is self-contained and package-local.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// go/analysis convention it is a lowercase identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the result value is unused by the driver and exists
	// only for signature compatibility with go/analysis.
	Run func(pass *Pass) (any, error)
}

// Pass carries one package's worth of input to an Analyzer.Run and
// receives its diagnostics, exactly like analysis.Pass.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
