// Package combinerguard defines an analyzer enforcing goroutine
// confinement of flat-combining state: a struct field annotated
// //pbist:guardedby combiner may only be accessed from functions
// annotated //pbist:combiner — the functions the combiner goroutine
// alone executes between epoch barriers.
//
// The rules are deliberately strict:
//
//   - Function literals do NOT inherit the combiner context of their
//     enclosing function. An epoch function hands closures to the
//     worker pool, and those closures run on pool goroutines; a
//     closure needing combiner-confined state must receive it through
//     a local copied before the closure is created, which makes the
//     handoff visible at the confinement boundary.
//
//   - Keyed composite literals may initialize guarded fields freely:
//     construction happens before the value is published to any
//     goroutine, and struct-literal keys are field names, not
//     accesses.
//
// The guard vocabulary is closed: //pbist:guardedby with any argument
// other than "combiner" is reported, so a typo cannot unguard a field.
package combinerguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/annot"
	"repro/internal/analysis/framework"
)

// Analyzer is the combinerguard check.
var Analyzer = &framework.Analyzer{
	Name: "combinerguard",
	Doc:  "check that //pbist:guardedby combiner fields are only accessed from //pbist:combiner functions",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			combiner := annot.InGroup(fd.Doc, annot.Combiner)
			checkAccesses(pass, guarded, fd.Body, combiner)
		}
	}
	return nil, nil
}

// collectGuardedFields finds every struct field annotated
// //pbist:guardedby combiner, validating the guard name.
func collectGuardedFields(pass *framework.Pass) map[types.Object]bool {
	guarded := make(map[types.Object]bool)
	mark := func(field *ast.Field, doc *ast.CommentGroup) {
		arg, ok := annot.GroupArg(doc, annot.GuardedBy)
		if !ok {
			return
		}
		if arg != "combiner" {
			pass.Reportf(field.Pos(), "unknown guard %q in //pbist:guardedby (only \"combiner\" is defined)", arg)
			return
		}
		for _, name := range field.Names {
			if o := pass.TypesInfo.Defs[name]; o != nil {
				guarded[o] = true
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mark(field, field.Doc)
				mark(field, field.Comment)
			}
			return true
		})
	}
	return guarded
}

// checkAccesses reports guarded-field selections outside combiner
// context. Function literals reset the context to non-combiner.
func checkAccesses(pass *framework.Pass, guarded map[types.Object]bool, body *ast.BlockStmt, combiner bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkAccesses(pass, guarded, n.Body, false)
			return false
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			fv, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			// Instantiated generic types get fresh field objects; Origin
			// maps them back to the annotated declaration.
			if !guarded[fv] && !guarded[fv.Origin()] {
				return true
			}
			if !combiner {
				pass.Reportf(n.Sel.Pos(), "combiner-confined field %s accessed outside a //pbist:combiner function", n.Sel.Name)
			}
		}
		return true
	})
}
