package combinerguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/combinerguard"
)

func TestCombinerguard(t *testing.T) {
	analysistest.Run(t, combinerguard.Analyzer, analysistest.Dir("combinerguard", "a"))
}
