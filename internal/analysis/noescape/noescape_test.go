package noescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noescape"
)

func TestNoescape(t *testing.T) {
	analysistest.Run(t, noescape.Analyzer, analysistest.Dir("noescape", "a"))
}
