// Package noescape defines an analyzer enforcing the borrow-lifetime
// half of the arena contract: a borrowed scratch buffer (Scratch.Get/
// GetZero) or carved chunk window (Chunk.Carve) is only valid inside
// the traversal that borrowed it, so it must not outlive the function
// — not stored in a struct field or composite literal, not returned,
// not captured by a go-statement closure, not sent on a channel.
//
// Passing a borrowed slice DOWN the call graph is fine (that is the
// whole *Into kernel contract), as is using it inside a function
// literal that runs synchronously (parallel.For bodies); only the
// go keyword moves a closure to an unbounded lifetime.
//
// Tracking is alias-closed and flow-insensitive: any variable assigned
// from a borrow, a carve, or an alias (including reslices) of one is
// borrowed everywhere in the function. Deliberate handoffs — carved
// windows stored into the nodes that own them, functions that return
// borrows by design — are declared with //pbist:owner at the borrow
// site, the escape site, or the function level.
package noescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/annot"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/scratchcall"
)

// Analyzer is the noescape check.
var Analyzer = &framework.Analyzer{
	Name: "noescape",
	Doc:  "check that borrowed scratch and chunk slices do not escape the borrowing function",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		af := annot.NewFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &escChecker{
				pass:      pass,
				af:        af,
				funcOwner: annot.InGroup(fd.Doc, annot.Owner),
				borrowed:  make(map[*types.Var]bool),
			}
			c.collect(fd.Body)
			c.check(fd.Body)
		}
	}
	return nil, nil
}

type escChecker struct {
	pass      *framework.Pass
	af        *annot.File
	funcOwner bool
	borrowed  map[*types.Var]bool
}

// isBorrowSource reports whether rhs produces a borrowed value: a
// borrow/carve call or an alias (possibly resliced) of an
// already-borrowed variable.
func (c *escChecker) isBorrowSource(rhs ast.Expr) bool {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		kind, _ := scratchcall.Classify(c.pass.TypesInfo, call)
		return kind == scratchcall.Borrow || kind == scratchcall.Carve
	}
	if id := scratchcall.RootIdent(rhs); id != nil {
		if v := scratchcall.Var(c.pass.TypesInfo, id); v != nil {
			return c.borrowed[v]
		}
	}
	return false
}

// collect computes the borrowed-variable set to a fixed point, so
// aliases of aliases are found regardless of statement order.
func (c *escChecker) collect(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		bind := func(lhs, rhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			v := scratchcall.Var(c.pass.TypesInfo, id)
			if v == nil || c.borrowed[v] {
				return
			}
			// An owner-marked borrow is owned, not borrowed: its escapes
			// are deliberate.
			if c.funcOwner || c.af.MarkedAt(rhs.Pos(), annot.Owner) {
				return
			}
			if c.isBorrowSource(rhs) {
				c.borrowed[v] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				} else if len(n.Rhs) == 1 {
					// Multi-value borrow: Chunk.Carve returns its keys/
					// vals/exists triple in one call, so every target of
					// rep, vv, ex := ch.Carve(...) is borrowed.
					for _, lhs := range n.Lhs {
						bind(lhs, n.Rhs[0])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						bind(n.Names[i], n.Values[i])
					}
				} else if len(n.Values) == 1 {
					for _, name := range n.Names {
						bind(name, n.Values[0])
					}
				}
			}
			return true
		})
	}
}

// check walks the body reporting escapes of borrowed values.
func (c *escChecker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					c.checkStore(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if c.isBorrowSource(r) && !c.allowedAt(r.Pos()) {
					c.pass.Reportf(r.Pos(), "borrowed scratch slice is returned; it must not outlive the borrowing function (mark //pbist:owner if ownership transfers)")
				}
			}
		case *ast.SendStmt:
			if c.isBorrowSource(n.Value) && !c.allowedAt(n.Value.Pos()) {
				c.pass.Reportf(n.Value.Pos(), "borrowed scratch slice is sent on a channel; the receiver would outlive the borrow")
			}
		case *ast.GoStmt:
			c.checkGoCapture(n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.isBorrowSource(v) && !c.allowedAt(v.Pos()) {
					c.pass.Reportf(v.Pos(), "borrowed scratch slice is stored in a composite literal; the literal may outlive the borrow")
				}
			}
		}
		return true
	})
}

// checkStore flags a borrowed value assigned to a non-local location
// (a struct field, a map or slice element, a dereference).
func (c *escChecker) checkStore(lhs, rhs ast.Expr) {
	if !c.isBorrowSource(rhs) || c.allowedAt(rhs.Pos()) {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// A local alias is tracked by collect and is not an escape by
		// itself, but a package-level variable outlives any borrow.
		if v := scratchcall.Var(c.pass.TypesInfo, l); v != nil && v.Parent() == c.pass.Pkg.Scope() {
			c.pass.Reportf(lhs.Pos(), "borrowed scratch slice is stored in a package variable; it outlives the borrow")
		}
	case *ast.SelectorExpr:
		c.pass.Reportf(lhs.Pos(), "borrowed scratch slice is stored in a struct field; the field outlives the borrow (mark //pbist:owner if ownership transfers)")
	case *ast.IndexExpr, *ast.StarExpr:
		c.pass.Reportf(lhs.Pos(), "borrowed scratch slice is stored through a pointer or element; the target may outlive the borrow")
	}
}

// checkGoCapture flags borrowed variables referenced inside a
// go-statement closure: the goroutine's lifetime is unbounded relative
// to the borrow. Borrowed slices passed as call arguments are
// evaluated before the goroutine starts but still retained by it, so
// arguments are checked too.
func (c *escChecker) checkGoCapture(g *ast.GoStmt) {
	if c.funcOwner {
		return
	}
	report := func(pos token.Pos, name string) {
		if !c.allowedAt(pos) {
			c.pass.Reportf(pos, "borrowed scratch slice %s is captured by a goroutine; the goroutine may outlive the borrow", name)
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := scratchcall.Var(c.pass.TypesInfo, id); v != nil && c.borrowed[v] {
					report(id.Pos(), id.Name)
				}
			}
			return true
		})
	}
	for _, a := range g.Call.Args {
		if id := scratchcall.RootIdent(a); id != nil {
			if v := scratchcall.Var(c.pass.TypesInfo, id); v != nil && c.borrowed[v] {
				report(a.Pos(), id.Name)
			}
		}
	}
}

// allowedAt reports whether an escape at pos is explicitly sanctioned.
func (c *escChecker) allowedAt(pos token.Pos) bool {
	return c.funcOwner || c.af.MarkedAt(pos, annot.Owner)
}
