// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against // want comments — the same contract
// as golang.org/x/tools/go/analysis/analysistest, rebuilt on the
// in-tree loader so the suite tests offline.
//
// A test package lives in its own directory under
// internal/analysis/testdata/src/<analyzer>/ and is a complete,
// self-contained Go package (testdata directories are invisible to
// ./... patterns, so these packages never leak into module builds).
// Expectations are trailing comments:
//
//	buf := s.Get(n) // want `not returned`
//
// Each string after want — quoted or backquoted — is a regular
// expression that must match the message of exactly one diagnostic
// reported on that line; diagnostics without a matching want, and
// wants without a matching diagnostic, both fail the test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE extracts the expectation strings of one comment text:
// everything after "want" as a sequence of Go string literals.
var wantMarker = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// argRE matches one quoted or backquoted string literal.
var argRE = regexp.MustCompile("^\\s*(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads each directory as a package, applies the analyzer, and
// reports mismatches between its diagnostics and the // want
// expectations through t.
func Run(t *testing.T, a *framework.Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			runDir(t, a, dir)
		})
	}
}

func runDir(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	pkgs, err := load.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("type error in golden package: %v", terr)
	}

	var wants []*want
	for _, file := range pkg.Files {
		filename := pkg.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				rest := m[1]
				found := false
				for {
					arg := argRE.FindStringSubmatch(rest)
					if arg == nil {
						break
					}
					rest = rest[len(arg[0]):]
					lit := arg[1]
					var pattern string
					if strings.HasPrefix(lit, "`") {
						pattern = strings.Trim(lit, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", filename, line, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, pattern, err)
					}
					wants = append(wants, &want{file: filename, line: line, re: re, raw: pattern})
					found = true
				}
				if !found {
					t.Fatalf("%s:%d: want comment with no string literal", filename, line)
				}
			}
		}
	}

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != posn.Filename || w.line != posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// Dir builds the conventional golden-package path for an analyzer
// test: the shared testdata tree lives at internal/analysis/testdata
// and each analyzer's tests run from internal/analysis/<analyzer>, so
// the relative path is ../testdata/src/<analyzer>/<name>.
func Dir(analyzer, name string) string {
	return filepath.Join("..", "testdata", "src", analyzer, name)
}
