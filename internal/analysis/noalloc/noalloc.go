// Package noalloc defines an analyzer that turns the engine's
// alloc-ceiling benchmarks into a compile-time guarantee: a function
// annotated //pbist:noalloc must contain no allocating constructs in
// its own body.
//
// Reported constructs: make and new, non-self append (append whose
// result is not assigned back over its own first argument — the
// capacity-reuse idiom `x = append(x, ...)` into a pre-sized borrowed
// buffer is the one sanctioned append shape), slice/map/pointer
// composite literals, function literals (closure allocation), go
// statements, string concatenation and []byte/[]rune→string
// conversions, and explicit conversions of concrete values to
// interface types.
//
// The check is deliberately shallow: it inspects only the annotated
// body, not callees. Hot paths are annotated leaf kernels, so the
// transitive guarantee is the union of annotations, and a call to an
// unannotated allocating helper is visible in the benchmark ceilings
// the annotation complements.
package noalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/annot"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/scratchcall"
)

// Analyzer is the noalloc check.
var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc:  "check that //pbist:noalloc functions contain no allocating constructs",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annot.InGroup(fd.Doc, annot.NoAlloc) {
				continue
			}
			c := &allocChecker{pass: pass, allowedAppends: make(map[*ast.CallExpr]bool)}
			c.markSelfAppends(fd.Body)
			c.check(fd.Body)
		}
	}
	return nil, nil
}

type allocChecker struct {
	pass           *framework.Pass
	allowedAppends map[*ast.CallExpr]bool
}

// builtinName resolves call to the name of the builtin it invokes, ""
// for ordinary calls.
func (c *allocChecker) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// markSelfAppends records the append calls in the sanctioned
// capacity-reuse shape: `x = append(x, ...)` (and x, y = append(x,…),
// append(y,…)), where the result overwrites the slice it grew.
func (c *allocChecker) markSelfAppends(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || c.builtinName(call) != "append" || len(call.Args) == 0 {
				continue
			}
			lhsID := scratchcall.RootIdent(as.Lhs[i])
			argID := scratchcall.RootIdent(call.Args[0])
			if lhsID == nil || argID == nil {
				continue
			}
			lv := scratchcall.Var(c.pass.TypesInfo, lhsID)
			av := scratchcall.Var(c.pass.TypesInfo, argID)
			if lv != nil && lv == av {
				c.allowedAppends[call] = true
			}
		}
		return true
	})
}

// check reports every allocating construct in body.
func (c *allocChecker) check(body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch c.builtinName(n) {
			case "make":
				c.pass.Reportf(n.Pos(), "make in //pbist:noalloc function allocates")
			case "new":
				c.pass.Reportf(n.Pos(), "new in //pbist:noalloc function allocates")
			case "append":
				if !c.allowedAppends[n] {
					c.pass.Reportf(n.Pos(), "append in //pbist:noalloc function may allocate; only the self-assigned capacity-reuse form x = append(x, ...) is permitted")
				}
			case "":
				c.checkConversion(n)
			}
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(n)).Underlying().(type) {
			case *types.Slice, *types.Map:
				c.pass.Reportf(n.Pos(), "slice or map literal in //pbist:noalloc function allocates")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "&composite literal in //pbist:noalloc function allocates")
				}
			}
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "function literal in //pbist:noalloc function allocates a closure")
			return false
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement in //pbist:noalloc function allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil {
					if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.pass.Reportf(n.Pos(), "string concatenation in //pbist:noalloc function allocates")
					}
				}
			}
		}
		return true
	})
}

// checkConversion reports explicit conversions that allocate: concrete
// value to interface type, and []byte/[]rune to string (or back).
func (c *allocChecker) checkConversion(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := types.Unalias(tv.Type).Underlying()
	srcT := info.TypeOf(call.Args[0])
	if srcT == nil {
		return
	}
	src := types.Unalias(srcT).Underlying()
	if _, isIface := dst.(*types.Interface); isIface {
		if _, srcIface := src.(*types.Interface); !srcIface {
			c.pass.Reportf(call.Pos(), "conversion to interface type in //pbist:noalloc function allocates")
		}
		return
	}
	dstStr := isString(dst)
	srcStr := isString(src)
	if dstStr != srcStr && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src)) {
		c.pass.Reportf(call.Pos(), "string/byte-slice conversion in //pbist:noalloc function allocates")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Int32 || b.Kind() == types.Uint8)
}
