package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, analysistest.Dir("noalloc", "a"))
}
