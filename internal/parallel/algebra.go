package parallel

// Whole-set algebra kernels over sorted key-value sequences: union,
// intersection, and symmetric difference of two sorted duplicate-free
// key slices, each with a position-aligned value slice riding along.
// Together with DifferenceKV they are the combine step of the tree's
// tree-to-tree set operations (flatten both operands, combine here,
// rebuild ideally balanced).
//
// All three share one blocked two-pass algorithm: the larger input is
// cut into equal blocks, each block's aligned range of the smaller
// input is located with one binary search per boundary, pass 1 counts
// each segment pair's output, a scan turns counts into offsets, and
// pass 2 writes every segment independently — O(|a|+|b|) work and
// O(log²(|a|+|b|)) span, with the output emitted sorted and
// duplicate-free.

// algebraOp selects the emit rule of the shared segmented kernel.
type algebraOp uint8

const (
	opUnion algebraOp = iota
	opIntersect
	opSymDiff
)

// UnionKV returns the union of two sorted duplicate-free key sequences
// with their aligned values: every key of either input appears exactly
// once, sorted. When a key occurs in both inputs, the value of the
// SECOND sequence (bk/bv) wins — callers choose a merge policy by
// argument order, since the key set of the result is the same either
// way.
func UnionKV[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V) ([]K, []V) {
	checkKV("UnionKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opUnion, nil, nil)
}

// UnionKVInto is UnionKV writing into dstK/dstV: each destination's
// backing array is reused when its capacity covers the output (at most
// len(ak)+len(bk); destination lengths are ignored) and freshly
// allocated otherwise. The tree-to-tree algebra passes recycled
// scratch buffers here so flatten-combine-rebuild cycles allocate no
// combine temporaries.
//
//pbist:noalloc
func UnionKVInto[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) ([]K, []V) {
	checkKV("UnionKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opUnion, dstK, dstV)
}

// IntersectKV returns the (key, value) pairs whose key occurs in both
// sorted duplicate-free inputs, sorted. The value comes from the FIRST
// sequence (ak/av); swap the arguments for the other policy.
func IntersectKV[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V) ([]K, []V) {
	checkKV("IntersectKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opIntersect, nil, nil)
}

// IntersectKVInto is IntersectKV under the destination contract of
// UnionKVInto (output at most min(len(ak), len(bk))).
//
//pbist:noalloc
func IntersectKVInto[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) ([]K, []V) {
	checkKV("IntersectKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opIntersect, dstK, dstV)
}

// SymmetricDifferenceKV returns the (key, value) pairs whose key
// occurs in exactly one of the two sorted duplicate-free inputs,
// sorted. Each surviving pair keeps the value of the input it came
// from, so the operation is symmetric.
func SymmetricDifferenceKV[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V) ([]K, []V) {
	checkKV("SymmetricDifferenceKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opSymDiff, nil, nil)
}

// SymmetricDifferenceKVInto is SymmetricDifferenceKV under the
// destination contract of UnionKVInto (output at most
// len(ak)+len(bk)).
//
//pbist:noalloc
func SymmetricDifferenceKVInto[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) ([]K, []V) {
	checkKV("SymmetricDifferenceKV", ak, av, bk, bv)
	return algebraKV(p, ak, av, bk, bv, opSymDiff, dstK, dstV)
}

func checkKV[K Ordered, V any](name string, ak []K, av []V, bk []K, bv []V) {
	if len(ak) != len(av) || len(bk) != len(bv) {
		panic("parallel: " + name + " keys/vals length mismatch")
	}
}

// algebraKV is the shared segmented two-pass kernel. The op-specific
// emit rules live in algebraSeg; this function handles the trivial
// cases, balances the split by blocking over the larger input, and
// runs the count/scan/write passes. dstK/dstV carry the optional
// caller-provided destinations of the *Into variants.
//
//pbist:noalloc
func algebraKV[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, op algebraOp, dstK []K, dstV []V) ([]K, []V) {
	// An empty operand makes every op a copy (or nothing, for
	// intersection).
	if len(ak) == 0 || len(bk) == 0 {
		if op == opIntersect {
			return nil, nil
		}
		sk, sv := ak, av
		if len(sk) == 0 {
			sk, sv = bk, bv
		}
		if len(sk) == 0 {
			return nil, nil
		}
		outK := sized(dstK, len(sk))
		outV := sized(dstV, len(sk))
		copy(outK, sk)
		copy(outV, sv)
		return outK, outV
	}

	// Block over the larger input so segment sizes — and therefore the
	// parallel slack — track the total work even at extreme operand
	// ratios (a 1:1000 union must not degenerate into one segment).
	// Swapping operands swaps which side "wins" a common key, so the
	// emit rule records which physical side carries the policy value.
	commonFromFirst := op != opUnion // union: second wins; intersect: first
	if len(ak) < len(bk) {
		ak, av, bk, bv = bk, bv, ak, av
		commonFromFirst = !commonFromFirst
	}
	n := len(ak)
	blocks := scanBlocks(p, n+len(bk))
	if blocks > n {
		blocks = n
	}
	if blocks == 1 {
		// Sequential shape: one counting walk, one writing walk, no
		// segment bookkeeping.
		total := algebraSeg[K, V](ak, nil, bk, nil, op, commonFromFirst, nil, nil)
		outK := sized(dstK, total)
		outV := sized(dstV, total)
		algebraSeg(ak, av, bk, bv, op, commonFromFirst, outK, outV)
		return outK, outV
	}
	return algebraKVPar(p, ak, av, bk, bv, op, commonFromFirst, dstK, dstV, blocks)
}

// algebraKVPar is the segmented tail of algebraKV, split out so the
// dispatching wrapper stays //pbist:noalloc: the segment bookkeeping
// below allocates, and it only runs when the pool has already decided
// the operands are large enough to fork.
func algebraKVPar[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, op algebraOp, commonFromFirst bool, dstK []K, dstV []V, blocks int) ([]K, []V) {
	n := len(ak)
	bs := (n + blocks - 1) / blocks

	// Segment i pairs a[i·bs, (i+1)·bs) with the b range holding keys
	// in [a[i·bs], a[(i+1)·bs)); the first and last segments extend to
	// the ends of b so every b key lands in exactly one segment.
	bounds := make([]int, blocks+1)
	bounds[blocks] = len(bk)
	For(p, blocks-1, 1, func(i int) {
		if idx := (i + 1) * bs; idx < n {
			bounds[i+1] = LowerBound(bk, ak[idx])
		} else {
			// ceil rounding can push trailing block starts past the end
			// of a; those segments are empty and take no b range.
			bounds[i+1] = len(bk)
		}
	})

	// Pass 1: per-segment output counts. lo is clamped like hi: ceil
	// rounding can push trailing block starts past the end of a.
	counts := make([]int, blocks)
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		counts[blk] = algebraSeg[K, V](ak[lo:hi], nil, bk[bounds[blk]:bounds[blk+1]], nil, op, commonFromFirst, nil, nil)
	})
	total := ScanInPlace(nil, counts)
	outK := sized(dstK, total)
	outV := sized(dstV, total)
	// Pass 2: write every segment at its scanned offset.
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		algebraSeg(ak[lo:hi], av[lo:hi], bk[bounds[blk]:bounds[blk+1]], bv[bounds[blk]:bounds[blk+1]],
			op, commonFromFirst, outK[counts[blk]:], outV[counts[blk]:])
	})
	return outK, outV
}

// algebraSeg merges one aligned segment pair with a sequential
// two-pointer walk. With dstK == nil it only counts the output (the
// value slices may be nil too); otherwise it writes pairs and assumes
// the destinations are large enough. commonFromFirst selects which
// side's value a key present in both inputs keeps.
//
//pbist:noalloc
func algebraSeg[K Ordered, V any](ak []K, av []V, bk []K, bv []V, op algebraOp, commonFromFirst bool, dstK []K, dstV []V) int {
	i, j, w := 0, 0, 0
	write := dstK != nil
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			if op != opIntersect {
				if write {
					dstK[w] = ak[i]
					dstV[w] = av[i]
				}
				w++
			}
			i++
		case bk[j] < ak[i]:
			if op != opIntersect {
				if write {
					dstK[w] = bk[j]
					dstV[w] = bv[j]
				}
				w++
			}
			j++
		default: // key in both inputs
			if op != opSymDiff {
				if write {
					dstK[w] = ak[i]
					if commonFromFirst {
						dstV[w] = av[i]
					} else {
						dstV[w] = bv[j]
					}
				}
				w++
			}
			i++
			j++
		}
	}
	if op != opIntersect {
		if write {
			copy(dstK[w:], ak[i:])
			copy(dstV[w:], av[i:])
		}
		w += len(ak) - i
		if write {
			copy(dstK[w:], bk[j:])
			copy(dstV[w:], bv[j:])
		}
		w += len(bk) - j
	}
	return w
}
