package parallel

import "slices"

// sortCutoff is the size below which Sort falls back to the standard
// library's pattern-defeating quicksort.
const sortCutoff = 4096

// Sort sorts a in place using a parallel merge sort: O(n log n) work and
// O(log³ n) span. It is used to pre-sort key batches, since every
// batched operation of the paper assumes its input batch is sorted.
func Sort[K Ordered](p *Pool, a []K) {
	if len(a) <= sortCutoff || p.sequential() {
		slices.Sort(a)
		return
	}
	buf := make([]K, len(a))
	sortInto(p, a, buf, false)
}

// SortedDedup sorts a and removes duplicates, returning the compacted
// slice. It is the standard batch normalization step for callers that
// cannot guarantee sorted duplicate-free input.
func SortedDedup[K Ordered](p *Pool, a []K) []K {
	Sort(p, a)
	return Dedup(p, a)
}

// sortInto sorts src; if toBuf is false the sorted data ends in src,
// otherwise in buf. The two buffers ping-pong across recursion levels so
// each merge copies once.
func sortInto[K Ordered](p *Pool, src, buf []K, toBuf bool) {
	if len(src) <= sortCutoff || p.sequential() {
		slices.Sort(src)
		if toBuf {
			copy(buf, src)
		}
		return
	}
	mid := len(src) / 2
	p.Do(
		func() { sortInto(p, src[:mid], buf[:mid], !toBuf) },
		func() { sortInto(p, src[mid:], buf[mid:], !toBuf) },
	)
	if toBuf {
		mergeInto(p, src[:mid], src[mid:], buf)
	} else {
		mergeInto(p, buf[:mid], buf[mid:], src)
	}
}
