package parallel

// mergeCutoff is the size below which a merge runs sequentially.
const mergeCutoff = 4096

// Merge merges two sorted slices into a freshly allocated sorted slice
// (§2.4): O(|a|+|b|) work and O(log²(|a|+|b|)) span. The relative order
// of equal elements drawn from the two inputs is unspecified; all
// callers in this repository merge disjoint duplicate-free sets.
func Merge[K Ordered](p *Pool, a, b []K) []K {
	out := make([]K, len(a)+len(b))
	MergeInto(p, a, b, out)
	return out
}

// MergeInto merges sorted a and b into dst, which must have length
// len(a)+len(b). It allows callers that manage their own buffers (the
// leaf-merge step of batched insertion, the rebuild path) to avoid an
// allocation per merge.
//
//pbist:noalloc
func MergeInto[K Ordered](p *Pool, a, b []K, dst []K) {
	if len(dst) != len(a)+len(b) {
		panic("parallel: MergeInto destination length mismatch")
	}
	mergeInto(p, a, b, dst)
}

func mergeInto[K Ordered](p *Pool, a, b []K, dst []K) {
	// The divide step bisects the larger input and splits the smaller
	// one by binary search, yielding two independent sub-merges.
	for {
		// Always bisect the larger input so the split is balanced.
		if len(a) < len(b) {
			a, b = b, a
		}
		if len(dst) <= mergeCutoff || p.sequential() {
			mergeSeq(a, b, dst)
			return
		}
		am := len(a) / 2
		bm := LowerBound(b, a[am])
		var left, right func()
		a0, a1 := a[:am], a[am:]
		b0, b1 := b[:bm], b[bm:]
		d0, d1 := dst[:am+bm], dst[am+bm:]
		left = func() { mergeInto(p, a0, b0, d0) }
		right = func() { mergeInto(p, a1, b1, d1) }
		if !p.acquire() {
			mergeSeq(a0, b0, d0)
			a, b, dst = a1, b1, d1
			continue
		}
		done := chanPool.Get().(chan *panicValue)
		go func() {
			var pv *panicValue
			defer func() {
				p.release()
				done <- pv
			}()
			defer func() {
				if r := recover(); r != nil {
					pv = recoverValue(r)
				}
			}()
			right()
		}()
		left()
		if pv := <-done; pv != nil {
			pv.repanic()
		}
		chanPool.Put(done)
		return
	}
}

//pbist:noalloc
func mergeSeq[K Ordered](a, b, dst []K) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
