// Package parallel implements the fork-join runtime and the standard
// parallel primitives the paper assumes (§2.4): parallel loops, Scan,
// Filter, Merge, Difference, Rank, and parallel sorting.
//
// The paper's reference implementation uses OpenCilk; here a Pool plays
// the role of the Cilk worker set. A Pool with W workers never runs more
// than W compute goroutines at once: every fork first tries to grab a
// worker token and falls back to inline (sequential) execution when none
// is free. This is the greedy-scheduler model under which the paper's
// work-span bounds are stated, and it makes the worker count an explicit
// parameter so experiments can sweep it independently of GOMAXPROCS.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool bounds the parallelism available to the primitives in this
// package. The zero value and the nil pool are both valid and mean
// "sequential": every primitive then runs inline on the caller's
// goroutine.
type Pool struct {
	workers int
	tokens  chan struct{}
}

// NewPool returns a pool that runs at most workers goroutines at a time.
// workers < 1 is treated as 1 (sequential). A nil *Pool is also valid
// everywhere in this package and behaves like NewPool(1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// One token per worker beyond the caller's own goroutine.
		p.tokens = make(chan struct{}, workers-1)
	}
	return p
}

// NewMachinePool returns a pool sized to the machine (GOMAXPROCS).
func NewMachinePool() *Pool {
	return NewPool(runtime.GOMAXPROCS(0))
}

// Workers reports the maximum parallelism of the pool. A nil pool
// reports 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// sequential reports whether forking can never help on this pool.
func (p *Pool) sequential() bool {
	return p == nil || p.workers <= 1
}

// acquire attempts to reserve a worker token without blocking.
func (p *Pool) acquire() bool {
	if p.sequential() {
		return false
	}
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a worker token taken by acquire.
func (p *Pool) release() {
	<-p.tokens
}

// chanPool recycles the one-shot join channels of forked tasks: a fork
// on the hot path then costs a goroutine but no channel allocation.
// A channel returns to the pool only after its single value has been
// received on the normal path, so pooled channels are always empty;
// panic joins abandon their channel to the GC.
var chanPool = sync.Pool{
	New: func() any { return make(chan *panicValue, 1) },
}

// panicValue carries a panic across a goroutine join so that a panic in
// a forked task resurfaces in the joining goroutine, as it would in a
// sequential execution.
type panicValue struct {
	val   any
	stack []byte
}

func (pv *panicValue) repanic() {
	panic(fmt.Sprintf("parallel: forked task panicked: %v\n%s", pv.val, pv.stack))
}

// recoverValue packages a recovered panic together with the stack of the
// goroutine it happened on.
func recoverValue(r any) *panicValue {
	buf := make([]byte, 4096)
	buf = buf[:runtime.Stack(buf, false)]
	return &panicValue{val: r, stack: buf}
}

// Do runs f and g, in parallel when a worker token is available and
// sequentially otherwise. It returns after both have finished. A panic
// in either task propagates to the caller.
func (p *Pool) Do(f, g func()) {
	if !p.acquire() {
		f()
		g()
		return
	}
	var (
		wg sync.WaitGroup
		pv *panicValue
	)
	wg.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				pv = recoverValue(r)
			}
			p.release()
			wg.Done()
		}()
		g()
	}()
	f()
	wg.Wait()
	if pv != nil {
		pv.repanic()
	}
}

// Do3 runs three tasks with the same semantics as Do.
func (p *Pool) Do3(f, g, h func()) {
	p.Do(f, func() { p.Do(g, h) })
}
