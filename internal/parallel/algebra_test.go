package parallel

import (
	"math/rand"
	"slices"
	"testing"
)

// algebraOracle computes union/intersect/symdiff of two sorted unique
// KV sequences with a plain sequential two-pointer walk, the reference
// the blocked kernels are checked against.
func algebraOracle(ak []int64, av []uint64, bk []int64, bv []uint64, op algebraOp) ([]int64, []uint64) {
	var outK []int64
	var outV []uint64
	i, j := 0, 0
	for i < len(ak) || j < len(bk) {
		switch {
		case j == len(bk) || (i < len(ak) && ak[i] < bk[j]):
			if op != opIntersect {
				outK = append(outK, ak[i])
				outV = append(outV, av[i])
			}
			i++
		case i == len(ak) || bk[j] < ak[i]:
			if op != opIntersect {
				outK = append(outK, bk[j])
				outV = append(outV, bv[j])
			}
			j++
		default:
			switch op {
			case opUnion: // second input wins
				outK = append(outK, bk[j])
				outV = append(outV, bv[j])
			case opIntersect: // first input's value
				outK = append(outK, ak[i])
				outV = append(outV, av[i])
			}
			i++
			j++
		}
	}
	return outK, outV
}

// randomKV draws a sorted duplicate-free key set of size n from
// [0, span) with values derived from keys and a side tag, so a value
// mismatch identifies which input a wrong value came from.
func randomKV(r *rand.Rand, n int, span int64, side uint64) ([]int64, []uint64) {
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	ks := make([]int64, 0, n)
	for k := range set {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	vs := make([]uint64, len(ks))
	for i, k := range ks {
		vs[i] = uint64(k)*31 + side
	}
	return ks, vs
}

func TestAlgebraKVAgainstOracle(t *testing.T) {
	pools := map[string]*Pool{"nil": nil, "w1": NewPool(1), "w4": NewPool(4), "w16": NewPool(16)}
	sizes := [][2]int{
		{0, 0}, {0, 5}, {5, 0}, {1, 1}, {3, 1000}, {1000, 3},
		{100, 100}, {2000, 2000}, {5000, 7}, {7, 5000}, {10000, 10000},
	}
	ops := map[string]algebraOp{"union": opUnion, "intersect": opIntersect, "symdiff": opSymDiff}
	for pname, p := range pools {
		for _, sz := range sizes {
			r := rand.New(rand.NewSource(int64(sz[0]*31 + sz[1])))
			// A dense span forces heavy key overlap (it must still hold
			// max(|a|,|b|) distinct keys); a sparse span exercises the
			// mostly-disjoint paths.
			dense := int64(max(sz[0], sz[1], 1)) * 2
			for _, span := range []int64{dense, 1 << 40} {
				ak, av := randomKV(r, sz[0], span, 1)
				bk, bv := randomKV(r, sz[1], span, 2)
				for oname, op := range ops {
					wantK, wantV := algebraOracle(ak, av, bk, bv, op)
					var gotK []int64
					var gotV []uint64
					switch op {
					case opUnion:
						gotK, gotV = UnionKV(p, ak, av, bk, bv)
					case opIntersect:
						gotK, gotV = IntersectKV(p, ak, av, bk, bv)
					default:
						gotK, gotV = SymmetricDifferenceKV(p, ak, av, bk, bv)
					}
					if !slices.Equal(gotK, wantK) {
						t.Fatalf("%s/%s |a|=%d |b|=%d span=%d: keys diverge (got %d, want %d)",
							pname, oname, sz[0], sz[1], span, len(gotK), len(wantK))
					}
					for i := range gotV {
						if gotV[i] != wantV[i] {
							t.Fatalf("%s/%s |a|=%d |b|=%d span=%d: value[%d] = %d, want %d (key %d)",
								pname, oname, sz[0], sz[1], span, i, gotV[i], wantV[i], gotK[i])
						}
					}
				}
			}
		}
	}
}

func TestUnionKVPolicyByArgumentOrder(t *testing.T) {
	ak := []int64{1, 2, 3}
	av := []uint64{10, 20, 30}
	bk := []int64{2, 3, 4}
	bv := []uint64{200, 300, 400}
	// Second argument wins on common keys.
	_, v := UnionKV[int64, uint64](nil, ak, av, bk, bv)
	if !slices.Equal(v, []uint64{10, 200, 300, 400}) {
		t.Fatalf("UnionKV(a, b) values = %v", v)
	}
	k, v := UnionKV[int64, uint64](nil, bk, bv, ak, av)
	if !slices.Equal(k, []int64{1, 2, 3, 4}) {
		t.Fatalf("UnionKV(b, a) keys = %v", k)
	}
	if !slices.Equal(v, []uint64{10, 20, 30, 400}) {
		t.Fatalf("UnionKV(b, a) values = %v", v)
	}
	// Intersection values come from the first argument.
	k, v = IntersectKV[int64, uint64](nil, ak, av, bk, bv)
	if !slices.Equal(k, []int64{2, 3}) || !slices.Equal(v, []uint64{20, 30}) {
		t.Fatalf("IntersectKV(a, b) = %v %v", k, v)
	}
	_, v = IntersectKV[int64, uint64](nil, bk, bv, ak, av)
	if !slices.Equal(v, []uint64{200, 300}) {
		t.Fatalf("IntersectKV(b, a) values = %v", v)
	}
	// Symmetric difference keeps each survivor's own value.
	k, v = SymmetricDifferenceKV[int64, uint64](nil, ak, av, bk, bv)
	if !slices.Equal(k, []int64{1, 4}) || !slices.Equal(v, []uint64{10, 400}) {
		t.Fatalf("SymmetricDifferenceKV = %v %v", k, v)
	}
}

func TestAlgebraKVDoesNotAliasInputs(t *testing.T) {
	p := NewPool(4)
	ak, av := randomKV(rand.New(rand.NewSource(7)), 2000, 1<<20, 1)
	bk, bv := randomKV(rand.New(rand.NewSource(8)), 2000, 1<<20, 2)
	gotK, gotV := UnionKV(p, ak, av, bk, bv)
	wantK := slices.Clone(gotK)
	wantV := slices.Clone(gotV)
	for i := range ak {
		ak[i], av[i] = -1, 0
	}
	for i := range bk {
		bk[i], bv[i] = -1, 0
	}
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
		t.Fatal("UnionKV output aliases an input slice")
	}
}

// TestAlgebraKVManyBlocksTinyOperand reproduces the trailing-block
// overshoot: a pool large enough that blocks² exceeds the bigger
// operand makes ceil-rounded block starts pass the end of a, which
// must yield empty segments, not a slice-bounds panic. The blocked
// Difference/Intersect/DifferenceKV kernels share the pattern.
func TestAlgebraKVManyBlocksTinyOperand(t *testing.T) {
	p := NewPool(256)
	r := rand.New(rand.NewSource(13))
	ak, av := randomKV(r, 599_100, 1<<40, 1)
	bk, bv := randomKV(r, 1, 1<<40, 2)
	wantK, wantV := algebraOracle(ak, av, bk, bv, opUnion)
	gotK, gotV := UnionKV(p, ak, av, bk, bv)
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
		t.Fatal("union with oversubscribed pool diverges from oracle")
	}
	if ik, _ := IntersectKV(p, ak, av, ak, av); len(ik) != len(ak) {
		t.Fatal("self-intersection with oversubscribed pool lost keys")
	}
	if got := Difference(p, ak, bk); len(got) < len(ak)-1 {
		t.Fatal("Difference with oversubscribed pool lost keys")
	}
	keptK, _ := DifferenceKV(p, ak, av, bk)
	if len(keptK) < len(ak)-1 {
		t.Fatal("DifferenceKV with oversubscribed pool lost keys")
	}
}

func TestAlgebraKVLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"union":     func() { UnionKV[int64, uint64](nil, []int64{1}, nil, nil, nil) },
		"intersect": func() { IntersectKV[int64, uint64](nil, nil, nil, []int64{1}, nil) },
		"symdiff":   func() { SymmetricDifferenceKV[int64, uint64](nil, []int64{1}, nil, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: mismatched keys/vals did not panic", name)
				}
			}()
			f()
		}()
	}
}
