package parallel

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestFilterMatchesReference(t *testing.T) {
	isEven := func(v int) bool { return v%2 == 0 }
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 100, 4096, 65537} {
				arr := randInts(int64(n)*7, n, 1<<20)
				want := filterSeq(arr, isEven)
				got := Filter(p, arr, isEven)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d: Filter mismatch (got %d elems, want %d)", n, len(got), len(want))
				}
			}
		})
	}
}

func TestFilterPaperExample(t *testing.T) {
	// §2.4: Filter([1 3 8 6 7 2], is_even) = [8 6 2].
	got := Filter(NewPool(4), []int{1, 3, 8, 6, 7, 2}, func(v int) bool { return v%2 == 0 })
	if !slices.Equal(got, []int{8, 6, 2}) {
		t.Fatalf("got %v, want [8 6 2]", got)
	}
}

func TestFilterAllAndNone(t *testing.T) {
	arr := randInts(1, 10000, 100)
	if got := Filter(NewPool(4), arr, func(int) bool { return true }); !slices.Equal(got, arr) {
		t.Fatal("accept-all filter does not reproduce input")
	}
	if got := Filter(NewPool(4), arr, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("reject-all filter kept %d elements", len(got))
	}
}

func TestFilterIndexSelectsByPosition(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			arr := make([]string, 10000)
			for i := range arr {
				arr[i] = string(rune('a' + i%26))
			}
			got := FilterIndex(p, arr, func(i int) bool { return i%3 == 0 })
			if len(got) != (len(arr)+2)/3 {
				t.Fatalf("kept %d elements, want %d", len(got), (len(arr)+2)/3)
			}
			for j, v := range got {
				if v != arr[3*j] {
					t.Fatalf("got[%d] = %q, want %q", j, v, arr[3*j])
				}
			}
		})
	}
}

func TestDedup(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			cases := [][]int{
				{},
				{1},
				{1, 1, 1, 1},
				{1, 2, 3},
				{1, 1, 2, 2, 2, 3, 9, 9},
			}
			for _, c := range cases {
				want := slices.Compact(slices.Clone(c))
				got := Dedup(p, c)
				if !slices.Equal(got, want) {
					t.Fatalf("Dedup(%v) = %v, want %v", c, got, want)
				}
			}
		})
	}
}

func TestDedupLargeRandom(t *testing.T) {
	arr := randInts(42, 200000, 5000)
	slices.Sort(arr)
	want := slices.Compact(slices.Clone(arr))
	got := Dedup(NewPool(8), arr)
	if !slices.Equal(got, want) {
		t.Fatalf("large Dedup mismatch: got %d, want %d elements", len(got), len(want))
	}
}

func TestFilterQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(arr []uint8) bool {
		pred := func(v uint8) bool { return v&1 == 0 }
		return slices.Equal(Filter(p, arr, pred), filterSeq(arr, pred))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
