package parallel

import "cmp"

// Ordered is the key constraint shared by the sorted-array primitives.
// It is exactly cmp.Ordered.
type Ordered = cmp.Ordered

// LowerBound returns the number of elements of the sorted slice a that
// are strictly less than x, i.e. the first index at which x could be
// inserted while keeping a sorted with x placed before equal elements.
//
//pbist:noalloc
func LowerBound[K Ordered](a []K, x K) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the number of elements of the sorted slice a that
// are less than or equal to x. This is ElemRank(a, x) of §2.4.
//
//pbist:noalloc
func UpperBound[K Ordered](a []K, x K) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
