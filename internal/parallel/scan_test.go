package parallel

import (
	"testing"
	"testing/quick"
)

func scanRef(arr []int) ([]int, int) {
	out := make([]int, len(arr))
	sum := 0
	for i, v := range arr {
		out[i] = sum
		sum += v
	}
	return out, sum
}

func TestScanMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 3, 511, 512, 513, 4096, 100000} {
				arr := randInts(int64(n), n, 1000)
				wantOut, wantTot := scanRef(arr)
				gotOut, gotTot := Scan(p, arr)
				if gotTot != wantTot {
					t.Fatalf("n=%d: total=%d want %d", n, gotTot, wantTot)
				}
				for i := range wantOut {
					if gotOut[i] != wantOut[i] {
						t.Fatalf("n=%d: out[%d]=%d want %d", n, i, gotOut[i], wantOut[i])
					}
				}
			}
		})
	}
}

func TestScanDoesNotModifyInput(t *testing.T) {
	arr := []int{5, 3, 8, 1}
	Scan(NewPool(4), arr)
	want := []int{5, 3, 8, 1}
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("Scan modified its input: %v", arr)
		}
	}
}

func TestScanInPlaceMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 7, 512, 50000} {
				arr := randInts(int64(n)+99, n, 100)
				wantOut, wantTot := scanRef(arr)
				gotTot := ScanInPlace(p, arr)
				if gotTot != wantTot {
					t.Fatalf("n=%d: total=%d want %d", n, gotTot, wantTot)
				}
				for i := range wantOut {
					if arr[i] != wantOut[i] {
						t.Fatalf("n=%d: arr[%d]=%d want %d", n, i, arr[i], wantOut[i])
					}
				}
			}
		})
	}
}

func TestScanNegativeValues(t *testing.T) {
	arr := []int{-3, 5, -2, 0, 7}
	out, tot := Scan(NewPool(2), arr)
	want := []int{0, -3, 2, 0, 0}
	if tot != 7 {
		t.Fatalf("total=%d want 7", tot)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out=%v want %v", out, want)
		}
	}
}

func TestScanQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(arr []int16) bool {
		ints := make([]int, len(arr))
		for i, v := range arr {
			ints[i] = int(v)
		}
		wantOut, wantTot := scanRef(ints)
		gotOut, gotTot := Scan(p, ints)
		if gotTot != wantTot {
			return false
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
