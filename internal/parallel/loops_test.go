package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 100, 4096, 10001} {
				hits := make([]int32, n)
				For(p, n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d: index %d executed %d times", n, i, h)
					}
				}
			}
		})
	}
}

func TestForRangeCoversRangeExactly(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 63, 64, 65, 5000} {
				hits := make([]int32, n)
				ForRange(p, n, 16, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d: index %d covered %d times", n, i, h)
					}
				}
			}
		})
	}
}

func TestForRangeSequentialRunsInline(t *testing.T) {
	// A sequential pool must not pay splitting overhead: the body gets
	// the whole range in one call.
	calls := 0
	ForRange(nil, 1000, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1000 {
			t.Fatalf("sequential ForRange split the range: [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential ForRange made %d body calls, want 1", calls)
	}
}

func TestForDefaultGrain(t *testing.T) {
	var n atomic.Int64
	For(NewPool(4), 100000, 0, func(i int) { n.Add(int64(i)) })
	want := int64(100000) * 99999 / 2
	if n.Load() != want {
		t.Fatalf("sum = %d, want %d", n.Load(), want)
	}
}

func TestForPanicPropagation(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("panic in loop body was swallowed")
				}
			}()
			For(p, 10000, 8, func(i int) {
				if i == 7777 {
					panic("loop boom")
				}
			})
		})
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(nil, 0, 1, func(int) { ran = true })
	For(nil, -5, 1, func(int) { ran = true })
	if ran {
		t.Fatal("loop body ran for non-positive n")
	}
}
