package parallel

// Scan computes the exclusive prefix sums of arr (§2.4):
//
//	out[i] = arr[0] + arr[1] + ... + arr[i-1],  out[0] = 0.
//
// It returns a freshly allocated slice of the same length plus the total
// sum of arr. The classic two-pass blocked algorithm gives O(n) work and
// O(log n) span: block sums are reduced in parallel, block offsets are
// scanned, and each block is then swept independently.
func Scan(p *Pool, arr []int) (out []int, total int) {
	n := len(arr)
	out = make([]int, n)
	if n == 0 {
		return out, 0
	}
	blocks := scanBlocks(p, n)
	bs := (n + blocks - 1) / blocks

	sums := make([]int, blocks)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		s := 0
		for i := lo; i < hi; i++ {
			s += arr[i]
		}
		sums[b] = s
	})
	// Scan of the (small) per-block sums is sequential.
	running := 0
	for b := range sums {
		sums[b], running = running, running+sums[b]
	}
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		s := sums[b]
		for i := lo; i < hi; i++ {
			out[i] = s
			s += arr[i]
		}
	})
	return out, running
}

// ScanInPlace is Scan but overwrites arr with its exclusive prefix sums,
// returning the total. It avoids the output allocation for callers that
// no longer need the original values (e.g. the flatten step of §7.2).
func ScanInPlace(p *Pool, arr []int) (total int) {
	n := len(arr)
	if n == 0 {
		return 0
	}
	blocks := scanBlocks(p, n)
	if blocks == 1 {
		// One block: plain sequential sweep, no side allocations —
		// this is the hot shape on the tree's small-subtree paths.
		running := 0
		for i := range arr {
			arr[i], running = running, running+arr[i]
		}
		return running
	}
	bs := (n + blocks - 1) / blocks

	sums := make([]int, blocks)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		s := 0
		for i := lo; i < hi; i++ {
			s += arr[i]
		}
		sums[b] = s
	})
	running := 0
	for b := range sums {
		sums[b], running = running, running+sums[b]
	}
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		s := sums[b]
		for i := lo; i < hi; i++ {
			arr[i], s = s, s+arr[i]
		}
	})
	return running
}

// scanBlocks picks the number of blocks used by the two-pass scan: at
// most one block per worker times a small oversubscription factor, and
// never so many that blocks degenerate below a useful size.
func scanBlocks(p *Pool, n int) int {
	blocks := p.Workers() * 4
	if maxUseful := (n + 511) / 512; blocks > maxUseful {
		blocks = maxUseful
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}
