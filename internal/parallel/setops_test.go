package parallel

import (
	"slices"
	"testing"
	"testing/quick"
)

func differenceRef(a, b []int) []int {
	out := []int{}
	for _, x := range a {
		if _, ok := slices.BinarySearch(b, x); !ok {
			out = append(out, x)
		}
	}
	return out
}

func intersectRef(a, b []int) []int {
	out := []int{}
	for _, x := range a {
		if _, ok := slices.BinarySearch(b, x); ok {
			out = append(out, x)
		}
	}
	return out
}

func TestDifferencePaperExample(t *testing.T) {
	// §2.4: Difference([2 4 5 7 9], [2 5 9]) = [4 7].
	got := Difference(NewPool(4), []int{2, 4, 5, 7, 9}, []int{2, 5, 9})
	if !slices.Equal(got, []int{4, 7}) {
		t.Fatalf("got %v, want [4 7]", got)
	}
}

func TestDifferenceMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			cases := [][2]int{{0, 0}, {0, 10}, {10, 0}, {1000, 1000}, {50000, 500}, {500, 50000}, {80000, 80000}}
			for _, c := range cases {
				a := sortedUnique(int64(c[0])+11, c[0], 1<<16)
				b := sortedUnique(int64(c[1])+77, c[1], 1<<16)
				if got, want := Difference(p, a, b), differenceRef(a, b); !slices.Equal(got, want) {
					t.Fatalf("sizes %v: Difference mismatch (got %d want %d elems)", c, len(got), len(want))
				}
			}
		})
	}
}

func TestIntersectMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			cases := [][2]int{{0, 0}, {0, 10}, {10, 0}, {1000, 1000}, {50000, 500}, {80000, 80000}}
			for _, c := range cases {
				a := sortedUnique(int64(c[0])+123, c[0], 1<<16)
				b := sortedUnique(int64(c[1])+456, c[1], 1<<16)
				if got, want := Intersect(p, a, b), intersectRef(a, b); !slices.Equal(got, want) {
					t.Fatalf("sizes %v: Intersect mismatch", c)
				}
			}
		})
	}
}

func TestSetOpsDisjointAndIdentical(t *testing.T) {
	p := NewPool(4)
	a := []int{1, 3, 5}
	b := []int{2, 4, 6}
	if got := Difference(p, a, b); !slices.Equal(got, a) {
		t.Fatalf("disjoint difference = %v, want %v", got, a)
	}
	if got := Intersect(p, a, b); len(got) != 0 {
		t.Fatalf("disjoint intersect = %v, want empty", got)
	}
	if got := Difference(p, a, a); len(got) != 0 {
		t.Fatalf("self difference = %v, want empty", got)
	}
	if got := Intersect(p, a, a); !slices.Equal(got, a) {
		t.Fatalf("self intersect = %v, want %v", got, a)
	}
}

func TestSetOpsEmptySecondOperand(t *testing.T) {
	p := NewPool(4)
	a := []int{5, 6, 7}
	if got := Difference(p, a, nil); !slices.Equal(got, a) {
		t.Fatalf("A \\ ∅ = %v, want %v", got, a)
	}
	if got := Intersect(p, a, nil); len(got) != 0 {
		t.Fatalf("A ∩ ∅ = %v, want empty", got)
	}
}

func TestDifferenceReturnsCopy(t *testing.T) {
	a := []int{1, 2, 3}
	got := Difference(NewPool(2), a, nil)
	got[0] = 99
	if a[0] != 1 {
		t.Fatal("Difference aliased its input")
	}
}

func TestSetOpsQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(x, y []uint8) bool {
		a := make([]int, len(x))
		for i, v := range x {
			a[i] = int(v)
		}
		b := make([]int, len(y))
		for i, v := range y {
			b[i] = int(v)
		}
		slices.Sort(a)
		a = slices.Compact(a)
		slices.Sort(b)
		b = slices.Compact(b)
		return slices.Equal(Difference(p, a, b), differenceRef(a, b)) &&
			slices.Equal(Intersect(p, a, b), intersectRef(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferenceIntersectPartitionInput(t *testing.T) {
	// For any a, Difference(a,b) and Intersect(a,b) partition a.
	p := NewPool(4)
	a := sortedUnique(9, 30000, 1<<15)
	b := sortedUnique(10, 30000, 1<<15)
	d := Difference(p, a, b)
	i := Intersect(p, a, b)
	if !slices.Equal(Merge(p, d, i), a) {
		t.Fatal("difference ∪ intersection != original set")
	}
}
