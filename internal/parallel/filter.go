package parallel

// Filter returns the elements of arr that satisfy pred, preserving
// order (§2.4). O(n) work, O(log n) span for O(1) predicates: per-block
// match counts are computed in parallel, scanned into output offsets,
// and matching elements are scattered block-by-block.
func Filter[T any](p *Pool, arr []T, pred func(T) bool) []T {
	n := len(arr)
	if n == 0 {
		return nil
	}
	blocks := scanBlocks(p, n)
	if blocks == 1 {
		return filterSeq(arr, pred)
	}
	bs := (n + blocks - 1) / blocks

	counts := make([]int, blocks)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		c := 0
		for i := lo; i < hi; i++ {
			if pred(arr[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanInPlace(nil, counts) // counts is small; sequential scan
	out := make([]T, total)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		w := counts[b]
		for i := lo; i < hi; i++ {
			if pred(arr[i]) {
				out[w] = arr[i]
				w++
			}
		}
	})
	return out
}

func filterSeq[T any](arr []T, pred func(T) bool) []T {
	var out []T
	for _, v := range arr {
		if pred(v) {
			out = append(out, v)
		}
	}
	return out
}

// FilterIndex returns the elements arr[i] whose index satisfies
// pred(i). It is Filter keyed by position rather than value, which the
// batched operations use to select sub-batches by a parallel-computed
// boolean side array without first zipping values and flags together.
func FilterIndex[T any](p *Pool, arr []T, pred func(i int) bool) []T {
	return FilterIndexInto(p, arr, nil, pred)
}

// FilterIndexInto is FilterIndex writing into dst: the result reuses
// dst's backing array when its capacity suffices (dst's length is
// ignored) and is freshly allocated otherwise, so callers can feed
// recycled scratch buffers of worst-case size len(arr) and allocate
// nothing on the hot path.
//
//pbist:noalloc
func FilterIndexInto[T any](p *Pool, arr []T, dst []T, pred func(i int) bool) []T {
	n := len(arr)
	if n == 0 {
		return nil
	}
	blocks := scanBlocks(p, n)
	if blocks == 1 {
		out := dst[:0]
		for i, v := range arr {
			if pred(i) {
				out = append(out, v)
			}
		}
		return out
	}
	return filterIndexPar(p, arr, dst, pred, blocks)
}

// filterIndexPar is the blocked tail of FilterIndexInto, split out so
// the dispatching wrapper stays //pbist:noalloc: the count/scan
// bookkeeping below allocates, and it only runs when the pool has
// already decided the array is large enough to fork.
func filterIndexPar[T any](p *Pool, arr []T, dst []T, pred func(i int) bool, blocks int) []T {
	n := len(arr)
	bs := (n + blocks - 1) / blocks
	counts := predCounts(p, n, bs, blocks, pred)
	total := ScanInPlace(nil, counts)
	out := sized(dst, total)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		w := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[w] = arr[i]
				w++
			}
		}
	})
	return out
}

// predCounts is pass 1 of both blocked filters: per-block match
// counts, ready for the exclusive scan into scatter offsets.
func predCounts(p *Pool, n, bs, blocks int, pred func(i int) bool) []int {
	counts := make([]int, blocks)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[b] = c
	})
	return counts
}

// FilterIndices returns, in ascending order, the indices i in [0, n)
// that satisfy pred. The batched tree uses it to find run boundaries in
// a position array with O(n) work and O(log n) span.
func FilterIndices(p *Pool, n int, pred func(i int) bool) []int {
	return FilterIndicesInto(p, n, nil, pred)
}

// FilterIndicesInto is FilterIndices writing into dst under the same
// capacity-reuse contract as FilterIndexInto.
//
//pbist:noalloc
func FilterIndicesInto(p *Pool, n int, dst []int, pred func(i int) bool) []int {
	if n <= 0 {
		return nil
	}
	blocks := scanBlocks(p, n)
	if blocks == 1 {
		out := dst[:0]
		for i := 0; i < n; i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		return out
	}
	return filterIndicesPar(p, n, dst, pred, blocks)
}

// filterIndicesPar is the blocked tail of FilterIndicesInto, split out
// for the same reason as filterIndexPar.
func filterIndicesPar(p *Pool, n int, dst []int, pred func(i int) bool, blocks int) []int {
	bs := (n + blocks - 1) / blocks
	counts := predCounts(p, n, bs, blocks, pred)
	total := ScanInPlace(nil, counts)
	out := sized(dst, total)
	For(p, blocks, 1, func(b int) {
		lo, hi := b*bs, min((b+1)*bs, n)
		w := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[w] = i
				w++
			}
		}
	})
	return out
}

// sized returns dst resliced to length n when its capacity allows, or
// a fresh allocation otherwise — the shared destination contract of
// every *Into variant in this package.
func sized[T any](dst []T, n int) []T {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]T, n)
}

// Dedup returns sorted arr with duplicate elements removed, preserving
// one representative per run of equal values. arr must be sorted.
func Dedup[K Ordered](p *Pool, arr []K) []K {
	return FilterIndex(p, arr, func(i int) bool {
		return i == 0 || arr[i] != arr[i-1]
	})
}
