package parallel

// DefaultGrain is the sequential cutoff used by For and ForRange when
// the caller passes grain <= 0. It balances scheduling overhead against
// load balance for loop bodies in the tens-of-nanoseconds range, which
// is typical for the scatter and search loops in this repository.
const DefaultGrain = 2048

// For executes body(i) for every i in [0, n), in parallel. It is the
// pfor primitive of §2.4: O(n) work and O(log n) span for O(1) bodies.
// Iterations must be independent; the order of execution is unspecified.
// grain <= 0 selects DefaultGrain.
func For(p *Pool, n, grain int, body func(i int)) {
	if p.sequential() {
		// Run inline without the blocked wrapper closure: a sequential
		// For must not heap-allocate anything.
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForRange(p, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body over disjoint sub-ranges that together cover
// [0, n). It is the blocked form of For: the body receives a half-open
// range [lo, hi) and is expected to loop over it itself, which avoids a
// closure call per element. grain <= 0 selects DefaultGrain.
func ForRange(p *Pool, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	forRange(p, 0, n, grain, body)
}

func forRange(p *Pool, lo, hi, grain int, body func(lo, hi int)) {
	if p.sequential() {
		body(lo, hi)
		return
	}
	for hi-lo > grain {
		if !p.acquire() {
			// No worker free right now: peel just one chunk inline and
			// retry, so that a token released by a finishing task can
			// still pick up the remainder. Inlining the whole range
			// here would serialize the tail and ruin load balance.
			mid := lo + grain
			body(lo, mid)
			lo = mid
			continue
		}
		mid := lo + (hi-lo)/2
		lo2, hi2 := mid, hi
		done := chanPool.Get().(chan *panicValue)
		go func() {
			var pv *panicValue
			defer func() {
				p.release()
				done <- pv
			}()
			defer func() {
				if r := recover(); r != nil {
					pv = recoverValue(r)
				}
			}()
			forRange(p, lo2, hi2, grain, body)
		}()
		forRange(p, lo, mid, grain, body)
		if pv := <-done; pv != nil {
			pv.repanic()
		}
		chanPool.Put(done)
		return
	}
	if hi > lo {
		body(lo, hi)
	}
}
