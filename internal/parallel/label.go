package parallel

import (
	"context"
	"runtime/pprof"
)

// WithLabel runs f under the pprof label pbist_phase=phase when
// enabled, so CPU profiles attribute the work — and the work of every
// goroutine f forks, since pprof labels are inherited at go-statement
// time — to a named engine phase (combine-epoch, combine-replay,
// rebuild). With enabled false, f runs directly; callers on hot paths
// should branch before constructing the closure so the disabled path
// allocates nothing.
func WithLabel(enabled bool, phase string, f func()) {
	if !enabled {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("pbist_phase", phase), func(context.Context) {
		f()
	})
}
