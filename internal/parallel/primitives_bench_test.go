package parallel

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the §2.4 primitives: per-primitive scaling is
// what the span bounds of the paper's Theorem 1/2 rest on.

const benchN = 1 << 20

func benchPools() []*Pool {
	return []*Pool{nil, NewPool(4), NewPool(16)}
}

func poolName(p *Pool) string {
	return fmt.Sprintf("workers_%d", p.Workers())
}

func BenchmarkScan(b *testing.B) {
	arr := randInts(1, benchN, 1000)
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Scan(p, arr)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkFilter(b *testing.B) {
	arr := randInts(2, benchN, 1000)
	pred := func(v int) bool { return v%2 == 0 }
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Filter(p, arr, pred)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	x := sortedUnique(3, benchN/2, 1<<40)
	y := sortedUnique(4, benchN/2, 1<<40)
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Merge(p, x, y)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkDifference(b *testing.B) {
	x := sortedUnique(5, benchN/2, 1<<30)
	y := sortedUnique(6, benchN/2, 1<<30)
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Difference(p, x, y)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkRank(b *testing.B) {
	x := sortedUnique(7, benchN/2, 1<<40)
	y := sortedUnique(8, benchN/2, 1<<40)
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Rank(p, x, y)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkSort(b *testing.B) {
	src := randInts(9, benchN, 1<<40)
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			buf := make([]int, len(src))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(buf, src)
				b.StartTimer()
				Sort(p, buf)
			}
			b.SetBytes(int64(benchN * 8))
		})
	}
}

func BenchmarkForOverhead(b *testing.B) {
	// Cost of the parallel loop scaffolding on a trivial body.
	var sink [256]int64
	for _, p := range benchPools() {
		b.Run(poolName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(p, benchN, 0, func(j int) {
					sink[j%256]++
				})
			}
		})
	}
}
