package parallel

// Key-value variants of the §2.4 sequence primitives: identical
// algorithms to Merge and Difference, but each key carries a
// position-aligned value along. The batched tree's rebuild paths use
// them to keep values attached to keys through flatten-merge-rebuild
// cycles without zipping pairs into a temporary struct slice.

// MergeKV merges two sorted key sequences — each with a value slice of
// the same length riding alongside — into freshly allocated key and
// value slices: O(n) work and O(log² n) span, exactly like Merge. The
// relative order of equal keys drawn from the two inputs is
// unspecified; all callers in this repository merge disjoint
// duplicate-free key sets.
func MergeKV[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V) ([]K, []V) {
	return MergeKVInto(p, ak, av, bk, bv, nil, nil)
}

// MergeKVInto is MergeKV writing into dstK/dstV: each destination's
// backing array is reused when its capacity covers the output
// (len(ak)+len(bk); destination lengths are ignored) and freshly
// allocated otherwise. The tree's rebuild paths pass recycled scratch
// buffers here so a flatten-merge-rebuild cycle allocates no merge
// temporaries.
//
//pbist:noalloc
func MergeKVInto[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) ([]K, []V) {
	if len(ak) != len(av) || len(bk) != len(bv) {
		panic("parallel: MergeKV keys/vals length mismatch")
	}
	n := len(ak) + len(bk)
	outK := sized(dstK, n)
	outV := sized(dstV, n)
	mergeKVInto(p, ak, av, bk, bv, outK, outV)
	return outK, outV
}

func mergeKVInto[K Ordered, V any](p *Pool, ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) {
	// The divide step bisects the larger input and splits the smaller
	// one by binary search, yielding two independent sub-merges.
	for {
		// Always bisect the larger input so the split is balanced.
		if len(ak) < len(bk) {
			ak, bk = bk, ak
			av, bv = bv, av
		}
		if len(dstK) <= mergeCutoff || p.sequential() {
			mergeKVSeq(ak, av, bk, bv, dstK, dstV)
			return
		}
		am := len(ak) / 2
		bm := LowerBound(bk, ak[am])
		ak0, ak1 := ak[:am], ak[am:]
		av0, av1 := av[:am], av[am:]
		bk0, bk1 := bk[:bm], bk[bm:]
		bv0, bv1 := bv[:bm], bv[bm:]
		dk0, dk1 := dstK[:am+bm], dstK[am+bm:]
		dv0, dv1 := dstV[:am+bm], dstV[am+bm:]
		if !p.acquire() {
			mergeKVSeq(ak0, av0, bk0, bv0, dk0, dv0)
			ak, av, bk, bv, dstK, dstV = ak1, av1, bk1, bv1, dk1, dv1
			continue
		}
		done := chanPool.Get().(chan *panicValue)
		go func() {
			var pv *panicValue
			defer func() {
				p.release()
				done <- pv
			}()
			defer func() {
				if r := recover(); r != nil {
					pv = recoverValue(r)
				}
			}()
			mergeKVInto(p, ak1, av1, bk1, bv1, dk1, dv1)
		}()
		mergeKVInto(p, ak0, av0, bk0, bv0, dk0, dv0)
		if pv := <-done; pv != nil {
			pv.repanic()
		}
		chanPool.Put(done)
		return
	}
}

//pbist:noalloc
func mergeKVSeq[K Ordered, V any](ak []K, av []V, bk []K, bv []V, dstK []K, dstV []V) {
	i, j, k := 0, 0, 0
	for i < len(ak) && j < len(bk) {
		if bk[j] < ak[i] {
			dstK[k] = bk[j]
			dstV[k] = bv[j]
			j++
		} else {
			dstK[k] = ak[i]
			dstV[k] = av[i]
			i++
		}
		k++
	}
	for ; i < len(ak); i++ {
		dstK[k] = ak[i]
		dstV[k] = av[i]
		k++
	}
	for ; j < len(bk); j++ {
		dstK[k] = bk[j]
		dstV[k] = bv[j]
		k++
	}
}

// DifferenceKV returns the (key, value) pairs of the sorted sequence
// ak/av whose key does not occur in sorted b, preserving order. Inputs
// must be duplicate-free. Same blocked two-pass algorithm as
// Difference: per-block survivor counts, a scan into offsets, then a
// parallel scatter.
func DifferenceKV[K Ordered, V any](p *Pool, ak []K, av []V, b []K) ([]K, []V) {
	return DifferenceKVInto(p, ak, av, b, nil, nil)
}

// DifferenceKVInto is DifferenceKV writing into dstK/dstV under the
// same capacity-reuse contract as MergeKVInto (worst-case output size
// is len(ak)). Its own body is allocation-free: with sufficient dst
// capacity, only diffKVPar's blocked bookkeeping allocates, and that
// path is taken only when the pool decides the batch is worth forking.
//
//pbist:noalloc
func DifferenceKVInto[K Ordered, V any](p *Pool, ak []K, av []V, b []K, dstK []K, dstV []V) ([]K, []V) {
	if len(ak) != len(av) {
		panic("parallel: DifferenceKV keys/vals length mismatch")
	}
	n := len(ak)
	if n == 0 {
		return nil, nil
	}
	if len(b) == 0 {
		outK := sized(dstK, n)
		outV := sized(dstV, n)
		copy(outK, ak)
		copy(outV, av)
		return outK, outV
	}
	blocks := scanBlocks(p, n)
	if blocks == 1 {
		// Sequential shape: count once, write once, allocate nothing
		// beyond the (usually recycled) destinations.
		total := diffKVBlock[K, V](ak, nil, b, nil, nil)
		outK := sized(dstK, total)
		outV := sized(dstV, total)
		diffKVBlock(ak, av, b, outK, outV)
		return outK, outV
	}
	return diffKVPar(p, ak, av, b, dstK, dstV, blocks)
}

// diffKVPar is the blocked tail of DifferenceKVInto, split out so the
// dispatching wrapper stays //pbist:noalloc: the per-block bookkeeping
// below allocates, and it only runs when the pool has already decided
// the batch is large enough to fork.
func diffKVPar[K Ordered, V any](p *Pool, ak []K, av []V, b []K, dstK []K, dstV []V, blocks int) ([]K, []V) {
	n := len(ak)
	bs := (n + blocks - 1) / blocks

	// Pass 1: per-block survivor counts. Each block walks the range of
	// b that can overlap its keys, located by one binary search.
	counts := make([]int, blocks)
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		counts[blk] = diffKVBlock[K, V](ak[lo:hi], nil, b, nil, nil)
	})
	total := ScanInPlace(nil, counts)
	outK := sized(dstK, total)
	outV := sized(dstV, total)
	// Pass 2: scatter survivors at the scanned offsets.
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		diffKVBlock(ak[lo:hi], av[lo:hi], b, outK[counts[blk]:], outV[counts[blk]:])
	})
	return outK, outV
}

// diffKVBlock walks one block of a against the aligned range of b.
// With dstK == nil it only counts survivors (av may be nil too);
// otherwise it writes surviving pairs and assumes the destinations are
// large enough.
//
//pbist:noalloc
func diffKVBlock[K Ordered, V any](ak []K, av []V, b []K, dstK []K, dstV []V) int {
	if len(ak) == 0 {
		return 0
	}
	j := LowerBound(b, ak[0])
	w := 0
	for i, x := range ak {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		if dstK != nil {
			dstK[w] = x
			dstV[w] = av[i]
		}
		w++
	}
	return w
}
