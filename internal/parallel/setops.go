package parallel

// Difference returns the elements of sorted slice a that do not occur in
// sorted slice b, in order (§2.4): Difference([2 4 5 7 9], [2 5 9]) =
// [4 7]. Inputs must be duplicate-free. O(|a|+|b|) work and
// O(log²(|a|+|b|)) span: a is cut into blocks, each block subtracts the
// matching range of b independently, and survivors are compacted with a
// scan.
func Difference[K Ordered](p *Pool, a, b []K) []K {
	return setOp(p, a, b, false)
}

// Intersect returns the elements of sorted slice a that also occur in
// sorted slice b, in order. Inputs must be duplicate-free.
func Intersect[K Ordered](p *Pool, a, b []K) []K {
	return setOp(p, a, b, true)
}

// setOp implements Difference (keepPresent=false) and Intersect
// (keepPresent=true) with one blocked two-pass algorithm.
func setOp[K Ordered](p *Pool, a, b []K, keepPresent bool) []K {
	n := len(a)
	if n == 0 {
		return nil
	}
	if len(b) == 0 {
		if keepPresent {
			return nil
		}
		out := make([]K, n)
		copy(out, a)
		return out
	}
	blocks := scanBlocks(p, n)
	bs := (n + blocks - 1) / blocks

	// Pass 1: per-block survivor counts. Each block walks the range of b
	// that can overlap its keys, located by one binary search.
	counts := make([]int, blocks)
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		counts[blk] = setOpBlock(a[lo:hi], b, keepPresent, nil)
	})
	total := ScanInPlace(nil, counts)
	out := make([]K, total)
	// Pass 2: scatter survivors at the scanned offsets.
	For(p, blocks, 1, func(blk int) {
		lo, hi := min(blk*bs, n), min((blk+1)*bs, n)
		setOpBlock(a[lo:hi], b, keepPresent, out[counts[blk]:])
	})
	return out
}

// setOpBlock walks one block of a against the aligned range of b. With
// dst == nil it only counts survivors; otherwise it writes them to dst
// and assumes dst is large enough.
//
//pbist:noalloc
func setOpBlock[K Ordered](a, b []K, keepPresent bool, dst []K) int {
	if len(a) == 0 {
		return 0
	}
	j := LowerBound(b, a[0])
	w := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		present := j < len(b) && b[j] == x
		if present == keepPresent {
			if dst != nil {
				dst[w] = x
			}
			w++
		}
	}
	return w
}
