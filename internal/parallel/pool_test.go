package parallel

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// testPools returns the pool configurations every primitive is tested
// against: the nil (sequential) pool and a few widths, including one
// wider than the machine.
func testPools() map[string]*Pool {
	return map[string]*Pool{
		"nil":  nil,
		"w1":   NewPool(1),
		"w2":   NewPool(2),
		"w4":   NewPool(4),
		"w16":  NewPool(16),
		"zero": {},
	}
}

func TestPoolWorkers(t *testing.T) {
	cases := []struct {
		in, want int
	}{{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {16, 16}}
	for _, c := range cases {
		if got := NewPool(c.in).Workers(); got != c.want {
			t.Errorf("NewPool(%d).Workers() = %d, want %d", c.in, got, c.want)
		}
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
	if got := (&Pool{}).Workers(); got != 1 {
		t.Errorf("zero pool Workers() = %d, want 1", got)
	}
}

func TestDoRunsBothTasks(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			var a, b atomic.Int32
			p.Do(func() { a.Add(1) }, func() { b.Add(1) })
			if a.Load() != 1 || b.Load() != 1 {
				t.Fatalf("Do ran tasks (%d, %d) times, want (1, 1)", a.Load(), b.Load())
			}
		})
	}
}

func TestDoNested(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int32
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			n.Add(1)
			return
		}
		p.Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if got := n.Load(); got != 1024 {
		t.Fatalf("nested Do reached %d leaves, want 1024", got)
	}
}

func TestDoActuallyForksWhenTokensAvailable(t *testing.T) {
	p := NewPool(2)
	// With two workers, f and g can overlap: g signals, f waits for it.
	sig := make(chan struct{})
	done := make(chan struct{})
	go func() {
		p.Do(
			func() { <-sig }, // would deadlock if g ran after f sequentially
			func() { close(sig) },
		)
		close(done)
	}()
	<-done
}

func TestDoSequentialOrderWithoutWorkers(t *testing.T) {
	// On a 1-wide pool Do must run f before g.
	var order []string
	p := NewPool(1)
	p.Do(func() { order = append(order, "f") }, func() { order = append(order, "g") })
	if strings.Join(order, ",") != "f,g" {
		t.Fatalf("sequential Do order = %v, want [f g]", order)
	}
}

func TestDoPanicPropagation(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, panicIn := range []string{"f", "g"} {
				func() {
					defer func() {
						if r := recover(); r == nil {
							t.Errorf("panic in %s was swallowed", panicIn)
						}
					}()
					p.Do(
						func() {
							if panicIn == "f" {
								panic("boom-f")
							}
						},
						func() {
							if panicIn == "g" {
								panic("boom-g")
							}
						},
					)
				}()
			}
		})
	}
}

func TestDo3(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			var n atomic.Int32
			p.Do3(func() { n.Add(1) }, func() { n.Add(10) }, func() { n.Add(100) })
			if n.Load() != 111 {
				t.Fatalf("Do3 total = %d, want 111", n.Load())
			}
		})
	}
}

func TestTokensAreReleased(t *testing.T) {
	p := NewPool(3)
	for i := 0; i < 1000; i++ {
		p.Do(func() {}, func() {})
	}
	if got := len(p.tokens); got != 0 {
		t.Fatalf("%d tokens leaked after 1000 Do calls", got)
	}
}

func TestNewMachinePool(t *testing.T) {
	if NewMachinePool().Workers() < 1 {
		t.Fatal("machine pool has no workers")
	}
}

// randInts returns n pseudo-random ints from a fixed-seed source.
func randInts(seed int64, n, span int) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(span)
	}
	return out
}
