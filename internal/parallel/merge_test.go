package parallel

import (
	"slices"
	"testing"
	"testing/quick"
)

func mergeRef(a, b []int) []int {
	out := append(append([]int{}, a...), b...)
	slices.Sort(out)
	return out
}

func sortedUnique(seed int64, n, span int) []int {
	arr := randInts(seed, n, span)
	slices.Sort(arr)
	return slices.Compact(arr)
}

func TestMergeMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			sizes := [][2]int{{0, 0}, {0, 5}, {5, 0}, {1, 1}, {100, 3}, {3, 100}, {5000, 5000}, {100000, 7}, {60000, 60000}}
			for _, s := range sizes {
				a := sortedUnique(int64(s[0])+1, s[0], 1<<30)
				b := sortedUnique(int64(s[1])+500, s[1], 1<<30)
				got := Merge(p, a, b)
				want := mergeRef(a, b)
				if !slices.Equal(got, want) {
					t.Fatalf("sizes %v: merge mismatch", s)
				}
			}
		})
	}
}

func TestMergeWithDuplicatesAcrossInputs(t *testing.T) {
	a := []int{1, 3, 5, 7}
	b := []int{3, 4, 5, 6}
	got := Merge(NewPool(4), a, b)
	want := []int{1, 3, 3, 4, 5, 5, 6, 7}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeIntoRejectsBadDestination(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeInto accepted a short destination")
		}
	}()
	MergeInto(nil, []int{1}, []int{2}, make([]int, 1))
}

func TestMergeIntoReusesBuffer(t *testing.T) {
	a := sortedUnique(1, 1000, 1<<20)
	b := sortedUnique(2, 1000, 1<<20)
	dst := make([]int, len(a)+len(b))
	MergeInto(NewPool(4), a, b, dst)
	if !slices.Equal(dst, mergeRef(a, b)) {
		t.Fatal("MergeInto result mismatch")
	}
}

func TestMergeInputsUntouched(t *testing.T) {
	a := sortedUnique(3, 300, 1000)
	b := sortedUnique(4, 300, 1000)
	ac, bc := slices.Clone(a), slices.Clone(b)
	Merge(NewPool(8), a, b)
	if !slices.Equal(a, ac) || !slices.Equal(b, bc) {
		t.Fatal("Merge modified an input slice")
	}
}

func TestMergeLargeUnbalancedParallel(t *testing.T) {
	// Exercise the swap-to-bisect-larger path well above the cutoff.
	a := sortedUnique(5, 200000, 1<<30)
	b := sortedUnique(6, 1000, 1<<30)
	p := NewPool(8)
	if !slices.Equal(Merge(p, a, b), mergeRef(a, b)) {
		t.Fatal("unbalanced merge mismatch")
	}
	if !slices.Equal(Merge(p, b, a), mergeRef(a, b)) {
		t.Fatal("unbalanced merge (swapped) mismatch")
	}
}

func TestMergeQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(x, y []int16) bool {
		a := make([]int, len(x))
		for i, v := range x {
			a[i] = int(v)
		}
		b := make([]int, len(y))
		for i, v := range y {
			b[i] = int(v)
		}
		slices.Sort(a)
		slices.Sort(b)
		return slices.Equal(Merge(p, a, b), mergeRef(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeStrings(t *testing.T) {
	a := []string{"ant", "bee", "cat"}
	b := []string{"ape", "bat", "dog"}
	got := Merge(NewPool(2), a, b)
	want := []string{"ant", "ape", "bat", "bee", "cat", "dog"}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
