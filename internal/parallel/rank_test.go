package parallel

import (
	"slices"
	"testing"
	"testing/quick"
)

func rankRef(a, b []int) []int {
	out := make([]int, len(b))
	for i, x := range b {
		out[i] = UpperBound(a, x)
	}
	return out
}

func TestElemRankPaperExamples(t *testing.T) {
	// §2.4: ElemRank([1 3 5 7], 2)=1, ElemRank([1 3 5 7], 5)=3,
	// ElemRank([1 3 5 7], -1)=0.
	a := []int{1, 3, 5, 7}
	cases := []struct{ x, want int }{{2, 1}, {5, 3}, {-1, 0}, {7, 4}, {100, 4}}
	for _, c := range cases {
		if got := UpperBound(a, c.x); got != c.want {
			t.Errorf("ElemRank(%v, %d) = %d, want %d", a, c.x, got, c.want)
		}
	}
}

func TestLowerBound(t *testing.T) {
	a := []int{1, 3, 3, 5}
	cases := []struct{ x, want int }{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {5, 3}, {6, 4}}
	for _, c := range cases {
		if got := LowerBound(a, c.x); got != c.want {
			t.Errorf("LowerBound(%v, %d) = %d, want %d", a, c.x, got, c.want)
		}
	}
}

func TestRankMatchesReference(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			cases := [][2]int{{0, 0}, {0, 100}, {100, 0}, {1000, 1000}, {100000, 3000}, {3000, 100000}}
			for _, c := range cases {
				a := sortedUnique(int64(c[0])+3, c[0], 1<<20)
				b := sortedUnique(int64(c[1])+8, c[1], 1<<20)
				got := Rank(p, a, b)
				want := rankRef(a, b)
				if !slices.Equal(got, want) {
					t.Fatalf("sizes %v: Rank mismatch", c)
				}
			}
		})
	}
}

func TestRankIsInsertionPosition(t *testing.T) {
	// §2.4 notes ElemRank(A, x) is the insertion position of x in A.
	a := []int{10, 20, 30}
	for _, x := range []int{5, 10, 15, 20, 25, 30, 35} {
		r := UpperBound(a, x)
		grown := slices.Insert(slices.Clone(a), r, x)
		if !slices.IsSorted(grown) {
			t.Errorf("inserting %d at rank %d breaks sortedness: %v", x, r, grown)
		}
	}
}

func TestRankIntoRejectsBadOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RankInto accepted a short output slice")
		}
	}()
	RankInto(nil, []int{1}, []int{2, 3}, make([]int, 1))
}

func TestRankSharedElements(t *testing.T) {
	a := []int{2, 4, 6, 8}
	b := []int{2, 4, 6, 8}
	got := Rank(NewPool(4), a, b)
	want := []int{1, 2, 3, 4}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRankQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(x, y []uint16) bool {
		a := make([]int, len(x))
		for i, v := range x {
			a[i] = int(v)
		}
		b := make([]int, len(y))
		for i, v := range y {
			b[i] = int(v)
		}
		slices.Sort(a)
		a = slices.Compact(a)
		slices.Sort(b)
		b = slices.Compact(b)
		return slices.Equal(Rank(p, a, b), rankRef(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
