package parallel

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestSortMatchesStdlib(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 100, sortCutoff, sortCutoff + 1, 100000} {
				arr := randInts(int64(n)*3+1, n, 1<<30)
				want := slices.Clone(arr)
				slices.Sort(want)
				Sort(p, arr)
				if !slices.Equal(arr, want) {
					t.Fatalf("n=%d: Sort mismatch", n)
				}
			}
		})
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	p := NewPool(8)
	n := 50000
	asc := make([]int, n)
	desc := make([]int, n)
	for i := 0; i < n; i++ {
		asc[i] = i
		desc[i] = n - i
	}
	Sort(p, asc)
	if !slices.IsSorted(asc) {
		t.Fatal("ascending input broken")
	}
	Sort(p, desc)
	if !slices.IsSorted(desc) {
		t.Fatal("descending input not sorted")
	}
}

func TestSortManyDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	arr := make([]int, 80000)
	for i := range arr {
		arr[i] = r.Intn(10)
	}
	want := slices.Clone(arr)
	slices.Sort(want)
	Sort(NewPool(8), arr)
	if !slices.Equal(arr, want) {
		t.Fatal("duplicate-heavy sort mismatch")
	}
}

func TestSortedDedup(t *testing.T) {
	for name, p := range testPools() {
		t.Run(name, func(t *testing.T) {
			arr := randInts(99, 30000, 1000)
			want := slices.Clone(arr)
			slices.Sort(want)
			want = slices.Compact(want)
			got := SortedDedup(p, arr)
			if !slices.Equal(got, want) {
				t.Fatalf("SortedDedup mismatch: %d vs %d elements", len(got), len(want))
			}
		})
	}
}

func TestSortQuickProperty(t *testing.T) {
	p := NewPool(8)
	prop := func(arr []int32) bool {
		ints := make([]int, len(arr))
		for i, v := range arr {
			ints[i] = int(v)
		}
		want := slices.Clone(ints)
		slices.Sort(want)
		Sort(p, ints)
		return slices.Equal(ints, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortFloatKeys(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	arr := make([]float64, 30000)
	for i := range arr {
		arr[i] = r.NormFloat64()
	}
	want := slices.Clone(arr)
	slices.Sort(want)
	Sort(NewPool(4), arr)
	if !slices.Equal(arr, want) {
		t.Fatal("float sort mismatch")
	}
}
