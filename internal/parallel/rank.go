package parallel

// rankCutoff is the sub-batch size below which ranking proceeds
// sequentially.
const rankCutoff = 2048

// Rank computes ElemRank(a, b[i]) for every i (§2.4): out[i] is the
// number of elements of the sorted slice a that are less than or equal
// to b[i]. b must be sorted too. The divide-and-conquer on b narrows the
// candidate range of a at every level, giving O(|a|+|b|) work and
// O(log²(|a|+|b|)) span.
func Rank[K Ordered](p *Pool, a, b []K) []int {
	out := make([]int, len(b))
	RankInto(p, a, b, out)
	return out
}

// RankInto is Rank writing into a caller-provided slice of length
// len(b).
//
//pbist:noalloc
func RankInto[K Ordered](p *Pool, a, b []K, out []int) {
	if len(out) != len(b) {
		panic("parallel: RankInto output length mismatch")
	}
	if len(b) == 0 {
		return
	}
	rankRec(p, a, b, out, 0)
}

// rankRec ranks b within a; aBase is the index of a[0] within the
// original array so ranks stay absolute.
func rankRec[K Ordered](p *Pool, a, b []K, out []int, aBase int) {
	for {
		if len(b) <= rankCutoff || p.sequential() {
			rankSeq(a, b, out, aBase)
			return
		}
		mid := len(b) / 2
		r := UpperBound(a, b[mid])
		out[mid] = aBase + r
		aL, bL, oL := a[:r], b[:mid], out[:mid]
		aR, bR, oR := a[r:], b[mid+1:], out[mid+1:]
		aRBase := aBase + r
		if !p.acquire() {
			rankSeq(aL, bL, oL, aBase)
			a, b, out, aBase = aR, bR, oR, aRBase
			continue
		}
		done := chanPool.Get().(chan *panicValue)
		go func() {
			var pv *panicValue
			defer func() {
				p.release()
				done <- pv
			}()
			defer func() {
				if r := recover(); r != nil {
					pv = recoverValue(r)
				}
			}()
			rankRec(p, aR, bR, oR, aRBase)
		}()
		rankRec(p, aL, bL, oL, aBase)
		if pv := <-done; pv != nil {
			pv.repanic()
		}
		chanPool.Put(done)
		return
	}
}

// rankSeq ranks a sorted run of b against a with a single merge-style
// sweep: O(|a|+|b|).
//
//pbist:noalloc
func rankSeq[K Ordered](a, b []K, out []int, aBase int) {
	j := 0
	for i, x := range b {
		for j < len(a) && a[j] <= x {
			j++
		}
		out[i] = aBase + j
	}
}
