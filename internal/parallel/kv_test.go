package parallel

import (
	"math/rand"
	"slices"
	"testing"
)

// kvRef builds the reference answer with a plain sequential merge of
// (key, value) pairs.
func kvMergeRef(ak []int64, av []string, bk []int64, bv []string) ([]int64, []string) {
	outK := make([]int64, 0, len(ak)+len(bk))
	outV := make([]string, 0, len(ak)+len(bk))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		if bk[j] < ak[i] {
			outK = append(outK, bk[j])
			outV = append(outV, bv[j])
			j++
		} else {
			outK = append(outK, ak[i])
			outV = append(outV, av[i])
			i++
		}
	}
	for ; i < len(ak); i++ {
		outK = append(outK, ak[i])
		outV = append(outV, av[i])
	}
	for ; j < len(bk); j++ {
		outK = append(outK, bk[j])
		outV = append(outV, bv[j])
	}
	return outK, outV
}

// disjointSortedKV returns two disjoint sorted key sets with values
// derived from the keys, so value alignment is checkable after any
// reordering.
func disjointSortedKV(r *rand.Rand, n int) (ak []int64, av []string, bk []int64, bv []string) {
	seen := map[int64]bool{}
	for len(seen) < 2*n {
		seen[r.Int63n(1<<40)] = true
	}
	all := make([]int64, 0, 2*n)
	for k := range seen {
		all = append(all, k)
	}
	for i, k := range all {
		if i%2 == 0 {
			ak = append(ak, k)
		} else {
			bk = append(bk, k)
		}
	}
	slices.Sort(ak)
	slices.Sort(bk)
	for _, k := range ak {
		av = append(av, tag(k))
	}
	for _, k := range bk {
		bv = append(bv, tag(k))
	}
	return ak, av, bk, bv
}

func tag(k int64) string { return string(rune('a'+k%26)) + "-" + string(rune('0'+k%10)) }

func TestMergeKVMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, workers := range []int{1, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 100, 20000} {
			ak, av, bk, bv := disjointSortedKV(r, n)
			wantK, wantV := kvMergeRef(ak, av, bk, bv)
			gotK, gotV := MergeKV(p, ak, av, bk, bv)
			if !slices.Equal(gotK, wantK) || !slices.Equal(gotV, wantV) {
				t.Fatalf("workers=%d n=%d: MergeKV mismatch", workers, n)
			}
			// Values must still be derivable from their key: alignment
			// survived the parallel split.
			for i, k := range gotK {
				if gotV[i] != tag(k) {
					t.Fatalf("workers=%d n=%d: value misaligned at %d", workers, n, i)
				}
			}
		}
	}
}

func TestDifferenceKVMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for _, workers := range []int{1, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 50, 30000} {
			ak, av, bk, _ := disjointSortedKV(r, n)
			// Subtract half of a's own keys plus all of b's (absent).
			sub := slices.Clone(bk)
			for i := 0; i < len(ak); i += 2 {
				sub = append(sub, ak[i])
			}
			slices.Sort(sub)
			gotK, gotV := DifferenceKV(p, ak, av, sub)
			wantK := Difference(p, ak, sub)
			if !slices.Equal(gotK, wantK) {
				t.Fatalf("workers=%d n=%d: key sets differ from Difference", workers, n)
			}
			for i, k := range gotK {
				if gotV[i] != tag(k) {
					t.Fatalf("workers=%d n=%d: value misaligned at %d", workers, n, i)
				}
			}
		}
	}
}

func TestDifferenceKVEmptySubtrahend(t *testing.T) {
	p := NewPool(4)
	ak := []int64{1, 5, 9}
	av := []string{"x", "y", "z"}
	gotK, gotV := DifferenceKV(p, ak, av, nil)
	if !slices.Equal(gotK, ak) || !slices.Equal(gotV, av) {
		t.Fatalf("empty subtrahend must copy input: %v %v", gotK, gotV)
	}
	gotK[0] = 42 // the copy must not alias the input
	if ak[0] != 1 {
		t.Fatal("DifferenceKV aliased its input")
	}
	if k, v := DifferenceKV[int64, string](p, nil, nil, ak); k != nil || v != nil {
		t.Fatal("empty minuend must return nil")
	}
}
