package rbtree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 || tr.Contains(1) || tr.Remove(1) {
		t.Fatal("empty tree misbehaves")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree reported ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree reported ok")
	}
	if len(tr.Keys()) != 0 {
		t.Fatal("empty tree has keys")
	}
}

func TestInsertRemoveBasic(t *testing.T) {
	tr := New[int]()
	for _, k := range []int{5, 3, 8, 1, 4, 7, 9} {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	if tr.Insert(5) {
		t.Fatal("duplicate insert succeeded")
	}
	if !slices.Equal(tr.Keys(), []int{1, 3, 4, 5, 7, 8, 9}) {
		t.Fatalf("Keys() = %v", tr.Keys())
	}
	if mn, _ := tr.Min(); mn != 1 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 9 {
		t.Fatalf("Max = %d", mx)
	}
	for _, k := range []int{5, 1, 9} {
		if !tr.Remove(k) {
			t.Fatalf("Remove(%d) = false", k)
		}
	}
	if tr.Remove(5) {
		t.Fatal("double remove succeeded")
	}
	if !slices.Equal(tr.Keys(), []int{3, 4, 7, 8}) {
		t.Fatalf("Keys() after removals = %v", tr.Keys())
	}
	checkRB(t, tr)
}

func TestDifferentialRandom(t *testing.T) {
	tr := New[int64]()
	ref := map[int64]bool{}
	r := rand.New(rand.NewSource(1))
	for op := 0; op < 60000; op++ {
		k := r.Int63n(3000)
		switch r.Intn(3) {
		case 0:
			want := !ref[k]
			ref[k] = true
			if tr.Insert(k) != want {
				t.Fatalf("op %d: Insert(%d) mismatch", op, k)
			}
		case 1:
			want := ref[k]
			delete(ref, k)
			if tr.Remove(k) != want {
				t.Fatalf("op %d: Remove(%d) mismatch", op, k)
			}
		default:
			if tr.Contains(k) != ref[k] {
				t.Fatalf("op %d: Contains(%d) mismatch", op, k)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(ref))
		}
		if op%5000 == 0 {
			checkRB(t, tr)
		}
	}
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	if !slices.Equal(tr.Keys(), keys) {
		t.Fatal("final contents differ from reference")
	}
	checkRB(t, tr)
}

func TestAscendingDescendingInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) int{
		"asc":  func(i int) int { return i },
		"desc": func(i int) int { return -i },
	} {
		t.Run(name, func(t *testing.T) {
			tr := New[int]()
			const n = 20000
			for i := 0; i < n; i++ {
				tr.Insert(gen(i))
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			checkRB(t, tr)
			if h := height(tr, tr.root); h > 2*log2(n+1)+2 {
				t.Fatalf("height %d exceeds red-black bound", h)
			}
		})
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string]()
	words := []string{"pear", "apple", "fig", "mango", "date", "cherry"}
	for _, w := range words {
		tr.Insert(w)
	}
	want := slices.Clone(words)
	slices.Sort(want)
	if !slices.Equal(tr.Keys(), want) {
		t.Fatalf("Keys() = %v", tr.Keys())
	}
}

func TestQuickProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		tr := New[int16]()
		ref := map[int16]bool{}
		for _, raw := range ops {
			k := raw % 128
			if raw%2 == 0 {
				want := !ref[k]
				ref[k] = true
				if tr.Insert(k) != want {
					return false
				}
			} else {
				want := ref[k]
				delete(ref, k)
				if tr.Remove(k) != want {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// checkRB asserts the red-black properties (root black, no red-red
// edge, uniform black height) plus BST ordering.
func checkRB[K interface{ ~int | ~int64 | ~string }](t *testing.T, tr *Tree[K]) {
	t.Helper()
	if tr.root.color != black {
		t.Fatal("root is not black")
	}
	if tr.nil_.color != black {
		t.Fatal("sentinel is not black")
	}
	var rec func(x *node[K]) int // returns black height
	rec = func(x *node[K]) int {
		if x == tr.nil_ {
			return 1
		}
		if x.color == red && (x.left.color == red || x.right.color == red) {
			t.Fatal("red node with red child")
		}
		if x.left != tr.nil_ && x.left.key >= x.key {
			t.Fatal("BST order violated on the left")
		}
		if x.right != tr.nil_ && x.right.key <= x.key {
			t.Fatal("BST order violated on the right")
		}
		lh := rec(x.left)
		rh := rec(x.right)
		if lh != rh {
			t.Fatalf("black heights differ: %d vs %d", lh, rh)
		}
		if x.color == black {
			return lh + 1
		}
		return lh
	}
	rec(tr.root)
}

func height[K interface{ ~int | ~int64 | ~string }](tr *Tree[K], x *node[K]) int {
	if x == tr.nil_ {
		return 0
	}
	return 1 + max(height(tr, x.left), height(tr, x.right))
}

func log2(n int) int {
	h := 0
	for n > 1 {
		n >>= 1
		h++
	}
	return h
}
