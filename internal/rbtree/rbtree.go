// Package rbtree implements a classic red-black tree sorted set
// (Guibas & Sedgewick, CLRS formulation). It is the reproduction's
// stand-in for C++ std::set, which the paper's §9 sequential comparison
// measures against: the same balanced-binary-tree data structure with
// the same Θ(log n) pointer-chasing search cost.
package rbtree

import "cmp"

type color bool

const (
	red   color = true
	black color = false
)

type node[K cmp.Ordered] struct {
	key                 K
	left, right, parent *node[K]
	color               color
}

// Tree is a sorted set backed by a red-black tree. Use New to create
// one; Tree is not safe for concurrent use.
type Tree[K cmp.Ordered] struct {
	root *node[K]
	nil_ *node[K] // shared black sentinel, as in CLRS
	size int
}

// New returns an empty red-black tree.
func New[K cmp.Ordered]() *Tree[K] {
	sentinel := &node[K]{color: black}
	return &Tree[K]{root: sentinel, nil_: sentinel}
}

// Len reports the number of keys in the set.
func (t *Tree[K]) Len() int { return t.size }

// Contains reports whether key is in the set.
func (t *Tree[K]) Contains(key K) bool {
	return t.lookup(key) != t.nil_
}

func (t *Tree[K]) lookup(key K) *node[K] {
	x := t.root
	for x != t.nil_ {
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return x
		}
	}
	return t.nil_
}

// Insert adds key to the set, reporting whether it was absent.
func (t *Tree[K]) Insert(key K) bool {
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return false
		}
	}
	z := &node[K]{key: key, left: t.nil_, right: t.nil_, parent: y, color: red}
	switch {
	case y == t.nil_:
		t.root = z
	case key < y.key:
		y.left = z
	default:
		y.right = z
	}
	t.insertFixup(z)
	t.size++
	return true
}

// Remove deletes key from the set, reporting whether it was present.
func (t *Tree[K]) Remove(key K) bool {
	z := t.lookup(key)
	if z == t.nil_ {
		return false
	}
	t.delete(z)
	t.size--
	return true
}

// Keys returns the keys in ascending order.
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.size)
	var rec func(x *node[K])
	rec = func(x *node[K]) {
		if x == t.nil_ {
			return
		}
		rec(x.left)
		out = append(out, x.key)
		rec(x.right)
	}
	rec(t.root)
	return out
}

// Min returns the smallest key; ok is false when the set is empty.
func (t *Tree[K]) Min() (key K, ok bool) {
	if t.root == t.nil_ {
		return key, false
	}
	return t.minimum(t.root).key, true
}

// Max returns the largest key; ok is false when the set is empty.
func (t *Tree[K]) Max() (key K, ok bool) {
	if t.root == t.nil_ {
		return key, false
	}
	x := t.root
	for x.right != t.nil_ {
		x = x.right
	}
	return x.key, true
}

func (t *Tree[K]) leftRotate(x *node[K]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K]) rightRotate(x *node[K]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[K]) insertFixup(z *node[K]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[K]) transplant(u, v *node[K]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[K]) minimum(x *node[K]) *node[K] {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

func (t *Tree[K]) delete(z *node[K]) {
	y := z
	yOrig := y.color
	var x *node[K]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			x.parent = y // x may be the sentinel; CLRS sets this anyway
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x)
	}
}

func (t *Tree[K]) deleteFixup(x *node[K]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rightRotate(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.leftRotate(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}
