package obs

import (
	"sync"
	"time"
)

// maxPhases bounds the named phases one EpochTrace can carry. The
// combiner records six (sort, read, replay, write, rebuild, publish);
// the headroom is for future phases without a layout change.
const maxPhases = 8

// PhaseSpan is one named slice of an epoch's wall time.
type PhaseSpan struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// EpochTrace is the structured record of one combining epoch: when it
// started, how long it ran, how long its first client waited for the
// gather window, what it carried, and how the wall time decomposes
// into named phases. Phases tile the epoch — their durations sum to
// Wall up to clock-read granularity — so a trace answers "where did
// this epoch's time go" without a profiler.
type EpochTrace struct {
	// Seq is the trace's position in its ring's push order (assigned
	// by TraceRing.Push, monotonically increasing per ring).
	Seq int64
	// Shard identifies the combiner that ran the epoch: 0 for a
	// standalone Concurrent frontend, the shard index under Sharded.
	Shard int
	// Start is when the combiner began executing the epoch; Wall is
	// the execution time through client wakeup.
	Start time.Time
	Wall  time.Duration
	// GatherWait is how long the epoch's first operation sat enqueued
	// before execution began — the batching latency the adaptive
	// gather window traded for throughput.
	GatherWait time.Duration
	// Ops and Keys are the operation and key counts combined into the
	// epoch; Sized reports whether a size-triggered flush closed it.
	Ops   int
	Keys  int
	Sized bool
	// RebuildKeys is the rebuild work the epoch spent under its budget,
	// in keys laid down; RebuildDebt is the deferred rebuild debt still
	// outstanding when the epoch closed. Both are zero unless the engine
	// runs a bounded rebuild scheduler.
	RebuildKeys int
	RebuildDebt int

	phases  [maxPhases]PhaseSpan
	nphases int
}

// AddPhase appends a named phase. Phases beyond maxPhases are dropped.
//
//pbist:noalloc
func (t *EpochTrace) AddPhase(name string, d time.Duration) {
	if t.nphases == maxPhases {
		return
	}
	t.phases[t.nphases] = PhaseSpan{Name: name, Dur: d}
	t.nphases++
}

// Phases returns the recorded phases in recording order. The slice
// aliases the trace's internal array; callers must not modify it.
func (t *EpochTrace) Phases() []PhaseSpan {
	return t.phases[:t.nphases]
}

// TraceRing is a bounded, mutex-guarded ring of epoch traces: pushes
// never allocate (the backing array is laid down at construction) and
// overwrite the oldest entry once the ring is full, so a long-running
// combiner retains the most recent window of epochs at fixed memory.
type TraceRing struct {
	mu   sync.Mutex
	buf  []EpochTrace
	next int64 // total pushes; next%len(buf) is the slot to overwrite
}

// DefaultTraceDepth is the ring capacity used when tracing is enabled
// without an explicit depth.
const DefaultTraceDepth = 64

// NewTraceRing returns a ring retaining the last depth traces
// (DefaultTraceDepth if depth <= 0).
func NewTraceRing(depth int) *TraceRing {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &TraceRing{buf: make([]EpochTrace, depth)}
}

// Push stores t (by value), assigning its Seq. Nil-safe.
//
//pbist:noalloc
func (r *TraceRing) Push(t *EpochTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t.Seq = r.next
	r.buf[r.next%int64(len(r.buf))] = *t
	r.next++
	r.mu.Unlock()
}

// Len returns the number of traces currently retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < int64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Recent returns up to n retained traces, newest first (n <= 0 means
// all retained). The result is a fresh slice safe to hold.
func (r *TraceRing) Recent(n int) []EpochTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.next
	if have > int64(len(r.buf)) {
		have = int64(len(r.buf))
	}
	if n <= 0 || int64(n) > have {
		n = int(have)
	}
	out := make([]EpochTrace, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.next-1-int64(i))%int64(len(r.buf))]
	}
	return out
}
