package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the sub-bucket resolution of the log-bucketed
	// histogram: each power-of-two octave splits into 2^subBits
	// sub-buckets, bounding the relative error of any reported value
	// by 2^-subBits (~3.1% at subBits = 5). This is the HdrHistogram
	// layout at 1.5 significant decimal digits, sized so the whole
	// bucket array (~15 KiB) stays resident in L1/L2.
	subBits  = 5
	subCount = 1 << subBits

	// numBuckets covers every non-negative int64: values below
	// subCount map exactly to their own bucket, and each remaining
	// octave e in [0, 58) contributes subCount buckets.
	numBuckets = (64 - subBits + 1) * subCount
)

// Histogram is a concurrent log-bucketed value recorder for
// non-negative int64 samples (latencies in nanoseconds, batch sizes in
// keys). Recording is lock-free — one atomic add on the bucket plus
// count/sum/extrema updates — allocation-free, and safe on a nil
// receiver, so hot paths record unconditionally.
//
// Reported quantiles carry the bucket's upper bound, so they
// overestimate by at most 2^-subBits relative error and are exact for
// values below subCount and for single-valued distributions within one
// bucket.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
	counts [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketFor maps a non-negative value to its bucket index: values
// below subCount are their own bucket; larger values keep their top
// subBits+1 significand bits, giving subCount buckets per octave.
//
//pbist:noalloc
func bucketFor(v int64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - subBits - 1
	return int((uint64(e)+1)<<subBits + uint64(v)>>uint(e) - subCount)
}

// bucketBound returns the largest value bucket b holds — the value
// quantile extraction reports for any sample that landed in b.
func bucketBound(b int) int64 {
	if b < subCount {
		return int64(b)
	}
	e := uint(b>>subBits) - 1
	m := int64(b&(subCount-1)) + subCount
	return (m+1)<<e - 1
}

// Record adds one sample. Negative samples clamp to zero (they arise
// only from clock steps between paired time.Now calls).
//
//pbist:noalloc
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed nanoseconds since t0.
//
//pbist:noalloc
func (h *Histogram) RecordSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Record(int64(time.Since(t0)))
}

// RecordCorrected records v and, when v exceeds expectedInterval,
// backfills the samples a coordinated-omission-free observer would
// have seen: one extra sample at v - expectedInterval, v - 2·interval,
// … down to the interval itself. This is the HdrHistogram correction —
// a stalled server delays not just the measured request but every
// request that would have been issued behind it, and omitting those
// phantom waits underreports tail latency. Use it when recording from
// a closed-loop driver; the open-loop pbench harness measures from
// scheduled start instead and records uncorrected.
//
//pbist:noalloc
func (h *Histogram) RecordCorrected(v, expectedInterval int64) {
	if h == nil {
		return
	}
	h.Record(v)
	if expectedInterval <= 0 {
		return
	}
	for v -= expectedInterval; v >= expectedInterval; v -= expectedInterval {
		h.Record(v)
	}
}

// Quantile returns the value at quantile q in [0, 1] using the
// nearest-rank convention, or 0 for an empty histogram. The result is
// the holding bucket's upper bound (see the type comment for bounds).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for b := range h.counts {
		seen += h.counts[b].Load()
		if seen >= rank {
			return bucketBound(b)
		}
	}
	return h.max.Load()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistBucket is one occupied bucket of a histogram snapshot: Count
// samples were at most Le.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is the JSON-marshalable point-in-time state of a
// histogram: totals, extrema, the standard latency quantiles, and the
// sparse occupied buckets for downstream re-aggregation.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	P999    int64        `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Under concurrent recording the
// totals and buckets may differ by in-flight samples; quantiles are
// computed from the captured buckets, so the snapshot is internally
// consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var counts [numBuckets]int64
	for b := range h.counts {
		counts[b] = h.counts[b].Load()
		s.Count += counts[b]
	}
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	quantile := func(q float64) int64 {
		rank := int64(math.Ceil(q * float64(s.Count)))
		if rank < 1 {
			rank = 1
		}
		var seen int64
		for b := range counts {
			seen += counts[b]
			if seen >= rank {
				return bucketBound(b)
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	s.P999 = quantile(0.999)
	for b := range counts {
		if counts[b] > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: bucketBound(b), Count: counts[b]})
		}
	}
	return s
}
