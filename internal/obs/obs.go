// Package obs is the engine's observability layer: striped atomic
// counters, gauges, log-bucketed latency histograms with quantile
// extraction, a named-metric Registry with point-in-time snapshots and
// JSON/expvar export, and a bounded ring of structured epoch traces.
//
// The design constraint is the same one the arena package answers for
// memory: instrumentation must not perturb the thing it measures. Every
// recording primitive is allocation-free (enforced by the pbistvet
// noalloc analyzer on the hot methods) and nil-safe — a nil *Registry
// yields nil metric handles, and every method on a nil handle is an
// inlinable no-op, so code instruments unconditionally and pays nothing
// when observability is off. Counters are striped across padded cells
// to keep concurrent increments off one cache line, mirroring the
// shard-spreading trick Scratch uses for its free lists.
//
// Metrics are named, registered idempotently (asking for the same name
// twice returns the same instance, so N shards recording under one name
// aggregate automatically), and exported through Snapshot — a plain
// JSON-marshalable struct. Live values that belong to some other
// subsystem (arena retention, tree size) are registered as gauge
// functions with Func; several functions under one name sum, which is
// how per-element-type arena scratches roll up into one gauge.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// numCells is the number of independent cells a Counter stripes its
// increments across (power of two). Concurrent Adds land on random
// cells, so parallel replay workers incrementing one counter do not
// serialize on a single cache line.
const numCells = 8

// Counter is a monotonically adjusted striped atomic counter. The zero
// value is ready to use; all methods are safe for concurrent use and
// safe on a nil receiver (no-op / zero).
type Counter struct {
	cells [numCells]cell
}

// cell pads each stripe to its own cache line.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Add adds d to the counter.
//
//pbist:noalloc
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.cells[rand.Uint32()&(numCells-1)].n.Add(d)
}

// Load returns the current total across all stripes. Concurrent Adds
// may or may not be included — the sum is not a linearized snapshot.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a last-writer-wins atomic level. The zero value is ready to
// use; all methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//pbist:noalloc
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
//
//pbist:noalloc
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named-metric namespace. Metric handles are created on
// first use and returned verbatim afterwards, so any number of
// subsystems recording under one name share one instance. A nil
// *Registry is the disabled state: every lookup returns a nil handle
// whose methods no-op, which is how the engine's hot paths stay
// zero-cost when observability is off.
//
// The zero value is ready to use. All methods are safe for concurrent
// use; handle lookups take a mutex, so resolve handles once at setup
// time, not per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string][]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Func registers fn as a live gauge evaluated at snapshot time.
// Registering several functions under one name sums their results —
// deliberately, so independent sources of the same quantity (one
// arena scratch per element type, one tree per shard) aggregate into a
// single exported value. fn must be safe to call from any goroutine.
// No-op on a nil registry.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string][]func() int64)
	}
	r.funcs[name] = append(r.funcs[name], fn)
}

// Snapshot is one point-in-time export of a registry. It is a plain
// data struct: json.Marshal produces the wire form, and the maps are
// sorted by encoding/json for stable diffs. Values are gathered
// metric-by-metric without a global lock, so a snapshot taken under
// concurrent load is internally consistent per metric but not
// linearized across metrics.
type Snapshot struct {
	TakenUnixNano int64                   `json:"taken_unix_nano"`
	Counters      map[string]int64        `json:"counters,omitempty"`
	Gauges        map[string]int64        `json:"gauges,omitempty"`
	Histograms    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Gauge functions are
// evaluated now and land in Gauges (summed per name, overriding no
// stored gauge — Func and Gauge under the same name also sum). Returns
// the zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{TakenUnixNano: time.Now().UnixNano()}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string][]func() int64, len(r.funcs))
	for n, fs := range r.funcs {
		funcs[n] = fs
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(gauges) > 0 || len(funcs) > 0 {
		s.Gauges = make(map[string]int64, len(gauges)+len(funcs))
		for n, g := range gauges {
			s.Gauges[n] += g.Load()
		}
		for n, fs := range funcs {
			for _, fn := range fs {
				s.Gauges[n] += fn()
			}
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PublishExpvar publishes the registry under name in the process-wide
// expvar namespace, rendering a full snapshot on every scrape. The
// publication is skipped (not replaced) if the name is already taken —
// expvar.Publish panics on duplicates, and tests re-register freely.
// No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
