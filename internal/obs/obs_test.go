package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
	"time"
)

// oracleQuantile is the nearest-rank quantile of a sorted sample set —
// the ground truth the histogram's bucketed answer is checked against.
func oracleQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram error contract against the
// oracle: the reported value is at least the true quantile and
// overshoots by at most one part in 2^subBits (plus one for rounding).
func checkQuantiles(t *testing.T, h *Histogram, samples []int64) {
	t.Helper()
	sorted := slices.Clone(samples)
	slices.Sort(sorted)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		want := oracleQuantile(sorted, q)
		got := h.Quantile(q)
		if got < want {
			t.Fatalf("q=%v: got %d < oracle %d", q, got, want)
		}
		if maxErr := want + want>>subBits + 1; got > maxErr {
			t.Fatalf("q=%v: got %d > oracle %d + bound (%d)", q, got, want, maxErr)
		}
	}
}

func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	cases := map[string]func(i int) int64{
		"uniform-small": func(int) int64 { return int64(rng.IntN(subCount)) }, // all-exact range
		"uniform-wide":  func(int) int64 { return int64(rng.IntN(1 << 30)) },
		"exponential":   func(int) int64 { return int64(1) << rng.IntN(40) },
		"latency-like":  func(int) int64 { return 1000 + int64(rng.IntN(100_000)) },
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			samples := make([]int64, 10_000)
			for i := range samples {
				samples[i] = gen(i)
				h.Record(samples[i])
			}
			checkQuantiles(t, h, samples)
		})
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Monotonicity and round-trip bound across octave boundaries.
	edges := []int64{0, 1, 30, 31, 32, 33, 62, 63, 64, 65, 127, 128, 129,
		1<<20 - 1, 1 << 20, 1<<20 + 1, math.MaxInt64}
	prev := -1
	for _, v := range edges {
		b := bucketFor(v)
		if b < prev {
			t.Fatalf("bucketFor not monotone: bucketFor(%d)=%d < %d", v, b, prev)
		}
		prev = b
		bound := bucketBound(b)
		if bound < v || (v < math.MaxInt64>>1 && bound > v+v>>subBits+1) {
			t.Fatalf("bucketBound(bucketFor(%d)) = %d outside [v, v+v/32+1]", v, bound)
		}
		if v < subCount && bucketBound(b) != v {
			t.Fatalf("small value %d not exact: bound %d", v, bucketBound(b))
		}
	}

	// Single-valued distributions report exactly their bucket bound at
	// every quantile, and exactly the value itself below subCount.
	for _, v := range []int64{0, 7, 31, 32, 1000, 1 << 40} {
		h := NewHistogram()
		for i := 0; i < 100; i++ {
			h.Record(v)
		}
		want := bucketBound(bucketFor(v))
		for _, q := range []float64{0, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != want {
				t.Fatalf("single-value %d q=%v: got %d want %d", v, q, got, want)
			}
		}
	}

	// Empty histogram.
	h := NewHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 5000
	h := NewHistogram()
	c := &Counter{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < perG; i++ {
				h.Record(int64(rng.IntN(1 << 20)))
				c.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("snapshot count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, s.Count)
	}
}

func TestRecordCorrected(t *testing.T) {
	h := NewHistogram()
	// A 1000ns stall at a 100ns expected interval hides 9 queued
	// requests; the correction backfills them.
	h.RecordCorrected(1000, 100)
	if got := h.Count(); got != 10 {
		t.Fatalf("corrected count = %d, want 10", got)
	}
	if got := h.sum.Load(); got != 5500 {
		t.Fatalf("corrected sum = %d, want 5500", got)
	}
	// Below the interval no phantom samples exist.
	h2 := NewHistogram()
	h2.RecordCorrected(50, 100)
	if got := h2.Count(); got != 1 {
		t.Fatalf("uncorrected count = %d, want 1", got)
	}
}

// TestZeroAlloc is the nil-registry contract: every hot-path recording
// primitive — disabled (nil handle) or live — performs zero heap
// allocations.
func TestZeroAlloc(t *testing.T) {
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilR *TraceRing
	liveC := &Counter{}
	liveG := &Gauge{}
	liveH := NewHistogram()
	liveR := NewTraceRing(8)
	t0 := time.Now()
	var tr EpochTrace
	checks := map[string]func(){
		"nil-counter":     func() { nilC.Add(1) },
		"nil-gauge":       func() { nilG.Set(1) },
		"nil-histogram":   func() { nilH.Record(42); nilH.RecordSince(t0) },
		"nil-ring":        func() { nilR.Push(&tr) },
		"live-counter":    func() { liveC.Add(1) },
		"live-gauge":      func() { liveG.Set(1); liveG.Add(1) },
		"live-histogram":  func() { liveH.Record(42); liveH.RecordSince(t0); liveH.RecordCorrected(300, 100) },
		"live-ring":       func() { tr.AddPhase("sort", 1); liveR.Push(&tr) },
		"nil-reg-lookups": func() { _ = (*Registry)(nil).Counter("x"); _ = (*Registry)(nil).Histogram("y") },
	}
	for name, f := range checks {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter lookup not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram lookup not idempotent")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(7)
	// Func chaining: two sources under one name sum; a stored gauge
	// under the same name joins the sum.
	r.Func("g", func() int64 { return 10 })
	r.Func("g", func() int64 { return 100 })
	r.Histogram("h").Record(5)

	s := r.Snapshot()
	if s.Counters["a"] != 3 {
		t.Fatalf("counter a = %d, want 3", s.Counters["a"])
	}
	if s.Gauges["g"] != 117 {
		t.Fatalf("gauge g = %d, want 117 (7 stored + 10 + 100 funcs)", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 1 || s.Histograms["h"].P50 != 5 {
		t.Fatalf("histogram h snapshot = %+v", s.Histograms["h"])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if back.Counters["a"] != 3 || back.Gauges["g"] != 117 {
		t.Fatalf("JSON round trip lost values: %+v", back)
	}

	// Nil registry: nil handles, zero snapshot, no-op Func.
	var nilR *Registry
	if nilR.Counter("x") != nil || nilR.Gauge("x") != nil || nilR.Histogram("x") != nil {
		t.Fatal("nil registry returned live handles")
	}
	nilR.Func("x", func() int64 { return 1 })
	if s := nilR.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		tr := EpochTrace{Ops: i}
		tr.AddPhase("sort", time.Duration(i))
		r.Push(&tr)
		if tr.Seq != int64(i) {
			t.Fatalf("push %d assigned seq %d", i, tr.Seq)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.Len())
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) returned %d traces, want 4", len(recent))
	}
	for i, tr := range recent {
		if want := 9 - i; tr.Ops != want || tr.Seq != int64(want) {
			t.Fatalf("recent[%d] = {Ops:%d Seq:%d}, want ops/seq %d", i, tr.Ops, tr.Seq, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Ops != 9 {
		t.Fatalf("Recent(2) = %+v", got)
	}

	// Phase overflow drops silently past maxPhases.
	var tr EpochTrace
	for i := 0; i < maxPhases+3; i++ {
		tr.AddPhase("p", 1)
	}
	if len(tr.Phases()) != maxPhases {
		t.Fatalf("phases = %d, want %d", len(tr.Phases()), maxPhases)
	}

	// Nil ring is inert.
	var nilR *TraceRing
	nilR.Push(&tr)
	if nilR.Len() != 0 || nilR.Recent(5) != nil {
		t.Fatal("nil ring not inert")
	}
}
