package iseq

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int64](Config{})
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero Len")
	}
	if tr.Contains(5) {
		t.Fatal("empty tree contains a key")
	}
	if tr.Remove(5) {
		t.Fatal("Remove on empty tree returned true")
	}
	if got := tr.Keys(); len(got) != 0 {
		t.Fatalf("empty tree Keys() = %v", got)
	}
	if tr.Height() != 0 {
		t.Fatal("empty tree has nonzero height")
	}
}

func TestInsertContainsRemoveSingle(t *testing.T) {
	tr := New[int64](Config{})
	if !tr.Insert(42) {
		t.Fatal("first Insert returned false")
	}
	if tr.Insert(42) {
		t.Fatal("duplicate Insert returned true")
	}
	if !tr.Contains(42) || tr.Contains(41) || tr.Contains(43) {
		t.Fatal("Contains wrong after single insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if !tr.Remove(42) {
		t.Fatal("Remove of present key returned false")
	}
	if tr.Remove(42) {
		t.Fatal("second Remove returned true")
	}
	if tr.Contains(42) || tr.Len() != 0 {
		t.Fatal("key still visible after removal")
	}
}

func TestReviveAfterRemove(t *testing.T) {
	// Remove marks a key dead; a subsequent insert must revive the
	// physical slot (§6, Fig. 13) and report true.
	tr := NewFromSorted(Config{}, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if !tr.Remove(5) || tr.Contains(5) {
		t.Fatal("removal failed")
	}
	if !tr.Insert(5) {
		t.Fatal("revival insert returned false")
	}
	if !tr.Contains(5) || tr.Len() != 10 {
		t.Fatal("revival did not restore the key")
	}
}

func TestNewFromSorted(t *testing.T) {
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(3 * i)
	}
	tr := NewFromSorted(Config{}, keys)
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
		if tr.Contains(k + 1) {
			t.Fatalf("phantom key %d", k+1)
		}
	}
	if got := tr.Keys(); !slices.Equal(got, keys) {
		t.Fatal("Keys() does not round-trip the input")
	}
}

// refSet mirrors tree contents for differential testing.
type refSet map[int64]bool

func (r refSet) insert(k int64) bool {
	if r[k] {
		return false
	}
	r[k] = true
	return true
}

func (r refSet) remove(k int64) bool {
	if !r[k] {
		return false
	}
	delete(r, k)
	return true
}

func (r refSet) sorted() []int64 {
	out := make([]int64, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestDifferentialRandomOps(t *testing.T) {
	configs := []Config{
		{},                                  // defaults
		{LeafCap: 4, RebuildFactor: 1},      // aggressive rebuilds
		{LeafCap: 64, RebuildFactor: 8},     // lazy rebuilds
		{LeafCap: 16, IndexSizeFactor: 0.5}, // coarse index
		{LeafCap: 16, IndexSizeFactor: 3},   // fine index
	}
	for ci, cfg := range configs {
		tr := New[int64](cfg)
		ref := refSet{}
		r := rand.New(rand.NewSource(int64(100 + ci)))
		const span = 2000
		for op := 0; op < 30000; op++ {
			k := r.Int63n(span)
			switch r.Intn(3) {
			case 0:
				if got, want := tr.Insert(k), ref.insert(k); got != want {
					t.Fatalf("cfg %d op %d: Insert(%d) = %v, want %v", ci, op, k, got, want)
				}
			case 1:
				if got, want := tr.Remove(k), ref.remove(k); got != want {
					t.Fatalf("cfg %d op %d: Remove(%d) = %v, want %v", ci, op, k, got, want)
				}
			default:
				if got, want := tr.Contains(k), ref[k]; got != want {
					t.Fatalf("cfg %d op %d: Contains(%d) = %v, want %v", ci, op, k, got, want)
				}
			}
			if tr.Len() != len(ref) {
				t.Fatalf("cfg %d op %d: Len = %d, want %d", ci, op, tr.Len(), len(ref))
			}
		}
		if !slices.Equal(tr.Keys(), ref.sorted()) {
			t.Fatalf("cfg %d: final key sets differ", ci)
		}
		checkInvariants(t, tr)
	}
}

func TestMonotoneInsertThenSweepRemove(t *testing.T) {
	// Monotone insertion is the adversarial case of Fig. 7: everything
	// lands in the rightmost leaf until rebuilds rebalance.
	tr := New[int64](Config{})
	const n = 20000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(i) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	checkInvariants(t, tr)
	// Height must stay polylogarithmic, not degenerate to a list of
	// leaves: for n = 2·10⁴ a well-rebuilt IST stays very shallow.
	if h := tr.Height(); h > 12 {
		t.Fatalf("height after monotone inserts = %d; rebuilding is not keeping balance", h)
	}
	for i := int64(0); i < n; i++ {
		if !tr.Remove(i) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", tr.Len())
	}
}

func TestDeadKeysAreReclaimedByRebuilds(t *testing.T) {
	tr := New[int64](Config{})
	const n = 10000
	for i := int64(0); i < n; i++ {
		tr.Insert(i)
	}
	for i := int64(0); i < n; i++ {
		tr.Remove(i)
	}
	// Logical deletions leave dead keys, but the rebuild rule bounds
	// them: total physical keys may not exceed the rebuild budget of
	// the root that was last rebuilt. Insert/remove churn to force one
	// more root rebuild, then measure.
	s := tr.Stats()
	if s.LiveKeys != 0 {
		t.Fatalf("live keys = %d, want 0", s.LiveKeys)
	}
	if s.DeadKeys > 3*n {
		t.Fatalf("dead keys = %d: rebuilds are not reclaiming space", s.DeadKeys)
	}
}

func TestIdealBuildBalance(t *testing.T) {
	// §3.4: the root of an ideally balanced IST over n keys has Θ(√n)
	// rep entries and the height is O(log log n).
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i)
		}
		tr := NewFromSorted(Config{}, keys)
		s := tr.Stats()
		sqrtN := math.Sqrt(float64(n))
		if s.RootRepLen < int(sqrtN/2) || s.RootRepLen > int(sqrtN*2)+2 {
			t.Errorf("n=%d: root rep len = %d, want Θ(√n)=%.0f", n, s.RootRepLen, sqrtN)
		}
		// loglog(10⁶)≈4.3; allow generous constant factor.
		maxH := 3*int(math.Log2(math.Log2(float64(n))+1)+1) + 2
		if s.Height > maxH {
			t.Errorf("n=%d: height = %d, want <= %d (O(log log n))", n, s.Height, maxH)
		}
		checkInvariants(t, tr)
	}
}

func TestStatsCounts(t *testing.T) {
	tr := NewFromSorted(Config{}, []int64{1, 2, 3, 4, 5})
	s := tr.Stats()
	if s.LiveKeys != 5 || s.DeadKeys != 0 || s.Nodes != 1 || s.Leaves != 1 {
		t.Fatalf("unexpected stats for tiny tree: %+v", s)
	}
	tr.Remove(3)
	s = tr.Stats()
	if s.LiveKeys != 4 || s.DeadKeys != 1 {
		t.Fatalf("stats after removal: %+v", s)
	}
}

func TestQuickPropertyMatchesMap(t *testing.T) {
	prop := func(ops []int16) bool {
		tr := New[int64](Config{LeafCap: 8, RebuildFactor: 2})
		ref := refSet{}
		for _, raw := range ops {
			k := int64(raw % 64)
			if raw%3 == 0 {
				if tr.Insert(k) != ref.insert(k) {
					return false
				}
			} else if raw%3 == 1 {
				if tr.Remove(k) != ref.remove(k) {
					return false
				}
			} else if tr.Contains(k) != ref[k] {
				return false
			}
		}
		return slices.Equal(tr.Keys(), ref.sorted())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeys(t *testing.T) {
	tr := New[float64](Config{})
	r := rand.New(rand.NewSource(21))
	ref := map[float64]bool{}
	for i := 0; i < 5000; i++ {
		k := math.Round(r.NormFloat64()*1e4) / 16
		ins := !ref[k]
		ref[k] = true
		if tr.Insert(k) != ins {
			t.Fatalf("float Insert(%v) disagreement", k)
		}
	}
	for k := range ref {
		if !tr.Contains(k) {
			t.Fatalf("missing float key %v", k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
}

// checkInvariants validates the structural invariants of the tree:
// rep sortedness, child key ranges, exists/children lengths, and size
// bookkeeping.
func checkInvariants(t *testing.T, tr *Tree[int64]) {
	t.Helper()
	var walk func(v *node[int64], lo, hi *int64) int
	walk = func(v *node[int64], lo, hi *int64) int {
		if v == nil {
			return 0
		}
		if len(v.rep) == 0 {
			t.Fatalf("node with empty rep")
		}
		if len(v.exists) != len(v.rep) {
			t.Fatalf("exists length %d != rep length %d", len(v.exists), len(v.rep))
		}
		if !slices.IsSorted(v.rep) {
			t.Fatalf("rep not sorted: %v", v.rep)
		}
		for i := 1; i < len(v.rep); i++ {
			if v.rep[i] == v.rep[i-1] {
				t.Fatalf("duplicate key %d in rep", v.rep[i])
			}
		}
		if lo != nil && v.rep[0] <= *lo {
			t.Fatalf("rep[0]=%d violates lower bound %d", v.rep[0], *lo)
		}
		if hi != nil && v.rep[len(v.rep)-1] >= *hi {
			t.Fatalf("rep max %d violates upper bound %d", v.rep[len(v.rep)-1], *hi)
		}
		live := 0
		for _, ok := range v.exists {
			if ok {
				live++
			}
		}
		if !v.isLeaf() {
			if len(v.children) != len(v.rep)+1 {
				t.Fatalf("children length %d != rep length %d + 1", len(v.children), len(v.rep))
			}
			for i, c := range v.children {
				var clo, chi *int64
				if i > 0 {
					clo = &v.rep[i-1]
				} else {
					clo = lo
				}
				if i < len(v.rep) {
					chi = &v.rep[i]
				} else {
					chi = hi
				}
				live += walk(c, clo, chi)
			}
		}
		if v.size != live {
			t.Fatalf("node size %d != live key count %d", v.size, live)
		}
		return live
	}
	total := walk(tr.root, nil, nil)
	if total != tr.Len() {
		t.Fatalf("tree Len %d != walked live count %d", tr.Len(), total)
	}
}
