// Package iseq implements the sequential dynamic Interpolation Search
// Tree of Mehlhorn & Tsakalidis (paper §3): a multiway search tree whose
// nodes carry a sorted Rep array, an Exists bitmap for logical deletion,
// and a lightweight interpolation index. Under µ-random insertions and
// random removals from a smooth distribution µ, searches and updates
// take expected O(log log n) time; the worst case is polylogarithmic
// thanks to amortized subtree rebuilding.
//
// This package is the scalar baseline of the reproduction: the
// parallel-batched tree of internal/core is differentially tested
// against it, and the sequential-throughput experiment (§9) compares it
// with a red-black tree.
package iseq

import (
	"math"

	"repro/internal/iindex"
)

// Config carries the tuning constants of the tree. The zero value
// selects the defaults, which follow the constants suggested in the
// paper (§3.4, §7.1).
type Config struct {
	// LeafCap is H: subtrees of at most this many keys are stored as
	// leaf nodes (sorted arrays). Default 16.
	LeafCap int
	// RebuildFactor is C: a subtree is rebuilt once the number of
	// modifications applied to it since construction exceeds C times
	// its size at construction. Default 2.
	RebuildFactor int
	// IndexSizeFactor scales each node's interpolation-index bucket
	// count relative to its Rep length. Default 1.0.
	IndexSizeFactor float64
}

func (c Config) withDefaults() Config {
	if c.LeafCap <= 0 {
		c.LeafCap = 16
	}
	if c.RebuildFactor <= 0 {
		c.RebuildFactor = 2
	}
	if c.IndexSizeFactor <= 0 {
		c.IndexSizeFactor = iindex.DefaultSizeFactor
	}
	return c
}

// Tree is a sorted set of numeric keys backed by an interpolation
// search tree. The zero value is not ready to use; construct trees with
// New or NewFromSorted. Tree is not safe for concurrent use.
type Tree[K iindex.Numeric] struct {
	root *node[K]
	cfg  Config
}

// node is one IST node. Leaves have a nil children slice; inner nodes
// have len(rep)+1 children, any of which may be nil (empty subtree).
// Rep contents of inner nodes are immutable between rebuilds — only the
// exists flags change — so the interpolation index stays valid. Leaf rep
// arrays mutate in place and are searched with on-the-fly interpolation
// instead of a stored index.
type node[K iindex.Numeric] struct {
	rep      []K
	exists   []bool
	children []*node[K]
	idx      iindex.Index
	size     int // live keys in this subtree
	initSize int // live keys when this subtree was (re)built
	modCnt   int // successful updates applied since (re)build
}

func (v *node[K]) isLeaf() bool { return v.children == nil }

// New returns an empty tree with the given configuration.
func New[K iindex.Numeric](cfg Config) *Tree[K] {
	return &Tree[K]{cfg: cfg.withDefaults()}
}

// NewFromSorted returns a tree over the given sorted duplicate-free
// keys, built ideally balanced (Definition 5). It costs O(n) time. The
// input slice is not retained.
func NewFromSorted[K iindex.Numeric](cfg Config, keys []K) *Tree[K] {
	t := New[K](cfg)
	t.root = t.buildIdeal(keys)
	return t
}

// Len reports the number of live keys in the set.
func (t *Tree[K]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Contains reports whether key is in the set (§3.3, Listing 1.1).
func (t *Tree[K]) Contains(key K) bool {
	v := t.root
	for v != nil {
		pos, found := v.find(key)
		if found {
			return v.exists[pos]
		}
		if v.isLeaf() {
			return false
		}
		v = v.children[pos]
	}
	return false
}

// find locates key in v.rep, returning its lower-bound position and
// whether rep[pos] == key. The lower-bound position doubles as the
// child index to descend into when the key is absent from rep: child
// pos holds exactly the keys between rep[pos-1] and rep[pos].
func (v *node[K]) find(key K) (int, bool) {
	if v.isLeaf() {
		return iindex.InterpolationSearch(v.rep, key)
	}
	return iindex.Find(v.rep, &v.idx, key)
}

// Insert adds key to the set. It reports true if the key was absent and
// has been added, false if the set already contained it (§3.4).
func (t *Tree[K]) Insert(key K) bool {
	if t.Contains(key) {
		return false
	}
	t.root = t.insert(t.root, key)
	return true
}

// insert adds key — known to be logically absent — to subtree v and
// returns the possibly replaced subtree root.
func (t *Tree[K]) insert(v *node[K], key K) *node[K] {
	if v == nil {
		return &node[K]{
			rep:      []K{key},
			exists:   []bool{true},
			size:     1,
			initSize: 1,
		}
	}
	if t.rebuildDue(v, 1) {
		keys := appendLive(v, make([]K, 0, v.size+1))
		pos := lowerBound(keys, key)
		keys = append(keys, key)
		copy(keys[pos+1:], keys[pos:])
		keys[pos] = key
		return t.buildIdeal(keys)
	}
	v.modCnt++
	v.size++
	pos, found := v.find(key)
	switch {
	case found:
		// Physically present but logically removed: revive (§6,
		// Fig. 13).
		v.exists[pos] = true
	case v.isLeaf():
		v.rep = insertAt(v.rep, pos, key)
		v.exists = insertAt(v.exists, pos, true)
	default:
		v.children[pos] = t.insert(v.children[pos], key)
	}
	return v
}

// Remove deletes key from the set. It reports true if the key was
// present and has been removed, false otherwise. Removal is logical
// (§3.4): the key is marked in its node's Exists array and reclaimed at
// the next rebuild of an enclosing subtree.
func (t *Tree[K]) Remove(key K) bool {
	if !t.Contains(key) {
		return false
	}
	t.root = t.remove(t.root, key)
	return true
}

// remove deletes key — known to be logically present — from subtree v.
func (t *Tree[K]) remove(v *node[K], key K) *node[K] {
	if t.rebuildDue(v, 1) {
		keys := appendLive(v, make([]K, 0, v.size))
		pos := lowerBound(keys, key)
		copy(keys[pos:], keys[pos+1:])
		keys = keys[:len(keys)-1]
		return t.buildIdeal(keys)
	}
	v.modCnt++
	v.size--
	pos, found := v.find(key)
	if found {
		v.exists[pos] = false
		return v
	}
	v.children[pos] = t.remove(v.children[pos], key)
	return v
}

// rebuildDue reports whether applying k more modifications to v would
// exceed the rebuild budget C·InitSize (§7.1).
func (t *Tree[K]) rebuildDue(v *node[K], k int) bool {
	budget := t.cfg.RebuildFactor * v.initSize
	if budget < t.cfg.RebuildFactor {
		budget = t.cfg.RebuildFactor // nodes built empty still get slack
	}
	return v.modCnt+k > budget
}

// Keys returns the live keys of the set in ascending order.
func (t *Tree[K]) Keys() []K {
	if t.root == nil {
		return nil
	}
	return appendLive(t.root, make([]K, 0, t.root.size))
}

// insertAt inserts x at position pos of s, shifting the tail right.
func insertAt[T any](s []T, pos int, x T) []T {
	var zero T
	s = append(s, zero)
	copy(s[pos+1:], s[pos:])
	s[pos] = x
	return s
}

// lowerBound returns the first index of sorted s whose element is not
// less than x.
func lowerBound[K iindex.Numeric](s []K, x K) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// appendLive appends the live keys of subtree v to out in ascending
// order (the sequential form of §7.2's flatten).
func appendLive[K iindex.Numeric](v *node[K], out []K) []K {
	if v == nil {
		return out
	}
	if v.isLeaf() {
		for i, x := range v.rep {
			if v.exists[i] {
				out = append(out, x)
			}
		}
		return out
	}
	for i := range v.rep {
		out = appendLive(v.children[i], out)
		if v.exists[i] {
			out = append(out, v.rep[i])
		}
	}
	return appendLive(v.children[len(v.rep)], out)
}

// buildIdeal constructs an ideally balanced IST (Definition 5) over the
// sorted duplicate-free keys: O(n) time, O(log log n) resulting height.
//
// Note on child boundaries: §7.3 of the paper spaces Rep elements k
// apart (k = ⌊√m⌋−1), which only covers the whole input when m is an
// exact square; Definition 5 asks for *equally spaced* Rep elements. We
// take the Definition 5 reading: k = ⌊√m⌋ rep slots at positions
// (i+1)·m/(k+1), giving k+1 children of ≈ m/(k+1) = Θ(√m) keys each.
func (t *Tree[K]) buildIdeal(keys []K) *node[K] {
	m := len(keys)
	if m == 0 {
		return nil
	}
	if m <= t.cfg.LeafCap {
		v := &node[K]{
			rep:      append(make([]K, 0, m), keys...),
			exists:   allTrue(m),
			size:     m,
			initSize: m,
		}
		return v
	}
	k := int(math.Sqrt(float64(m)))
	if k < 2 {
		k = 2
	}
	v := &node[K]{
		rep:      make([]K, k),
		exists:   allTrue(k),
		children: make([]*node[K], k+1),
		size:     m,
		initSize: m,
	}
	prev := 0
	for i := 0; i < k; i++ {
		p := (i + 1) * m / (k + 1)
		v.rep[i] = keys[p]
		v.children[i] = t.buildIdeal(keys[prev:p])
		prev = p + 1
	}
	v.children[k] = t.buildIdeal(keys[prev:])
	v.idx = iindex.Build(v.rep, t.cfg.IndexSizeFactor)
	return v
}

func allTrue(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}
