package treap

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func pools() map[string]*parallel.Pool {
	return map[string]*parallel.Pool{
		"seq": nil,
		"w4":  parallel.NewPool(4),
	}
}

func sortedUnique(seed int64, n int, span int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	set := make(map[int64]struct{}, n)
	for len(set) < n {
		set[r.Int63n(span)] = struct{}{}
	}
	out := make([]int64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestEmpty(t *testing.T) {
	s := New[int64](nil)
	if s.Len() != 0 || s.Contains(1) || s.Remove(1) {
		t.Fatal("empty set misbehaves")
	}
	if n := s.UnionWith(nil); n != 0 {
		t.Fatal("empty union added keys")
	}
	if len(s.Keys()) != 0 {
		t.Fatal("empty set has keys")
	}
}

func TestScalarOps(t *testing.T) {
	s := New[int64](nil)
	if !s.Insert(5) || s.Insert(5) {
		t.Fatal("Insert semantics wrong")
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove semantics wrong")
	}
}

func TestBuildFromSorted(t *testing.T) {
	for name, p := range pools() {
		t.Run(name, func(t *testing.T) {
			keys := sortedUnique(1, 20000, 1<<40)
			s := NewFromSorted(p, keys)
			if s.Len() != len(keys) {
				t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
			}
			if !slices.Equal(s.Keys(), keys) {
				t.Fatal("Keys() round-trip failed")
			}
			checkTreap(t, s)
		})
	}
}

func TestUnionWith(t *testing.T) {
	for name, p := range pools() {
		t.Run(name, func(t *testing.T) {
			a := sortedUnique(2, 20000, 1<<24)
			b := sortedUnique(3, 20000, 1<<24)
			s := NewFromSorted(p, a)
			added := s.UnionWith(b)
			want := parallel.Merge(p, a, parallel.Difference(p, b, a))
			if added != len(want)-len(a) {
				t.Fatalf("UnionWith reported %d new keys, want %d", added, len(want)-len(a))
			}
			if !slices.Equal(s.Keys(), want) {
				t.Fatal("union contents wrong")
			}
			checkTreap(t, s)
		})
	}
}

func TestDifferenceWith(t *testing.T) {
	for name, p := range pools() {
		t.Run(name, func(t *testing.T) {
			a := sortedUnique(4, 20000, 1<<24)
			b := sortedUnique(5, 20000, 1<<24)
			s := NewFromSorted(p, a)
			removed := s.DifferenceWith(b)
			want := parallel.Difference(p, a, b)
			if removed != len(a)-len(want) {
				t.Fatalf("DifferenceWith removed %d, want %d", removed, len(a)-len(want))
			}
			if !slices.Equal(s.Keys(), want) {
				t.Fatal("difference contents wrong")
			}
			checkTreap(t, s)
		})
	}
}

func TestIntersectWith(t *testing.T) {
	for name, p := range pools() {
		t.Run(name, func(t *testing.T) {
			a := sortedUnique(6, 20000, 1<<24)
			b := sortedUnique(7, 20000, 1<<24)
			s := NewFromSorted(p, a)
			size := s.IntersectWith(b)
			want := parallel.Intersect(p, a, b)
			if size != len(want) {
				t.Fatalf("IntersectWith size %d, want %d", size, len(want))
			}
			if !slices.Equal(s.Keys(), want) {
				t.Fatal("intersection contents wrong")
			}
			checkTreap(t, s)
		})
	}
}

func TestContainsBatched(t *testing.T) {
	p := parallel.NewPool(4)
	a := sortedUnique(8, 10000, 1<<24)
	probes := sortedUnique(9, 10000, 1<<24)
	s := NewFromSorted(p, a)
	got := s.ContainsBatched(probes)
	for i, k := range probes {
		if _, want := slices.BinarySearch(a, k); got[i] != want {
			t.Fatalf("ContainsBatched(%d) = %v, want %v", k, got[i], want)
		}
	}
}

func TestPersistentSharingSafety(t *testing.T) {
	// Operations must not mutate the original: snapshot the root and
	// verify the pre-union contents remain reachable and intact.
	p := parallel.NewPool(4)
	a := sortedUnique(10, 5000, 1<<20)
	s := NewFromSorted(p, a)
	old := *s // shallow copy shares the old root
	b := sortedUnique(11, 5000, 1<<20)
	s.UnionWith(b)
	if !slices.Equal(old.Keys(), a) {
		t.Fatal("union mutated the previous version")
	}
}

func TestExpectedLogHeight(t *testing.T) {
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = int64(i)
	}
	s := NewFromSorted(parallel.NewPool(4), keys)
	// Expected height ~ 2.99·log2(n) ≈ 48; allow slack.
	if h := s.Height(); h > 80 {
		t.Fatalf("treap height %d far exceeds expected O(log n)", h)
	}
	checkTreap(t, s)
}

func TestResultsIndependentOfWorkers(t *testing.T) {
	a := sortedUnique(12, 20000, 1<<24)
	b := sortedUnique(13, 20000, 1<<24)
	seq := NewFromSorted(nil, a)
	seq.UnionWith(b)
	par := NewFromSorted(parallel.NewPool(8), a)
	par.UnionWith(b)
	if !slices.Equal(seq.Keys(), par.Keys()) {
		t.Fatal("worker count changed union result")
	}
	if seq.Height() != par.Height() {
		t.Fatal("worker count changed treap shape (priorities not deterministic?)")
	}
}

func TestQuickSetAlgebra(t *testing.T) {
	p := parallel.NewPool(2)
	prop := func(x, y []uint16) bool {
		a := make([]int64, 0, len(x))
		for _, v := range x {
			a = append(a, int64(v))
		}
		slices.Sort(a)
		a = slices.Compact(a)
		b := make([]int64, 0, len(y))
		for _, v := range y {
			b = append(b, int64(v))
		}
		slices.Sort(b)
		b = slices.Compact(b)

		u := NewFromSorted(p, a)
		u.UnionWith(b)
		d := NewFromSorted(p, a)
		d.DifferenceWith(b)
		i := NewFromSorted(p, a)
		i.IntersectWith(b)

		return slices.Equal(u.Keys(), parallel.Merge(p, a, parallel.Difference(p, b, a))) &&
			slices.Equal(d.Keys(), parallel.Difference(p, a, b)) &&
			slices.Equal(i.Keys(), parallel.Intersect(p, a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// checkTreap asserts BST order on keys, heap order on priorities, and
// size bookkeeping.
func checkTreap(t *testing.T, s *Set[int64]) {
	t.Helper()
	var rec func(v *node[int64], lo, hi *int64) int
	rec = func(v *node[int64], lo, hi *int64) int {
		if v == nil {
			return 0
		}
		if lo != nil && v.key <= *lo {
			t.Fatalf("key %d violates lower bound %d", v.key, *lo)
		}
		if hi != nil && v.key >= *hi {
			t.Fatalf("key %d violates upper bound %d", v.key, *hi)
		}
		if v.left != nil && v.left.prio > v.prio {
			t.Fatal("heap property violated on the left")
		}
		if v.right != nil && v.right.prio > v.prio {
			t.Fatal("heap property violated on the right")
		}
		n := 1 + rec(v.left, lo, &v.key) + rec(v.right, &v.key, hi)
		if v.size != n {
			t.Fatalf("size %d != subtree count %d", v.size, n)
		}
		return n
	}
	rec(s.root, nil, nil)
}
