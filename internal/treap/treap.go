// Package treap implements a join-based parallel-batched treap
// (Blelloch & Reid-Miller, SPAA 1998 — cited in the paper's
// introduction as prior parallel-batched sorted-set work). It is the
// batched-parallel *baseline* of the reproduction: the same set-set
// operations as the PB-IST — union, difference, intersection — built on
// split/join recursion over a randomized binary search tree, with
// Θ(log n) expected node depth instead of the IST's Θ(log log n).
//
// Treaps here are functionally persistent: operations build new paths
// and share untouched subtrees, which makes the fork-join parallelism
// race-free by construction. Node priorities are a deterministic hash
// of the key, so any two treaps over the same key set have identical
// shape — that is what makes split-free joins well defined.
package treap

import (
	"math"

	"repro/internal/iindex"
	"repro/internal/parallel"
)

// node is an immutable treap node.
type node[K iindex.Numeric] struct {
	key         K
	prio        uint64
	left, right *node[K]
	size        int
}

// Set is a sorted set of numeric keys backed by a treap. The zero
// value is an empty usable set. Batched operations run on the pool
// passed to New; a nil pool means sequential.
type Set[K iindex.Numeric] struct {
	root *node[K]
	pool *parallel.Pool
}

// New returns an empty treap set using pool for batched operations.
func New[K iindex.Numeric](pool *parallel.Pool) *Set[K] {
	return &Set[K]{pool: pool}
}

// NewFromSorted bulk-loads a set from sorted duplicate-free keys.
func NewFromSorted[K iindex.Numeric](pool *parallel.Pool, keys []K) *Set[K] {
	s := New[K](pool)
	s.root = s.build(keys)
	return s
}

// Len reports the number of keys in the set.
func (s *Set[K]) Len() int { return s.root.len() }

func (v *node[K]) len() int {
	if v == nil {
		return 0
	}
	return v.size
}

// Contains reports whether key is in the set.
func (s *Set[K]) Contains(key K) bool {
	v := s.root
	for v != nil {
		switch {
		case key < v.key:
			v = v.left
		case key > v.key:
			v = v.right
		default:
			return true
		}
	}
	return false
}

// Insert adds key to the set, reporting whether it was absent.
func (s *Set[K]) Insert(key K) bool {
	before := s.Len()
	s.root = union(s.pool, s.root, &node[K]{key: key, prio: prioOf(key), size: 1})
	return s.Len() == before+1
}

// Remove deletes key from the set, reporting whether it was present.
func (s *Set[K]) Remove(key K) bool {
	l, found, r := split(s.root, key)
	if !found {
		return false
	}
	s.root = join2(l, r)
	return true
}

// UnionWith adds every key of the sorted duplicate-free batch,
// returning the number of keys that were new: A ← A ∪ B.
func (s *Set[K]) UnionWith(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	before := s.Len()
	s.root = union(s.pool, s.root, s.build(keys))
	return s.Len() - before
}

// DifferenceWith removes every key of the sorted duplicate-free batch,
// returning the number of keys removed: A ← A \ B.
func (s *Set[K]) DifferenceWith(keys []K) int {
	if len(keys) == 0 {
		return 0
	}
	before := s.Len()
	s.root = difference(s.pool, s.root, s.build(keys))
	return before - s.Len()
}

// IntersectWith keeps only the keys also present in the sorted
// duplicate-free batch, returning the resulting size: A ← A ∩ B.
func (s *Set[K]) IntersectWith(keys []K) int {
	s.root = intersect(s.pool, s.root, s.build(keys))
	return s.Len()
}

// ContainsBatched reports membership for each key of the sorted batch.
func (s *Set[K]) ContainsBatched(keys []K) []bool {
	out := make([]bool, len(keys))
	parallel.For(s.pool, len(keys), 0, func(i int) {
		out[i] = s.Contains(keys[i])
	})
	return out
}

// Keys returns the keys in ascending order.
func (s *Set[K]) Keys() []K {
	out := make([]K, 0, s.Len())
	var rec func(v *node[K])
	rec = func(v *node[K]) {
		if v == nil {
			return
		}
		rec(v.left)
		out = append(out, v.key)
		rec(v.right)
	}
	rec(s.root)
	return out
}

// Height reports the number of nodes on the longest root-to-leaf path.
func (s *Set[K]) Height() int {
	var rec func(v *node[K]) int
	rec = func(v *node[K]) int {
		if v == nil {
			return 0
		}
		return 1 + max(rec(v.left), rec(v.right))
	}
	return rec(s.root)
}

// build constructs a treap from sorted duplicate-free keys by rooting
// each range at its maximum-priority element: the unique treap shape
// for the hash priorities, built without rotations.
func (s *Set[K]) build(keys []K) *node[K] {
	if len(keys) == 0 {
		return nil
	}
	best := 0
	bestPrio := prioOf(keys[0])
	for i := 1; i < len(keys); i++ {
		if p := prioOf(keys[i]); p > bestPrio {
			best, bestPrio = i, p
		}
	}
	v := &node[K]{key: keys[best], prio: bestPrio, size: len(keys)}
	s.pool.Do(
		func() { v.left = s.build(keys[:best]) },
		func() { v.right = s.build(keys[best+1:]) },
	)
	return v
}

// mk assembles a node from a key/priority and two treaps strictly
// smaller/greater than the key.
func mk[K iindex.Numeric](key K, prio uint64, l, r *node[K]) *node[K] {
	return &node[K]{key: key, prio: prio, left: l, right: r, size: l.len() + r.len() + 1}
}

// split partitions t into keys < k and keys > k, reporting whether k
// itself was present.
func split[K iindex.Numeric](t *node[K], k K) (l *node[K], found bool, r *node[K]) {
	if t == nil {
		return nil, false, nil
	}
	switch {
	case k < t.key:
		ll, f, lr := split(t.left, k)
		return ll, f, mk(t.key, t.prio, lr, t.right)
	case k > t.key:
		rl, f, rr := split(t.right, k)
		return mk(t.key, t.prio, t.left, rl), f, rr
	default:
		return t.left, true, t.right
	}
}

// join2 concatenates two treaps where every key of l precedes every
// key of r.
func join2[K iindex.Numeric](l, r *node[K]) *node[K] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		return mk(l.key, l.prio, l.left, join2(l.right, r))
	default:
		return mk(r.key, r.prio, join2(l, r.left), r.right)
	}
}

// union returns a ∪ b, recursing on both sides of the higher-priority
// root in parallel (Blelloch & Reid-Miller).
func union[K iindex.Numeric](p *parallel.Pool, a, b *node[K]) *node[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio < b.prio {
		a, b = b, a
	}
	bl, _, br := split(b, a.key)
	var l, r *node[K]
	maybePar(p, a.size+b.size,
		func() { l = union(p, a.left, bl) },
		func() { r = union(p, a.right, br) },
	)
	return mk(a.key, a.prio, l, r)
}

// difference returns a \ b.
func difference[K iindex.Numeric](p *parallel.Pool, a, b *node[K]) *node[K] {
	if a == nil || b == nil {
		return a
	}
	bl, found, br := split(b, a.key)
	var l, r *node[K]
	maybePar(p, a.size+b.size,
		func() { l = difference(p, a.left, bl) },
		func() { r = difference(p, a.right, br) },
	)
	if found {
		return join2(l, r)
	}
	return mk(a.key, a.prio, l, r)
}

// intersect returns a ∩ b.
func intersect[K iindex.Numeric](p *parallel.Pool, a, b *node[K]) *node[K] {
	if a == nil || b == nil {
		return nil
	}
	bl, found, br := split(b, a.key)
	var l, r *node[K]
	maybePar(p, a.size+b.size,
		func() { l = intersect(p, a.left, bl) },
		func() { r = intersect(p, a.right, br) },
	)
	if found {
		return mk(a.key, a.prio, l, r)
	}
	return join2(l, r)
}

// parCutoff is the combined subtree size below which set operations
// recurse sequentially.
const parCutoff = 1024

func maybePar(p *parallel.Pool, size int, f, g func()) {
	if size >= parCutoff {
		p.Do(f, g)
		return
	}
	f()
	g()
}

// prioOf hashes a key to its treap priority with the splitmix64
// finalizer: deterministic and key-order independent. The key is
// identified by its float64 bit pattern; integer keys beyond ±2^53
// may collide, which costs balance determinism but never correctness
// (all treap operations tolerate equal priorities).
func prioOf[K iindex.Numeric](key K) uint64 {
	z := math.Float64bits(float64(key))
	z ^= 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
