package dist

import (
	"fmt"

	"repro/internal/parallel"
)

// shardSize is the number of draws handled by one parallel shard, and
// blockSize the number of range positions scanned per HalfDense block.
// Both are fixed (not derived from the pool) so output is identical at
// every worker count.
const (
	shardSize = 1 << 15
	blockSize = 1 << 16
)

// pool is the parallelism used by the generators. Generation is pure
// throughput work, so the machine pool is the right default; outputs
// do not depend on it.
var pool = parallel.NewMachinePool()

// checkSet validates the common (n, lo, hi) arguments of the set
// generators: the range must be non-empty and hold n distinct keys.
func checkSet(name string, n int, lo, hi int64) {
	if n < 0 {
		panic(fmt.Sprintf("dist: %s with negative n=%d", name, n))
	}
	if hi < lo {
		panic(fmt.Sprintf("dist: %s with empty range [%d,%d]", name, lo, hi))
	}
	if span := spanOf(lo, hi); span != 0 && uint64(n) > span {
		panic(fmt.Sprintf("dist: %s wants %d distinct keys from a range of %d", name, n, span))
	}
}

// UniformSet returns exactly n distinct keys drawn uniformly from
// [lo, hi], sorted ascending. This is the smooth distribution of §9:
// the regime where interpolation search attains O(m·log log n).
func UniformSet(r *RNG, n int, lo, hi int64) []int64 {
	checkSet("UniformSet", n, lo, hi)
	return distinctSet(r, n, lo, hi, func(rr *RNG) int64 { return rr.InRange(lo, hi) })
}

// distinctSet draws keys via draw until it holds exactly n distinct
// values in [lo, hi], returned sorted. The first (large) round is
// generated shard-parallel from streams forked off r in a fixed order;
// top-up rounds replace collisions. If draw is too collision-prone to
// converge (a very skewed draw near its support size), the remainder
// is filled with the smallest absent keys, keeping the result exact
// and deterministic.
func distinctSet(r *RNG, n int, lo, hi int64, draw func(*RNG) int64) []int64 {
	if n == 0 {
		return []int64{}
	}
	keys := drawShards(r, n, draw)
	keys = parallel.SortedDedup(pool, keys)

	for round := 0; len(keys) < n && round < 64; round++ {
		extra := drawShards(r, n-len(keys), draw)
		extra = parallel.SortedDedup(pool, extra)
		keys = parallel.Dedup(pool, parallel.Merge(pool, keys, extra))
	}
	if len(keys) < n {
		keys = fillAbsent(keys, n, lo, hi)
	}
	return keys
}

// drawShards produces n draws, split into fixed-size shards that run
// on the package pool. Shard streams are forked from r sequentially,
// so the output is independent of scheduling.
func drawShards(r *RNG, n int, draw func(*RNG) int64) []int64 {
	out := make([]int64, n)
	shards := (n + shardSize - 1) / shardSize
	rngs := make([]*RNG, shards)
	for i := range rngs {
		rngs[i] = r.Fork()
	}
	parallel.For(pool, shards, 1, func(s int) {
		lo := s * shardSize
		hi := min(lo+shardSize, n)
		rr := rngs[s]
		for i := lo; i < hi; i++ {
			out[i] = draw(rr)
		}
	})
	return out
}

// fillAbsent pads sorted distinct keys up to n elements with the
// smallest keys of [lo, hi] not already present. checkSet has already
// guaranteed the range holds n distinct keys, so the walk terminates
// before running past hi.
func fillAbsent(keys []int64, n int, lo, hi int64) []int64 {
	fills := make([]int64, 0, n-len(keys))
	i := 0
	for next := lo; len(fills) < n-len(keys); next++ {
		for i < len(keys) && keys[i] < next {
			i++
		}
		if i < len(keys) && keys[i] == next {
			continue
		}
		fills = append(fills, next)
	}
	return parallel.Merge(pool, keys, fills)
}

// HalfDense returns every integer of [lo, hi] independently with
// probability p, sorted ascending. With p = ½ this is the paper's §9
// initialization: a half-dense universe whose gaps are geometric, the
// friendliest possible input for interpolation. The scan is done in
// fixed-size blocks, each with its own derived stream, so the result
// is reproducible at any parallelism.
func HalfDense(r *RNG, lo, hi int64, p float64) []int64 {
	if hi < lo {
		panic(fmt.Sprintf("dist: HalfDense with empty range [%d,%d]", lo, hi))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("dist: HalfDense with density %v outside [0,1]", p))
	}
	if p == 0 {
		return []int64{}
	}
	span := spanOf(lo, hi)
	blocks := int((span + blockSize - 1) / blockSize)
	base := r.Uint64()
	parts := make([][]int64, blocks)
	parallel.For(pool, blocks, 1, func(b int) {
		rr := NewRNG(splitmix64(base ^ uint64(b)*0x9e3779b97f4a7c15))
		start := lo + int64(b)*blockSize
		end := hi
		if uint64(hi)-uint64(start) >= blockSize { // avoids start+blockSize overflow
			end = start + blockSize - 1
		}
		part := make([]int64, 0, int(float64(blockSize)*p)+16)
		for k := start; ; k++ {
			if rr.Float64() < p {
				part = append(part, k)
			}
			if k == end { // end may be math.MaxInt64; a k <= end loop would spin
				break
			}
		}
		parts[b] = part
	})
	return concat(parts)
}

// concat joins per-block outputs, copying blocks in parallel. Blocks
// are produced in range order, so the result is globally sorted.
func concat(parts [][]int64) []int64 {
	offsets := make([]int, len(parts)+1)
	for i, p := range parts {
		offsets[i+1] = offsets[i] + len(p)
	}
	out := make([]int64, offsets[len(parts)])
	parallel.For(pool, len(parts), 1, func(i int) {
		copy(out[offsets[i]:], parts[i])
	})
	return out
}
