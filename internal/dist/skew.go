package dist

import (
	"fmt"
	"math"
)

// Clustered returns exactly n distinct sorted keys packed into
// `clusters` tight groups spread over [lo, hi]. This is the paper's
// non-smooth batch distribution (§9, ablation A3): within a cluster
// keys are dense, between clusters the range is empty, which breaks
// the smoothness assumption behind the O(m·log log n) traversal bound.
//
// The range is split into `clusters` equal segments; each segment
// holds one window (width ≈ 4× its share of keys, placed at a random
// offset) filled with a uniform distinct draw. Windows never overlap,
// so the concatenation is globally sorted and duplicate-free.
func Clustered(r *RNG, n, clusters int, lo, hi int64) []int64 {
	checkSet("Clustered", n, lo, hi)
	if n == 0 {
		return []int64{}
	}
	if clusters < 1 {
		clusters = 1
	}
	if clusters > n {
		clusters = n
	}
	span := spanOf(lo, hi)
	if uint64(clusters) > span {
		clusters = int(span)
	}
	// Every segment must fit its key share; for nearly-full ranges
	// fewer, larger clusters are the only feasible layout.
	for clusters > 1 && uint64(n/clusters+1) > span/uint64(clusters) {
		clusters /= 2
	}
	segW := span / uint64(clusters)

	out := make([]int64, 0, n)
	for i := 0; i < clusters; i++ {
		per := n / clusters
		if i < n%clusters {
			per++
		}
		segLo := int64(uint64(lo) + uint64(i)*segW)
		segSpan := segW
		if i == clusters-1 { // last segment absorbs the rounding remainder
			segSpan = span - uint64(clusters-1)*segW
		}
		w := uint64(4 * per)
		if w < 16 {
			w = 16
		}
		if w > segSpan {
			w = segSpan
		}
		off := r.Uint64n(segSpan - w + 1)
		wlo := segLo + int64(off)
		whi := wlo + int64(w) - 1
		rr := r.Fork()
		out = append(out, distinctSet(rr, per, wlo, whi,
			func(rr *RNG) int64 { return rr.InRange(wlo, whi) })...)
	}
	return out
}

// ZipfSet returns exactly n distinct sorted keys with power-law skew
// toward lo: a fraction q^(1-theta) of the keys falls in the lowest
// fraction q of the range. theta = 0 degenerates to uniform; theta
// close to 1 concentrates almost everything near lo. This models the
// hot-key traffic of the Zipf workloads in the non-blocking IST and
// parallel-search-tree evaluations (see PAPERS.md): smooth globally,
// but with a dense head that stresses per-node fanout.
func ZipfSet(r *RNG, n int, theta float64, lo, hi int64) []int64 {
	checkSet("ZipfSet", n, lo, hi)
	if theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("dist: ZipfSet with theta %v outside [0,1)", theta))
	}
	span := float64(spanOf(lo, hi))
	e := 1 / (1 - theta)
	return distinctSet(r, n, lo, hi, func(rr *RNG) int64 {
		pos := uint64(math.Pow(rr.Float64(), e) * span)
		k := int64(uint64(lo) + pos)
		if k > hi { // Float64 can be arbitrarily close to 1
			k = hi
		}
		return k
	})
}

// Runs returns exactly n distinct sorted keys arranged as `runs`
// blocks of consecutive integers at random positions. Fully dense
// runs are the best case for the leaf representation and the worst
// case for per-key update work, and model time-ordered ingest (IDs
// handed out sequentially with occasional re-basing).
func Runs(r *RNG, n, runs int, lo, hi int64) []int64 {
	checkSet("Runs", n, lo, hi)
	if n == 0 {
		return []int64{}
	}
	if runs < 1 {
		runs = 1
	}
	if runs > n {
		runs = n
	}
	span := spanOf(lo, hi)
	if uint64(runs) > span {
		runs = int(span)
	}
	for runs > 1 && uint64(n/runs+1) > span/uint64(runs) {
		runs /= 2
	}
	segW := span / uint64(runs)

	out := make([]int64, 0, n)
	for i := 0; i < runs; i++ {
		per := n / runs
		if i < n%runs {
			per++
		}
		segLo := int64(uint64(lo) + uint64(i)*segW)
		segSpan := segW
		if i == runs-1 {
			segSpan = span - uint64(runs-1)*segW
		}
		start := segLo + int64(r.Uint64n(segSpan-uint64(per)+1))
		for k := 0; k < per; k++ {
			out = append(out, start+int64(k))
		}
	}
	return out
}

// ExpSpaced returns exactly n distinct sorted keys at (jittered)
// exponentially growing gaps: key i sits near lo + span^((i+1)/n).
// This is the adversarial non-smooth input for interpolation search —
// a linear interpolation over such keys lands maximally far from the
// target, degrading the traversal toward its O(log n) fallback — and
// serves the "designed to defeat interpolation" ablation.
func ExpSpaced(r *RNG, n int, lo, hi int64) []int64 {
	checkSet("ExpSpaced", n, lo, hi)
	if n == 0 {
		return []int64{}
	}
	span := spanOf(lo, hi)
	spanF := float64(span)
	// pos values live in [1, span]; key = lo + pos - 1.
	pos := make([]uint64, n)
	for i := 0; i < n; i++ {
		e := (float64(i+1) + 0.25*(r.Float64()-0.5)) / float64(n)
		if i == n-1 {
			e = 1
		}
		p := uint64(math.Pow(spanF, e))
		if p < 1 {
			p = 1
		}
		if p > span {
			p = span
		}
		pos[i] = p
	}
	// Two clamp passes make the sequence strictly increasing while
	// staying in [1, span]; both bounds are feasible because checkSet
	// guaranteed span >= n. First cap each position low enough that
	// the keys after it still fit below span...
	pos[n-1] = span
	for i := 0; i < n-1; i++ {
		if limit := span - uint64(n-1-i); pos[i] > limit {
			pos[i] = limit
		}
	}
	// ...then push each position just above its predecessor.
	var prev uint64
	out := make([]int64, n)
	for i, p := range pos {
		if p <= prev {
			p = prev + 1
		}
		prev = p
		out[i] = int64(uint64(lo) + p - 1)
	}
	return out
}
