package dist

import (
	"slices"
	"testing"
)

// gens enumerates every exact-n generator under a fixed shape, so the
// contract tests run over all of them.
var gens = []struct {
	name string
	gen  func(r *RNG, n int, lo, hi int64) []int64
}{
	{"UniformSet", func(r *RNG, n int, lo, hi int64) []int64 { return UniformSet(r, n, lo, hi) }},
	{"Clustered", func(r *RNG, n int, lo, hi int64) []int64 { return Clustered(r, n, 8, lo, hi) }},
	{"ZipfSet", func(r *RNG, n int, lo, hi int64) []int64 { return ZipfSet(r, n, 0.8, lo, hi) }},
	{"Runs", func(r *RNG, n int, lo, hi int64) []int64 { return Runs(r, n, 8, lo, hi) }},
	{"ExpSpaced", func(r *RNG, n int, lo, hi int64) []int64 { return ExpSpaced(r, n, lo, hi) }},
}

// checkSetInvariants asserts the shared generator contract: exactly n
// keys, sorted ascending, duplicate-free, all within [lo, hi].
func checkSetInvariants(t *testing.T, name string, keys []int64, n int, lo, hi int64) {
	t.Helper()
	if len(keys) != n {
		t.Fatalf("%s returned %d keys, want %d", name, len(keys), n)
	}
	for i, k := range keys {
		if k < lo || k > hi {
			t.Fatalf("%s key %d out of [%d,%d]", name, k, lo, hi)
		}
		if i > 0 && keys[i-1] >= k {
			t.Fatalf("%s not strictly increasing at %d: %d, %d", name, i, keys[i-1], k)
		}
	}
}

func TestGeneratorsContract(t *testing.T) {
	const n = 50_000
	lo, hi := int64(-1_000_000), int64(1_000_000)
	for _, g := range gens {
		keys := g.gen(NewRNG(123), n, lo, hi)
		checkSetInvariants(t, g.name, keys, n, lo, hi)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	const n = 50_000
	lo, hi := int64(0), int64(1<<40)
	for _, g := range gens {
		a := g.gen(NewRNG(7), n, lo, hi)
		b := g.gen(NewRNG(7), n, lo, hi)
		if !slices.Equal(a, b) {
			t.Fatalf("%s: same seed produced different slices", g.name)
		}
		c := g.gen(NewRNG(8), n, lo, hi)
		if slices.Equal(a, c) {
			t.Fatalf("%s: different seeds produced identical slices", g.name)
		}
	}
}

func TestGeneratorsSmallAndEmpty(t *testing.T) {
	for _, g := range gens {
		if got := g.gen(NewRNG(1), 0, 0, 100); len(got) != 0 {
			t.Fatalf("%s(n=0) returned %d keys", g.name, len(got))
		}
		keys := g.gen(NewRNG(1), 1, 5, 5)
		checkSetInvariants(t, g.name, keys, 1, 5, 5)
	}
}

func TestGeneratorsNearlyFullRange(t *testing.T) {
	// n equal to the range size forces every generator through its
	// feasibility fallbacks: the result must be the whole range.
	lo, hi := int64(-50), int64(49)
	for _, g := range gens {
		keys := g.gen(NewRNG(3), 100, lo, hi)
		checkSetInvariants(t, g.name, keys, 100, lo, hi)
	}
}

func TestUniformSetCoversRange(t *testing.T) {
	keys := UniformSet(NewRNG(5), 10_000, 0, 1<<30)
	// A uniform draw should put roughly a quarter of the keys in each
	// quarter of the range.
	quarter := int64(1 << 28)
	counts := [4]int{}
	for _, k := range keys {
		counts[min(int(k/quarter), 3)]++
	}
	for q, c := range counts {
		if c < 1500 || c > 3500 {
			t.Fatalf("quarter %d holds %d/10000 keys; not uniform: %v", q, c, counts)
		}
	}
}

func TestHalfDenseDensity(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		lo, hi := int64(-100_000), int64(100_000)
		keys := HalfDense(NewRNG(21), lo, hi, p)
		span := float64(hi - lo + 1)
		got := float64(len(keys)) / span
		if got < p-0.02 || got > p+0.02 {
			t.Fatalf("density %v, want %v ± 0.02", got, p)
		}
		if !slices.IsSorted(keys) {
			t.Fatal("HalfDense output not sorted")
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				t.Fatal("HalfDense emitted a duplicate")
			}
		}
		if len(keys) > 0 && (keys[0] < lo || keys[len(keys)-1] > hi) {
			t.Fatal("HalfDense out of bounds")
		}
	}
}

func TestHalfDenseDeterministicAcrossBlocks(t *testing.T) {
	// Range wider than several blocks: the per-block streams must
	// reproduce regardless of scheduling.
	lo, hi := int64(0), int64(5*blockSize+37)
	a := HalfDense(NewRNG(4), lo, hi, 0.5)
	b := HalfDense(NewRNG(4), lo, hi, 0.5)
	if !slices.Equal(a, b) {
		t.Fatal("HalfDense not deterministic")
	}
	if len(HalfDense(NewRNG(4), lo, hi, 0)) != 0 {
		t.Fatal("HalfDense(p=0) must be empty")
	}
	if got := HalfDense(NewRNG(4), lo, hi, 1); int64(len(got)) != hi-lo+1 {
		t.Fatalf("HalfDense(p=1) returned %d of %d keys", len(got), hi-lo+1)
	}
}

// TestClusteredGapStructure checks the defining property of the
// non-smooth clustered input: at most `clusters` gaps wider than a
// threshold, with the bulk of the keys tightly packed.
func TestClusteredGapStructure(t *testing.T) {
	const (
		n        = 10_000
		clusters = 16
	)
	lo, hi := int64(0), int64(1<<30)
	keys := Clustered(NewRNG(77), n, clusters, lo, hi)
	checkSetInvariants(t, "Clustered", keys, n, lo, hi)

	// Inside a window keys sit ~4 apart; between windows the expected
	// gap is ~2^30/16. Any gap above 1e6 must be a cluster boundary.
	wide := 0
	for i := 1; i < len(keys); i++ {
		if keys[i]-keys[i-1] > 1_000_000 {
			wide++
		}
	}
	if wide >= clusters {
		t.Fatalf("%d wide gaps, want < %d (clusters not tight)", wide, clusters)
	}
	if wide < clusters/2 {
		t.Fatalf("only %d wide gaps for %d clusters (clusters not separated)", wide, clusters)
	}
}

func TestZipfSetSkew(t *testing.T) {
	const n = 20_000
	lo, hi := int64(0), int64(1<<30)
	keys := ZipfSet(NewRNG(13), n, 0.8, lo, hi)
	head := 0
	for _, k := range keys {
		if k < (hi+1)/16 {
			head++
		}
	}
	// theta=0.8: the lowest 1/16 of the range should hold
	// (1/16)^0.2 ≈ 57% of the keys; uniform would put 6% there.
	if head < n/3 {
		t.Fatalf("only %d/%d keys in the hot head; not skewed", head, n)
	}
	uni := UniformSet(NewRNG(13), n, lo, hi)
	uhead := 0
	for _, k := range uni {
		if k < (hi+1)/16 {
			uhead++
		}
	}
	if head < 4*uhead {
		t.Fatalf("zipf head %d not clearly denser than uniform head %d", head, uhead)
	}
}

func TestRunsAreDense(t *testing.T) {
	const (
		n    = 10_000
		runs = 8
	)
	keys := Runs(NewRNG(31), n, runs, 0, 1<<30)
	breaks := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			breaks++
		}
	}
	if breaks != runs-1 {
		t.Fatalf("%d breaks in consecutive structure, want %d", breaks, runs-1)
	}
}

// TestExpSpacedGapsGrow checks the adversarial shape: gaps grow by
// orders of magnitude from head to tail, so a linear interpolation is
// maximally misled.
func TestExpSpacedGapsGrow(t *testing.T) {
	const n = 1000
	keys := ExpSpaced(NewRNG(17), n, 0, 1<<40)
	firstGap := keys[n/10] - keys[0]
	lastGap := keys[n-1] - keys[n-1-n/10]
	if lastGap < 1000*firstGap {
		t.Fatalf("tail decile span %d not ≫ head decile span %d", lastGap, firstGap)
	}
	if keys[n-1] != 1<<40 {
		t.Fatalf("last key %d, want the range top", keys[n-1])
	}
}

func TestGenerateRegistry(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("only %d registered distributions: %v", len(names), names)
	}
	for _, name := range names {
		keys, err := Generate(name, NewRNG(2), 5000, 0, 1<<24)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if len(keys) == 0 || !slices.IsSorted(keys) {
			t.Fatalf("Generate(%s) returned %d keys, sorted=%v", name, len(keys), slices.IsSorted(keys))
		}
		if name != "halfdense" && len(keys) != 5000 {
			t.Fatalf("Generate(%s) returned %d keys, want 5000", name, len(keys))
		}
	}
	if _, err := Generate("nope", NewRNG(2), 10, 0, 100); err == nil {
		t.Fatal("unknown distribution must error")
	}
	if Describe() == "" {
		t.Fatal("Describe must list the distributions")
	}
}

func TestCheckSetPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"n>span", func() { UniformSet(NewRNG(1), 20, 0, 9) }},
		{"hi<lo", func() { UniformSet(NewRNG(1), 1, 10, 0) }},
		{"negative n", func() { UniformSet(NewRNG(1), -1, 0, 10) }},
		{"bad theta", func() { ZipfSet(NewRNG(1), 10, 1.5, 0, 100) }},
		{"bad density", func() { HalfDense(NewRNG(1), 0, 10, 1.5) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}
