package dist

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGZeroSeedNotStuck(t *testing.T) {
	r := NewRNG(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("zero seed produced %d/100 zero draws", zero)
	}
}

func TestForkIndependentAndDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("forks of identical parents diverge")
		}
	}
	if a.Fork().Uint64() == fa.Uint64() {
		t.Fatal("successive forks share a stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestInRangeFullBounds(t *testing.T) {
	r := NewRNG(9)
	lo, hi := int64(-5), int64(5)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.InRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("InRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != int(hi-lo+1) {
		t.Fatalf("1000 draws over 11 values hit only %d", len(seen))
	}
	// Negative-heavy ranges must not overflow.
	if v := r.InRange(-1<<62, 1<<62); v < -1<<62 {
		t.Fatalf("wide range draw overflowed: %d", v)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / 10_000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}
