package dist

import "testing"

const (
	benchN  = 1 << 20
	benchHi = int64(1) << 40
)

func benchGen(b *testing.B, gen func(r *RNG) []int64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		keys := gen(NewRNG(uint64(i)))
		if len(keys) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkUniformSet(b *testing.B) {
	benchGen(b, func(r *RNG) []int64 { return UniformSet(r, benchN, 0, benchHi) })
}

func BenchmarkClustered(b *testing.B) {
	benchGen(b, func(r *RNG) []int64 { return Clustered(r, benchN, DefaultClusters, 0, benchHi) })
}

func BenchmarkZipfSet(b *testing.B) {
	benchGen(b, func(r *RNG) []int64 { return ZipfSet(r, benchN, DefaultZipfTheta, 0, benchHi) })
}

func BenchmarkExpSpaced(b *testing.B) {
	benchGen(b, func(r *RNG) []int64 { return ExpSpaced(r, benchN, 0, benchHi) })
}

func BenchmarkHalfDense(b *testing.B) {
	benchGen(b, func(r *RNG) []int64 { return HalfDense(r, 0, 2*int64(benchN), 0.5) })
}
