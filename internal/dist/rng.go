// Package dist generates the synthetic workloads of the paper's
// evaluation (§9) and of the ablations in DESIGN.md: sorted,
// duplicate-free key sets drawn from smooth and non-smooth
// distributions. Interpolation search is O(m·log log n) only on smooth
// inputs, so the distribution is the central experimental axis; this
// package is the one place that axis is defined.
//
// Every generator takes an explicit *RNG — there is no global state —
// and is deterministic: the same seed yields the same slice, bit for
// bit, regardless of GOMAXPROCS. Large outputs are produced in fixed
// shards via internal/parallel, so the generators double as a workout
// for the repository's own fork-join primitives.
package dist

import "math/bits"

// RNG is a small, fast, seedable random number generator
// (xoshiro256++, state initialized by splitmix64). It is not safe for
// concurrent use; parallel generators give each shard its own stream
// via Fork.
type RNG struct {
	s [4]uint64
}

// splitmix64 is the stateless mixer recommended by the xoshiro authors
// for seeding: it turns any 64-bit value, including 0, into a
// well-distributed one.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRNG returns a generator seeded from seed. Any seed is valid,
// including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		seed = splitmix64(seed)
		r.s[i] = seed
	}
	return r
}

// Fork derives an independent stream from r. Consuming one value of
// r's own stream keeps derivation deterministic: forking k shards in a
// loop always produces the same k streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next value of the stream (xoshiro256++).
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method. n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("dist: Uint64n(0)")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Int63n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("dist: Int63n with non-positive bound")
	}
	return int64(r.Uint64n(uint64(n)))
}

// InRange returns a uniform key in [lo, hi]. The arithmetic is done in
// uint64 so the full int64 key space is safe from overflow.
func (r *RNG) InRange(lo, hi int64) int64 {
	if hi < lo {
		panic("dist: InRange with hi < lo")
	}
	return int64(uint64(lo) + r.Uint64n(spanOf(lo, hi)))
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// spanOf returns hi-lo+1 as a uint64, exact for every lo <= hi except
// the full int64 range (which no workload uses; it reports 0 there and
// the bounded draws reject it).
func spanOf(lo, hi int64) uint64 {
	return uint64(hi) - uint64(lo) + 1
}
