package dist

import (
	"fmt"
	"sort"
	"strings"
)

// Default shape parameters used when a distribution is selected by
// name (the -dist flags and bench.Workload.Dist), chosen to match the
// scales of the paper's evaluation: 64 clusters reproduces ablation
// A3, theta = 0.8 is the customary Zipf skew of the related IST
// evaluations, 32 runs keeps runs long enough to span many leaves.
const (
	DefaultClusters  = 64
	DefaultZipfTheta = 0.8
	DefaultRuns      = 32
)

// generators maps selectable names to generators with default shape
// parameters. Each entry notes the experiment it serves.
var generators = map[string]struct {
	doc string
	gen func(r *RNG, n int, lo, hi int64) []int64
}{
	"uniform": {
		"smooth i.i.d. keys (§9 batches; interpolation's best case)",
		func(r *RNG, n int, lo, hi int64) []int64 { return UniformSet(r, n, lo, hi) },
	},
	"clustered": {
		fmt.Sprintf("%d tight clusters (§9 non-smooth batches, ablation A3)", DefaultClusters),
		func(r *RNG, n int, lo, hi int64) []int64 { return Clustered(r, n, DefaultClusters, lo, hi) },
	},
	"zipf": {
		fmt.Sprintf("power-law skew toward lo, theta=%.2f (hot-key head)", DefaultZipfTheta),
		func(r *RNG, n int, lo, hi int64) []int64 { return ZipfSet(r, n, DefaultZipfTheta, lo, hi) },
	},
	"runs": {
		fmt.Sprintf("%d dense sequential runs (time-ordered ingest)", DefaultRuns),
		func(r *RNG, n int, lo, hi int64) []int64 { return Runs(r, n, DefaultRuns, lo, hi) },
	},
	"expspaced": {
		"exponentially spaced keys (adversarial anti-interpolation input)",
		func(r *RNG, n int, lo, hi int64) []int64 { return ExpSpaced(r, n, lo, hi) },
	},
	"halfdense": {
		"every key with probability n/span (§9 tree initialization shape)",
		func(r *RNG, n int, lo, hi int64) []int64 {
			span := spanOf(lo, hi)
			p := 1.0
			if span != 0 {
				p = float64(n) / float64(span)
			}
			if p > 1 {
				p = 1
			}
			return HalfDense(r, lo, hi, p)
		},
	},
}

// Names returns the selectable distribution names, sorted.
func Names() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe returns a one-line description per name, aligned for
// -help output.
func Describe() string {
	var b strings.Builder
	for _, name := range Names() {
		fmt.Fprintf(&b, "  %-10s %s\n", name, generators[name].doc)
	}
	return b.String()
}

// Generate draws about n keys (exactly n for all but halfdense, which
// is density-driven) from the named distribution over [lo, hi]. It is
// the programmatic face of the -dist command line flags.
func Generate(name string, r *RNG, n int, lo, hi int64) ([]int64, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("dist: unknown distribution %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return g.gen(r, n, lo, hi), nil
}
